// The headless OpenSteerDemo: pick any registered plugin by name, run the
// main loop, print the per-stage profile — the command-line equivalent of
// the application the thesis instruments.
//
//   usage: opensteer_demo [plugin] [agents] [frames] [think_period]
//   e.g.:  opensteer_demo boids-gpu-v5-db 4096 30 10
//          opensteer_demo list
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gpusteer/registry.hpp"
#include "steer/demo.hpp"
#include "steer/steer.hpp"

int main(int argc, char** argv) {
    gpusteer::register_all_plugins();
    auto& registry = steer::PlugInRegistry::instance();

    const std::string name = argc > 1 ? argv[1] : "boids-gpu-v5";
    if (name == "list") {
        std::printf("registered plugins:\n");
        for (const auto& n : registry.names()) std::printf("  %s\n", n.c_str());
        return 0;
    }

    steer::WorldSpec spec;
    spec.agents = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1024;
    const int frames = argc > 3 ? std::atoi(argv[3]) : 20;
    spec.think_period = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 1;

    steer::Demo demo(registry);
    if (!demo.select(name, spec)) {
        std::fprintf(stderr, "unknown plugin '%s' (try: opensteer_demo list)\n",
                     name.c_str());
        return 1;
    }

    std::printf("plugin '%s': %u agents, think period %u, %d frames\n\n", name.c_str(),
                spec.agents, spec.think_period, frames);
    demo.run(frames);

    const auto m = demo.mean_times();
    std::printf("per-frame stage profile (simulated time):\n");
    std::printf("  simulation substage : %9.3f ms\n", m.simulation * 1e3);
    std::printf("  modification        : %9.3f ms\n", m.modification * 1e3);
    std::printf("  transfers           : %9.3f ms\n", m.transfer * 1e3);
    std::printf("  draw stage          : %9.3f ms\n", m.draw * 1e3);
    std::printf("update rate: %.2f updates/s   frame rate: %.2f fps\n", demo.update_rate(),
                demo.frame_rate());

    const auto& c = demo.active().counters();
    std::printf("\ncounters: %llu pair tests, %llu thinks, %llu modifications\n",
                static_cast<unsigned long long>(c.pairs_examined),
                static_cast<unsigned long long>(c.thinks),
                static_cast<unsigned long long>(c.modifies));
    demo.close();
    return 0;
}
