// Host/device type transformation (§4.5).
//
// The thesis' motivating case: "On the host side, using a balanced tree may
// be a good choice to store data in which searching is a regular operation.
// But this concept requires a high amount of rather unpredictable memory
// accesses [...] A simple brute force approach using shared memory as a
// cache may even perform better." And from the future-work section: "the
// host data structure could be designed for fast construction, whereas the
// device data structure could be designed for fast memory transfer and fast
// lookup."
//
// Here a host-side std::map-backed lookup table transforms into a flat
// sorted array on the device; the kernel does branch-light binary probing
// over the flat image.
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

#include "cupp/cupp.hpp"

namespace {

/// The device type: a flat sorted (key, value) array in global memory.
struct DevLookupTable;

/// The host type: built around std::map for cheap incremental construction.
class HostLookupTable;

struct DevEntry {
    int key;
    float value;
};

struct DevLookupTable {
    using device_type = DevLookupTable;
    using host_type = HostLookupTable;

    cusim::DevicePtr<DevEntry> entries;
    std::uint32_t count = 0;

    /// Binary search over the flat image; log2(n) global reads.
    float lookup(cusim::ThreadCtx& ctx, int key) const {
        std::uint32_t lo = 0, hi = count;
        while (lo < hi) {
            ctx.charge(cusim::Op::Compare, 2);
            const std::uint32_t mid = (lo + hi) / 2;
            const DevEntry e = entries.read(ctx, mid);
            if (e.key == key) return e.value;
            if (e.key < key) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return -1.0f;
    }
};

class HostLookupTable {
public:
    using device_type = DevLookupTable;
    using host_type = HostLookupTable;

    void insert(int key, float value) { map_[key] = value; }
    [[nodiscard]] std::size_t size() const { return map_.size(); }

    // --- the §4.4 protocol: transform builds the device image ---
    DevLookupTable transform(const cupp::device& d) const {
        staging_.clear();
        staging_.reserve(map_.size());
        for (const auto& [k, v] : map_) staging_.push_back(DevEntry{k, v});  // sorted!
        buffer_.emplace(d, staging_.data(), staging_.data() + staging_.size());
        DevLookupTable dev;
        dev.entries = buffer_->device_ptr();
        dev.count = static_cast<std::uint32_t>(staging_.size());
        return dev;
    }

private:
    std::map<int, float> map_;
    // The flat image lives as long as the host object: mutable because
    // transform() is logically const (§4.4 signature).
    mutable std::vector<DevEntry> staging_;
    mutable std::optional<cupp::memory1d<DevEntry>> buffer_;
};

cusim::KernelTask lookup_kernel(cusim::ThreadCtx& ctx, DevLookupTable table,
                                const cupp::deviceT::vector<int>& keys,
                                cupp::deviceT::vector<float>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < keys.size()) {
        out.write(ctx, gid, table.lookup(ctx, keys.read(ctx, gid)));
    }
    co_return;
}

}  // namespace

int main() {
    cupp::device d;

    // Host side: incremental construction, the strength of the tree/map.
    HostLookupTable table;
    for (int i = 0; i < 1000; ++i) table.insert(i * 3, static_cast<float>(i) * 0.5f);
    std::printf("host table built incrementally: %zu entries (std::map)\n", table.size());

    cupp::vector<int> keys = {0, 3, 299 * 3, 999 * 3, 7 /* absent */};
    cupp::vector<float> results(keys.size(), 0.0f);

    // The kernel parameter is the *device* type; the host passes the *host*
    // type, and the framework runs the transformation in between (§4.5).
    using K = cusim::KernelTask (*)(cusim::ThreadCtx&, DevLookupTable,
                                    const cupp::deviceT::vector<int>&,
                                    cupp::deviceT::vector<float>&);
    cupp::kernel k(static_cast<K>(lookup_kernel), cusim::dim3{1}, cusim::dim3{32});
    k(d, table, keys, results);

    std::printf("device lookups over the flat sorted image:\n");
    for (std::uint64_t i = 0; i < keys.size(); ++i) {
        std::printf("  key %4d -> %g\n", static_cast<int>(keys[i]),
                    static_cast<float>(results[i]));
    }
    return 0;
}
