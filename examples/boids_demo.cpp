// Boids — the thesis' example application, headless.
//
// Runs the flocking scenario on the CPU reference and on the GPU plugin
// (version 5, with double buffering), verifies both compute the same flock,
// and prints the per-stage breakdown and rates of the simulated machines.
//
//   usage: boids_demo [agents] [steps] [think_period]
#include <cstdio>
#include <cstdlib>

#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

int main(int argc, char** argv) {
    steer::WorldSpec spec;
    spec.agents = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 10;
    spec.think_period = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 1;

    std::printf("Boids: %u agents, %d steps, think period %u, world radius %.0f\n\n",
                spec.agents, steps, spec.think_period, spec.world_radius);

    steer::CpuBoidsPlugin cpu;
    cpu.open(spec);
    steer::StageTimes cpu_sum{};
    for (int i = 0; i < steps; ++i) cpu_sum += cpu.step();

    gpusteer::GpuBoidsPlugin gpu(gpusteer::Version::V5_FullUpdateOnDevice,
                                 /*double_buffering=*/true);
    gpu.open(spec);
    steer::StageTimes gpu_sum{};
    for (int i = 0; i < steps; ++i) gpu_sum += gpu.step();

    // The flocks must agree exactly: the kernels run the same steering math.
    const auto cpu_flock = cpu.snapshot();
    const auto gpu_flock = gpu.snapshot();
    std::uint32_t mismatches = 0;
    for (std::size_t i = 0; i < cpu_flock.size(); ++i) {
        if (!(cpu_flock[i].position == gpu_flock[i].position)) ++mismatches;
    }

    auto report = [&](const char* name, const steer::StageTimes& sum) {
        std::printf("%-22s update %8.3f ms/frame   draw %8.3f ms/frame   -> %8.2f fps\n",
                    name, 1e3 * sum.update() / steps, 1e3 * sum.draw / steps,
                    steps / sum.total());
    };
    report("CPU (Athlon model)", cpu_sum);
    report("GPU v5 + dbuf (G80)", gpu_sum);

    std::printf("\nflock agreement: %s (%u mismatching agents of %u)\n",
                mismatches == 0 ? "EXACT" : "MISMATCH", mismatches, spec.agents);
    std::printf("GPU speedup (update stage): %.1fx\n", cpu_sum.update() / gpu_sum.update());
    std::printf("kernel launches: %llu, divergent warp-steps: %llu\n",
                static_cast<unsigned long long>(gpu.kernel_launches()),
                static_cast<unsigned long long>(gpu.divergent_warp_steps()));

    // A peek at the flock.
    const auto& a = gpu_flock[0];
    std::printf("agent[0]: position (%.2f, %.2f, %.2f), speed %.2f\n", a.position.x,
                a.position.y, a.position.z, a.speed);
    return mismatches == 0 ? 0 : 1;
}
