// Boids — the thesis' example application, headless.
//
// Runs the flocking scenario on the CPU reference and on the GPU plugin
// (version 5, with double buffering), verifies both compute the same flock,
// and prints the per-stage breakdown and rates of the simulated machines.
//
//   usage: boids_demo [agents] [steps] [think_period]
//
// With CUPP_STREAMS=<n> set, the demo appends a stream epilogue: the final
// flock's speeds are partitioned across <n> asynchronous streams, each
// chunk prefetched to the device, scaled by a stream-bound kernel call and
// prefetched back — then verified against the host-computed result. Under
// CUPP_TRACE this leaves per-stream lanes in the trace.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cupp/cupp.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace {

cusim::KernelTask scale_speeds(cusim::ThreadCtx& ctx,
                               cupp::deviceT::vector<float>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        v.write(ctx, gid, v.read(ctx, gid) * 2.0f);
    }
    co_return;
}
using ScaleK = cusim::KernelTask (*)(cusim::ThreadCtx&,
                                     cupp::deviceT::vector<float>&);

// Replays the flock's speeds through `nstreams` concurrent streams and
// returns the number of elements that disagree with the host reference.
std::uint32_t stream_epilogue(const std::vector<steer::Agent>& flock,
                              unsigned nstreams) {
    cupp::device d;
    std::vector<cupp::stream> streams;
    std::vector<cupp::vector<float>> chunks;
    const std::size_t per = (flock.size() + nstreams - 1) / nstreams;
    for (unsigned s = 0; s < nstreams; ++s) {
        streams.emplace_back(d);
        const std::size_t lo = std::min(flock.size(), s * per);
        const std::size_t hi = std::min(flock.size(), lo + per);
        cupp::vector<float> v;
        v.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) v.push_back(flock[i].speed);
        chunks.push_back(std::move(v));
    }

    cupp::kernel k(static_cast<ScaleK>(scale_speeds), cusim::dim3{1},
                   cusim::dim3{128});
    k.set_name("scale_speeds");
    for (unsigned s = 0; s < nstreams; ++s) {
        const std::size_t n = chunks[s].size();
        if (n == 0) continue;
        k.set_grid_dim(cusim::dim3{static_cast<unsigned>((n + 127) / 128)});
        chunks[s].prefetch_to_device(d, streams[s]);
        k(d, streams[s], chunks[s]);
        chunks[s].prefetch_to_host(streams[s]);
    }
    d.synchronize();  // joins every stream's queued work

    std::uint32_t mismatches = 0;
    for (unsigned s = 0; s < nstreams; ++s) {
        const std::size_t lo = std::min(flock.size(), s * per);
        for (std::size_t i = 0; i < chunks[s].size(); ++i) {
            if (chunks[s][i] != flock[lo + i].speed * 2.0f) ++mismatches;
        }
    }
    return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
    steer::WorldSpec spec;
    spec.agents = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 10;
    spec.think_period = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 1;

    std::printf("Boids: %u agents, %d steps, think period %u, world radius %.0f\n\n",
                spec.agents, steps, spec.think_period, spec.world_radius);

    steer::CpuBoidsPlugin cpu;
    cpu.open(spec);
    steer::StageTimes cpu_sum{};
    for (int i = 0; i < steps; ++i) cpu_sum += cpu.step();

    gpusteer::GpuBoidsPlugin gpu(gpusteer::Version::V5_FullUpdateOnDevice,
                                 /*double_buffering=*/true);
    gpu.open(spec);
    steer::StageTimes gpu_sum{};
    for (int i = 0; i < steps; ++i) gpu_sum += gpu.step();

    // The flocks must agree exactly: the kernels run the same steering math.
    const auto cpu_flock = cpu.snapshot();
    const auto gpu_flock = gpu.snapshot();
    std::uint32_t mismatches = 0;
    for (std::size_t i = 0; i < cpu_flock.size(); ++i) {
        if (!(cpu_flock[i].position == gpu_flock[i].position)) ++mismatches;
    }

    auto report = [&](const char* name, const steer::StageTimes& sum) {
        std::printf("%-22s update %8.3f ms/frame   draw %8.3f ms/frame   -> %8.2f fps\n",
                    name, 1e3 * sum.update() / steps, 1e3 * sum.draw / steps,
                    steps / sum.total());
    };
    report("CPU (Athlon model)", cpu_sum);
    report("GPU v5 + dbuf (G80)", gpu_sum);

    std::printf("\nflock agreement: %s (%u mismatching agents of %u)\n",
                mismatches == 0 ? "EXACT" : "MISMATCH", mismatches, spec.agents);
    std::printf("GPU speedup (update stage): %.1fx\n", cpu_sum.update() / gpu_sum.update());
    std::printf("kernel launches: %llu, divergent warp-steps: %llu\n",
                static_cast<unsigned long long>(gpu.kernel_launches()),
                static_cast<unsigned long long>(gpu.divergent_warp_steps()));

    // A peek at the flock.
    const auto& a = gpu_flock[0];
    std::printf("agent[0]: position (%.2f, %.2f, %.2f), speed %.2f\n", a.position.x,
                a.position.y, a.position.z, a.speed);

    if (const char* env = std::getenv("CUPP_STREAMS");
        env != nullptr && std::atoi(env) > 0) {
        const unsigned nstreams = static_cast<unsigned>(std::atoi(env));
        const std::uint32_t stream_mismatches = stream_epilogue(gpu_flock, nstreams);
        std::printf("stream epilogue (%u streams): %s (%u mismatches)\n", nstreams,
                    stream_mismatches == 0 ? "EXACT" : "MISMATCH", stream_mismatches);
        mismatches += stream_mismatches;
    }
    return mismatches == 0 ? 0 : 1;
}
