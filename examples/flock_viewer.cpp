// A terminal flock viewer: runs the GPU Boids simulation and renders a
// top-down ASCII projection of the world every few steps — the closest a
// headless reproduction gets to watching OpenSteerDemo fly.
//
//   usage: flock_viewer [agents] [frames] [every]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cusim/report.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace {

void render(const std::vector<steer::Agent>& flock, float world_radius, int cols,
            int rows) {
    std::vector<std::string> canvas(rows, std::string(cols, ' '));
    for (const auto& agent : flock) {
        // Top-down: x -> column, z -> row; y is depth-coded by character.
        const int col = static_cast<int>((agent.position.x / world_radius + 1.0f) * 0.5f *
                                         (cols - 1));
        const int row = static_cast<int>((agent.position.z / world_radius + 1.0f) * 0.5f *
                                         (rows - 1));
        if (col < 0 || col >= cols || row < 0 || row >= rows) continue;
        const char glyph = agent.position.y > world_radius / 3   ? '^'
                           : agent.position.y < -world_radius / 3 ? 'v'
                                                                  : 'o';
        char& cell = canvas[row][col];
        cell = (cell == ' ') ? glyph : '#';  // '#': several boids share a cell
    }
    std::printf("+%s+\n", std::string(cols, '-').c_str());
    for (const auto& line : canvas) std::printf("|%s|\n", line.c_str());
    std::printf("+%s+\n", std::string(cols, '-').c_str());
}

}  // namespace

int main(int argc, char** argv) {
    steer::WorldSpec spec;
    spec.agents = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 512;
    const int frames = argc > 2 ? std::atoi(argv[2]) : 60;
    const int every = argc > 3 ? std::atoi(argv[3]) : 20;

    gpusteer::GpuBoidsPlugin gpu(gpusteer::Version::V5_FullUpdateOnDevice);
    gpu.open(spec);

    std::printf("GPU Boids, %u agents in a radius-%.0f world (top-down: x ->, z v; "
                "'^'/'o'/'v' = high/mid/low altitude, '#' = crowded)\n",
                spec.agents, spec.world_radius);
    for (int frame = 0; frame < frames; ++frame) {
        gpu.step();
        if (frame % every == 0 || frame == frames - 1) {
            std::printf("\nframe %d:\n", frame);
            render(gpu.snapshot(), spec.world_radius, 72, 24);
        }
    }

    const auto& cost = gpu.device_handle().sim().properties().cost;
    std::printf("\nlast simulation kernel: %s\n",
                cusim::describe(gpu.device_handle().sim().last_launch(), cost).c_str());
    return 0;
}
