// SAXPY — the memory-management tour: raw device allocation through the
// exception-throwing handle, cupp::memory1d with pointer and iterator
// transfers, and the shared device pointer (§4.2).
#include <cstdio>
#include <list>
#include <numeric>
#include <vector>

#include "cupp/cupp.hpp"

namespace {

cusim::KernelTask saxpy_kernel(cusim::ThreadCtx& ctx, float a,
                               cusim::DevicePtr<float> x, cusim::DevicePtr<float> y) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < y.size()) {
        ctx.charge(cusim::Op::FMad);
        y.write(ctx, gid, a * x.read(ctx, gid) + y.read(ctx, gid));
    }
    co_return;
}

}  // namespace

int main() {
    constexpr std::uint32_t kN = 4096;
    cupp::device d;

    // memory1d from a plain pointer range...
    std::vector<float> xs(kN);
    std::iota(xs.begin(), xs.end(), 0.0f);
    cupp::memory1d<float> x(d, xs.data(), xs.data() + xs.size());

    // ...and from an arbitrary iterator range, linearised in traversal order.
    std::list<float> ys(kN, 1.0f);
    cupp::memory1d<float> y(d, ys.begin(), ys.end());

    // Launch straight through the runtime layers with typed views.
    using K = cusim::KernelTask (*)(cusim::ThreadCtx&, float, cusim::DevicePtr<float>,
                                    cusim::DevicePtr<float>);
    cupp::kernel k(static_cast<K>(saxpy_kernel), cusim::dim3{kN / 256}, cusim::dim3{256});
    k(d, 2.0f, x.device_ptr(), y.device_ptr());

    std::vector<float> result(kN);
    y.copy_to_host(result.data());
    std::printf("saxpy(2.0): y[1] = %.1f, y[100] = %.1f, y[4095] = %.1f\n", result[1],
                result[100], result[4095]);

    // Deep copy: the duplicate has its own device storage.
    cupp::memory1d<float> y2(y);
    std::printf("deep copy lives at a different device address: %llu vs %llu\n",
                static_cast<unsigned long long>(y.addr()),
                static_cast<unsigned long long>(y2.addr()));

    // Shared ownership: freed when the last handle goes away.
    cupp::shared_device_ptr<float> shared(d, kN);
    auto alias = shared;
    std::printf("shared device pointer use_count = %ld\n", shared.use_count());

    std::printf("device memory in use: %.1f KiB (all freed automatically on exit)\n",
                (d.total_memory() - d.free_memory()) / 1024.0);
    return 0;
}
