// Quickstart — the thesis' own first example (listings 4.2/4.3).
//
// A kernel with call-by-value and call-by-reference parameters, launched
// through the cupp::kernel functor on a 10x10 grid of 8x8-thread blocks.
//
//   $ ./quickstart
//   j = 5
//   squares[0..7] = 0 1 4 9 16 25 36 49
#include <cstdio>

#include "cupp/cupp.hpp"

// --- the "CUDA file" -------------------------------------------------------
// A __global__ function in the simulator: KernelTask f(ThreadCtx&, params).
cusim::KernelTask kernel(cusim::ThreadCtx& ctx, int i, int& j) {
    // One thread computes; everyone else just rides along.
    if (ctx.global_id() == 0) j = i / 2;
    co_return;
}

typedef cusim::KernelTask (*kernelT)(cusim::ThreadCtx&, int, int&);
kernelT get_kernel_ptr() { return kernel; }

// A second kernel showing the cupp::vector in action.
cusim::KernelTask square_kernel(cusim::ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        ctx.charge(cusim::Op::FMul);
        v.write(ctx, gid, static_cast<int>(gid * gid));
    }
    co_return;
}

// --- the "C++ file" ---------------------------------------------------------
int main() {
    // Create a default device handle (§4.1).
    cupp::device device_hdl;
    std::printf("device: %s (%u multiprocessors)\n", device_hdl.name().c_str(),
                device_hdl.multiprocessors());

    // Listing 4.3: 10*10 = 100 thread blocks of 8*8 = 64 threads.
    int j = 0;
    const cusim::dim3 grid_dim = cusim::make_dim3(10, 10);
    const cusim::dim3 block_dim = cusim::make_dim3(8, 8);
    cupp::kernel f(get_kernel_ptr(), grid_dim, block_dim);
    f(device_hdl, 10, j);
    std::printf("j = %d\n", j);  // j == 5

    // The lazy vector: pass it to a kernel, read the results back on the
    // host; all transfers happen automatically and only when needed (§4.6).
    cupp::vector<int> squares(64, 0);
    using SquareK = cusim::KernelTask (*)(cusim::ThreadCtx&, cupp::deviceT::vector<int>&);
    cupp::kernel sq(static_cast<SquareK>(square_kernel), cusim::dim3{2}, cusim::dim3{32});
    sq(device_hdl, squares);

    std::printf("squares[0..7] =");
    for (int i = 0; i < 8; ++i) std::printf(" %d", static_cast<int>(squares[i]));
    std::printf("\n");
    std::printf("uploads: %llu, downloads: %llu (lazy copying at work)\n",
                static_cast<unsigned long long>(squares.uploads()),
                static_cast<unsigned long long>(squares.downloads()));
    return 0;
}
