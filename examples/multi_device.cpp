// Multi-device CuPP — the other future-work item of thesis §7 ("the CuPP
// framework currently misses support for multiple devices in one thread";
// §4.1: "the CuPP framework itself is designed to offer multiple devices to
// the same host thread with only minor interface changes").
//
// Every CuPP operation already takes the device handle explicitly, so
// multi-device support is exactly that minor change: register a second
// simulated device and pass two handles around. This example splits the
// Boids neighbor search across two devices, each searching half the flock
// against all positions, and merges the halves on the host.
#include <cstdio>

#include "cupp/cupp.hpp"
#include "gpusteer/kernels.hpp"
#include "steer/steer.hpp"

int main() {
    using gpusteer::ThinkMap;
    using steer::NeighborList;
    using steer::Vec3;

    // Register a second device (a real deployment would enumerate them).
    auto& registry = cusim::Registry::instance();
    if (registry.device_count() < 2) {
        registry.add_device(cusim::g80_properties());
    }
    cupp::device dev_a(0);
    cupp::device dev_b(1);
    std::printf("using %d devices: '%s' and '%s'\n", registry.device_count(),
                dev_a.name().c_str(), dev_b.name().c_str());

    steer::WorldSpec spec;
    spec.agents = 2048;
    const auto flock = steer::make_flock(spec);

    // Each device gets its own copy of the position data (device memory is
    // per device; the lazy vectors upload to the device they are used on,
    // which is why we keep one vector per device).
    cupp::vector<Vec3> positions_a, positions_b;
    for (const auto& agent : flock) {
        positions_a.push_back(agent.position);
        positions_b.push_back(agent.position);
    }

    const std::uint32_t half = spec.agents / 2;
    cupp::vector<std::uint32_t> result_a(std::uint64_t{spec.agents} * 7);
    cupp::vector<std::uint32_t> result_b(std::uint64_t{spec.agents} * 7);
    cupp::vector<std::uint32_t> counts_a(spec.agents);
    cupp::vector<std::uint32_t> counts_b(spec.agents);

    using NsF = cusim::KernelTask (*)(cusim::ThreadCtx&, const gpusteer::DVec3&, float,
                                      gpusteer::DU32&, gpusteer::DU32&, ThinkMap);
    cupp::kernel k_a(static_cast<NsF>(gpusteer::ns_shared_kernel),
                     cusim::dim3{half / gpusteer::kThreadsPerBlock},
                     cusim::dim3{gpusteer::kThreadsPerBlock});
    k_a.set_shared_bytes(gpusteer::kThreadsPerBlock * sizeof(Vec3));
    cupp::kernel k_b(static_cast<NsF>(gpusteer::ns_shared_kernel),
                     cusim::dim3{half / gpusteer::kThreadsPerBlock},
                     cusim::dim3{gpusteer::kThreadsPerBlock});
    k_b.set_shared_bytes(gpusteer::kThreadsPerBlock * sizeof(Vec3));

    // Device A searches agents [0, half) — the even phase of a period-2
    // think map; device B searches agents [half, n) via an offset phase.
    // (ThinkMap{phase, period} maps thread g to agent phase + g*period.)
    k_a(dev_a, positions_a, spec.search_radius, result_a, counts_a, ThinkMap{0, 2});
    k_b(dev_b, positions_b, spec.search_radius, result_b, counts_b, ThinkMap{1, 2});

    // Merge: even agents from device A, odd agents from device B, and
    // cross-check against the host reference search.
    std::vector<Vec3> host_positions(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) host_positions[i] = flock[i].position;
    std::uint32_t mismatches = 0;
    for (std::uint32_t me = 0; me < spec.agents; ++me) {
        const auto& counts = (me % 2 == 0) ? counts_a : counts_b;
        const auto& result = (me % 2 == 0) ? result_a : result_b;
        const auto reference =
            steer::find_neighbors(me, host_positions, spec.search_radius, 7);
        if (counts[me] != reference.count) ++mismatches;
        for (std::uint32_t j = 0; j < reference.count && j < counts[me]; ++j) {
            if (result[std::uint64_t{me} * 7 + j] != reference.index[j]) ++mismatches;
        }
    }

    std::printf("split neighbor search over 2 devices: %u agents each\n", half);
    std::printf("device A busy %.3f ms, device B busy %.3f ms (concurrent timelines)\n",
                k_a.last_stats().device_seconds * 1e3,
                k_b.last_stats().device_seconds * 1e3);
    std::printf("merged result vs host reference: %s (%u mismatches)\n",
                mismatches == 0 ? "EXACT" : "MISMATCH", mismatches);
    return mismatches == 0 ? 0 : 1;
}
