// boids_serve_soak — the cupp::serve chaos soak harness.
//
//   usage: boids_serve_soak [tenants] [requests_per_tenant]
//
// N tenant threads (default 64) hammer a 4-worker serve::server running
// boids-as-a-service while a CUPP_FAULTS plan injects transient faults —
// plus, composed on top via the faults API, sticky DeviceLost faults at
// the malloc site, which escape the plugin's own recovery and exercise the
// serve circuit breaker end to end (trip → reset → half-open probe →
// recovery).
//
// The harness exits non-zero unless every soak invariant holds:
//   * every request resolves, with an outcome in {completed,
//     admission_rejected, deadline_exceeded} — enforced by the type
//     system, re-checked here;
//   * zero cross-tenant corruption: every completed digest is
//     bit-identical to the fault-free serial CPU oracle of its scenario;
//   * the deterministic tight-deadline requests actually expired;
//   * when faults were armed, the breaker demonstrably tripped and
//     recovered, and — after faults::disable() — every device passes a
//     reset-free health check (nothing left poisoned or wedged);
//   * the books balance: submitted == completed + rejected + expired.
//
// Run it under CUPP_MEMCHECK / CUPP_TRACE and the exported artifacts feed
// memcheck_check --require-clean and trace_check
// --require-counters=cupp.serve (see tests/CMakeLists.txt).
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "cusim/faults.hpp"
#include "serve/boids_service.hpp"
#include "serve/serve.hpp"

namespace serve = cupp::serve;
namespace faults = cusim::faults;

namespace {

constexpr std::uint64_t kCatalogSize = 16;  ///< distinct payloads in play

int fail(const char* what) {
    std::fprintf(stderr, "boids_serve_soak: FAILED: %s\n", what);
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    const int tenants = argc > 1 ? std::atoi(argv[1]) : 64;
    const int per_tenant = argc > 2 ? std::atoi(argv[2]) : 2;

    // Compose breaker chaos on top of whatever CUPP_FAULTS armed: sticky
    // DeviceLost at the malloc site escapes GpuBoidsPlugin's internal
    // mid-step recovery (it only catches step-time losses), so it reaches
    // the serve layer and must trip the breaker.
    const bool chaos = faults::enabled();
    if (chaos) {
        auto rules = faults::rules();
        faults::Rule lost;
        lost.site = faults::Site::Malloc;
        lost.code = cusim::ErrorCode::DeviceLost;
        lost.every = 97;
        lost.max_injections = 4;
        rules.push_back(lost);
        faults::configure(std::move(rules), /*seed=*/2009,
                          faults::report_path());
    }
    std::printf("boids_serve_soak: %d tenants x %d requests, chaos %s\n", tenants,
                per_tenant, chaos ? "ON (plan + composed DeviceLost@malloc)" : "off");

    // The fault-free serial oracle, computed up front on the CPU.
    std::map<std::uint64_t, std::uint64_t> oracle;
    for (std::uint64_t p = 0; p < kCatalogSize; ++p) {
        oracle[p] = serve::boids_oracle_digest(serve::boids_catalog_entry(p));
    }

    serve::config cfg;
    cfg.workers = 4;
    cfg.queue_capacity = 32;  // tight enough that bursts can shed
    cfg.default_quota = {/*max_queued=*/2, /*max_in_flight=*/2};
    cfg.breaker_threshold = 1;  // any escaped sticky failure trips
    cfg.retry.initial_backoff_s = 10e-6;
    serve::server srv(cfg, serve::make_boids_handler());
    srv.start();

    // Every 8th request carries a budget that cannot possibly fit a boids
    // run: a deterministic deadline_exceeded, proving expiry never wedges
    // the worker or poisons the device for its neighbors.
    std::vector<std::thread> drivers;
    std::vector<std::vector<serve::response>> results(
        static_cast<std::size_t>(tenants));
    drivers.reserve(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
        drivers.emplace_back([&, t] {
            auto& mine = results[static_cast<std::size_t>(t)];
            for (int i = 0; i < per_tenant; ++i) {
                serve::request r;
                r.tenant = "tenant-" + std::to_string(t);
                r.payload =
                    static_cast<std::uint64_t>(t * per_tenant + i) % kCatalogSize;
                const int seq = t * per_tenant + i;
                if (seq % 8 == 3) r.deadline_s = 1e-6;
                mine.push_back(srv.submit_and_wait(std::move(r)));
            }
        });
    }
    for (auto& d : drivers) d.join();
    srv.stop();

    // --- invariants ---
    std::uint64_t completed = 0, rejected = 0, expired = 0, tight_expired = 0;
    for (int t = 0; t < tenants; ++t) {
        for (int i = 0; i < per_tenant; ++i) {
            const auto& r = results[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
            const std::uint64_t payload =
                static_cast<std::uint64_t>(t * per_tenant + i) % kCatalogSize;
            const int seq = t * per_tenant + i;
            switch (r.result) {
                case serve::outcome::completed:
                    ++completed;
                    if (r.value != oracle[payload]) {
                        std::fprintf(stderr,
                                     "tenant %d request %d: digest %016llx != oracle "
                                     "%016llx (payload %llu)\n",
                                     t, i, static_cast<unsigned long long>(r.value),
                                     static_cast<unsigned long long>(oracle[payload]),
                                     static_cast<unsigned long long>(payload));
                        return fail("cross-tenant corruption: digest != serial oracle");
                    }
                    break;
                case serve::outcome::admission_rejected:
                    ++rejected;
                    break;
                case serve::outcome::deadline_exceeded:
                    ++expired;
                    if (seq % 8 == 3) ++tight_expired;
                    break;
            }
        }
    }

    const auto s = srv.stats();
    const std::uint64_t total = static_cast<std::uint64_t>(tenants) *
                                static_cast<std::uint64_t>(per_tenant);
    std::printf(
        "outcomes: %llu completed, %llu shed, %llu expired "
        "(attempts %llu, transient escapes %llu, sticky %llu)\n",
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(expired),
        static_cast<unsigned long long>(s.attempts),
        static_cast<unsigned long long>(s.transient_escapes),
        static_cast<unsigned long long>(s.sticky_failures));
    std::printf(
        "breaker: %llu trips, %llu probes, %llu recoveries, %llu device resets\n",
        static_cast<unsigned long long>(s.breaker_trips),
        static_cast<unsigned long long>(s.breaker_probes),
        static_cast<unsigned long long>(s.breaker_recoveries),
        static_cast<unsigned long long>(s.device_resets));

    if (completed + rejected + expired != total) {
        return fail("lost requests: outcomes do not sum to submissions");
    }
    if (s.submitted != total || s.completed != completed || s.rejected() != rejected) {
        return fail("stats counters disagree with observed outcomes");
    }
    if (completed == 0) return fail("nothing completed — the soak proved nothing");
    if (tight_expired == 0 && total >= 8) {
        return fail("no tight-deadline request expired");
    }
    if (chaos && s.breaker_trips == 0) {
        return fail("chaos plan armed but the breaker never tripped");
    }
    if (chaos && s.breaker_recoveries == 0) {
        return fail("breaker tripped but never recovered through a probe");
    }

    // Post-soak, reset-free health gate: with injection disarmed, every
    // worker device must be unpoisoned and able to synchronize as-is.
    faults::disable();
    if (!srv.devices_healthy()) {
        return fail("a device left the soak poisoned or wedged");
    }

    std::printf("boids_serve_soak: PASS\n");
    return 0;
}
