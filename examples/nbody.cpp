// N-body — the comparison system of §6.3.1 (NVIDIA's GPU Gems 3 kernel,
// [NHP07]): an all-pairs gravitational force computation with shared-memory
// tiling and *no data-dependent branches*, i.e. no SIMD divergence at all.
//
// Demonstrates: shared memory as a software-managed cache, __syncthreads,
// divergence counters, and the simulated-time performance report.
#include <cmath>
#include <cstdio>

#include "cupp/cupp.hpp"
#include "steer/lcg.hpp"
#include "steer/vec3.hpp"

namespace {

using steer::Vec3;

struct Body {
    Vec3 position;
    float mass;
};

constexpr unsigned kTile = 128;
constexpr float kSoftening = 0.01f;

cusim::KernelTask forces_kernel(cusim::ThreadCtx& ctx,
                                const cupp::deviceT::vector<Body>& bodies,
                                cupp::deviceT::vector<Vec3>& accel) {
    const std::uint32_t n = bodies.size();
    const std::uint32_t tid = ctx.thread_idx().x;
    const std::uint64_t gid = ctx.global_id();
    auto tile = ctx.shared_array<Body>(kTile);

    const Body me = gid < n ? bodies.read(ctx, gid) : Body{};
    Vec3 a = steer::kZero;
    for (std::uint32_t base = 0; base < n; base += kTile) {
        tile.write(ctx, tid, bodies.read(ctx, base + tid));
        co_await ctx.syncthreads();
        for (std::uint32_t i = 0; i < kTile; ++i) {
            const Body other = tile.read(ctx, i);
            const Vec3 r = other.position - me.position;
            const float dist2 = r.length_squared() + kSoftening;
            const float inv = 1.0f / std::sqrt(dist2);
            ctx.charge(cusim::Op::FMad, 9);
            ctx.charge(cusim::Op::RSqrt, 1);
            a += r * (other.mass * inv * inv * inv);
        }
        co_await ctx.syncthreads();
    }
    if (gid < n) accel.write(ctx, gid, a);
    co_return;
}

}  // namespace

int main() {
    constexpr std::uint32_t kBodies = 4096;
    cupp::device d;

    cupp::vector<Body> bodies;
    steer::Lcg rng(7);
    for (std::uint32_t i = 0; i < kBodies; ++i) {
        bodies.push_back(Body{Vec3{rng.uniform(-10, 10), rng.uniform(-10, 10),
                                   rng.uniform(-10, 10)},
                              rng.uniform(0.5f, 2.0f)});
    }
    cupp::vector<Vec3> accel(kBodies, steer::kZero);

    using K = cusim::KernelTask (*)(cusim::ThreadCtx&, const cupp::deviceT::vector<Body>&,
                                    cupp::deviceT::vector<Vec3>&);
    cupp::kernel k(static_cast<K>(forces_kernel), cusim::dim3{kBodies / kTile},
                   cusim::dim3{kTile});
    k.set_shared_bytes(kTile * sizeof(Body));

    d.sim().reset_clock();
    k(d, bodies, accel);
    d.synchronize();
    const auto& stats = k.last_stats();

    const double interactions = static_cast<double>(kBodies) * kBodies;
    std::printf("n-body, %u bodies, all-pairs with %u-wide shared-memory tiles\n", kBodies,
                kTile);
    std::printf("  simulated kernel time : %.3f ms\n", stats.device_seconds * 1e3);
    std::printf("  interactions/s        : %.2f billion\n",
                interactions / stats.device_seconds / 1e9);
    std::printf("  divergent warp-steps  : %llu (branch-free by construction)\n",
                static_cast<unsigned long long>(stats.divergent_events));
    std::printf("  occupancy             : %u blocks per multiprocessor\n",
                stats.resident_blocks_per_mp);

    const Vec3 a0 = accel[0];
    std::printf("  accel[0] = (%.4f, %.4f, %.4f)\n", a0.x, a0.y, a0.z);
    return 0;
}
