file(REMOVE_RECURSE
  "CMakeFiles/steer.dir/pursuit_plugin.cpp.o"
  "CMakeFiles/steer.dir/pursuit_plugin.cpp.o.d"
  "CMakeFiles/steer.dir/simulation.cpp.o"
  "CMakeFiles/steer.dir/simulation.cpp.o.d"
  "libsteer.a"
  "libsteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
