# Empty dependencies file for steer.
# This may be replaced when dependencies are built.
