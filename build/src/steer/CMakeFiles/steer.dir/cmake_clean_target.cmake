file(REMOVE_RECURSE
  "libsteer.a"
)
