file(REMOVE_RECURSE
  "CMakeFiles/cusim.dir/device.cpp.o"
  "CMakeFiles/cusim.dir/device.cpp.o.d"
  "CMakeFiles/cusim.dir/engine.cpp.o"
  "CMakeFiles/cusim.dir/engine.cpp.o.d"
  "CMakeFiles/cusim.dir/error.cpp.o"
  "CMakeFiles/cusim.dir/error.cpp.o.d"
  "CMakeFiles/cusim.dir/multiprocessor.cpp.o"
  "CMakeFiles/cusim.dir/multiprocessor.cpp.o.d"
  "CMakeFiles/cusim.dir/registry.cpp.o"
  "CMakeFiles/cusim.dir/registry.cpp.o.d"
  "CMakeFiles/cusim.dir/runtime_api.cpp.o"
  "CMakeFiles/cusim.dir/runtime_api.cpp.o.d"
  "libcusim.a"
  "libcusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
