
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cusim/device.cpp" "src/cusim/CMakeFiles/cusim.dir/device.cpp.o" "gcc" "src/cusim/CMakeFiles/cusim.dir/device.cpp.o.d"
  "/root/repo/src/cusim/engine.cpp" "src/cusim/CMakeFiles/cusim.dir/engine.cpp.o" "gcc" "src/cusim/CMakeFiles/cusim.dir/engine.cpp.o.d"
  "/root/repo/src/cusim/error.cpp" "src/cusim/CMakeFiles/cusim.dir/error.cpp.o" "gcc" "src/cusim/CMakeFiles/cusim.dir/error.cpp.o.d"
  "/root/repo/src/cusim/multiprocessor.cpp" "src/cusim/CMakeFiles/cusim.dir/multiprocessor.cpp.o" "gcc" "src/cusim/CMakeFiles/cusim.dir/multiprocessor.cpp.o.d"
  "/root/repo/src/cusim/registry.cpp" "src/cusim/CMakeFiles/cusim.dir/registry.cpp.o" "gcc" "src/cusim/CMakeFiles/cusim.dir/registry.cpp.o.d"
  "/root/repo/src/cusim/runtime_api.cpp" "src/cusim/CMakeFiles/cusim.dir/runtime_api.cpp.o" "gcc" "src/cusim/CMakeFiles/cusim.dir/runtime_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
