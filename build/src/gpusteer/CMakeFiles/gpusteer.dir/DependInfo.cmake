
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusteer/grid_kernels.cpp" "src/gpusteer/CMakeFiles/gpusteer.dir/grid_kernels.cpp.o" "gcc" "src/gpusteer/CMakeFiles/gpusteer.dir/grid_kernels.cpp.o.d"
  "/root/repo/src/gpusteer/kernels.cpp" "src/gpusteer/CMakeFiles/gpusteer.dir/kernels.cpp.o" "gcc" "src/gpusteer/CMakeFiles/gpusteer.dir/kernels.cpp.o.d"
  "/root/repo/src/gpusteer/plugin.cpp" "src/gpusteer/CMakeFiles/gpusteer.dir/plugin.cpp.o" "gcc" "src/gpusteer/CMakeFiles/gpusteer.dir/plugin.cpp.o.d"
  "/root/repo/src/gpusteer/pursuit_kernels.cpp" "src/gpusteer/CMakeFiles/gpusteer.dir/pursuit_kernels.cpp.o" "gcc" "src/gpusteer/CMakeFiles/gpusteer.dir/pursuit_kernels.cpp.o.d"
  "/root/repo/src/gpusteer/pursuit_plugin_gpu.cpp" "src/gpusteer/CMakeFiles/gpusteer.dir/pursuit_plugin_gpu.cpp.o" "gcc" "src/gpusteer/CMakeFiles/gpusteer.dir/pursuit_plugin_gpu.cpp.o.d"
  "/root/repo/src/gpusteer/registry.cpp" "src/gpusteer/CMakeFiles/gpusteer.dir/registry.cpp.o" "gcc" "src/gpusteer/CMakeFiles/gpusteer.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/steer/CMakeFiles/steer.dir/DependInfo.cmake"
  "/root/repo/build/src/cusim/CMakeFiles/cusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
