file(REMOVE_RECURSE
  "CMakeFiles/gpusteer.dir/grid_kernels.cpp.o"
  "CMakeFiles/gpusteer.dir/grid_kernels.cpp.o.d"
  "CMakeFiles/gpusteer.dir/kernels.cpp.o"
  "CMakeFiles/gpusteer.dir/kernels.cpp.o.d"
  "CMakeFiles/gpusteer.dir/plugin.cpp.o"
  "CMakeFiles/gpusteer.dir/plugin.cpp.o.d"
  "CMakeFiles/gpusteer.dir/pursuit_kernels.cpp.o"
  "CMakeFiles/gpusteer.dir/pursuit_kernels.cpp.o.d"
  "CMakeFiles/gpusteer.dir/pursuit_plugin_gpu.cpp.o"
  "CMakeFiles/gpusteer.dir/pursuit_plugin_gpu.cpp.o.d"
  "CMakeFiles/gpusteer.dir/registry.cpp.o"
  "CMakeFiles/gpusteer.dir/registry.cpp.o.d"
  "libgpusteer.a"
  "libgpusteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
