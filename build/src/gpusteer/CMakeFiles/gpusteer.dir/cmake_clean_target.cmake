file(REMOVE_RECURSE
  "libgpusteer.a"
)
