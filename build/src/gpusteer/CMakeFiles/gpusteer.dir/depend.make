# Empty dependencies file for gpusteer.
# This may be replaced when dependencies are built.
