# Empty compiler generated dependencies file for cusim_engine_stress_test.
# This may be replaced when dependencies are built.
