file(REMOVE_RECURSE
  "CMakeFiles/cusim_engine_stress_test.dir/cusim_engine_stress_test.cpp.o"
  "CMakeFiles/cusim_engine_stress_test.dir/cusim_engine_stress_test.cpp.o.d"
  "cusim_engine_stress_test"
  "cusim_engine_stress_test.pdb"
  "cusim_engine_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_engine_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
