file(REMOVE_RECURSE
  "CMakeFiles/gpusteer_perf_test.dir/gpusteer_perf_test.cpp.o"
  "CMakeFiles/gpusteer_perf_test.dir/gpusteer_perf_test.cpp.o.d"
  "gpusteer_perf_test"
  "gpusteer_perf_test.pdb"
  "gpusteer_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusteer_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
