# Empty dependencies file for gpusteer_perf_test.
# This may be replaced when dependencies are built.
