file(REMOVE_RECURSE
  "CMakeFiles/cupp_vector_fuzz_test.dir/cupp_vector_fuzz_test.cpp.o"
  "CMakeFiles/cupp_vector_fuzz_test.dir/cupp_vector_fuzz_test.cpp.o.d"
  "cupp_vector_fuzz_test"
  "cupp_vector_fuzz_test.pdb"
  "cupp_vector_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupp_vector_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
