# Empty dependencies file for cupp_vector_fuzz_test.
# This may be replaced when dependencies are built.
