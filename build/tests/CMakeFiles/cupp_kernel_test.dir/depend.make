# Empty dependencies file for cupp_kernel_test.
# This may be replaced when dependencies are built.
