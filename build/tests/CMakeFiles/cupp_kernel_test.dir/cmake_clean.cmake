file(REMOVE_RECURSE
  "CMakeFiles/cupp_kernel_test.dir/cupp_kernel_test.cpp.o"
  "CMakeFiles/cupp_kernel_test.dir/cupp_kernel_test.cpp.o.d"
  "cupp_kernel_test"
  "cupp_kernel_test.pdb"
  "cupp_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupp_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
