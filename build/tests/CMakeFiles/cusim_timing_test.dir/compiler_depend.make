# Empty compiler generated dependencies file for cusim_timing_test.
# This may be replaced when dependencies are built.
