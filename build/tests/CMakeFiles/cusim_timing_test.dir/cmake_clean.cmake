file(REMOVE_RECURSE
  "CMakeFiles/cusim_timing_test.dir/cusim_timing_test.cpp.o"
  "CMakeFiles/cusim_timing_test.dir/cusim_timing_test.cpp.o.d"
  "cusim_timing_test"
  "cusim_timing_test.pdb"
  "cusim_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
