# Empty dependencies file for steer_behaviors_test.
# This may be replaced when dependencies are built.
