file(REMOVE_RECURSE
  "CMakeFiles/steer_behaviors_test.dir/steer_behaviors_test.cpp.o"
  "CMakeFiles/steer_behaviors_test.dir/steer_behaviors_test.cpp.o.d"
  "steer_behaviors_test"
  "steer_behaviors_test.pdb"
  "steer_behaviors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer_behaviors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
