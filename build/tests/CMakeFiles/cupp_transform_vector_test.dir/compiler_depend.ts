# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cupp_transform_vector_test.
