file(REMOVE_RECURSE
  "CMakeFiles/cupp_transform_vector_test.dir/cupp_transform_vector_test.cpp.o"
  "CMakeFiles/cupp_transform_vector_test.dir/cupp_transform_vector_test.cpp.o.d"
  "cupp_transform_vector_test"
  "cupp_transform_vector_test.pdb"
  "cupp_transform_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupp_transform_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
