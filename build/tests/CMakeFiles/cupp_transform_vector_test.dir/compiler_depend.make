# Empty compiler generated dependencies file for cupp_transform_vector_test.
# This may be replaced when dependencies are built.
