file(REMOVE_RECURSE
  "CMakeFiles/cupp_memory_test.dir/cupp_memory_test.cpp.o"
  "CMakeFiles/cupp_memory_test.dir/cupp_memory_test.cpp.o.d"
  "cupp_memory_test"
  "cupp_memory_test.pdb"
  "cupp_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupp_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
