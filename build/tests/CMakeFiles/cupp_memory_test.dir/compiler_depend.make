# Empty compiler generated dependencies file for cupp_memory_test.
# This may be replaced when dependencies are built.
