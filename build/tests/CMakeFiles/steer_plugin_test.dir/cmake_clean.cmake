file(REMOVE_RECURSE
  "CMakeFiles/steer_plugin_test.dir/steer_plugin_test.cpp.o"
  "CMakeFiles/steer_plugin_test.dir/steer_plugin_test.cpp.o.d"
  "steer_plugin_test"
  "steer_plugin_test.pdb"
  "steer_plugin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer_plugin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
