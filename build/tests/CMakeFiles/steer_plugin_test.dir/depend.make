# Empty dependencies file for steer_plugin_test.
# This may be replaced when dependencies are built.
