file(REMOVE_RECURSE
  "CMakeFiles/cusim_stats_test.dir/cusim_stats_test.cpp.o"
  "CMakeFiles/cusim_stats_test.dir/cusim_stats_test.cpp.o.d"
  "cusim_stats_test"
  "cusim_stats_test.pdb"
  "cusim_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
