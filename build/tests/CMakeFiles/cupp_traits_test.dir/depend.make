# Empty dependencies file for cupp_traits_test.
# This may be replaced when dependencies are built.
