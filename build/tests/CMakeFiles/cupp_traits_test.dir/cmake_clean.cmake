file(REMOVE_RECURSE
  "CMakeFiles/cupp_traits_test.dir/cupp_traits_test.cpp.o"
  "CMakeFiles/cupp_traits_test.dir/cupp_traits_test.cpp.o.d"
  "cupp_traits_test"
  "cupp_traits_test.pdb"
  "cupp_traits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupp_traits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
