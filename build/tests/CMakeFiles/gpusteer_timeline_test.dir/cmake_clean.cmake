file(REMOVE_RECURSE
  "CMakeFiles/gpusteer_timeline_test.dir/gpusteer_timeline_test.cpp.o"
  "CMakeFiles/gpusteer_timeline_test.dir/gpusteer_timeline_test.cpp.o.d"
  "gpusteer_timeline_test"
  "gpusteer_timeline_test.pdb"
  "gpusteer_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusteer_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
