# Empty dependencies file for gpusteer_timeline_test.
# This may be replaced when dependencies are built.
