file(REMOVE_RECURSE
  "CMakeFiles/steer_grid_test.dir/steer_grid_test.cpp.o"
  "CMakeFiles/steer_grid_test.dir/steer_grid_test.cpp.o.d"
  "steer_grid_test"
  "steer_grid_test.pdb"
  "steer_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
