# Empty compiler generated dependencies file for steer_grid_test.
# This may be replaced when dependencies are built.
