file(REMOVE_RECURSE
  "CMakeFiles/cusim_pitched_test.dir/cusim_pitched_test.cpp.o"
  "CMakeFiles/cusim_pitched_test.dir/cusim_pitched_test.cpp.o.d"
  "cusim_pitched_test"
  "cusim_pitched_test.pdb"
  "cusim_pitched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_pitched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
