file(REMOVE_RECURSE
  "CMakeFiles/steer_pursuit_test.dir/steer_pursuit_test.cpp.o"
  "CMakeFiles/steer_pursuit_test.dir/steer_pursuit_test.cpp.o.d"
  "steer_pursuit_test"
  "steer_pursuit_test.pdb"
  "steer_pursuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer_pursuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
