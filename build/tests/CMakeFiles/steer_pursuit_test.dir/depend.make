# Empty dependencies file for steer_pursuit_test.
# This may be replaced when dependencies are built.
