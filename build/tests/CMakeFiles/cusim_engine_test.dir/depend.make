# Empty dependencies file for cusim_engine_test.
# This may be replaced when dependencies are built.
