file(REMOVE_RECURSE
  "CMakeFiles/cusim_runtime_api_test.dir/cusim_runtime_api_test.cpp.o"
  "CMakeFiles/cusim_runtime_api_test.dir/cusim_runtime_api_test.cpp.o.d"
  "cusim_runtime_api_test"
  "cusim_runtime_api_test.pdb"
  "cusim_runtime_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_runtime_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
