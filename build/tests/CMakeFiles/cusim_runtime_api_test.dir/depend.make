# Empty dependencies file for cusim_runtime_api_test.
# This may be replaced when dependencies are built.
