file(REMOVE_RECURSE
  "CMakeFiles/steer_core_test.dir/steer_core_test.cpp.o"
  "CMakeFiles/steer_core_test.dir/steer_core_test.cpp.o.d"
  "steer_core_test"
  "steer_core_test.pdb"
  "steer_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steer_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
