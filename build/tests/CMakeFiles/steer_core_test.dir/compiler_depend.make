# Empty compiler generated dependencies file for steer_core_test.
# This may be replaced when dependencies are built.
