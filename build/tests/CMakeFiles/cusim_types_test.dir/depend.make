# Empty dependencies file for cusim_types_test.
# This may be replaced when dependencies are built.
