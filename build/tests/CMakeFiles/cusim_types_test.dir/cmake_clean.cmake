file(REMOVE_RECURSE
  "CMakeFiles/cusim_types_test.dir/cusim_types_test.cpp.o"
  "CMakeFiles/cusim_types_test.dir/cusim_types_test.cpp.o.d"
  "cusim_types_test"
  "cusim_types_test.pdb"
  "cusim_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
