# Empty compiler generated dependencies file for cusim_divergence_test.
# This may be replaced when dependencies are built.
