file(REMOVE_RECURSE
  "CMakeFiles/cusim_divergence_test.dir/cusim_divergence_test.cpp.o"
  "CMakeFiles/cusim_divergence_test.dir/cusim_divergence_test.cpp.o.d"
  "cusim_divergence_test"
  "cusim_divergence_test.pdb"
  "cusim_divergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_divergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
