# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cusim_divergence_test.
