file(REMOVE_RECURSE
  "CMakeFiles/gpusteer_pursuit_test.dir/gpusteer_pursuit_test.cpp.o"
  "CMakeFiles/gpusteer_pursuit_test.dir/gpusteer_pursuit_test.cpp.o.d"
  "gpusteer_pursuit_test"
  "gpusteer_pursuit_test.pdb"
  "gpusteer_pursuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusteer_pursuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
