# Empty dependencies file for gpusteer_pursuit_test.
# This may be replaced when dependencies are built.
