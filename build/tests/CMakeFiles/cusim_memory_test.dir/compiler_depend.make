# Empty compiler generated dependencies file for cusim_memory_test.
# This may be replaced when dependencies are built.
