file(REMOVE_RECURSE
  "CMakeFiles/cusim_memory_test.dir/cusim_memory_test.cpp.o"
  "CMakeFiles/cusim_memory_test.dir/cusim_memory_test.cpp.o.d"
  "cusim_memory_test"
  "cusim_memory_test.pdb"
  "cusim_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
