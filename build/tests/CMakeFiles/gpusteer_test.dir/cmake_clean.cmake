file(REMOVE_RECURSE
  "CMakeFiles/gpusteer_test.dir/gpusteer_test.cpp.o"
  "CMakeFiles/gpusteer_test.dir/gpusteer_test.cpp.o.d"
  "gpusteer_test"
  "gpusteer_test.pdb"
  "gpusteer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusteer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
