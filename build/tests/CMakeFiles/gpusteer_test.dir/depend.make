# Empty dependencies file for gpusteer_test.
# This may be replaced when dependencies are built.
