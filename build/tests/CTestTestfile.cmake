# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cusim_types_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/cupp_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/cupp_vector_test[1]_include.cmake")
include("/root/repo/build/tests/cupp_memory_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_runtime_api_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_timing_test[1]_include.cmake")
include("/root/repo/build/tests/cupp_traits_test[1]_include.cmake")
include("/root/repo/build/tests/steer_core_test[1]_include.cmake")
include("/root/repo/build/tests/steer_grid_test[1]_include.cmake")
include("/root/repo/build/tests/gpusteer_test[1]_include.cmake")
include("/root/repo/build/tests/cupp_vector_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/steer_plugin_test[1]_include.cmake")
include("/root/repo/build/tests/gpusteer_perf_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/steer_behaviors_test[1]_include.cmake")
include("/root/repo/build/tests/steer_pursuit_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_pitched_test[1]_include.cmake")
include("/root/repo/build/tests/cupp_transform_vector_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_divergence_test[1]_include.cmake")
include("/root/repo/build/tests/gpusteer_timeline_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/gpusteer_pursuit_test[1]_include.cmake")
