file(REMOVE_RECURSE
  "CMakeFiles/type_transform.dir/type_transform.cpp.o"
  "CMakeFiles/type_transform.dir/type_transform.cpp.o.d"
  "type_transform"
  "type_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
