# Empty compiler generated dependencies file for type_transform.
# This may be replaced when dependencies are built.
