# Empty compiler generated dependencies file for saxpy.
# This may be replaced when dependencies are built.
