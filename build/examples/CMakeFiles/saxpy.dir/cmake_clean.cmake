file(REMOVE_RECURSE
  "CMakeFiles/saxpy.dir/saxpy.cpp.o"
  "CMakeFiles/saxpy.dir/saxpy.cpp.o.d"
  "saxpy"
  "saxpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saxpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
