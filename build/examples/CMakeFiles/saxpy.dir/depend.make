# Empty dependencies file for saxpy.
# This may be replaced when dependencies are built.
