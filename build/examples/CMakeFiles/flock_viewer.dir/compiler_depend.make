# Empty compiler generated dependencies file for flock_viewer.
# This may be replaced when dependencies are built.
