file(REMOVE_RECURSE
  "CMakeFiles/flock_viewer.dir/flock_viewer.cpp.o"
  "CMakeFiles/flock_viewer.dir/flock_viewer.cpp.o.d"
  "flock_viewer"
  "flock_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flock_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
