file(REMOVE_RECURSE
  "CMakeFiles/opensteer_demo.dir/opensteer_demo.cpp.o"
  "CMakeFiles/opensteer_demo.dir/opensteer_demo.cpp.o.d"
  "opensteer_demo"
  "opensteer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opensteer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
