# Empty compiler generated dependencies file for opensteer_demo.
# This may be replaced when dependencies are built.
