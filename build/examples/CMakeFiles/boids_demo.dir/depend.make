# Empty dependencies file for boids_demo.
# This may be replaced when dependencies are built.
