file(REMOVE_RECURSE
  "CMakeFiles/boids_demo.dir/boids_demo.cpp.o"
  "CMakeFiles/boids_demo.dir/boids_demo.cpp.o.d"
  "boids_demo"
  "boids_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boids_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
