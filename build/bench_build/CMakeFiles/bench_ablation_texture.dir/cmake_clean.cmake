file(REMOVE_RECURSE
  "../bench/bench_ablation_texture"
  "../bench/bench_ablation_texture.pdb"
  "CMakeFiles/bench_ablation_texture.dir/bench_ablation_texture.cpp.o"
  "CMakeFiles/bench_ablation_texture.dir/bench_ablation_texture.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
