# Empty compiler generated dependencies file for bench_ablation_texture.
# This may be replaced when dependencies are built.
