file(REMOVE_RECURSE
  "../bench/bench_fig6_2_dev_steps"
  "../bench/bench_fig6_2_dev_steps.pdb"
  "CMakeFiles/bench_fig6_2_dev_steps.dir/bench_fig6_2_dev_steps.cpp.o"
  "CMakeFiles/bench_fig6_2_dev_steps.dir/bench_fig6_2_dev_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_2_dev_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
