# Empty dependencies file for bench_fig6_2_dev_steps.
# This may be replaced when dependencies are built.
