file(REMOVE_RECURSE
  "../bench/bench_ablation_spatial_grid"
  "../bench/bench_ablation_spatial_grid.pdb"
  "CMakeFiles/bench_ablation_spatial_grid.dir/bench_ablation_spatial_grid.cpp.o"
  "CMakeFiles/bench_ablation_spatial_grid.dir/bench_ablation_spatial_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spatial_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
