# Empty dependencies file for bench_ablation_spatial_grid.
# This may be replaced when dependencies are built.
