# Empty compiler generated dependencies file for bench_fig1_1_flops.
# This may be replaced when dependencies are built.
