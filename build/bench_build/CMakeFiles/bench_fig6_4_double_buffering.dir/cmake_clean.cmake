file(REMOVE_RECURSE
  "../bench/bench_fig6_4_double_buffering"
  "../bench/bench_fig6_4_double_buffering.pdb"
  "CMakeFiles/bench_fig6_4_double_buffering.dir/bench_fig6_4_double_buffering.cpp.o"
  "CMakeFiles/bench_fig6_4_double_buffering.dir/bench_fig6_4_double_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_4_double_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
