# Empty dependencies file for bench_fig6_4_double_buffering.
# This may be replaced when dependencies are built.
