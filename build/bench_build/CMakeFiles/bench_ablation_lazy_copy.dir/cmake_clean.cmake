file(REMOVE_RECURSE
  "../bench/bench_ablation_lazy_copy"
  "../bench/bench_ablation_lazy_copy.pdb"
  "CMakeFiles/bench_ablation_lazy_copy.dir/bench_ablation_lazy_copy.cpp.o"
  "CMakeFiles/bench_ablation_lazy_copy.dir/bench_ablation_lazy_copy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lazy_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
