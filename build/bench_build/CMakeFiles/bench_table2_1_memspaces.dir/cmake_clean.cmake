file(REMOVE_RECURSE
  "../bench/bench_table2_1_memspaces"
  "../bench/bench_table2_1_memspaces.pdb"
  "CMakeFiles/bench_table2_1_memspaces.dir/bench_table2_1_memspaces.cpp.o"
  "CMakeFiles/bench_table2_1_memspaces.dir/bench_table2_1_memspaces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_1_memspaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
