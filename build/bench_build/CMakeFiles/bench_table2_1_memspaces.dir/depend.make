# Empty dependencies file for bench_table2_1_memspaces.
# This may be replaced when dependencies are built.
