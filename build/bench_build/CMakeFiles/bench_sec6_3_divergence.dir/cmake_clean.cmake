file(REMOVE_RECURSE
  "../bench/bench_sec6_3_divergence"
  "../bench/bench_sec6_3_divergence.pdb"
  "CMakeFiles/bench_sec6_3_divergence.dir/bench_sec6_3_divergence.cpp.o"
  "CMakeFiles/bench_sec6_3_divergence.dir/bench_sec6_3_divergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_3_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
