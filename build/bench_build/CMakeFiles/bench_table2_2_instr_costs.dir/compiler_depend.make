# Empty compiler generated dependencies file for bench_table2_2_instr_costs.
# This may be replaced when dependencies are built.
