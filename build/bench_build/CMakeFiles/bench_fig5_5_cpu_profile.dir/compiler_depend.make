# Empty compiler generated dependencies file for bench_fig5_5_cpu_profile.
# This may be replaced when dependencies are built.
