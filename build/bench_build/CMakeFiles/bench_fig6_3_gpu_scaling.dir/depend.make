# Empty dependencies file for bench_fig6_3_gpu_scaling.
# This may be replaced when dependencies are built.
