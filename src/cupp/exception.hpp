// CuPP exception hierarchy.
//
// Thesis §4.2: "exceptions are thrown when an error occurs instead of
// returning an error code" — the first difference between CuPP's and CUDA's
// memory management. Every CuPP exception preserves the originating
// cusim::ErrorCode (code()), and the codes are classified into
//
//   * transient — spurious allocation/transfer/launch failures and
//     not-ready conditions; retrying the same call can succeed
//     (cupp::with_retry in retry.hpp does exactly that), and
//   * sticky — DeviceLost: the device rejects everything until
//     device::reset(); retrying without a reset is pointless.
//
// Everything else is a plain programming error and neither retries nor
// resets will help.
#pragma once

#include <stdexcept>
#include <string>

#include "cusim/error.hpp"

namespace cupp {

/// True for error codes where retrying the failed call can succeed.
[[nodiscard]] constexpr bool is_transient(cusim::ErrorCode code) noexcept {
    switch (code) {
        case cusim::ErrorCode::MemoryAllocation:
        case cusim::ErrorCode::LaunchFailure:
        case cusim::ErrorCode::TransferFailure:
        case cusim::ErrorCode::NotReady:
            return true;
        default:
            return false;
    }
}

/// True for error codes that poison the device until device::reset().
[[nodiscard]] constexpr bool is_sticky(cusim::ErrorCode code) noexcept {
    return code == cusim::ErrorCode::DeviceLost;
}

/// Root of all CuPP errors. Carries the originating simulator error code
/// (cusim::ErrorCode::Success for errors raised by CuPP itself).
class exception : public std::runtime_error {
public:
    explicit exception(const std::string& what,
                       cusim::ErrorCode code = cusim::ErrorCode::Success)
        : std::runtime_error(what), code_(code) {}

    /// The low-level error code this exception was translated from.
    [[nodiscard]] cusim::ErrorCode code() const noexcept { return code_; }
    /// Whether a bounded retry of the failed operation makes sense.
    [[nodiscard]] bool transient() const noexcept { return is_transient(code_); }

private:
    cusim::ErrorCode code_;
};

/// Device-memory allocation / transfer / addressing failures.
class memory_error : public exception {
public:
    using exception::exception;
};

/// Kernel launch and execution failures.
class kernel_error : public exception {
public:
    using exception::exception;
};

/// Misuse of the framework itself (bad geometry, wrong device, ...).
class usage_error : public exception {
public:
    using exception::exception;
};

/// The device is gone (sticky): every operation fails until
/// device::reset().
class device_lost_error : public exception {
public:
    using exception::exception;
};

/// A strict-mode cusim::memcheck finding surfaced as an exception.
class memcheck_error : public exception {
public:
    using exception::exception;
};

/// An asynchronous operation has not completed yet (transient).
class not_ready_error : public exception {
public:
    using exception::exception;
};

/// cupp::serve admission control shed this request (queue bound or tenant
/// quota). Non-transient by design: blindly re-submitting would amplify
/// the very overload that caused the rejection — back off at the client.
class admission_rejected_error : public exception {
public:
    explicit admission_rejected_error(const std::string& what)
        : exception(what, cusim::ErrorCode::AdmissionRejected) {}
    admission_rejected_error(const std::string& what, cusim::ErrorCode code)
        : exception(what, code) {}
};

/// A request's time budget expired (cupp::serve deadlines, or a
/// retry_policy whose total-backoff cap ran out). Non-transient: the
/// operation may well succeed if re-issued, but *this* request is over.
class deadline_exceeded_error : public exception {
public:
    explicit deadline_exceeded_error(const std::string& what)
        : exception(what, cusim::ErrorCode::DeadlineExceeded) {}
    deadline_exceeded_error(const std::string& what, cusim::ErrorCode code)
        : exception(what, code) {}
};

/// Maps a low-level error code onto the CuPP hierarchy and throws,
/// preserving the code. The single mapping every layer routes through —
/// kernel launches included — so callers always catch the right type.
[[noreturn]] inline void rethrow(cusim::ErrorCode code, const std::string& what) {
    switch (code) {
        case cusim::ErrorCode::MemoryAllocation:
        case cusim::ErrorCode::InvalidDevicePointer:
        case cusim::ErrorCode::DeviceInUse:
        case cusim::ErrorCode::TransferFailure:
            throw memory_error(what, code);
        case cusim::ErrorCode::LaunchFailure:
        case cusim::ErrorCode::InvalidConfiguration:
            throw kernel_error(what, code);
        case cusim::ErrorCode::DeviceLost:
            throw device_lost_error(what, code);
        case cusim::ErrorCode::MemcheckViolation:
            throw memcheck_error(what, code);
        case cusim::ErrorCode::NotReady:
            throw not_ready_error(what, code);
        case cusim::ErrorCode::AdmissionRejected:
            throw admission_rejected_error(what, code);
        case cusim::ErrorCode::DeadlineExceeded:
            throw deadline_exceeded_error(what, code);
        default:
            throw usage_error(what, code);
    }
}

/// Maps a low-level simulator error onto the CuPP hierarchy and throws it.
[[noreturn]] inline void rethrow(const cusim::Error& e) { rethrow(e.code(), e.what()); }

/// Runs `f`, translating simulator errors into CuPP exceptions.
template <typename F>
decltype(auto) translated(F&& f) {
    try {
        return std::forward<F>(f)();
    } catch (const cusim::Error& e) {
        rethrow(e);
    }
}

}  // namespace cupp
