// CuPP exception hierarchy.
//
// Thesis §4.2: "exceptions are thrown when an error occurs instead of
// returning an error code" — the first difference between CuPP's and CUDA's
// memory management.
#pragma once

#include <stdexcept>
#include <string>

#include "cusim/error.hpp"

namespace cupp {

/// Root of all CuPP errors.
class exception : public std::runtime_error {
public:
    explicit exception(const std::string& what) : std::runtime_error(what) {}
};

/// Device-memory allocation / transfer / addressing failures.
class memory_error : public exception {
public:
    using exception::exception;
};

/// Kernel launch and execution failures.
class kernel_error : public exception {
public:
    using exception::exception;
};

/// Misuse of the framework itself (bad geometry, wrong device, ...).
class usage_error : public exception {
public:
    using exception::exception;
};

/// Maps a low-level simulator error onto the CuPP hierarchy and throws it.
[[noreturn]] inline void rethrow(const cusim::Error& e) {
    switch (e.code()) {
        case cusim::ErrorCode::MemoryAllocation:
        case cusim::ErrorCode::InvalidDevicePointer:
        case cusim::ErrorCode::DeviceInUse:
            throw memory_error(e.what());
        case cusim::ErrorCode::LaunchFailure:
        case cusim::ErrorCode::InvalidConfiguration:
            throw kernel_error(e.what());
        default:
            throw usage_error(e.what());
    }
}

/// Runs `f`, translating simulator errors into CuPP exceptions.
template <typename F>
decltype(auto) translated(F&& f) {
    try {
        return std::forward<F>(f)();
    } catch (const cusim::Error& e) {
        rethrow(e);
    }
}

}  // namespace cupp
