// cupp::trace — the profiler the thesis wished it had (§6.3.1: "no
// profiling tool is available offering this information").
//
// A process-wide, thread-safe event tracer plus a metrics registry:
//
//  * Spans and instants are recorded with explicit timestamps (the
//    simulator's modelled clocks, or the wall clock for host-side
//    harness work) and exported as Chrome trace-event JSON — load the
//    file in Perfetto or chrome://tracing. Each named track becomes its
//    own timeline lane, so the modelled device clock and the modelled
//    host clock render as separate tracks and asynchronous kernel
//    launches (§2.2) are visible as overlapping spans.
//  * The MetricsRegistry aggregates named counters, gauges and
//    histograms (with percentile summaries) that tests, benches and
//    describe()-style reports can query programmatically.
//
// Tracing is off by default and env-gated: setting CUPP_TRACE=<file.json>
// enables recording at startup and writes the file at process exit (or on
// an explicit flush()). The disabled fast path is a single relaxed atomic
// load, so instrumented hot paths cost nothing measurable when off.
//
// This header is deliberately free of cupp/cusim includes: the cusim
// substrate itself links against it, so it must sit below every other
// layer of the framework.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cupp::trace {

// --- formatting -----------------------------------------------------------

/// printf-style formatting into a std::string. Unlike the fixed-buffer
/// snprintf pattern this can never silently truncate: the buffer is sized
/// by a measuring pass first.
[[nodiscard]] std::string format(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Escapes a string for embedding in a JSON document (quotes included).
[[nodiscard]] std::string json_quote(std::string_view s);

// --- events ---------------------------------------------------------------

/// One key/value argument attached to an event. The value is stored as a
/// pre-rendered JSON literal so heterogeneous argument lists need no
/// variant machinery.
struct arg {
    std::string key;
    std::string json;  ///< a complete JSON value (number, string, bool)

    arg(std::string k, const char* v) : key(std::move(k)), json(json_quote(v ? v : "")) {}
    arg(std::string k, const std::string& v) : key(std::move(k)), json(json_quote(v)) {}
    arg(std::string k, std::string_view v) : key(std::move(k)), json(json_quote(v)) {}
    arg(std::string k, bool v) : key(std::move(k)), json(v ? "true" : "false") {}
    arg(std::string k, double v);
    template <typename I>
        requires(std::is_integral_v<I> && !std::is_same_v<I, bool>)
    arg(std::string k, I v) : key(std::move(k)), json(std::to_string(v)) {}
};

/// Chrome trace-event phases this tracer emits.
enum class Phase : char {
    Complete = 'X',  ///< a span: ts + dur
    Instant = 'i',   ///< a point in time
    Counter = 'C',   ///< a sampled counter value
};

/// One recorded event (also the programmatic query format for tests).
struct Event {
    Phase phase = Phase::Instant;
    std::string track;  ///< timeline lane; becomes a named Chrome tid
    std::string name;
    double ts_us = 0.0;
    double dur_us = 0.0;  ///< Complete events only
    double value = 0.0;   ///< Counter events only
    std::vector<arg> args;

    /// Containment test for span-nesting checks (same-track Complete events).
    [[nodiscard]] bool encloses(const Event& inner) const {
        return phase == Phase::Complete && inner.phase == Phase::Complete &&
               track == inner.track && ts_us <= inner.ts_us &&
               inner.ts_us + inner.dur_us <= ts_us + dur_us + 1e-9;
    }
};

// --- recording ------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while recording. The only cost instrumentation pays when tracing
/// is off — keep instrumentation sites behind this check.
[[nodiscard]] inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Starts in-memory recording (no output file).
void enable();
/// Starts recording and arranges for a Chrome trace-event JSON file to be
/// written to `path` at process exit (and on flush()).
void enable(std::string path);
/// Stops recording; already-recorded events are kept.
void disable();
/// Drops all recorded events (the metrics registry is separate — see
/// MetricsRegistry::reset()).
void clear();

void emit_complete(std::string_view track, std::string_view name, double ts_us,
                   double dur_us, std::vector<arg> args = {});
void emit_instant(std::string_view track, std::string_view name, double ts_us,
                  std::vector<arg> args = {});
void emit_counter(std::string_view track, std::string_view name, double ts_us,
                  double value);

/// Snapshot of everything recorded so far (tests and exporters).
[[nodiscard]] std::vector<Event> events();

// --- per-thread capture ----------------------------------------------------
//
// The cusim block engine runs independent thread blocks on a worker pool,
// but the exported trace must not depend on which worker finished first.
// A worker redirects its emit_* calls into a private buffer for the
// duration of one block, and the launch reducer replays the buffers in
// launch order — so the event stream is bit-identical to a serial run.

/// Redirects emit_complete/emit_instant/emit_counter on the *calling
/// thread* into `sink` instead of the global session. Nestable: returns
/// the previous sink (restore it via the same call).
std::vector<Event>* begin_thread_capture(std::vector<Event>* sink);
/// Stops capturing on the calling thread, restoring `previous` (from
/// begin_thread_capture). Pass nullptr to emit globally again.
void end_thread_capture(std::vector<Event>* previous);
/// Appends captured events to the global session in one locked batch,
/// preserving their order. No-op when recording is disabled.
void replay(std::vector<Event> events);

/// RAII wrapper for begin/end_thread_capture.
class ScopedCapture {
public:
    explicit ScopedCapture(std::vector<Event>* sink)
        : previous_(begin_thread_capture(sink)) {}
    ~ScopedCapture() { end_thread_capture(previous_); }
    ScopedCapture(const ScopedCapture&) = delete;
    ScopedCapture& operator=(const ScopedCapture&) = delete;

private:
    std::vector<Event>* previous_;
};

/// The configured output file ("" when recording in memory only).
[[nodiscard]] std::string output_path();

/// Renders the full Chrome trace-event JSON document: all events, named
/// track metadata, final counter samples from the metrics registry, and a
/// `metrics` summary object (chrome://tracing ignores unknown keys).
[[nodiscard]] std::string export_json();

/// Writes export_json() to `path` (or the configured output path when
/// omitted). Returns false when no path is known or the write failed.
bool flush(const std::string& path = {});

/// Microseconds on a process-wide steady clock (first call is 0). For
/// host-side spans that have no simulated clock, e.g. bench harness work.
[[nodiscard]] double wall_clock_us();

// --- metrics --------------------------------------------------------------

/// Percentile summary of a histogram.
struct HistogramSummary {
    std::uint64_t count = 0;
    double min = 0.0, max = 0.0, mean = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

/// Process-wide registry of named counters, gauges and histograms.
/// Counters are monotonically increasing (lazy-copy hits, launches,
/// bytes moved); gauges hold the latest sample of a level (rates);
/// histograms keep raw samples and summarise with percentiles.
class MetricsRegistry {
public:
    static MetricsRegistry& instance();

    // Counters. counter_ref() hands out a stable atomic slot so hot call
    // sites can cache the lookup (see counter_handle below).
    std::atomic<std::uint64_t>& counter_ref(std::string_view name);
    void add(std::string_view name, std::uint64_t delta = 1);
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;

    // Gauges.
    void set_gauge(std::string_view name, double value);
    [[nodiscard]] std::optional<double> gauge(std::string_view name) const;

    // Histograms.
    void record(std::string_view name, double sample);
    [[nodiscard]] std::optional<HistogramSummary> histogram(std::string_view name) const;

    [[nodiscard]] std::vector<std::string> counter_names() const;
    [[nodiscard]] std::vector<std::string> gauge_names() const;
    [[nodiscard]] std::vector<std::string> histogram_names() const;

    /// Plain-text report, one metric per line (harness logs).
    [[nodiscard]] std::string summary_text() const;
    /// The same data as a JSON object (embedded in export_json()).
    [[nodiscard]] std::string summary_json() const;

    /// Zeroes everything (between test cases / bench configurations).
    void reset();

private:
    MetricsRegistry() = default;
};

[[nodiscard]] inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

/// Call-site-cached counter: resolves the registry slot once, then each
/// add() is a single relaxed atomic increment.
///
///     static const trace::counter_handle hits("cupp.vector.lazy.upload_avoided");
///     if (trace::enabled()) hits.add();
class counter_handle {
public:
    explicit counter_handle(std::string_view name)
        : slot_(&MetricsRegistry::instance().counter_ref(name)) {}
    void add(std::uint64_t delta = 1) const {
        slot_->fetch_add(delta, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t>* slot_;
};

}  // namespace cupp::trace
