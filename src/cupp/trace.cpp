#include "cupp/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>

namespace cupp::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

// --- formatting -----------------------------------------------------------

std::string format(const char* fmt, ...) {
    std::va_list measure_args;
    va_start(measure_args, fmt);
    std::va_list render_args;
    va_copy(render_args, measure_args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, measure_args);
    va_end(measure_args);
    if (needed < 0) {
        va_end(render_args);
        return {};
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, render_args);
    va_end(render_args);
    return out;
}

std::string json_quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += format("\\u%04x", c);
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

/// Renders a double as a JSON number (JSON has no inf/nan).
std::string json_number(double v) {
    if (!std::isfinite(v)) return "0";
    // Shortest round-trippable-enough form without trailing-zero noise.
    std::string s = format("%.9g", v);
    return s;
}

}  // namespace

arg::arg(std::string k, double v) : key(std::move(k)), json(json_number(v)) {}

// --- the recording session ------------------------------------------------

namespace {

/// Hard cap on recorded events — a runaway loop must not eat the host's
/// memory. Overflow is counted and reported in the export.
constexpr std::size_t kMaxEvents = 1u << 22;

struct Session {
    std::mutex mu;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
    std::string path;
    bool atexit_registered = false;
};

Session& session() {
    // Intentionally leaked: the atexit flush (and instrumented destructors
    // of other statics) may run after this TU's destructors would have.
    static Session* s = new Session;
    return *s;
}

void flush_at_exit() {
    const std::string path = output_path();
    if (path.empty()) return;
    if (!flush()) {
        std::fprintf(stderr, "cupp::trace: could not write trace file %s\n", path.c_str());
    }
}

/// Per-thread capture sink (begin_thread_capture). When set, events from
/// this thread bypass the session and land in the sink; the owner replays
/// them later in a deterministic order.
thread_local std::vector<Event>* t_capture = nullptr;

void push(Event&& e) {
    if (t_capture != nullptr) {
        t_capture->push_back(std::move(e));
        return;
    }
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.events.size() >= kMaxEvents) {
        ++s.dropped;
        return;
    }
    s.events.push_back(std::move(e));
}

/// Reads CUPP_TRACE once at static-initialisation time. The object lives
/// in this translation unit, which every instrumented layer references, so
/// linking any cupp/cusim binary arms the env gate automatically.
struct EnvGate {
    EnvGate() {
        if (const char* p = std::getenv("CUPP_TRACE"); p != nullptr && p[0] != '\0') {
            enable(std::string(p));
        }
    }
};
const EnvGate g_env_gate;

}  // namespace

void enable() {
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void enable(std::string path) {
    Session& s = session();
    {
        std::lock_guard<std::mutex> lock(s.mu);
        s.path = std::move(path);
        if (!s.atexit_registered) {
            s.atexit_registered = true;
            std::atexit(flush_at_exit);
        }
    }
    enable();
}

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void clear() {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    s.events.clear();
    s.dropped = 0;
}

void emit_complete(std::string_view track, std::string_view name, double ts_us,
                   double dur_us, std::vector<arg> args) {
    if (!enabled()) return;
    Event e;
    e.phase = Phase::Complete;
    e.track = std::string(track);
    e.name = std::string(name);
    e.ts_us = ts_us;
    e.dur_us = std::max(0.0, dur_us);
    e.args = std::move(args);
    push(std::move(e));
}

void emit_instant(std::string_view track, std::string_view name, double ts_us,
                  std::vector<arg> args) {
    if (!enabled()) return;
    Event e;
    e.phase = Phase::Instant;
    e.track = std::string(track);
    e.name = std::string(name);
    e.ts_us = ts_us;
    e.args = std::move(args);
    push(std::move(e));
}

void emit_counter(std::string_view track, std::string_view name, double ts_us,
                  double value) {
    if (!enabled()) return;
    Event e;
    e.phase = Phase::Counter;
    e.track = std::string(track);
    e.name = std::string(name);
    e.ts_us = ts_us;
    e.value = value;
    push(std::move(e));
}

std::vector<Event> events() {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.events;
}

std::vector<Event>* begin_thread_capture(std::vector<Event>* sink) {
    std::vector<Event>* previous = t_capture;
    t_capture = sink;
    return previous;
}

void end_thread_capture(std::vector<Event>* previous) { t_capture = previous; }

void replay(std::vector<Event> events) {
    if (!enabled() || events.empty()) return;
    // A replaying thread may itself be captured (nested launches); honour
    // the redirect so the events keep flowing toward the outer reducer.
    if (t_capture != nullptr) {
        for (Event& e : events) t_capture->push_back(std::move(e));
        return;
    }
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    for (Event& e : events) {
        if (s.events.size() >= kMaxEvents) {
            ++s.dropped;
            continue;
        }
        s.events.push_back(std::move(e));
    }
}

std::string output_path() {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.path;
}

double wall_clock_us() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double, std::micro>(clock::now() - epoch).count();
}

// --- export ---------------------------------------------------------------

namespace {

void append_event_json(std::string& out, const Event& e, int tid) {
    out += format("{\"name\":%s,\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%s",
                  json_quote(e.name).c_str(), static_cast<char>(e.phase), tid,
                  json_number(e.ts_us).c_str());
    if (e.phase == Phase::Complete) {
        out += ",\"dur\":" + json_number(e.dur_us);
    }
    if (e.phase == Phase::Counter) {
        out += ",\"args\":{\"value\":" + json_number(e.value) + "}";
    } else if (e.phase == Phase::Instant) {
        out += ",\"s\":\"t\"";
    }
    if (!e.args.empty()) {
        out += ",\"args\":{";
        bool first = true;
        for (const arg& a : e.args) {
            if (!first) out += ",";
            first = false;
            out += json_quote(a.key) + ":" + a.json;
        }
        out += "}";
    }
    out += "}";
}

}  // namespace

std::string export_json() {
    const std::vector<Event> evs = events();
    std::uint64_t dropped = 0;
    {
        Session& s = session();
        std::lock_guard<std::mutex> lock(s.mu);
        dropped = s.dropped;
    }

    // Assign tids per track in first-seen order; device tracks get their
    // own lanes next to host tracks in the viewer.
    std::map<std::string, int> tids;
    double max_ts = 0.0;
    for (const Event& e : evs) {
        tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
        max_ts = std::max(max_ts, e.ts_us + e.dur_us);
    }

    std::string out;
    out.reserve(evs.size() * 96 + 4096);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const auto& [track, tid] : tids) {
        if (!first) out += ",";
        first = false;
        out += format(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
            "\"args\":{\"name\":%s}}",
            tid, json_quote(track).c_str());
    }
    for (const Event& e : evs) {
        if (!first) out += ",";
        first = false;
        append_event_json(out, e, tids[e.track]);
    }
    // Final counter samples so the file carries the aggregate counters
    // (lazy-copy hits/misses, byte totals, launches) even when nothing
    // emitted periodic Counter events.
    int metrics_tid = static_cast<int>(tids.size()) + 1;
    bool wrote_metrics_thread = false;
    for (const std::string& name : metrics().counter_names()) {
        if (!wrote_metrics_thread) {
            wrote_metrics_thread = true;
            if (!first) out += ",";
            first = false;
            out += format(
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                "\"args\":{\"name\":\"metrics\"}}",
                metrics_tid);
        }
        Event e;
        e.phase = Phase::Counter;
        e.name = name;
        e.ts_us = max_ts;
        e.value = static_cast<double>(metrics().counter(name));
        if (!first) out += ",";
        first = false;
        append_event_json(out, e, metrics_tid);
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":" +
           std::to_string(dropped) + "},\"metrics\":" + metrics().summary_json() + "}";
    return out;
}

bool flush(const std::string& path) {
    const std::string target = path.empty() ? output_path() : path;
    if (target.empty()) return false;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << export_json();
    return static_cast<bool>(out);
}

// --- metrics --------------------------------------------------------------

namespace {

struct MetricsState {
    mutable std::mutex mu;
    // Deques keep element addresses stable so counter_ref() can hand out
    // long-lived pointers.
    std::deque<std::pair<std::string, std::atomic<std::uint64_t>>> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::vector<double>> histograms;
};

MetricsState& state() {
    // Intentionally leaked, like session(): export_json() reads the
    // registry from an atexit handler, which runs before function-local
    // statics constructed after the handler's registration are destroyed.
    static MetricsState* s = new MetricsState;
    return *s;
}

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
    static MetricsRegistry r;
    return r;
}

std::atomic<std::uint64_t>& MetricsRegistry::counter_ref(std::string_view name) {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [n, slot] : s.counters) {
        if (n == name) return slot;
    }
    s.counters.emplace_back(std::piecewise_construct,
                            std::forward_as_tuple(std::string(name)),
                            std::forward_as_tuple(0));
    return s.counters.back().second;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
    counter_ref(name).fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [n, slot] : s.counters) {
        if (n == name) return slot.load(std::memory_order_relaxed);
    }
    return 0;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.gauges[std::string(name)] = value;
}

std::optional<double> MetricsRegistry::gauge(std::string_view name) const {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.gauges.find(std::string(name));
    if (it == s.gauges.end()) return std::nullopt;
    return it->second;
}

void MetricsRegistry::record(std::string_view name, double sample) {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto& samples = s.histograms[std::string(name)];
    // Bound the raw sample store; beyond that the early shape is kept and
    // further samples only update through a coarse reservoir-free drop.
    if (samples.size() < (1u << 20)) samples.push_back(sample);
}

std::optional<HistogramSummary> MetricsRegistry::histogram(std::string_view name) const {
    MetricsState& s = state();
    std::vector<double> samples;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        const auto it = s.histograms.find(std::string(name));
        if (it == s.histograms.end()) return std::nullopt;
        samples = it->second;
    }
    HistogramSummary h;
    h.count = samples.size();
    if (samples.empty()) return h;
    std::sort(samples.begin(), samples.end());
    h.min = samples.front();
    h.max = samples.back();
    double sum = 0.0;
    for (const double v : samples) sum += v;
    h.mean = sum / static_cast<double>(samples.size());
    h.p50 = percentile(samples, 0.50);
    h.p90 = percentile(samples, 0.90);
    h.p99 = percentile(samples, 0.99);
    return h;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<std::string> names;
    names.reserve(s.counters.size());
    for (const auto& [n, slot] : s.counters) names.push_back(n);
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<std::string> names;
    names.reserve(s.gauges.size());
    for (const auto& [n, v] : s.gauges) names.push_back(n);
    return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<std::string> names;
    names.reserve(s.histograms.size());
    for (const auto& [n, v] : s.histograms) names.push_back(n);
    return names;
}

std::string MetricsRegistry::summary_text() const {
    std::string out;
    for (const std::string& n : counter_names()) {
        out += format("counter   %-44s %llu\n", n.c_str(),
                      static_cast<unsigned long long>(counter(n)));
    }
    for (const std::string& n : gauge_names()) {
        out += format("gauge     %-44s %.6g\n", n.c_str(), *gauge(n));
    }
    for (const std::string& n : histogram_names()) {
        const HistogramSummary h = *histogram(n);
        out += format(
            "histogram %-44s n=%llu min=%.6g mean=%.6g p50=%.6g p90=%.6g "
            "p99=%.6g max=%.6g\n",
            n.c_str(), static_cast<unsigned long long>(h.count), h.min, h.mean, h.p50,
            h.p90, h.p99, h.max);
    }
    return out;
}

std::string MetricsRegistry::summary_json() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const std::string& n : counter_names()) {
        if (!first) out += ",";
        first = false;
        out += json_quote(n) + ":" + std::to_string(counter(n));
    }
    out += "},\"gauges\":{";
    first = true;
    for (const std::string& n : gauge_names()) {
        if (!first) out += ",";
        first = false;
        out += json_quote(n) + ":" + json_number(*gauge(n));
    }
    out += "},\"histograms\":{";
    first = true;
    for (const std::string& n : histogram_names()) {
        const HistogramSummary h = *histogram(n);
        if (!first) out += ",";
        first = false;
        out += json_quote(n) +
               format(":{\"count\":%llu,\"min\":%s,\"max\":%s,\"mean\":%s,"
                      "\"p50\":%s,\"p90\":%s,\"p99\":%s}",
                      static_cast<unsigned long long>(h.count),
                      json_number(h.min).c_str(), json_number(h.max).c_str(),
                      json_number(h.mean).c_str(), json_number(h.p50).c_str(),
                      json_number(h.p90).c_str(), json_number(h.p99).c_str());
    }
    out += "}}";
    return out;
}

void MetricsRegistry::reset() {
    MetricsState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    // Counter slots must stay alive (counter_handle caches pointers), so
    // they are zeroed, not erased.
    for (auto& [n, slot] : s.counters) slot.store(0, std::memory_order_relaxed);
    s.gauges.clear();
    s.histograms.clear();
}

}  // namespace cupp::trace
