// cupp::memory1d<T> — an owned linear block of global memory (thesis §4.2).
//
// "Objects of this class represent a linear block of global memory. The
// memory is allocated when the object is created and freed when the object
// is destroyed. When the object is copied, the copy allocates new memory
// and copies the data from the original memory to the newly allocated one."
//
// Transfers come in the two flavours of §4.2: pointer-based (for data that
// already is a linear block) and iterator-based (any container is
// linearised in traversal order).
#pragma once

#include <cstdint>
#include <iterator>
#include <source_location>
#include <type_traits>
#include <vector>

#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cupp/retry.hpp"
#include "cupp/stream.hpp"
#include "cupp/trace.hpp"
#include "cusim/device_ptr.hpp"

namespace cupp {

template <typename T>
class memory1d {
    static_assert(std::is_trivially_copyable_v<T>,
                  "global memory holds byte-wise copyable values only");

public:
    /// Allocates `count` elements (uninitialised, like cudaMalloc). The
    /// caller's source location labels the allocation in memcheck reports.
    memory1d(const device& d, std::uint64_t count,
             std::source_location loc = std::source_location::current())
        : dev_(&d), count_(count) {
        addr_ = d.malloc(count * sizeof(T), loc, "cupp::memory1d");
    }

    /// Allocates and fills from a linear host block (pointer flavour).
    memory1d(const device& d, const T* first, const T* last,
             std::source_location loc = std::source_location::current())
        : memory1d(d, static_cast<std::uint64_t>(last - first), loc) {
        copy_from_host(first);
    }

    /// Allocates and fills from any input-iterator range (iterator flavour):
    /// the range is linearised in traversal order (§4.2).
    template <std::input_iterator It>
        requires(!std::is_pointer_v<It>)
    memory1d(const device& d, It first, It last,
             std::source_location loc = std::source_location::current())
        : memory1d(d, staging(first, last), loc) {}

    /// Deep copy: new device allocation, device-to-device data copy.
    memory1d(const memory1d& other) : memory1d(*other.dev_, other.count_) {
        with_retry(default_retry_policy(), &dev_->sim(), "memory1d copy", [&] {
            translated([&] {
                dev_->sim().copy_device_to_device(addr_, other.addr_, count_ * sizeof(T));
            });
        });
    }

    memory1d& operator=(const memory1d& other) {
        if (this != &other) {
            memory1d copy(other);
            swap(copy);
        }
        return *this;
    }

    memory1d(memory1d&& other) noexcept
        : dev_(other.dev_), addr_(other.addr_), count_(other.count_) {
        other.addr_ = cusim::kNullAddr;
        other.count_ = 0;
    }

    memory1d& operator=(memory1d&& other) noexcept {
        if (this != &other) {
            release();
            dev_ = other.dev_;
            addr_ = other.addr_;
            count_ = other.count_;
            other.addr_ = cusim::kNullAddr;
            other.count_ = 0;
        }
        return *this;
    }

    ~memory1d() { release(); }

    void swap(memory1d& other) noexcept {
        std::swap(dev_, other.dev_);
        std::swap(addr_, other.addr_);
        std::swap(count_, other.count_);
    }

    // --- transfers ---
    /// Host -> device from a linear block of count() elements.
    void copy_from_host(const T* src) {
        const bool tracing = trace::enabled();
        const double t0 = tracing ? dev_->sim().host_time() : 0.0;
        // A transient transfer failure rejects the copy before any byte
        // moves — both buffers are untouched, so the retry is safe.
        with_retry(default_retry_policy(), &dev_->sim(), "memory1d upload", [&] {
            translated([&] { dev_->sim().copy_to_device(addr_, src, count_ * sizeof(T)); });
        });
        if (tracing) trace_transfer("cupp::memory1d upload", t0);
    }

    /// Device -> host into a linear block of count() elements.
    void copy_to_host(T* dst) const {
        const bool tracing = trace::enabled();
        const double t0 = tracing ? dev_->sim().host_time() : 0.0;
        with_retry(default_retry_policy(), &dev_->sim(), "memory1d download", [&] {
            translated([&] { dev_->sim().copy_to_host(dst, addr_, count_ * sizeof(T)); });
        });
        if (tracing) trace_transfer("cupp::memory1d download", t0);
    }

    /// Asynchronous host -> device on a stream. The source block is
    /// snapshotted at enqueue (pageable semantics), so `src` may be reused
    /// immediately; the transfer itself executes at the next
    /// synchronization point. A transient injected failure rejects the
    /// enqueue before anything is queued, so the retry here is safe.
    void copy_from_host_async(const T* src, const stream& s) {
        with_retry(default_retry_policy(), &dev_->sim(), "memory1d upload async", [&] {
            translated([&] {
                dev_->sim().memcpy_to_device_async(addr_, src, count_ * sizeof(T),
                                                   s.id());
            });
        });
    }

    /// Asynchronous device -> host on a stream. `dst` is written when the
    /// op executes and must not be read before the covering synchronize —
    /// memcheck (Kind::AsyncHostRace) reports reads that race the copy.
    void copy_to_host_async(T* dst, const stream& s) const {
        with_retry(default_retry_policy(), &dev_->sim(), "memory1d download async", [&] {
            translated([&] {
                dev_->sim().memcpy_to_host_async(dst, addr_, count_ * sizeof(T),
                                                 s.id());
            });
        });
    }

    /// Host -> device from an iterator range (linearised, must cover
    /// exactly count() elements).
    template <std::input_iterator It>
    void copy_from(It first, It last) {
        const std::vector<T> stage(first, last);
        if (stage.size() != count_) {
            throw usage_error("iterator range does not match memory1d size");
        }
        copy_from_host(stage.data());
    }

    /// Device -> host through an output iterator.
    template <std::output_iterator<T> It>
    void copy_to(It out) const {
        std::vector<T> stage(count_);
        copy_to_host(stage.data());
        for (const T& v : stage) *out++ = v;
    }

    // --- observers ---
    [[nodiscard]] std::uint64_t size() const { return count_; }
    [[nodiscard]] cusim::DeviceAddr addr() const { return addr_; }
    [[nodiscard]] const device& owner() const { return *dev_; }

    /// Typed accounted view for kernels.
    [[nodiscard]] cusim::DevicePtr<T> device_ptr() const {
        return translated([&] { return dev_->sim().view<T>(addr_, count_); });
    }

private:
    // Helper for the iterator constructor: stage first, then delegate.
    template <typename It>
    static std::vector<T> staging(It first, It last) {
        return std::vector<T>(first, last);
    }
    memory1d(const device& d, const std::vector<T>& stage, std::source_location loc)
        : memory1d(d, stage.empty() ? 1 : stage.size(), loc) {
        count_ = stage.size();
        if (!stage.empty()) copy_from_host(stage.data());
    }

    /// Emits the transfer span [t0, now] on the owning device's host lane.
    void trace_transfer(const char* name, double t0) const {
        auto& sim = dev_->sim();
        trace::emit_complete(sim.host_track(), name, sim.trace_time_us(t0),
                             (sim.host_time() - t0) * 1e6,
                             {{"elements", count_}, {"bytes", count_ * sizeof(T)}});
    }

    void release() noexcept {
        if (addr_ != cusim::kNullAddr && dev_) {
            try {
                dev_->free(addr_);
            } catch (...) {
            }
        }
        addr_ = cusim::kNullAddr;
    }

    const device* dev_;
    cusim::DeviceAddr addr_ = cusim::kNullAddr;
    std::uint64_t count_ = 0;
};

}  // namespace cupp
