// cupp::shared_device_ptr<T> — a boost-compatible shared pointer for global
// memory (thesis §4.2).
//
// "To ease the development with this basic approach, a boost
// library-compliant shared pointer for global memory is supplied. [...] The
// memory is freed automatically after the last smart pointer pointing to a
// specific memory address is destroyed, so resource leaks can hardly occur."
#pragma once

#include <cstdint>
#include <memory>
#include <source_location>
#include <type_traits>

#include "cupp/device.hpp"
#include "cupp/retry.hpp"
#include "cusim/device_ptr.hpp"

namespace cupp {

template <typename T>
class shared_device_ptr {
    static_assert(std::is_trivially_copyable_v<T>,
                  "global memory holds byte-wise copyable values only");

public:
    shared_device_ptr() = default;

    /// Allocates `count` elements of global memory with shared ownership.
    /// The caller's source location labels the allocation in memcheck
    /// reports.
    shared_device_ptr(const device& d, std::uint64_t count,
                      std::source_location loc = std::source_location::current())
        : state_(std::make_shared<State>(d, count, loc)) {}

    // --- boost::shared_ptr-style interface ---
    [[nodiscard]] long use_count() const {
        return state_ ? state_.use_count() : 0;
    }
    [[nodiscard]] bool unique() const { return use_count() == 1; }
    explicit operator bool() const { return static_cast<bool>(state_); }

    void reset() { state_.reset(); }
    void swap(shared_device_ptr& other) noexcept { state_.swap(other.state_); }

    friend bool operator==(const shared_device_ptr& a, const shared_device_ptr& b) {
        return a.state_ == b.state_;
    }

    // --- device memory access ---
    [[nodiscard]] cusim::DeviceAddr addr() const { return state_->addr; }
    [[nodiscard]] std::uint64_t size() const { return state_ ? state_->count : 0; }

    [[nodiscard]] cusim::DevicePtr<T> device_ptr() const {
        return translated(
            [&] { return state_->dev->sim().template view<T>(state_->addr, state_->count); });
    }

    void upload(const T* src) const {
        with_retry(default_retry_policy(), &state_->dev->sim(), "shared_ptr upload", [&] {
            translated([&] {
                state_->dev->sim().copy_to_device(state_->addr, src,
                                                  state_->count * sizeof(T));
            });
        });
    }
    void download(T* dst) const {
        with_retry(default_retry_policy(), &state_->dev->sim(), "shared_ptr download", [&] {
            translated([&] {
                state_->dev->sim().copy_to_host(dst, state_->addr,
                                                state_->count * sizeof(T));
            });
        });
    }

private:
    struct State {
        State(const device& d, std::uint64_t n, std::source_location loc)
            : dev(&d), count(n) {
            addr = d.malloc(n * sizeof(T), loc, "cupp::shared_device_ptr");
        }
        ~State() {
            try {
                dev->free(addr);
            } catch (...) {
            }
        }
        State(const State&) = delete;
        State& operator=(const State&) = delete;

        const device* dev;
        cusim::DeviceAddr addr = cusim::kNullAddr;
        std::uint64_t count;
    };

    std::shared_ptr<State> state_;
};

}  // namespace cupp
