// Kernel-signature introspection.
//
// The thesis uses boost::function_traits plus "self-written template
// metaprogramming code" to analyse kernel declarations — most importantly
// to detect `const T&` parameters so the device->host copy-back can be
// elided (§4.3.2). This header is that machinery, written against C++20.
#pragma once

#include <cstddef>
#include <tuple>
#include <type_traits>

#include "cusim/kernel_task.hpp"

namespace cusim {
class ThreadCtx;
}

namespace cupp {

/// Traits of a kernel function pointer
/// `cusim::KernelTask (*)(cusim::ThreadCtx&, Args...)`.
template <typename F>
struct kernel_traits;

template <typename... Args>
struct kernel_traits<cusim::KernelTask (*)(cusim::ThreadCtx&, Args...)> {
    static constexpr std::size_t arity = sizeof...(Args);

    /// Declared type of parameter I (reference qualifiers preserved).
    template <std::size_t I>
    using arg = std::tuple_element_t<I, std::tuple<Args...>>;

    using args_tuple = std::tuple<Args...>;
};

/// Per-parameter classification used by cupp::kernel.
template <typename Arg>
struct param_traits {
    /// Parameter is `T&` or `const T&`: call-by-reference semantics.
    static constexpr bool is_reference = std::is_lvalue_reference_v<Arg>;
    /// Parameter is `const T&`: the device cannot change it, so the
    /// copy-back of step 4 is skipped (§4.3.2).
    static constexpr bool is_const_reference =
        is_reference && std::is_const_v<std::remove_reference_t<Arg>>;
    /// The value type the device sees.
    using value_type = std::remove_cv_t<std::remove_reference_t<Arg>>;
};

/// Number of `T&` (non-const reference) parameters — the ones that trigger
/// a copy-back.
template <typename F>
constexpr std::size_t mutable_reference_count() {
    using traits = kernel_traits<F>;
    return []<std::size_t... I>(std::index_sequence<I...>) {
        return ((param_traits<typename traits::template arg<I>>::is_reference &&
                         !param_traits<typename traits::template arg<I>>::is_const_reference
                     ? 1u
                     : 0u) +
                ... + 0u);
    }(std::make_index_sequence<traits::arity>{});
}

}  // namespace cupp
