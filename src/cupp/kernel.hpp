// cupp::kernel — the C++ kernel-call functor (thesis §4.3).
//
// "CuPP supports CUDA kernel calls by offering a so called functor called
// cupp::kernel. [...] The call of operator() of cupp::kernel calls the
// kernel and issues all instructions described in section 3.2.2" — i.e. it
// drives the raw three-step launch protocol (ConfigureCall / SetupArgument
// / Launch) underneath a C++ function-call syntax with full call-by-value
// and call-by-reference semantics:
//
//  * by value (§4.3.1): the host object is transform()ed into its device
//    type and byte-wise copied onto the kernel stack;
//  * by reference (§4.3.2): the object is copied to global memory, its
//    *address* goes onto the kernel stack, and after the launch the data is
//    copied back over the host object — unless the kernel declares the
//    parameter `const T&`, which the signature analysis (type_traits.hpp)
//    detects and then skips the copy-back entirely;
//  * classes customise all of this via transform()/get_device_reference()/
//    dirty() (call_traits.hpp).
//
// Kernels are ordinary functions `cusim::KernelTask k(cusim::ThreadCtx&,
// Params...)` — the simulator's equivalent of a __global__ function. Plain
// `T&` parameters arrive as references into simulated global memory;
// element accesses through them are not cycle-accounted (use the accounted
// container device types, e.g. deviceT::vector, in performance-relevant
// kernels).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <variant>

#include "cupp/call_traits.hpp"
#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cupp/future.hpp"
#include "cupp/retry.hpp"
#include "cupp/stream.hpp"
#include "cupp/trace.hpp"
#include "cupp/type_traits.hpp"
#include "cusim/prof.hpp"
#include "cusim/runtime_api.hpp"

namespace cupp {

namespace detail {

constexpr std::size_t align_up(std::size_t v, std::size_t a) { return (v + a - 1) / a * a; }

/// What actually lives on the kernel stack for a parameter: the device
/// value for by-value parameters, the global-memory address for references.
template <typename A>
using stored_t = std::conditional_t<param_traits<A>::is_reference, cusim::DeviceAddr,
                                    typename param_traits<A>::value_type>;

/// Byte offsets of the parameters on the kernel stack, laid out in
/// declaration order with natural alignment (what nvcc does).
template <typename... Args>
constexpr std::array<std::size_t, sizeof...(Args)> stack_offsets() {
    std::array<std::size_t, sizeof...(Args)> offs{};
    [[maybe_unused]] std::size_t cur = 0;
    std::size_t i = 0;
    ((offs[i] = cur = align_up(cur, alignof(stored_t<Args>)), cur += sizeof(stored_t<Args>),
      ++i),
     ...);
    return offs;
}

template <typename... Args>
constexpr std::size_t stack_size() {
    std::size_t cur = 0;
    ((cur = align_up(cur, alignof(stored_t<Args>)) + sizeof(stored_t<Args>)), ...);
    return cur;
}

/// Slot holding the device_reference of a by-reference parameter between
/// launch and copy-back; by-value parameters need no slot.
template <typename A, bool = param_traits<A>::is_reference>
struct ref_slot {
    using type = std::monostate;
};
template <typename A>
struct ref_slot<A, true> {
    using type = std::optional<device_reference<typename param_traits<A>::value_type>>;
};

inline void check(cusim::ErrorCode code, const char* what) {
    if (code != cusim::ErrorCode::Success) {
        // Through the shared mapping, so a memory code surfaces as
        // memory_error (not kernel_error) and the code is preserved.
        rethrow(code, std::string(what) + ": " + cusim::rt::cusimGetErrorString(code));
    }
}

}  // namespace detail

template <typename F>
class kernel;

template <typename... Args>
class kernel<cusim::KernelTask (*)(cusim::ThreadCtx&, Args...)> {
public:
    using fn_type = cusim::KernelTask (*)(cusim::ThreadCtx&, Args...);
    static constexpr std::size_t arity = sizeof...(Args);

    /// Wraps a kernel function pointer; grid and block dimensions may be
    /// given here or set later (§4.3: "Grid and block dimension [...] can
    /// be passed as an optional parameter to the constructor or may be
    /// changed later with set-methods").
    explicit kernel(fn_type f, cusim::dim3 grid_dim = cusim::dim3{1},
                    cusim::dim3 block_dim = cusim::dim3{cusim::kWarpSize})
        : fn_(f), grid_(grid_dim), block_(block_dim) {
        static_assert(detail::stack_size<Args...>() <= cusim::rt::kKernelStackSize,
                      "kernel parameters exceed the 256-byte kernel stack");
        handle_ = cusim::rt::register_kernel(
            [f](cusim::ThreadCtx& ctx, cusim::Device& dev, const std::byte* stack) {
                return invoke(f, ctx, dev, stack, std::index_sequence_for<Args...>{});
            });
    }

    // --- configuration ---
    void set_grid_dim(cusim::dim3 g) { grid_ = g; }
    void set_block_dim(cusim::dim3 b) { block_ = b; }
    void set_shared_bytes(std::uint32_t bytes) { shared_bytes_ = bytes; }
    void set_regs_per_thread(std::uint32_t regs) { regs_per_thread_ = regs; }
    /// Labels this kernel in traces, reports and the launch history (the
    /// simulator has no nvcc to read the symbol name from).
    void set_name(std::string name) { name_ = std::move(name); }
    [[nodiscard]] const std::string& name() const { return name_; }
    /// Per-kernel override of the transient-failure retry policy
    /// (default_retry_policy() otherwise).
    void set_retry_policy(retry_policy policy) { retry_ = std::move(policy); }
    [[nodiscard]] cusim::dim3 grid_dim() const { return grid_; }
    [[nodiscard]] cusim::dim3 block_dim() const { return block_; }

    /// The C++-style kernel call: first parameter is the device the kernel
    /// runs on, all following parameters are passed to the kernel
    /// (listing 4.3). The constraint keeps a non-const `stream` lvalue from
    /// being swallowed as a kernel argument by perfect forwarding — it must
    /// select the stream-bound overload below.
    void operator()(const device& d) { call_impl(d, cusim::kDefaultStream); }
    template <typename First, typename... Rest>
        requires(!std::is_same_v<std::remove_cvref_t<First>, stream>)
    void operator()(const device& d, First&& first, Rest&&... rest) {
        call_impl(d, cusim::kDefaultStream, std::forward<First>(first),
                  std::forward<Rest>(rest)...);
    }

    /// The stream-bound call: identical protocol, but the launch is
    /// *enqueued* on `s` and executes at the next synchronization point.
    /// Argument transforms (uploads for by-reference containers) still
    /// happen here, so the kernel sees the data as of this call. Note that
    /// last_stats() only updates for synchronous calls — an enqueued
    /// launch's stats exist only once it has executed (the device's launch
    /// history has them after the covering synchronize). A plain `T&`
    /// parameter holds a temporary device copy whose teardown at the end
    /// of this call joins with the stream; container and by-value
    /// parameters keep the call fully asynchronous.
    template <typename... CallArgs>
    void operator()(const device& d, const stream& s, CallArgs&&... call_args) {
        call_impl(d, s.id(), std::forward<CallArgs>(call_args)...);
    }

    /// Asynchronous call returning a future: the launch is enqueued on a
    /// fresh future-owned stream (kept alive by the continuation chain)
    /// and the future completes when the kernel has executed. Argument
    /// transforms still run here, synchronously, exactly like the
    /// stream-bound operator() — the future covers the *launch*.
    future<void> async(const device& d) {
        return with_owned_stream(d, [&](const stream& s) { call_impl(d, s.id()); });
    }
    template <typename First, typename... Rest>
        requires(!std::is_same_v<std::remove_cvref_t<First>, stream>)
    future<void> async(const device& d, First&& first, Rest&&... rest) {
        return with_owned_stream(d, [&](const stream& s) {
            call_impl(d, s.id(), std::forward<First>(first),
                      std::forward<Rest>(rest)...);
        });
    }

    /// Asynchronous call bound to a caller-owned stream. The caller keeps
    /// `s` alive for as long as the returned future (or any continuation
    /// chained from it) is in use.
    template <typename... CallArgs>
    future<void> async(const device& d, const stream& s, CallArgs&&... call_args) {
        return detail::make_async(d, &s, nullptr, [&](const stream& bound) {
            call_impl(d, bound.id(), std::forward<CallArgs>(call_args)...);
        });
    }

private:
    /// Owned-stream async flavour: even the stream *creation* failure is
    /// captured into the returned future (no async entry point throws).
    template <typename Enqueue>
    future<void> with_owned_stream(const device& d, Enqueue&& enqueue) {
        std::shared_ptr<stream> owned;
        try {
            owned = std::make_shared<stream>(d);
        } catch (...) {
            return detail::future_factory::wrap_void(detail::future_factory::error_core(
                nullptr, std::current_exception()));
        }
        return detail::make_async(d, nullptr, std::move(owned),
                                  std::forward<Enqueue>(enqueue));
    }

    template <typename... CallArgs>
    void call_impl(const device& d, cusim::StreamId sid, CallArgs&&... call_args) {
        static_assert(sizeof...(CallArgs) == arity,
                      "wrong number of kernel arguments");
        // Trace bookkeeping: one enclosing call span on the host lane, with
        // child spans per argument transform, the launch, and per copy-back
        // (the four phases of the §4.3 call protocol).
        cusim::Device& sim = d.sim();
        const bool tracing = trace::enabled();
        const double call_t0 = sim.host_time();
        // Host-side cost of the whole call protocol (transforms + launch +
        // copy-backs) in real wall time — the profiler's view of what the
        // framework itself costs, next to the kernel's modelled time.
        const bool profiling = cusim::prof::collecting();
        const double wall0 = profiling ? trace::wall_clock_us() : 0.0;

        detail::check(cusim::rt::cusimSetDevice(d.ordinal()), "set device");
        detail::check(
            cusim::rt::cusimConfigureCall(grid_, block_, shared_bytes_, regs_per_thread_),
            "configure call");

        slots_t slots;
        // Host copies for by-value parameters (§4.3.1 step 1). They stay
        // alive until after the launch: their destructors run "after the
        // kernel has started", never before.
        std::tuple<std::optional<std::remove_cvref_t<CallArgs>>...> copies;
        auto args = std::forward_as_tuple(call_args...);
        [&]<std::size_t... I>(std::index_sequence<I...>) {
            (([&] {
                 const double t0 = sim.host_time();
                 push_arg<I>(d, slots, copies, std::get<I>(args));
                 if (tracing) trace_arg_span<I>(sim, "transform", t0);
             }()),
             ...);
        }(std::index_sequence_for<Args...>{});

        // The launch itself is retried on transient failures: an injected
        // LaunchFailure rejects the grid (or the enqueue) before any state
        // changes and leaves the staged configuration + argument stack
        // untouched, so re-issuing really is the same launch.
        const std::string launch_site = "launch " + name_;
        with_retry(retry_ ? *retry_ : default_retry_policy(), &sim,
                   launch_site.c_str(), [&] {
                       detail::check(
                           sid == cusim::kDefaultStream
                               ? cusim::rt::cusimLaunchNamed(handle_, name_.c_str())
                               : cusim::rt::cusimLaunchAsync(handle_, name_.c_str(), sid),
                           "launch");
                   });
        if (sid == cusim::kDefaultStream) stats_ = cusim::rt::cusimLastLaunchStats();

        // Copy-back for non-const references (§4.3.2 step 4; skipped for
        // const ones thanks to the signature analysis).
        [&]<std::size_t... I>(std::index_sequence<I...>) {
            (([&] {
                 const double t0 = sim.host_time();
                 finish_arg<I>(slots, std::get<I>(args));
                 if (tracing && param_traits<arg_t<I>>::is_reference &&
                     !param_traits<arg_t<I>>::is_const_reference) {
                     trace_arg_span<I>(sim, "copy_back", t0);
                 }
             }()),
             ...);
        }(std::index_sequence_for<Args...>{});

        if (tracing) {
            trace::emit_complete(sim.host_track(), "cupp::call " + name_,
                                 sim.trace_time_us(call_t0),
                                 (sim.host_time() - call_t0) * 1e6,
                                 {{"kernel", name_},
                                  {"args", arity},
                                  {"stream", sid},
                                  {"blocks", stats_.blocks},
                                  {"threads", stats_.threads}});
            static const trace::counter_handle calls("cupp.kernel.calls");
            calls.add();
        }
        if (profiling) {
            trace::metrics().record("cusim.prof.call_host_us",
                                    trace::wall_clock_us() - wall0);
        }
    }

public:
    /// Simulator statistics of the most recent call through this functor.
    [[nodiscard]] const cusim::LaunchStats& last_stats() const { return stats_; }

private:
    template <std::size_t I>
    using arg_t = std::tuple_element_t<I, std::tuple<Args...>>;

    using slots_t = std::tuple<typename detail::ref_slot<Args>::type...>;
    static constexpr auto kOffsets = detail::stack_offsets<Args...>();

    /// Emits one per-argument protocol span ("transform arg2 (ref)") on the
    /// host lane of `sim`, covering [t0, now].
    template <std::size_t I>
    void trace_arg_span(cusim::Device& sim, const char* phase, double t0) const {
        using P = param_traits<arg_t<I>>;
        const char* mode = P::is_const_reference ? "const_ref"
                           : P::is_reference    ? "ref"
                                                : "value";
        trace::emit_complete(sim.host_track(),
                             trace::format("%s arg%zu (%s)", phase, I, mode),
                             sim.trace_time_us(t0), (sim.host_time() - t0) * 1e6,
                             {{"kernel", name_}, {"index", I}, {"mode", mode}});
    }

    template <std::size_t I, typename CopyTuple, typename CallArg>
    void push_arg(const device& d, slots_t& slots, CopyTuple& copies, CallArg& host_arg) {
        using A = arg_t<I>;
        using P = param_traits<A>;
        using H = std::remove_cv_t<std::remove_reference_t<CallArg>>;
        static_assert(std::is_same_v<device_type_t<H>, typename P::value_type>,
                      "argument's device type does not match the kernel parameter");
        if constexpr (P::is_reference) {
            auto& slot = std::get<I>(slots);
            slot.emplace(make_device_reference(host_arg, d));
            const cusim::DeviceAddr addr = slot->addr();
            detail::check(
                cusim::rt::cusimSetupArgument(&addr, sizeof(addr), kOffsets[I]),
                "setup argument");
        } else {
            // Call-by-value (§4.3.1): 1. copy-construct on the host,
            // 2. transform the copy and push the bytes onto the kernel
            // stack. This is what makes passing a cupp::vector by value
            // expensive — every element is copied (thesis conclusion).
            auto& copy = std::get<I>(copies);
            copy.emplace(host_arg);
            const auto device_value = transform_for_device(*copy, d);
            detail::check(cusim::rt::cusimSetupArgument(&device_value, sizeof(device_value),
                                                        kOffsets[I]),
                          "setup argument");
        }
    }

    template <std::size_t I, typename CallArg>
    void finish_arg(slots_t& slots, CallArg& host_arg) {
        using A = arg_t<I>;
        using P = param_traits<A>;
        if constexpr (P::is_reference && !P::is_const_reference) {
            apply_dirty(host_arg, *std::get<I>(slots));
        } else {
            (void)slots;
            (void)host_arg;
        }
    }

    template <std::size_t I>
    static decltype(auto) unpack(cusim::Device& dev, const std::byte* stack) {
        using A = arg_t<I>;
        using P = param_traits<A>;
        if constexpr (P::is_reference) {
            cusim::DeviceAddr addr;
            std::memcpy(&addr, stack + kOffsets[I], sizeof(addr));
            using T = typename P::value_type;
            // The reference the kernel sees aims straight into simulated
            // global memory — the byte-wise copy placed there by
            // device_reference.
            return static_cast<A>(*reinterpret_cast<T*>(dev.memory().raw(addr)));
        } else {
            typename P::value_type value;
            std::memcpy(&value, stack + kOffsets[I], sizeof(value));
            return value;
        }
    }

    template <std::size_t... I>
    static cusim::KernelTask invoke(fn_type f, cusim::ThreadCtx& ctx, cusim::Device& dev,
                                    const std::byte* stack, std::index_sequence<I...>) {
        return f(ctx, unpack<I>(dev, stack)...);
    }

    fn_type fn_;
    cusim::rt::KernelHandle handle_;
    cusim::dim3 grid_;
    cusim::dim3 block_;
    std::uint32_t shared_bytes_ = 0;
    std::uint32_t regs_per_thread_ = 16;
    std::string name_ = "kernel";
    std::optional<retry_policy> retry_;
    cusim::LaunchStats stats_{};
};

/// Deduction guide: `cupp::kernel f(get_kernel_ptr(), grid, block);`
template <typename... Args>
kernel(cusim::KernelTask (*)(cusim::ThreadCtx&, Args...), cusim::dim3, cusim::dim3)
    -> kernel<cusim::KernelTask (*)(cusim::ThreadCtx&, Args...)>;
template <typename... Args>
kernel(cusim::KernelTask (*)(cusim::ThreadCtx&, Args...))
    -> kernel<cusim::KernelTask (*)(cusim::ThreadCtx&, Args...)>;

}  // namespace cupp
