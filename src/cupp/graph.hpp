// cupp::graph — CuPP-flavoured capture/replay over cusim::graph.
//
// graph::capture(s, body) records everything `body` enqueues on stream
// `s` (and, under CaptureMode::Origin, on streams joined via event edges)
// into an immutable graph; instantiate() validates it once; the resulting
// graph_exec replays the whole DAG per launch() for a single
// launch-overhead charge. Transient injected failures at instantiate and
// launch retry under the calling thread's retry policy, like any other
// CuPP operation. See DESIGN.md §5g.
#pragma once

#include <cstddef>
#include <utility>

#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cupp/retry.hpp"
#include "cupp/stream.hpp"
#include "cusim/graph.hpp"

namespace cupp {

/// A validated, launchable captured DAG (copyable; instantiations share
/// the immutable IR).
class graph_exec {
public:
    graph_exec() = default;

    [[nodiscard]] bool valid() const { return dev_ != nullptr; }
    [[nodiscard]] std::size_t node_count() const { return exec_.node_count(); }

    /// Replays the whole DAG: one launch-overhead charge, per-op
    /// validation skipped (it ran at instantiate). All-or-nothing under
    /// fault injection, so the with_retry here is safe.
    void launch() const {
        if (dev_ == nullptr) throw usage_error("graph_exec: launch() on empty exec");
        with_retry(default_retry_policy(), &dev_->sim(), "graph launch", [&] {
            translated([&] { dev_->sim().graph_launch(exec_); });
        });
    }

private:
    friend class graph;
    graph_exec(const device& d, cusim::GraphExec exec)
        : dev_(&d), exec_(std::move(exec)) {}

    const device* dev_ = nullptr;
    cusim::GraphExec exec_;
};

/// An immutable captured stream DAG.
class graph {
public:
    graph() = default;

    /// Captures everything `body` enqueues on `s` into a graph. The
    /// capture is ended (and its state cleared) even when `body` throws —
    /// the original exception propagates.
    template <typename F>
    [[nodiscard]] static graph capture(
        const stream& s, F&& body,
        cusim::CaptureMode mode = cusim::CaptureMode::Origin) {
        const device& d = s.owner();
        translated([&] { d.sim().stream_begin_capture(s.id(), mode); });
        try {
            std::forward<F>(body)();
        } catch (...) {
            try {
                (void)d.sim().stream_end_capture(s.id());
            } catch (...) {
                // The original exception is the interesting one.
            }
            throw;
        }
        graph g;
        g.dev_ = &d;
        g.graph_ = translated([&] { return d.sim().stream_end_capture(s.id()); });
        return g;
    }

    [[nodiscard]] bool valid() const { return dev_ != nullptr; }
    [[nodiscard]] std::size_t node_count() const { return graph_.node_count(); }

    /// Validates every node once and returns a launchable exec. Transient
    /// injected failures retry (instantiation is atomic).
    [[nodiscard]] graph_exec instantiate() const {
        if (dev_ == nullptr) throw usage_error("graph: instantiate() on empty graph");
        cusim::GraphExec e =
            with_retry(default_retry_policy(), &dev_->sim(), "graph instantiate", [&] {
                return translated([&] { return dev_->sim().graph_instantiate(graph_); });
            });
        return graph_exec(*dev_, std::move(e));
    }

private:
    const device* dev_ = nullptr;
    cusim::Graph graph_;
};

}  // namespace cupp
