// cupp::device — the explicit device handle of thesis §4.1.
//
// "Device management is no longer done implicitly when associating a thread
// with a device as it was done by CUDA. Instead, the developer is forced to
// create a device handle, which is passed to all CuPP functions using the
// device. [...] When the device handle is destroyed, all memory allocated
// on this device is freed as well."
//
// The handle is movable but not copyable (it owns the allocations made
// through it). CuPP functions take `const device&`: passing the handle
// around never implies the right to re-configure it, but memory operations
// are logically device-side state, reachable through the const handle —
// exactly the signatures of listing 4.4 (`transform(const cupp::device&)`).
#pragma once

#include <cstdint>
#include <set>
#include <source_location>
#include <string>

#include "cupp/exception.hpp"
#include "cupp/retry.hpp"
#include "cusim/device.hpp"
#include "cusim/registry.hpp"

namespace cupp {

class device {
public:
    /// Creates a handle to the default device (ordinal 0, like the implicit
    /// CUDA binding of §3.2.1).
    device() : device(cusim::Registry::instance().current_ordinal()) {}

    /// Creates a handle to the device best matching `request`
    /// (cudaChooseDevice semantics).
    explicit device(const cusim::DeviceProperties& request)
        : device(translated([&] { return cusim::Registry::instance().choose_device(request); })) {}

    /// Handle to a specific ordinal.
    explicit device(int ordinal)
        : ordinal_(ordinal),
          dev_(&translated([&]() -> cusim::Device& {
              return cusim::Registry::instance().device(ordinal);
          })) {
        cusim::Registry::instance().set_device(ordinal);
    }

    device(const device&) = delete;
    device& operator=(const device&) = delete;

    device(device&& other) noexcept
        : ordinal_(other.ordinal_),
          dev_(other.dev_),
          allocations_(std::move(other.allocations_)) {
        other.dev_ = nullptr;
        other.allocations_.clear();
    }

    device& operator=(device&& other) noexcept {
        if (this != &other) {
            release_all();
            ordinal_ = other.ordinal_;
            dev_ = other.dev_;
            allocations_ = std::move(other.allocations_);
            other.dev_ = nullptr;
            other.allocations_.clear();
        }
        return *this;
    }

    /// Frees every allocation made through this handle (§4.1).
    ~device() { release_all(); }

    // --- queries (§4.1: "the device handle can be queried") ---
    [[nodiscard]] int ordinal() const { return ordinal_; }
    [[nodiscard]] const std::string& name() const { return sim().properties().name; }
    [[nodiscard]] std::uint64_t total_memory() const {
        return sim().properties().total_global_mem;
    }
    [[nodiscard]] std::uint64_t free_memory() const {
        return sim().memory().size() - sim().memory().used();
    }
    [[nodiscard]] unsigned multiprocessors() const { return sim().properties().multiprocessors; }
    [[nodiscard]] bool supports_atomics() const { return sim().properties().supports_atomics; }

    // --- memory (exception-throwing CUDA-style management, §4.2) ---
    /// Allocates `bytes` of global memory owned by this handle. The
    /// caller's source location and the layer label ride down to the
    /// allocator for memcheck attribution.
    [[nodiscard]] cusim::DeviceAddr malloc(
        std::uint64_t bytes,
        std::source_location loc = std::source_location::current(),
        const char* label = "cupp::device::malloc") const {
        // A spurious MemoryAllocation (cusim::faults) is transient —
        // retried here, so every framework allocation path (vector,
        // memory1d, shared_ptr, device_reference) is covered once.
        const auto addr = with_retry(default_retry_policy(), &sim(), "malloc", [&] {
            return translated([&] { return sim().malloc_bytes(bytes, loc, label); });
        });
        allocations_.insert(addr);
        return addr;
    }

    /// Frees an allocation made through this handle.
    void free(cusim::DeviceAddr addr,
              std::source_location loc = std::source_location::current()) const {
        translated([&] { sim().free_bytes(addr, loc); });
        allocations_.erase(addr);
    }

    // --- access to the simulated device for the rest of the framework ---
    [[nodiscard]] cusim::Device& sim() const {
        if (!dev_) throw usage_error("use of a moved-from cupp::device");
        return *dev_;
    }

    /// Host blocks until the device is idle.
    void synchronize() const { translated([&] { sim().synchronize(); }); }

    // --- sticky-fault recovery (cusim::faults DeviceLost) ---
    /// True while the device is poisoned: every operation throws
    /// device_lost_error until reset().
    [[nodiscard]] bool lost() const { return sim().lost(); }

    /// Recovers a lost device. Allocations made through this handle stay
    /// valid (no re-malloc needed) but their *contents* are gone and their
    /// memcheck defined-bits replayed — callers must re-upload before the
    /// device reads the data again (cupp::vector::abandon_device_data is
    /// the container-level hook for that).
    void reset() const { translated([&] { sim().reset_device(); }); }

private:
    void release_all() noexcept {
        if (!dev_) return;
        for (const auto addr : allocations_) {
            try {
                dev_->free_bytes(addr);
            } catch (...) {
                // Destruction must not throw; a stale entry is ignorable.
            }
        }
        allocations_.clear();
    }

    int ordinal_ = 0;
    cusim::Device* dev_ = nullptr;
    mutable std::set<cusim::DeviceAddr> allocations_;
};

}  // namespace cupp
