// cupp::vector — the STL-vector wrapper with lazy memory copying (§4.6).
//
// The host side behaves (almost) like std::vector. The device side is the
// POD handle deviceT::vector, produced through the host/device type
// transformation of §4.5 — element types are transformed too, so
// vector<vector<T>> works and arrives on the device as
// deviceT::vector<deviceT::vector<T::device_type>>.
//
// Lazy memory copying, exactly the four rules of §4.6:
//  * transform() / get_device_reference() copy the data to global memory
//    only if the device copy is out of date (or none exists yet);
//  * dirty() marks the *host* data out of date;
//  * host reads check the flag and download first if needed;
//  * host writes mark the *device* data out of date.
//
// Writes are detected with a proxy class returned by the non-const
// operator[] — the technique (and its rare behavioural differences from a
// plain reference) is discussed in §4.6 footnote 4.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <source_location>
#include <type_traits>
#include <vector>

#include "cupp/call_traits.hpp"
#include "cupp/device.hpp"
#include "cupp/device_reference.hpp"
#include "cupp/exception.hpp"
#include "cupp/future.hpp"
#include "cupp/retry.hpp"
#include "cupp/stream.hpp"
#include "cupp/trace.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/thread_ctx.hpp"

namespace cupp {

template <typename T>
class vector;

namespace detail {
template <typename T>
struct is_cupp_vector : std::false_type {};
template <typename T>
struct is_cupp_vector<vector<T>> : std::true_type {};

/// Process-wide lazy-copy counters: one hit/miss (or event) counter per
/// §4.6 rule, shared by all cupp::vector instantiations. Incremented only
/// while tracing is enabled so per-element host accesses stay free.
struct lazy_copy_counters {
    trace::counter_handle upload{"cupp.vector.lazy.upload"};
    trace::counter_handle upload_avoided{"cupp.vector.lazy.upload_avoided"};
    trace::counter_handle download{"cupp.vector.lazy.download"};
    trace::counter_handle download_avoided{"cupp.vector.lazy.download_avoided"};
    trace::counter_handle host_invalidated{"cupp.vector.lazy.host_invalidated"};
    trace::counter_handle device_invalidated{"cupp.vector.lazy.device_invalidated"};

    static const lazy_copy_counters& get() {
        static const lazy_copy_counters c;
        return c;
    }
};
}  // namespace detail

namespace deviceT {

/// The device type of cupp::vector<T>: a POD handle to the linear global-
/// memory block holding the (element-transformed) data. "The device type
/// suffers from the problem that it is not possible to allocate memory on
/// the device. Therefore the size of the vector cannot be changed on the
/// device" (§4.6) — there is no push_back here.
template <typename DevElem>
struct vector {
    using value_type = DevElem;
    using device_type = vector<DevElem>;
    using host_type = cupp::vector<host_type_t<DevElem>>;

    cusim::DevicePtr<DevElem> data;
    std::uint32_t count = 0;
    /// Non-zero when reads go through the texture cache — the automatic
    /// const-reference optimisation proposed in the thesis' future work
    /// ("texture or constant memory could automatically be used to offer
    /// even better performance"). Enabled per vector on the host side.
    std::uint32_t textured = 0;

    [[nodiscard]] std::uint32_t size() const { return count; }

    /// Accounted element read (a device-memory access, Table 2.2 — or a
    /// texture fetch when the host enabled texture reads).
    [[nodiscard]] DevElem read(cusim::ThreadCtx& ctx, std::uint64_t i) const {
        return textured != 0 ? data.tex_read(ctx, i) : data.read(ctx, i);
    }
    /// Accounted element write (fire-and-forget).
    void write(cusim::ThreadCtx& ctx, std::uint64_t i, const DevElem& v) const {
        data.write(ctx, i, v);
    }
};

}  // namespace deviceT

template <typename T>
class vector {
public:
    using value_type = T;
    using dev_elem = device_type_t<T>;
    using device_type = deviceT::vector<dev_elem>;
    using host_type = vector<T>;
    using size_type = std::uint64_t;
    using const_iterator = typename std::vector<T>::const_iterator;

    // --- construction / rule of five ---
    vector() = default;
    explicit vector(size_type n) : host_(n) {}
    vector(size_type n, const T& value) : host_(n, value) {}
    vector(std::initializer_list<T> init) : host_(init) {}
    template <std::input_iterator It>
    vector(It first, It last) : host_(first, last) {}

    /// The copy owns its own dataset (§4.2): host data is copied
    /// element-wise; the device buffer is not shared and will be lazily
    /// re-created if the copy is ever passed to a kernel.
    vector(const vector& other) : host_(other.snapshot()) {}

    vector& operator=(const vector& other) {
        if (this != &other) {
            // A queued prefetch download still targets our current buffer;
            // settle it before the assignment may reallocate that storage.
            sync_pending();
            host_ = other.snapshot();
            invalidate_device();
        }
        return *this;
    }

    vector(vector&& other) noexcept { swap(other); }
    vector& operator=(vector&& other) noexcept {
        if (this != &other) {
            release_device();
            host_.clear();
            reset_flags();
            swap(other);
        }
        return *this;
    }

    ~vector() { release_device(); }

    void swap(vector& other) noexcept {
        host_.swap(other.host_);
        std::swap(host_valid_, other.host_valid_);
        std::swap(device_valid_, other.device_valid_);
        std::swap(dev_, other.dev_);
        std::swap(dbuf_, other.dbuf_);
        std::swap(dbuf_capacity_, other.dbuf_capacity_);
        std::swap(dev_ref_, other.dev_ref_);
        std::swap(cached_handle_, other.cached_handle_);
        std::swap(textured_, other.textured_);
        std::swap(uploads_, other.uploads_);
        std::swap(downloads_, other.downloads_);
        std::swap(pending_, other.pending_);
    }

    // --- size & capacity ---
    [[nodiscard]] size_type size() const { return host_.size(); }
    [[nodiscard]] bool empty() const { return host_.empty(); }

    void reserve(size_type n) { host_.reserve(n); }

    void resize(size_type n) {
        ensure_host();
        host_.resize(n);
        invalidate_device();
    }
    void clear() {
        host_.clear();
        invalidate_device();
    }

    // --- element access ---
    /// Write-detecting proxy (§4.6): converts to T for reads, assignment
    /// marks the device copy stale.
    class reference {
    public:
        reference(vector* v, size_type i) : v_(v), i_(i) {}

        operator T() const {  // NOLINT(google-explicit-constructor) proxy by design
            v_->ensure_host();
            return v_->host_[i_];
        }
        reference& operator=(const T& value) {
            v_->ensure_host();
            v_->host_[i_] = value;
            v_->invalidate_device();
            return *this;
        }
        reference& operator=(const reference& other) { return *this = static_cast<T>(other); }

    private:
        vector* v_;
        size_type i_;
    };

    [[nodiscard]] reference operator[](size_type i) { return reference(this, i); }
    [[nodiscard]] const T& operator[](size_type i) const {
        ensure_host();
        return host_[i];
    }
    [[nodiscard]] const T& at(size_type i) const {
        if (i >= host_.size()) throw usage_error("cupp::vector index out of range");
        return (*this)[i];
    }
    [[nodiscard]] const T& front() const { return (*this)[0]; }
    [[nodiscard]] const T& back() const { return (*this)[size() - 1]; }

    void push_back(const T& value) {
        ensure_host();
        host_.push_back(value);
        invalidate_device();
    }
    void pop_back() {
        ensure_host();
        host_.pop_back();
        invalidate_device();
    }

    /// Read-only iteration (downloads first if the host copy is stale).
    [[nodiscard]] const_iterator begin() const {
        ensure_host();
        return host_.begin();
    }
    [[nodiscard]] const_iterator end() const {
        ensure_host();
        return host_.end();
    }
    [[nodiscard]] const_iterator cbegin() const { return begin(); }
    [[nodiscard]] const_iterator cend() const { return end(); }

    /// Bulk write access: hands out the underlying std::vector and marks
    /// the device copy stale (the conservative equivalent of non-const
    /// iterators).
    [[nodiscard]] std::vector<T>& mutate() {
        ensure_host();
        invalidate_device();
        return host_;
    }

    /// A host-fresh copy of the contents.
    [[nodiscard]] std::vector<T> snapshot() const {
        ensure_host();
        return host_;
    }

    // --- the kernel call protocol (§4.4/§4.5/§4.6) ---
    [[nodiscard]] device_type transform(const device& d) const {
        ensure_device(d);
        return device_handle();
    }

    [[nodiscard]] device_reference<device_type> get_device_reference(const device& d) const {
        ensure_device(d);
        // Lazy copying applies to the handle object too: the global-memory
        // copy of {pointer, size} is created once and reused while it stays
        // accurate. This keeps repeat kernel calls free of host->device
        // traffic — and, crucially, free of the implicit synchronisation a
        // memcpy would cost while a previous kernel is still running
        // (§2.2), which is what lets double buffering overlap (§6.3.2).
        const device_type handle = device_handle();
        if (!dev_ref_ || !(cached_handle_.data.addr() == handle.data.addr() &&
                           cached_handle_.count == handle.count &&
                           cached_handle_.textured == handle.textured)) {
            dev_ref_.emplace(d, handle);
            cached_handle_ = handle;
        }
        return *dev_ref_;
    }

    /// The kernel received this vector as a non-const reference: the device
    /// now holds the truth, the host copy is stale (§4.6 rule 2).
    void dirty(device_reference<device_type> /*ref*/) {
        // The handle itself (pointer + size) cannot meaningfully change on
        // the device — only the pointed-to data can, and that is already in
        // our buffer.
        if (pending_ && pending_->download) {
            // A prefetch_to_host was racing this kernel: its snapshot of the
            // device data is now (or will be) stale. The queued copy still
            // lands in our buffer at drain, but it must not mark the host
            // valid — the next host read re-downloads over it.
            pending_->discarded = true;
        }
        host_valid_ = false;
        device_valid_ = true;
        if (trace::enabled()) detail::lazy_copy_counters::get().host_invalidated.add();
    }

    /// Internal hook for nested vectors: the device changed our data behind
    /// our back (the *outer* vector was passed non-const).
    void mark_host_stale() {
        if (device_valid_) host_valid_ = false;
    }

    /// Routes device-side reads of this vector through the texture cache
    /// (future-work §7: beneficial when the vector is only read by kernels,
    /// i.e. passed as a const reference).
    void set_texture_fetches(bool enabled) {
        if (textured_ != enabled) {
            textured_ = enabled;
            dev_ref_.reset();  // the cached handle embeds the flag
        }
    }
    [[nodiscard]] bool texture_fetches() const { return textured_; }

    /// Device-lost recovery hook: declares the device copy dead without
    /// touching it. After device::reset() the buffer allocation is still
    /// live (so no free/re-malloc churn) but its contents are wiped; this
    /// drops the cached device handle, marks the device data stale and the
    /// host data authoritative — the next kernel call re-uploads. Callers
    /// recovering from a lost device typically overwrite the host data
    /// (mutate()) from a checkpoint first, since a download that never
    /// happened can't have refreshed it.
    void abandon_device_data() {
        dev_ref_.reset();
        cached_handle_ = device_type{};
        device_valid_ = false;
        host_valid_ = true;
        // Any queued prefetch died with the device (reset abandons stream
        // queues); the transfer will never land, so forget it.
        pending_.reset();
    }

    // --- asynchronous prefetch (streams) ---
    /// Enqueues the §4.6 rule-1 upload on a stream instead of running it
    /// synchronously. The host data is snapshotted at enqueue, so later host
    /// writes cannot tear the transfer; the device copy is immediately
    /// considered valid because every device-side consumer is either on the
    /// same stream (FIFO-ordered behind the copy) or synchronizes first.
    /// No-op when the device copy is already current. Element types that
    /// need a host-side transform fall back to the synchronous upload.
    /// At most one prefetch per vector is in flight; a second call first
    /// synchronizes the previous one.
    void prefetch_to_device(const device& d, const stream& s) const {
        sync_pending();
        if constexpr (!std::is_same_v<T, dev_elem>) {
            ensure_device(d);
            return;
        } else {
            if (dev_ && &dev_->sim() != &d.sim()) {
                throw usage_error("cupp::vector is bound to a different device");
            }
            dev_ = &d;
            if (host_.empty()) {
                device_valid_ = true;
                return;
            }
            if (device_valid_ && dbuf_capacity_ >= host_.size()) {
                if (trace::enabled()) detail::lazy_copy_counters::get().upload_avoided.add();
                return;
            }
            if (!host_valid_) {
                throw usage_error("cupp::vector has neither valid host nor device data");
            }
            if (dbuf_capacity_ < host_.size()) {
                release_device();
                dbuf_ = d.malloc(host_.size() * sizeof(dev_elem),
                                 std::source_location::current(), "cupp::vector");
                dbuf_capacity_ = host_.size();
            }
            with_retry(default_retry_policy(), &d.sim(), "vector prefetch upload", [&] {
                translated([&] {
                    d.sim().memcpy_to_device_async(dbuf_, host_.data(),
                                                   host_.size() * sizeof(T), s.id());
                });
            });
            ++uploads_;
            device_valid_ = true;
            if (trace::enabled()) detail::lazy_copy_counters::get().upload.add();
        }
    }

    /// Enqueues the §4.6 rule-3 download on a stream. The host copy stays
    /// *stale* until the transfer is synchronized — any host access (reads,
    /// writes, snapshot(), iteration) synchronizes the stream first, so the
    /// lazy rules still hold; callers that synchronize the stream themselves
    /// pay only the enqueue cost here. No-op when the host copy is already
    /// current.
    void prefetch_to_host(const stream& s) const {
        sync_pending();
        if (host_valid_ || host_.empty() || !device_valid_) {
            if (host_valid_ && device_valid_ && trace::enabled()) {
                detail::lazy_copy_counters::get().download_avoided.add();
            }
            return;
        }
        if constexpr (!std::is_same_v<T, dev_elem>) {
            ensure_host();
        } else {
            with_retry(default_retry_policy(), &dev_->sim(), "vector prefetch download", [&] {
                translated([&] {
                    dev_->sim().memcpy_to_host_async(host_.data(), dbuf_,
                                                     host_.size() * sizeof(T), s.id());
                });
            });
            pending_.emplace(PendingAsync{s.id(), true, false});
        }
    }

    /// True while a prefetch_to_host download has been enqueued but not yet
    /// synchronized (i.e. the host copy is not safe to read directly).
    [[nodiscard]] bool prefetch_pending() const { return pending_.has_value(); }

    /// prefetch_to_device as a future: the upload is enqueued on `s` and
    /// the returned future completes when it has executed. Composes with
    /// kernel::async / when_all for sync-free dependency chains. When the
    /// device copy is already current (nothing to enqueue) an empty,
    /// already-ready future is returned.
    [[nodiscard]] future<void> prefetch_to_device_async(const device& d,
                                                        const stream& s) const {
        if (device_valid_ && dbuf_capacity_ >= host_.size()) {
            prefetch_to_device(d, s);  // keeps the counter/no-op semantics
            return future<void>{};
        }
        return detail::make_async(d, &s, nullptr, [&](const stream& bound) {
            prefetch_to_device(d, bound);
        });
    }

    /// prefetch_to_host as a future; get()/wait() covers the download, so
    /// the host copy is safe to read once the future is ready (the usual
    /// sync-on-host-access rules still apply if it isn't consumed).
    [[nodiscard]] future<void> prefetch_to_host_async(const stream& s) const {
        sync_pending();
        if (host_valid_ || host_.empty() || !device_valid_) {
            prefetch_to_host(s);  // records the download_avoided counter
            return future<void>{};
        }
        return detail::make_async(*dev_, &s, nullptr, [&](const stream& bound) {
            prefetch_to_host(bound);
        });
    }

    // --- instrumentation (used by tests and the lazy-copy ablation bench) ---
    [[nodiscard]] std::uint64_t uploads() const { return uploads_; }
    [[nodiscard]] std::uint64_t downloads() const { return downloads_; }
    [[nodiscard]] bool device_data_valid() const { return device_valid_; }
    [[nodiscard]] bool host_data_valid() const { return host_valid_; }

private:
    [[nodiscard]] device_type device_handle() const {
        device_type h;
        if (!host_.empty()) {
            h.data = translated(
                [&] { return dev_->sim().template view<dev_elem>(dbuf_, host_.size()); });
        }
        h.count = static_cast<std::uint32_t>(host_.size());
        h.textured = textured_ ? 1u : 0u;
        return h;
    }

    /// A host write makes the device copy stale (§4.6 rule 4).
    void invalidate_device() {
        if (device_valid_ && trace::enabled()) {
            detail::lazy_copy_counters::get().device_invalidated.add();
        }
        device_valid_ = false;
    }

    void reset_flags() {
        host_valid_ = true;
        device_valid_ = false;
        pending_.reset();
    }

    /// Completes an in-flight prefetch_to_host before the host side is
    /// touched (§4.6 rules applied to async transfers: a stale side touched
    /// while a copy is in flight synchronizes first). A stream that was
    /// already destroyed has drained its queue (cudaStreamDestroy
    /// semantics), so an unknown-stream error counts as completion.
    void sync_pending() const {
        if (!pending_) return;
        const PendingAsync p = *pending_;
        pending_.reset();
        try {
            with_retry(default_retry_policy(), &dev_->sim(), "vector prefetch sync", [&] {
                translated([&] { dev_->sim().stream_synchronize(p.stream); });
            });
        } catch (const usage_error& e) {
            // Stream destroyed after the enqueue: the destroy drained the
            // queue, so the transfer completed. Anything else is real.
            if (e.code() != cusim::ErrorCode::InvalidValue) throw;
        }
        if (p.download && !p.discarded) {
            ++downloads_;
            host_valid_ = true;
            if (trace::enabled()) detail::lazy_copy_counters::get().download.add();
        }
    }

    void ensure_host() const {
        sync_pending();
        if (host_valid_) {
            // §4.6 rule 3 hit: the host copy is current, no download needed.
            // Only counted while a device copy exists — otherwise there was
            // nothing to avoid.
            if (device_valid_ && trace::enabled()) {
                detail::lazy_copy_counters::get().download_avoided.add();
            }
            return;
        }
        if (host_.empty()) {
            host_valid_ = true;
            return;
        }
        const bool tracing = trace::enabled();
        const double t0 = tracing ? dev_->sim().host_time() : 0.0;
        // Download the device data over the host copy. Sizes match: the
        // device cannot resize a vector.
        if constexpr (std::is_same_v<T, dev_elem>) {
            with_retry(default_retry_policy(), &dev_->sim(), "vector download", [&] {
                translated([&] {
                    dev_->sim().copy_to_host(host_.data(), dbuf_, host_.size() * sizeof(T));
                });
            });
        } else if constexpr (detail::is_cupp_vector<T>::value) {
            // Nested vectors: the handles on the device still describe the
            // inner vectors' own buffers; only the inner *data* changed.
            for (auto& inner : host_) inner.mark_host_stale();
        } else {
            std::vector<dev_elem> stage(host_.size());
            with_retry(default_retry_policy(), &dev_->sim(), "vector download", [&] {
                translated([&] {
                    dev_->sim().copy_to_host(stage.data(), dbuf_,
                                             stage.size() * sizeof(dev_elem));
                });
            });
            for (size_type i = 0; i < host_.size(); ++i) host_[i] = static_cast<T>(stage[i]);
        }
        ++downloads_;
        host_valid_ = true;
        if (tracing) {
            // §4.6 rule 3 miss: the host copy was stale, a download ran.
            detail::lazy_copy_counters::get().download.add();
            auto& sim = dev_->sim();
            trace::emit_complete(sim.host_track(), "cupp::vector download",
                                 sim.trace_time_us(t0), (sim.host_time() - t0) * 1e6,
                                 {{"elements", host_.size()},
                                  {"bytes", host_.size() * sizeof(dev_elem)}});
        }
    }

    void ensure_device(const device& d) const {
        if (dev_ && &dev_->sim() != &d.sim()) {
            throw usage_error("cupp::vector is bound to a different device");
        }
        dev_ = &d;
        if (host_.empty()) {
            device_valid_ = true;
            return;
        }
        if (device_valid_ && dbuf_capacity_ >= host_.size()) {
            // §4.6 rule 1 hit: the device copy is current, the upload is
            // skipped — repeat kernel calls stay free of H2D traffic.
            if (trace::enabled()) detail::lazy_copy_counters::get().upload_avoided.add();
            return;
        }
        if (!host_valid_) {
            throw usage_error("cupp::vector has neither valid host nor device data");
        }
        const bool tracing = trace::enabled();
        const double t0 = tracing ? d.sim().host_time() : 0.0;
        if (dbuf_capacity_ < host_.size()) {
            release_device();
            dbuf_ = d.malloc(host_.size() * sizeof(dev_elem),
                             std::source_location::current(), "cupp::vector");
            dbuf_capacity_ = host_.size();
        }
        if constexpr (std::is_same_v<T, dev_elem>) {
            with_retry(default_retry_policy(), &d.sim(), "vector upload", [&] {
                translated([&] {
                    dev_->sim().copy_to_device(dbuf_, host_.data(), host_.size() * sizeof(T));
                });
            });
        } else {
            std::vector<dev_elem> stage;
            stage.reserve(host_.size());
            for (const T& v : host_) stage.push_back(transform_for_device(v, d));
            with_retry(default_retry_policy(), &d.sim(), "vector upload", [&] {
                translated([&] {
                    dev_->sim().copy_to_device(dbuf_, stage.data(),
                                               stage.size() * sizeof(dev_elem));
                });
            });
        }
        ++uploads_;
        device_valid_ = true;
        if (tracing) {
            // §4.6 rule 1 miss: the device copy was stale (or absent), an
            // upload ran.
            detail::lazy_copy_counters::get().upload.add();
            auto& sim = d.sim();
            trace::emit_complete(sim.host_track(), "cupp::vector upload",
                                 sim.trace_time_us(t0), (sim.host_time() - t0) * 1e6,
                                 {{"elements", host_.size()},
                                  {"bytes", host_.size() * sizeof(dev_elem)}});
        }
    }

    void release_device() const noexcept {
        dev_ref_.reset();
        cached_handle_ = device_type{};
        if (dev_ && dbuf_ != cusim::kNullAddr) {
            try {
                dev_->free(dbuf_);
            } catch (...) {
            }
        }
        dbuf_ = cusim::kNullAddr;
        dbuf_capacity_ = 0;
        device_valid_ = false;
    }

    mutable std::vector<T> host_;
    mutable bool host_valid_ = true;
    mutable bool device_valid_ = false;
    mutable const device* dev_ = nullptr;
    mutable cusim::DeviceAddr dbuf_ = cusim::kNullAddr;
    mutable size_type dbuf_capacity_ = 0;
    mutable std::optional<device_reference<device_type>> dev_ref_;
    mutable device_type cached_handle_{};
    bool textured_ = false;
    mutable std::uint64_t uploads_ = 0;
    mutable std::uint64_t downloads_ = 0;

    /// An enqueued-but-unsynchronized prefetch_to_host. `discarded` is set
    /// when a kernel dirtied the device data after the enqueue: the copy
    /// still lands in host_ at drain but no longer proves host validity.
    struct PendingAsync {
        cusim::StreamId stream;
        bool download;
        bool discarded;
    };
    mutable std::optional<PendingAsync> pending_;
};

}  // namespace cupp
