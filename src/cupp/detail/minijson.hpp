// Minimal JSON reader/writer for validating exported traces.
//
// Deliberately tiny: enough of RFC 8259 to parse what trace.cpp emits
// (objects, arrays, strings with the common escapes, numbers, booleans,
// null) and to re-serialise it for round-trip checks. Used by the trace
// unit test and the `trace_check` CI tool — not a general-purpose JSON
// library.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cupp::minijson {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
        nullptr;

    [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v); }
    [[nodiscard]] bool is_string() const {
        return std::holds_alternative<std::string>(v);
    }
    [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v); }

    [[nodiscard]] const Object& object() const { return std::get<Object>(v); }
    [[nodiscard]] const Array& array() const { return std::get<Array>(v); }
    [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
    [[nodiscard]] double number() const { return std::get<double>(v); }

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const Value* find(const std::string& key) const {
        if (!is_object()) return nullptr;
        const auto it = object().find(key);
        return it == object().end() ? nullptr : &it->second;
    }
};

class parse_error : public std::runtime_error {
public:
    parse_error(const std::string& what, std::size_t offset)
        : std::runtime_error(what + " at offset " + std::to_string(offset)) {}
};

namespace detail {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) throw parse_error("trailing content", pos_);
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    char peek() {
        if (pos_ >= text_.size()) throw parse_error("unexpected end", pos_);
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            throw parse_error(std::string("expected '") + c + "'", pos_);
        }
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Value parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value{parse_string()};
            case 't':
                if (consume_literal("true")) return Value{true};
                throw parse_error("bad literal", pos_);
            case 'f':
                if (consume_literal("false")) return Value{false};
                throw parse_error("bad literal", pos_);
            case 'n':
                if (consume_literal("null")) return Value{nullptr};
                throw parse_error("bad literal", pos_);
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Object obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Value{std::move(obj)};
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = parse_value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value{std::move(obj)};
        }
    }

    Value parse_array() {
        expect('[');
        Array arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Value{std::move(arr)};
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value{std::move(arr)};
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) throw parse_error("unterminated string", pos_);
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) throw parse_error("bad escape", pos_);
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) throw parse_error("bad \\u", pos_);
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            throw parse_error("bad \\u digit", pos_);
                        }
                    }
                    // The tracer only escapes control characters, so a
                    // single byte suffices here.
                    out.push_back(static_cast<char>(code & 0xFF));
                    break;
                }
                default: throw parse_error("unknown escape", pos_);
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) throw parse_error("expected number", pos_);
        try {
            return Value{std::stod(std::string(text_.substr(start, pos_ - start)))};
        } catch (const std::exception&) {
            throw parse_error("malformed number", start);
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

inline void serialize_to(const Value& v, std::string& out) {
    struct Visitor {
        std::string& out;
        void operator()(std::nullptr_t) const { out += "null"; }
        void operator()(bool b) const { out += b ? "true" : "false"; }
        void operator()(double d) const {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", d);
            out += buf;
        }
        void operator()(const std::string& s) const {
            out.push_back('"');
            for (const char c : s) {
                switch (c) {
                    case '"': out += "\\\""; break;
                    case '\\': out += "\\\\"; break;
                    case '\n': out += "\\n"; break;
                    case '\r': out += "\\r"; break;
                    case '\t': out += "\\t"; break;
                    default:
                        if (static_cast<unsigned char>(c) < 0x20) {
                            char buf[8];
                            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                            out += buf;
                        } else {
                            out.push_back(c);
                        }
                }
            }
            out.push_back('"');
        }
        void operator()(const Array& a) const {
            out.push_back('[');
            bool first = true;
            for (const Value& e : a) {
                if (!first) out.push_back(',');
                first = false;
                serialize_to(e, out);
            }
            out.push_back(']');
        }
        void operator()(const Object& o) const {
            out.push_back('{');
            bool first = true;
            for (const auto& [k, e] : o) {
                if (!first) out.push_back(',');
                first = false;
                (*this)(k);
                out.push_back(':');
                serialize_to(e, out);
            }
            out.push_back('}');
        }
    };
    std::visit(Visitor{out}, v.v);
}

}  // namespace detail

/// Parses a complete JSON document; throws parse_error on malformed input.
[[nodiscard]] inline Value parse(std::string_view text) {
    return detail::Parser(text).parse_document();
}

/// Canonical re-serialisation (objects sorted by key) for round-tripping.
[[nodiscard]] inline std::string serialize(const Value& v) {
    std::string out;
    detail::serialize_to(v, out);
    return out;
}

}  // namespace cupp::minijson
