// cupp::future — asynchronous results with continuations, HPX-style
// (Diehl et al., PAPERS.md), built on cupp::stream / cupp::event.
//
// An async producer (kernel::async, vector::prefetch_*_async) enqueues
// its work on a stream and returns a future completed by an event
// recorded right behind it. Continuations attach with .then(): because a
// stream is a FIFO, a continuation can enqueue more work onto the same
// stream *immediately* — stream order alone guarantees it runs after the
// antecedent, with no host synchronization anywhere in the chain.
// when_all() joins futures across streams with event waits (again no
// host sync: the join is a device-side edge).
//
// Error model: an antecedent's exception skips every downstream
// continuation and re-surfaces from get() on whichever future the caller
// finally consumes — exactly the propagation rule std::future users
// expect, with the transient/sticky taxonomy (exception.hpp) preserved.
// get()/wait() block via event::synchronize(), which runs under
// with_retry(default_retry_policy()) — so a scoped_retry_policy on the
// calling thread governs how transient sync failures are retried.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cupp/retry.hpp"
#include "cupp/stream.hpp"

namespace cupp {

template <typename T>
class future;

namespace detail {

/// Shared core of a future: the stream the work was enqueued on (owned or
/// borrowed), the completion event recorded behind it, the error slot,
/// and the antecedent cores kept alive so owned streams outlive chains.
struct future_core {
    const device* dev = nullptr;
    std::shared_ptr<stream> owned;     ///< set when the future owns its stream
    const stream* external = nullptr;  ///< set when bound to a caller's stream
    std::shared_ptr<event> done;       ///< completion marker (null on error)
    std::exception_ptr error;
    std::vector<std::shared_ptr<future_core>> hold;  ///< antecedent lifetimes

    [[nodiscard]] const stream& str() const { return external ? *external : *owned; }
};

template <typename T>
struct is_future : std::false_type {};
template <typename T>
struct is_future<future<T>> : std::true_type {};

template <typename T>
struct future_value;
template <typename T>
struct future_value<future<T>> {
    using type = T;
};

/// The one friend of future<T>: builds cores and wraps them (keeps the
/// future constructors private without a web of cross-friendships).
struct future_factory {
    static std::shared_ptr<future_core> error_core(
        const std::shared_ptr<future_core>& prev, std::exception_ptr e) {
        auto c = std::make_shared<future_core>();
        if (prev) {
            c->dev = prev->dev;
            c->owned = prev->owned;
            c->external = prev->external;
            c->hold.push_back(prev);
        }
        c->error = std::move(e);
        return c;
    }

    /// Core completed by a fresh event recorded behind everything the
    /// continuation just enqueued on the antecedent's stream.
    static std::shared_ptr<future_core> done_core(
        const std::shared_ptr<future_core>& prev) {
        auto c = std::make_shared<future_core>();
        c->dev = prev->dev;
        c->owned = prev->owned;
        c->external = prev->external;
        c->hold.push_back(prev);
        c->done = std::make_shared<event>(*c->dev);
        c->done->record(c->str());
        return c;
    }

    template <typename T>
    static future<T> wrap(std::shared_ptr<future_core> c, std::shared_ptr<T> v) {
        future<T> f(std::move(c));
        f.value_ = std::move(v);
        return f;
    }
    static future<void> wrap_void(std::shared_ptr<future_core> c);
};

/// Runs `body` now — stream FIFO order makes deferred execution
/// unnecessary — and packages the result. The antecedent's error
/// short-circuits (body never runs); a throwing body becomes the new
/// future's error; a body returning a future is passed through unwrapped.
template <typename Body>
auto chain(const std::shared_ptr<future_core>& prev, Body&& body) {
    if (!prev) throw usage_error("future: then() on an empty future");
    using R = std::remove_cvref_t<std::invoke_result_t<Body&&>>;
    if constexpr (is_future<R>::value) {
        using U = typename future_value<R>::type;
        if (prev->error) {
            if constexpr (std::is_void_v<U>) {
                return future_factory::wrap_void(
                    future_factory::error_core(prev, prev->error));
            } else {
                return future_factory::wrap<U>(
                    future_factory::error_core(prev, prev->error), nullptr);
            }
        }
        return std::forward<Body>(body)();
    } else if constexpr (std::is_void_v<R>) {
        if (prev->error) {
            return future_factory::wrap_void(
                future_factory::error_core(prev, prev->error));
        }
        try {
            std::forward<Body>(body)();
            return future_factory::wrap_void(future_factory::done_core(prev));
        } catch (...) {
            return future_factory::wrap_void(
                future_factory::error_core(prev, std::current_exception()));
        }
    } else {
        if (prev->error) {
            return future_factory::wrap<R>(
                future_factory::error_core(prev, prev->error), nullptr);
        }
        try {
            auto v = std::make_shared<R>(std::forward<Body>(body)());
            return future_factory::wrap<R>(future_factory::done_core(prev),
                                           std::move(v));
        } catch (...) {
            return future_factory::wrap<R>(
                future_factory::error_core(prev, std::current_exception()), nullptr);
        }
    }
}

/// Builds a future<void> around an enqueue action: runs it, records the
/// completion event, and captures any exception as the future's error.
/// `enqueue` receives the bound stream.
template <typename Enqueue>
future<void> make_async(const device& d, const stream* ext,
                        std::shared_ptr<stream> owned, Enqueue&& enqueue);

}  // namespace detail

/// Common state/queries shared by future<T> and future<void>. A
/// default-constructed future is *ready and empty* (get() is a no-op /
/// returns nothing), which lets producers hand back no-op futures cheaply.
class future_base {
public:
    future_base() = default;

    /// False only for a default-constructed (empty) future.
    [[nodiscard]] bool valid() const { return core_ != nullptr; }
    /// True when the future completed with an exception.
    [[nodiscard]] bool has_error() const { return core_ && core_->error != nullptr; }
    /// True when the work completed (errors count as ready; never blocks).
    [[nodiscard]] bool is_ready() const {
        if (!core_ || core_->error) return true;
        return core_->done ? core_->done->query() : true;
    }
    /// Blocks until the work completed. Unlike get(), does not rethrow.
    void wait() const {
        if (core_ && !core_->error && core_->done) core_->done->synchronize();
    }
    /// The stream the future's work is ordered on (valid futures only).
    [[nodiscard]] const stream& bound_stream() const { return core_->str(); }
    [[nodiscard]] const device& owner() const { return *core_->dev; }

protected:
    explicit future_base(std::shared_ptr<detail::future_core> core)
        : core_(std::move(core)) {}

    /// Shared get() front half: rethrow a captured error, else block until
    /// the completion event. Runs under the calling thread's retry policy
    /// (event::synchronize uses with_retry(default_retry_policy())).
    void sync_or_rethrow() const {
        if (!core_) return;
        if (core_->error) std::rethrow_exception(core_->error);
        if (core_->done) core_->done->synchronize();
    }

    std::shared_ptr<detail::future_core> core_;

    friend struct detail::future_factory;
    template <typename... Fs>
    friend future<void> when_all(const Fs&... fs);
};

/// A value arriving asynchronously. The value itself is produced by the
/// continuation chain on the host; the *completion* (everything enqueued
/// before and during the chain) is a device-side event.
template <typename T>
class future : public future_base {
public:
    future() = default;

    /// Blocks until complete, rethrows a captured error, returns the value.
    [[nodiscard]] T get() const {
        sync_or_rethrow();
        if (!value_) throw usage_error("future: get() on an empty future");
        return *value_;
    }

    /// Attaches a continuation. `f` is invoked immediately with the value
    /// — as (value) or (value, device, stream) — and may enqueue more
    /// work on bound_stream(); stream FIFO order sequences it after this
    /// future's work. Skipped (error propagated) when this future failed.
    template <typename F>
    auto then(F&& f) const {
        auto core = core_;
        auto value = value_;
        return detail::chain(core, [&]() -> decltype(auto) {
            if constexpr (std::is_invocable_v<F&&, T&, const device&, const stream&>) {
                return std::forward<F>(f)(*value, *core->dev, core->str());
            } else {
                return std::forward<F>(f)(*value);
            }
        });
    }

private:
    friend struct detail::future_factory;
    explicit future(std::shared_ptr<detail::future_core> core)
        : future_base(std::move(core)) {}

    std::shared_ptr<T> value_;
};

/// Completion without a value (async launches, prefetches).
template <>
class future<void> : public future_base {
public:
    future() = default;

    /// Blocks until complete; rethrows a captured error.
    void get() const { sync_or_rethrow(); }

    /// Attaches a continuation, invoked immediately as () or
    /// (device, stream); see future<T>::then for ordering and errors.
    template <typename F>
    auto then(F&& f) const {
        auto core = core_;
        return detail::chain(core, [&]() -> decltype(auto) {
            if constexpr (std::is_invocable_v<F&&, const device&, const stream&>) {
                return std::forward<F>(f)(*core->dev, core->str());
            } else {
                return std::forward<F>(f)();
            }
        });
    }

private:
    friend struct detail::future_factory;
    explicit future(std::shared_ptr<detail::future_core> core)
        : future_base(std::move(core)) {}
};

namespace detail {

inline future<void> future_factory::wrap_void(std::shared_ptr<future_core> c) {
    return future<void>(std::move(c));
}

template <typename Enqueue>
future<void> make_async(const device& d, const stream* ext,
                        std::shared_ptr<stream> owned, Enqueue&& enqueue) {
    auto c = std::make_shared<future_core>();
    c->dev = &d;
    c->owned = std::move(owned);
    c->external = ext;
    try {
        std::forward<Enqueue>(enqueue)(c->str());
        c->done = std::make_shared<event>(d);
        c->done->record(c->str());
    } catch (...) {
        c->error = std::current_exception();
        c->done.reset();
    }
    return future_factory::wrap_void(std::move(c));
}

}  // namespace detail

/// Joins futures (same device, any streams) into one future<void> bound
/// to the first future's stream: that stream waits on every other
/// future's completion event — device-side edges, no host sync. The first
/// captured error (in argument order) propagates.
template <typename... Fs>
future<void> when_all(const Fs&... fs) {
    static_assert(sizeof...(Fs) > 0, "when_all needs at least one future");
    std::vector<std::shared_ptr<detail::future_core>> cores{fs.core_...};
    for (const auto& c : cores) {
        if (!c) throw usage_error("when_all: empty future");
        if (c->dev != cores.front()->dev) {
            throw usage_error("when_all: futures from different devices");
        }
    }
    for (const auto& c : cores) {
        if (c->error) {
            return detail::future_factory::wrap_void(
                detail::future_factory::error_core(c, c->error));
        }
    }
    auto out = std::make_shared<detail::future_core>();
    const auto& first = cores.front();
    out->dev = first->dev;
    out->owned = first->owned;
    out->external = first->external;
    out->hold = std::move(cores);
    try {
        for (std::size_t i = 1; i < out->hold.size(); ++i) {
            if (out->hold[i]->done) {
                // Device-side join: the target stream orders behind the
                // other future's completion record.
                translated([&] {
                    out->dev->sim().stream_wait_event(out->str().id(),
                                                      out->hold[i]->done->id());
                });
            }
        }
        out->done = std::make_shared<event>(*out->dev);
        out->done->record(out->str());
    } catch (...) {
        out->error = std::current_exception();
        out->done.reset();
    }
    return detail::future_factory::wrap_void(std::move(out));
}

}  // namespace cupp
