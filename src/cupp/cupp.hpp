// Umbrella header for the CuPP framework.
//
//   #include <cupp/cupp.hpp>
//
//   cupp::device device_hdl;                      // §4.1 device handle
//   cupp::vector<float> data = {...};             // §4.6 lazy vector
//   cupp::kernel k(get_kernel_ptr(), grid, block);// §4.3 kernel functor
//   k(device_hdl, data);                          // C++-style kernel call
#pragma once

#include "cupp/call_traits.hpp"
#include "cupp/constant_array.hpp"
#include "cupp/device.hpp"
#include "cupp/device_reference.hpp"
#include "cupp/exception.hpp"
#include "cupp/future.hpp"
#include "cupp/graph.hpp"
#include "cupp/kernel.hpp"
#include "cupp/memory1d.hpp"
#include "cupp/prof_session.hpp"
#include "cupp/retry.hpp"
#include "cupp/shared_ptr.hpp"
#include "cupp/stream.hpp"
#include "cupp/trace.hpp"
#include "cupp/type_traits.hpp"
#include "cupp/vector.hpp"
