// cupp::prof_session — RAII scoping of cusim::prof collection.
//
// The profiler's session runtime mirrors (cusimProfilerStart/Stop) follow
// the C-flavoured cudaProfilerStart/Stop; this is the CuPP-style wrapper:
//
//     cusim::prof::enable("report.json");   // or CUPP_PROF=report.json
//     {
//         cupp::prof_session roi;           // collection on
//         k(device_hdl, data);              // ...the region of interest...
//     }                                     // collection off again
//
// Like the runtime mirrors, a session is a no-op unless the profiler's
// collector is enabled — code instrumented with prof_session costs nothing
// in un-profiled runs.
#pragma once

#include "cusim/prof.hpp"

namespace cupp {

/// Starts profiler collection on construction and stops it on destruction.
/// Move-only; a moved-from session no longer stops anything.
class prof_session {
public:
    prof_session() { cusim::prof::start(); }
    ~prof_session() {
        if (active_) cusim::prof::stop();
    }

    prof_session(const prof_session&) = delete;
    prof_session& operator=(const prof_session&) = delete;

    prof_session(prof_session&& other) noexcept : active_(other.active_) {
        other.active_ = false;
    }
    prof_session& operator=(prof_session&& other) noexcept {
        if (this != &other) {
            if (active_) cusim::prof::stop();
            active_ = other.active_;
            other.active_ = false;
        }
        return *this;
    }

private:
    bool active_ = true;
};

}  // namespace cupp
