// cupp::retry_policy / cupp::with_retry — bounded retries for transient
// device failures.
//
// The exception taxonomy (exception.hpp) splits failures into transient
// (retrying the same call can succeed) and everything else. with_retry is
// the single retry loop the framework layers use around kernel launches
// and host<->device transfers: re-run the operation up to
// retry_policy::max_attempts times with exponential backoff, rethrow
// non-transient failures immediately, and rethrow the last transient
// failure once the attempts are spent.
//
// Backoff runs on the *simulated* clock (Device::advance_host) so retried
// operations stay visible — and honest — on the modelled timeline; tests
// inject their own sleep function to count backoffs instead. Every backoff
// is traced as a span on the device's host lane, and cupp.retry.*
// counters aggregate attempts / recoveries / exhaustions.
//
// This is only safe because cusim::faults injects failures *before* an
// operation mutates state: a failed launch leaves the staged kernel
// arguments intact and a failed transfer leaves both buffers untouched,
// so re-running the same call really is the same call.
#pragma once

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "cupp/exception.hpp"
#include "cupp/trace.hpp"
#include "cusim/device.hpp"

namespace cupp {

/// How (and whether) to retry transient failures. The default policy
/// gives an operation 4 attempts with 100 µs / 400 µs / 1.6 ms backoffs.
struct retry_policy {
    int max_attempts = 4;              ///< total attempts, including the first
    double initial_backoff_s = 100e-6; ///< wait after the first failure
    double backoff_multiplier = 4.0;   ///< growth per subsequent failure
    /// Test hook: when set, called with the backoff instead of advancing
    /// the device's simulated host clock.
    std::function<void(double)> sleep;

    /// Backoff after the `failure_index`-th failure (1-based).
    [[nodiscard]] double backoff_seconds(int failure_index) const {
        double s = initial_backoff_s;
        for (int i = 1; i < failure_index; ++i) s *= backoff_multiplier;
        return s;
    }
};

/// The process-wide policy the framework layers (kernel launches, vector
/// and memory1d transfers) use. Mutable: tune or disable retries globally
/// by assigning to it (max_attempts = 1 turns retrying off).
inline retry_policy& default_retry_policy() {
    static retry_policy p;
    return p;
}

/// Runs `op`, retrying transient CuPP exceptions per `policy`. `sim` (may
/// be null) supplies the simulated clock for backoff and the trace lane;
/// `site` names the operation in traces. Non-transient exceptions — and
/// the final transient one — propagate unchanged.
template <typename F>
decltype(auto) with_retry(const retry_policy& policy, cusim::Device* sim,
                          const char* site, F&& op) {
    static const trace::counter_handle c_attempts("cupp.retry.attempts");
    static const trace::counter_handle c_recovered("cupp.retry.recovered");
    static const trace::counter_handle c_exhausted("cupp.retry.exhausted");
    int failures = 0;
    for (;;) {
        try {
            if constexpr (std::is_void_v<std::invoke_result_t<F&>>) {
                op();
                if (failures > 0) c_recovered.add();
                return;
            } else {
                decltype(auto) result = op();
                if (failures > 0) c_recovered.add();
                return static_cast<std::invoke_result_t<F&>>(result);
            }
        } catch (const exception& e) {
            ++failures;
            if (!e.transient() || failures >= policy.max_attempts) {
                if (e.transient()) c_exhausted.add();
                throw;
            }
            c_attempts.add();
            const double backoff = policy.backoff_seconds(failures);
            const double t0 = sim != nullptr ? sim->host_time() : 0.0;
            if (policy.sleep) {
                policy.sleep(backoff);
            } else if (sim != nullptr) {
                sim->advance_host(backoff);
            }
            if (sim != nullptr && trace::enabled()) {
                trace::emit_complete(
                    sim->host_track(),
                    trace::format("cupp::retry %s (failure %d)", site, failures),
                    sim->trace_time_us(t0), backoff * 1e6,
                    {{"code", cusim::error_string(e.code())},
                     {"backoff_us", backoff * 1e6}});
            }
        }
    }
}

}  // namespace cupp
