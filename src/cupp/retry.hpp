// cupp::retry_policy / cupp::with_retry — bounded retries for transient
// device failures.
//
// The exception taxonomy (exception.hpp) splits failures into transient
// (retrying the same call can succeed) and everything else. with_retry is
// the single retry loop the framework layers use around kernel launches
// and host<->device transfers: re-run the operation up to
// retry_policy::max_attempts times with exponential backoff, rethrow
// non-transient failures immediately, and rethrow the last transient
// failure once the attempts are spent.
//
// Two policy knobs make retries safe under *many concurrent requests*
// (cupp::serve):
//
//  * max_total_backoff_s caps the cumulative backoff one with_retry call
//    may spend. When the next backoff would overrun the cap the loop stops
//    immediately and throws deadline_exceeded_error — a request's time
//    budget can never be silently eaten by exponential backoff.
//  * jitter (with jitter_seed) deterministically de-synchronises
//    concurrent retriers: each backoff is scaled by a pseudo-random factor
//    in [1-jitter, 1+jitter] derived *only* from (jitter_seed,
//    failure_index), so the exact sequence is reproducible in tests while
//    two requests with different seeds never back off in lock-step.
//
// Backoff runs on the *simulated* clock (Device::advance_host) so retried
// operations stay visible — and honest — on the modelled timeline; tests
// inject their own sleep function to count backoffs instead. Every backoff
// is traced as a span on the device's host lane, and cupp.retry.*
// counters aggregate attempts / recoveries / exhaustions.
//
// This is only safe because cusim::faults injects failures *before* an
// operation mutates state: a failed launch leaves the staged kernel
// arguments intact and a failed transfer leaves both buffers untouched,
// so re-running the same call really is the same call.
#pragma once

#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>

#include "cupp/exception.hpp"
#include "cupp/trace.hpp"
#include "cusim/device.hpp"

namespace cupp {

/// How (and whether) to retry transient failures. The default policy
/// gives an operation 4 attempts with 100 µs / 400 µs / 1.6 ms backoffs,
/// no jitter and no total-backoff cap.
struct retry_policy {
    int max_attempts = 4;              ///< total attempts, including the first
    double initial_backoff_s = 100e-6; ///< wait after the first failure
    double backoff_multiplier = 4.0;   ///< growth per subsequent failure
    /// Cumulative backoff budget for one with_retry call. When the next
    /// backoff would exceed it, with_retry stops retrying and throws
    /// deadline_exceeded_error instead of sleeping — the deadline cap
    /// cupp::serve threads a request budget through.
    double max_total_backoff_s = std::numeric_limits<double>::infinity();
    /// Deterministic jitter: each backoff is scaled by a factor in
    /// [1-jitter, 1+jitter] derived from (jitter_seed, failure_index).
    /// 0 disables jitter; values are clamped to [0, 1].
    double jitter = 0.0;
    std::uint64_t jitter_seed = 0;
    /// Test hook: when set, called with the backoff instead of advancing
    /// the device's simulated host clock.
    std::function<void(double)> sleep;

    /// Backoff after the `failure_index`-th failure (1-based), jitter
    /// applied. Pure in (policy fields, failure_index): concurrent callers
    /// and repeated runs see the identical sequence.
    [[nodiscard]] double backoff_seconds(int failure_index) const {
        double s = initial_backoff_s;
        for (int i = 1; i < failure_index; ++i) s *= backoff_multiplier;
        const double j = jitter < 0.0 ? 0.0 : (jitter > 1.0 ? 1.0 : jitter);
        if (j > 0.0) {
            // splitmix64 over (seed, index): a stateless hash, so the
            // factor for failure k never depends on how many backoffs ran
            // before it (with_retry calls stay independent).
            std::uint64_t z = jitter_seed + 0x9e3779b97f4a7c15ull *
                                                static_cast<std::uint64_t>(failure_index);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            z ^= z >> 31;
            // uniform in [-1, 1) from the top 53 bits
            const double u =
                static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0) * 2.0 - 1.0;
            s *= 1.0 + j * u;
        }
        return s;
    }
};

namespace detail {
/// The process-wide default policy plus its lock. Request threads read the
/// policy concurrently while tests (or operators) swap it, so every read
/// takes a snapshot under the lock — handing out a mutable reference, as
/// this used to, was a data race (caught by the TSan regression test).
struct default_policy_state {
    std::mutex mu;
    retry_policy policy;

    static default_policy_state& instance() {
        static default_policy_state s;
        return s;
    }
};

/// Per-thread override installed by scoped_retry_policy (cupp::serve uses
/// it to thread a request's remaining budget through every framework-level
/// with_retry on the worker thread — vector uploads, kernel launches,
/// stream syncs — without changing their signatures).
inline const retry_policy*& thread_retry_override() {
    thread_local const retry_policy* override_ = nullptr;
    return override_;
}
}  // namespace detail

/// Snapshot of the policy the framework layers (kernel launches, vector
/// and memory1d transfers) use: the calling thread's scoped override when
/// one is installed, else a copy of the process-wide default taken under
/// its lock. Always a value — concurrent set_default_retry_policy() can
/// never mutate a policy mid-retry-loop.
[[nodiscard]] inline retry_policy default_retry_policy() {
    if (const retry_policy* o = detail::thread_retry_override()) return *o;
    auto& s = detail::default_policy_state::instance();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.policy;
}

/// Replaces the process-wide default policy (max_attempts = 1 turns
/// retrying off). Safe to call while other threads are issuing retried
/// operations: they see either the old or the new policy, never a torn mix.
inline void set_default_retry_policy(retry_policy p) {
    auto& s = detail::default_policy_state::instance();
    std::lock_guard<std::mutex> lock(s.mu);
    s.policy = std::move(p);
}

/// RAII thread-local policy override: while alive, default_retry_policy()
/// on *this thread* returns `p` instead of the process default. Nestable.
class scoped_retry_policy {
public:
    explicit scoped_retry_policy(retry_policy p)
        : policy_(std::move(p)), previous_(detail::thread_retry_override()) {
        detail::thread_retry_override() = &policy_;
    }
    ~scoped_retry_policy() { detail::thread_retry_override() = previous_; }
    scoped_retry_policy(const scoped_retry_policy&) = delete;
    scoped_retry_policy& operator=(const scoped_retry_policy&) = delete;

private:
    retry_policy policy_;
    const retry_policy* previous_;
};

/// Runs `op`, retrying transient CuPP exceptions per `policy`. `sim` (may
/// be null) supplies the simulated clock for backoff and the trace lane;
/// `site` names the operation in traces. Non-transient exceptions — and
/// the final transient one — propagate unchanged; a backoff that would
/// overrun policy.max_total_backoff_s raises deadline_exceeded_error
/// *before* sleeping, so the caller's budget is never overshot.
template <typename F>
decltype(auto) with_retry(const retry_policy& policy, cusim::Device* sim,
                          const char* site, F&& op) {
    static const trace::counter_handle c_attempts("cupp.retry.attempts");
    static const trace::counter_handle c_recovered("cupp.retry.recovered");
    static const trace::counter_handle c_exhausted("cupp.retry.exhausted");
    static const trace::counter_handle c_deadline("cupp.retry.deadline_capped");
    int failures = 0;
    double backoff_spent = 0.0;
    for (;;) {
        try {
            if constexpr (std::is_void_v<std::invoke_result_t<F&>>) {
                op();
                if (failures > 0) c_recovered.add();
                return;
            } else {
                decltype(auto) result = op();
                if (failures > 0) c_recovered.add();
                return static_cast<std::invoke_result_t<F&>>(result);
            }
        } catch (const exception& e) {
            ++failures;
            if (!e.transient() || failures >= policy.max_attempts) {
                if (e.transient()) c_exhausted.add();
                throw;
            }
            const double backoff = policy.backoff_seconds(failures);
            if (backoff_spent + backoff > policy.max_total_backoff_s) {
                c_deadline.add();
                throw deadline_exceeded_error(trace::format(
                    "%s: backoff budget exhausted after %d failure(s) "
                    "(%.0f us spent, next backoff %.0f us, cap %.0f us); last error: %s",
                    site, failures, backoff_spent * 1e6, backoff * 1e6,
                    policy.max_total_backoff_s * 1e6, e.what()));
            }
            backoff_spent += backoff;
            c_attempts.add();
            const double t0 = sim != nullptr ? sim->host_time() : 0.0;
            if (policy.sleep) {
                policy.sleep(backoff);
            } else if (sim != nullptr) {
                sim->advance_host(backoff);
            }
            if (sim != nullptr && trace::enabled()) {
                trace::emit_complete(
                    sim->host_track(),
                    trace::format("cupp::retry %s (failure %d)", site, failures),
                    sim->trace_time_us(t0), backoff * 1e6,
                    {{"code", cusim::error_string(e.code())},
                     {"backoff_us", backoff * 1e6}});
            }
        }
    }
}

}  // namespace cupp
