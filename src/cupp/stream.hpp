// cupp::stream / cupp::event — the host-facing handles over cusim's
// asynchronous streams (the cudaStream_t the thesis' CuPP never had to
// expose, done CuPP-style: RAII lifetime, exceptions instead of error
// codes, transient failures retried at the enqueue point).
//
// A stream is a FIFO of deferred device work. kernel::operator() gains a
// stream-bound overload, and cupp::vector / cupp::memory1d can prefetch
// through one; everything enqueued runs at the next synchronization point
// in the deterministic device-wide order (see cusim/stream.hpp and
// DESIGN.md "Streams & events").
#pragma once

#include <utility>

#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cupp/retry.hpp"

namespace cupp {

class event;

/// Move-only RAII stream handle bound to a device.
class stream {
public:
    explicit stream(const device& d) : dev_(&d) {
        // Stream creation is a (tiny) resource allocation; a transient
        // injected failure is retryable like any malloc.
        with_retry(default_retry_policy(), &d.sim(), "stream create", [&] {
            translated([&] { id_ = d.sim().stream_create(); });
        });
    }
    ~stream() { destroy(); }

    stream(const stream&) = delete;
    stream& operator=(const stream&) = delete;

    stream(stream&& other) noexcept : dev_(other.dev_), id_(other.id_) {
        other.dev_ = nullptr;
        other.id_ = cusim::kDefaultStream;
    }
    stream& operator=(stream&& other) noexcept {
        if (this != &other) {
            destroy();
            dev_ = other.dev_;
            id_ = other.id_;
            other.dev_ = nullptr;
            other.id_ = cusim::kDefaultStream;
        }
        return *this;
    }

    [[nodiscard]] cusim::StreamId id() const { return id_; }
    [[nodiscard]] const device& owner() const { return *dev_; }

    /// True when every enqueued op has completed (never blocks).
    [[nodiscard]] bool query() const {
        return translated([&] { return dev_->sim().stream_query(id_); });
    }

    /// Executes pending work and blocks the host until the stream is idle.
    void synchronize() {
        with_retry(default_retry_policy(), &dev_->sim(), "stream sync", [&] {
            translated([&] { dev_->sim().stream_synchronize(id_); });
        });
    }

    /// Orders all later work on this stream behind `ev`'s current record
    /// (defined out-of-line below, after event).
    void wait(const event& ev);

private:
    void destroy() noexcept {
        if (dev_ != nullptr && id_ != cusim::kDefaultStream) {
            try {
                dev_->sim().stream_destroy(id_);
            } catch (...) {
                // Destruction must not throw; a deferred kernel failure
                // draining here is dropped, as cudaStreamDestroy would.
            }
        }
        dev_ = nullptr;
        id_ = cusim::kDefaultStream;
    }

    const device* dev_;
    cusim::StreamId id_ = cusim::kDefaultStream;
};

/// Move-only RAII event handle bound to a device.
class event {
public:
    explicit event(const device& d) : dev_(&d) {
        with_retry(default_retry_policy(), &d.sim(), "event create", [&] {
            translated([&] { id_ = d.sim().event_create(); });
        });
    }
    ~event() { destroy(); }

    event(const event&) = delete;
    event& operator=(const event&) = delete;

    event(event&& other) noexcept : dev_(other.dev_), id_(other.id_) {
        other.dev_ = nullptr;
        other.id_ = 0;
    }
    event& operator=(event&& other) noexcept {
        if (this != &other) {
            destroy();
            dev_ = other.dev_;
            id_ = other.id_;
            other.dev_ = nullptr;
            other.id_ = 0;
        }
        return *this;
    }

    [[nodiscard]] cusim::EventId id() const { return id_; }
    [[nodiscard]] const device& owner() const { return *dev_; }

    /// Marks "after everything enqueued so far" on the stream (or on the
    /// whole device for the no-argument flavour).
    void record(const stream& s) {
        translated([&] { dev_->sim().event_record(id_, s.id()); });
    }
    void record() {
        translated([&] { dev_->sim().event_record(id_, cusim::kDefaultStream); });
    }

    /// True when the recorded point completed (an unrecorded event counts
    /// as complete; never blocks).
    [[nodiscard]] bool query() const {
        return translated([&] { return dev_->sim().event_query(id_); });
    }

    /// Blocks the host until the recorded point on the timeline.
    void synchronize() {
        with_retry(default_retry_policy(), &dev_->sim(), "event sync", [&] {
            translated([&] { dev_->sim().event_synchronize(id_); });
        });
    }

    /// Milliseconds of modelled time between two completed records.
    [[nodiscard]] static double elapsed_ms(const event& start, const event& stop) {
        return translated(
            [&] { return start.dev_->sim().event_elapsed_ms(start.id_, stop.id_); });
    }

private:
    void destroy() noexcept {
        if (dev_ != nullptr && id_ != 0) {
            try {
                dev_->sim().event_destroy(id_);
            } catch (...) {
            }
        }
        dev_ = nullptr;
        id_ = 0;
    }

    const device* dev_;
    cusim::EventId id_ = 0;
};

inline void stream::wait(const event& ev) {
    translated([&] { dev_->sim().stream_wait_event(id_, ev.id()); });
}

}  // namespace cupp
