// Kernel call traits: host/device type transformation (§4.5) and the
// transform() / get_device_reference() / dirty() protocol (§4.4).
//
// A user type opts into kernel passing by declaring
//
//   struct host_example {
//       typedef device_example device_type;
//       typedef host_example   host_type;
//       device_type transform(const cupp::device&) const;                  // optional
//       cupp::device_reference<device_type>
//           get_device_reference(const cupp::device&) const;               // optional
//       void dirty(cupp::device_reference<device_type>);                   // optional
//   };
//
// "The CuPP framework employs template metaprogramming to detect whether a
// function is declared or not. If it is not declared, the default
// implementation is used" (§4.4) — here the detection is C++20 concepts,
// and the defaults are exactly those of listing 4.5: static_cast for
// transform, copy-the-transformed-object for get_device_reference, and
// replace-*this-from-device-data for dirty.
#pragma once

#include <type_traits>

#include "cupp/device.hpp"
#include "cupp/device_reference.hpp"

namespace cupp {

// --- host/device type mapping (§4.5) ---

template <typename T>
concept has_device_type = requires { typename T::device_type; };

template <typename T>
concept has_host_type = requires { typename T::host_type; };

namespace detail {
template <typename T, bool = has_device_type<T>>
struct device_type_impl {
    using type = T;  // PODs and plain classes: device type == host type
};
template <typename T>
struct device_type_impl<T, true> {
    using type = typename T::device_type;
};

template <typename T, bool = has_host_type<T>>
struct host_type_impl {
    using type = T;
};
template <typename T>
struct host_type_impl<T, true> {
    using type = typename T::host_type;
};
}  // namespace detail

/// The type the device works with when the host passes a T (§4.5: "the
/// matching between the two types has to be a 1:1 relation").
template <typename T>
using device_type_t = typename detail::device_type_impl<T>::type;

/// The host-side partner of a device type.
template <typename T>
using host_type_t = typename detail::host_type_impl<T>::type;

// --- member detection (the "template metaprogramming" of §4.4) ---

template <typename T>
concept has_transform = requires(const T& t, const device& d) {
    { t.transform(d) } -> std::convertible_to<device_type_t<T>>;
};

template <typename T>
concept has_get_device_reference = requires(const T& t, const device& d) {
    { t.get_device_reference(d) } -> std::convertible_to<device_reference<device_type_t<T>>>;
};

template <typename T>
concept has_dirty =
    requires(T& t, device_reference<device_type_t<T>> r) { t.dirty(r); };

// --- the three operations with their §4.4 defaults ---

/// Produces the byte-wise-copyable object pushed onto the kernel stack for a
/// by-value parameter.
template <typename T>
[[nodiscard]] device_type_t<T> transform_for_device(const T& value, const device& d) {
    if constexpr (has_transform<T>) {
        return value.transform(d);
    } else {
        // Default of listing 4.5: cast *this to the device type.
        return static_cast<device_type_t<T>>(value);
    }
}

/// Produces the global-memory copy used for a by-reference parameter.
template <typename T>
[[nodiscard]] device_reference<device_type_t<T>> make_device_reference(const T& value,
                                                                       const device& d) {
    if constexpr (has_get_device_reference<T>) {
        return value.get_device_reference(d);
    } else {
        // Default: copy the transformed object to global memory.
        return device_reference<device_type_t<T>>(d, transform_for_device(value, d));
    }
}

/// Applied to a host object after a kernel received it as a non-const
/// reference: the device may have changed it (§4.4).
template <typename T>
void apply_dirty(T& value, device_reference<device_type_t<T>> ref) {
    if constexpr (has_dirty<T>) {
        value.dirty(ref);
    } else {
        // Default: replace *this with the updated device data.
        value = static_cast<T>(ref.get());
    }
}

}  // namespace cupp
