// cupp::constant_array<T> — read-only data in the device's constant memory.
//
// The thesis lists constant-memory support as CuPP future work (§7); this
// is that extension. Constant memory is 64 KiB, read through a per-MP cache
// at near-register cost (Table 2.2 discussion, §2.1), and ideal for
// parameters every thread reads: flocking weights, physics constants,
// small lookup tables.
//
// A constant_array plugs into the kernel-call protocol via the type
// transformation: its device type is cusim::ConstantPtr<T>, so kernels
// declare `ConstantPtr<T>` parameters and hosts pass the constant_array.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cusim/constant_memory.hpp"

namespace cupp {

template <typename T>
class constant_array {
    static_assert(std::is_trivially_copyable_v<T>,
                  "constant memory holds byte-wise copyable values only");

public:
    using device_type = cusim::ConstantPtr<T>;
    using host_type = constant_array<T>;

    /// Allocates constant memory for `values` and uploads them.
    constant_array(const device& d, std::span<const T> values)
        : dev_(&d), host_(values.begin(), values.end()) {
        ptr_ = translated([&] { return d.sim().template malloc_constant<T>(host_.size()); });
        upload();
    }

    constant_array(const device& d, std::initializer_list<T> values)
        : constant_array(d, std::span<const T>(values.begin(), values.end())) {}

    // Constant memory has no free(); the allocation lives as long as the
    // device. The handle itself is freely copyable (both copies refer to
    // the same constant range, which is immutable from the device side).
    constant_array(const constant_array&) = default;
    constant_array& operator=(const constant_array&) = default;

    [[nodiscard]] std::uint64_t size() const { return host_.size(); }

    /// Host-side read access (the host copy is always current: only the
    /// host can write constant memory).
    [[nodiscard]] const T& operator[](std::uint64_t i) const { return host_.at(i); }

    /// Updates one value and re-uploads (blocks while a kernel is active).
    void set(std::uint64_t i, const T& value) {
        host_.at(i) = value;
        upload();
    }

    /// The kernel-call protocol: pass the ConstantPtr by value.
    [[nodiscard]] device_type transform(const device&) const { return ptr_; }

private:
    void upload() {
        translated([&] {
            dev_->sim().copy_to_constant(ptr_.addr(), host_.data(),
                                         host_.size() * sizeof(T));
        });
    }

    const device* dev_;
    std::vector<T> host_;
    cusim::ConstantPtr<T> ptr_;
};

}  // namespace cupp
