// cupp::device_reference<T> — a reference to an object living in global
// memory (thesis §4.4).
//
// "When created, it automatically copies the object passed to its
// constructor to global memory. The member function get() can be used to
// transfer the object from global memory back to the host memory."
//
// Copyable with shared ownership of the device copy, because the kernel
// call traits pass device_reference by value (listing 4.4/4.5).
#pragma once

#include <memory>
#include <type_traits>

#include "cupp/device.hpp"
#include "cupp/exception.hpp"
#include "cupp/retry.hpp"
#include "cusim/types.hpp"

namespace cupp {

template <typename T>
class device_reference {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only byte-wise copyable device types can be referenced in global memory");

public:
    /// Copies `value` to freshly allocated global memory.
    device_reference(const device& d, const T& value)
        : state_(std::make_shared<State>(d)) {
        // Allocation and upload retry *separately*: retrying them as one
        // unit would leak an allocation per transient upload failure.
        with_retry(default_retry_policy(), &d.sim(), "device_reference malloc", [&] {
            translated([&] { state_->addr = d.sim().malloc_bytes(sizeof(T)); });
        });
        with_retry(default_retry_policy(), &d.sim(), "device_reference upload", [&] {
            translated([&] { d.sim().copy_to_device(state_->addr, &value, sizeof(T)); });
        });
    }

    /// Reads the (possibly kernel-modified) object back from global memory.
    /// Synchronises with the device (§4.3.2 step 4).
    [[nodiscard]] T get() const {
        T value;
        with_retry(default_retry_policy(), &state_->dev->sim(),
                   "device_reference download", [&] {
                       translated([&] {
                           state_->dev->sim().copy_to_host(&value, state_->addr, sizeof(T));
                       });
                   });
        return value;
    }

    /// Overwrites the device copy from the host.
    void set(const T& value) {
        with_retry(default_retry_policy(), &state_->dev->sim(),
                   "device_reference upload", [&] {
                       translated([&] {
                           state_->dev->sim().copy_to_device(state_->addr, &value, sizeof(T));
                       });
                   });
    }

    /// Address of the object in global memory — what is pushed onto the
    /// kernel stack for a by-reference parameter (§4.3.2 step 2).
    [[nodiscard]] cusim::DeviceAddr addr() const { return state_->addr; }

private:
    struct State {
        explicit State(const device& d) : dev(&d) {}
        ~State() {
            if (addr != cusim::kNullAddr) {
                try {
                    dev->sim().free_bytes(addr);
                } catch (...) {
                    // Freeing a dead device copy must not terminate.
                }
            }
        }
        State(const State&) = delete;
        State& operator=(const State&) = delete;

        const device* dev;
        cusim::DeviceAddr addr = cusim::kNullAddr;
    };

    std::shared_ptr<State> state_;
};

}  // namespace cupp
