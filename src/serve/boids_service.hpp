// Boids-as-a-service: the cupp::serve handler that turns the thesis
// workload (GpuBoidsPlugin, chapter 6) into a servable request.
//
// A request's payload indexes a deterministic catalog of small flock
// scenarios (boids_catalog_entry). The handler runs the scenario on the
// worker's device — V5, double-buffered, no draw stage — polling
// worker_context::check_deadline() between steps, and returns an FNV-1a
// digest of the final flock. Because the GPU and CPU plugins compute
// bit-identical flocks (the boids_demo contract), the digest of a
// *fault-free serial CPU run* (boids_oracle_digest) is the oracle: any
// cross-tenant corruption, botched recovery or torn transfer under chaos
// shows up as a digest mismatch.
//
// Scenarios with postprocess_streams > 0 additionally partition the final
// speeds across that many asynchronous streams (prefetch → stream-bound
// scale kernel → prefetch back) and verify the result against host math —
// exercising the PR-5 stream path under multi-tenant pressure. A mismatch
// throws usage_error: corruption is a bug, never retried.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/serve.hpp"
#include "steer/agent.hpp"

namespace cupp::serve {

/// One catalog scenario. Agent counts are multiples of 128
/// (kThreadsPerBlock) as the V5 kernels require.
struct boids_request {
    std::uint32_t agents = 256;
    std::uint32_t steps = 4;
    std::uint32_t think_period = 1;
    std::uint64_t seed = 2009;
    unsigned postprocess_streams = 0;  ///< 0 = no stream epilogue
};

/// Deterministic payload -> scenario mapping (pure in `payload`).
[[nodiscard]] boids_request boids_catalog_entry(std::uint64_t payload);

/// FNV-1a over the raw bytes of every agent's position / forward / speed.
[[nodiscard]] std::uint64_t flock_digest(const std::vector<steer::Agent>& flock);

/// The expected digest: a serial, fault-free CpuBoidsPlugin run of the
/// same scenario. Deterministic and device-free.
[[nodiscard]] std::uint64_t boids_oracle_digest(const boids_request& r);

/// Handler executing boids_catalog_entry(request.payload) on the worker's
/// device; returns flock_digest of the result.
[[nodiscard]] handler_fn make_boids_handler();

}  // namespace cupp::serve
