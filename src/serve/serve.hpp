// cupp::serve — a multi-tenant request broker over the simulated devices.
//
// The ROADMAP's "heavy traffic" item made concrete: thousands of
// concurrent simulation requests (boids-as-a-service, boids_service.hpp)
// multiplexed onto N devices, with every failure mode a first-class,
// tested behavior instead of an accident:
//
//  * Admission control — a bounded queue with per-tenant quotas
//    (max queued, max in flight). Overload is shed *at submit time* with
//    admission_rejected_error / outcome::admission_rejected; nothing ever
//    queues unboundedly.
//  * Deadlines — each request carries a modelled-time budget. The budget
//    is threaded through every framework retry on the worker thread
//    (scoped_retry_policy → retry_policy::max_total_backoff_s), so
//    exponential backoff can never overrun it; handlers poll
//    worker_context::check_deadline() between steps. Expiry surfaces as
//    outcome::deadline_exceeded with the device left healthy.
//  * Graceful degradation — a per-device circuit breaker. K consecutive
//    sticky failures trip it (closed → open); the worker then drains its
//    in-flight work, runs device::reset() recovery, and half-opens: the
//    next request is a probe whose success closes the breaker and whose
//    failure re-opens it. All transitions are cupp.serve.* counters and
//    trace instants.
//
// Two execution modes share the same admission/deadline/breaker core:
//
//  * start()/submit() — real worker threads, one per device; the chaos
//    soak harness (examples/boids_serve_soak.cpp) drives this mode with
//    ≥64 concurrent tenants under a CUPP_FAULTS plan.
//  * run() — a single-threaded, virtual-time closed loop: requests carry
//    modelled arrival times, workers are modelled lanes bound to real
//    devices, and queueing/latency/shedding are computed on the virtual
//    clock. Every number it produces is bit-identical for any
//    CUPP_SIM_THREADS — the serve bench artifact comes from here.
//
// A request's outcome is always one of {completed, admission_rejected,
// deadline_exceeded}: device faults (transient or sticky) are retried,
// recovered or converted to a deadline expiry, never leaked to tenants.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cupp/retry.hpp"

namespace cusim {
class Device;
}

namespace cupp::serve {

// --- requests and responses ------------------------------------------------

/// Per-tenant admission limits.
struct tenant_quota {
    std::uint32_t max_queued = 8;     ///< waiting in the admission queue
    std::uint32_t max_in_flight = 2;  ///< dispatched to a worker, not yet done
};

struct request {
    std::string tenant;
    /// Modelled-seconds budget. In run() mode it covers queue wait +
    /// execution; in concurrent mode it covers execution (queue pressure
    /// is bounded by admission control there). Infinity = no deadline.
    double deadline_s = std::numeric_limits<double>::infinity();
    /// Modelled arrival time (run() closed-loop mode only).
    double arrival_s = 0.0;
    /// Opaque handler payload (e.g. an index into a request catalog).
    std::uint64_t payload = 0;
};

enum class outcome {
    completed,
    admission_rejected,
    deadline_exceeded,
};
[[nodiscard]] const char* outcome_name(outcome o);

struct response {
    outcome result = outcome::completed;
    std::uint64_t value = 0;   ///< handler return value (e.g. flock digest)
    std::string detail;        ///< rejection / expiry reason
    double latency_s = 0.0;    ///< run(): completion - arrival; else service_s
    double service_s = 0.0;    ///< modelled execution time on the device
    int attempts = 0;          ///< handler executions (re-runs after faults)
    int worker = -1;           ///< worker index, -1 when never dispatched
    std::uint64_t id = 0;      ///< submission order
};

// --- configuration ---------------------------------------------------------

struct config {
    int workers = 2;                  ///< device workers (threads / lanes)
    /// Device ordinal per worker; empty = 0..workers-1 (the server
    /// registers missing ordinals with the Registry at construction).
    std::vector<int> device_ordinals;
    std::uint32_t queue_capacity = 64;  ///< global queued-request bound
    tenant_quota default_quota{};
    std::map<std::string, tenant_quota, std::less<>> tenant_quotas;
    /// Applied when request.deadline_s is infinite.
    double default_deadline_s = std::numeric_limits<double>::infinity();
    int breaker_threshold = 3;       ///< consecutive sticky failures to trip
    int breaker_probe_successes = 1; ///< half-open probes needed to close
    /// Handler re-executions per request (each sticky/escaped-transient
    /// failure consumes one). Exhaustion maps to deadline_exceeded.
    int max_attempts = 8;
    /// Base policy for framework retries *and* the serve-level backoff
    /// between handler re-executions. Per request it is budget-capped
    /// (max_total_backoff_s = remaining budget) and seeded (jitter_seed =
    /// request id) before being installed as the thread's scoped policy.
    retry_policy retry{};
};

// --- handler interface -----------------------------------------------------

class server;
namespace detail {
struct worker_state;
}

/// What a handler sees while executing one request: the worker's device
/// and the request's remaining budget.
class worker_context {
public:
    [[nodiscard]] cusim::Device& sim() const;
    [[nodiscard]] int ordinal() const;
    [[nodiscard]] int worker_index() const;
    /// Remaining modelled budget (infinity when the request has none).
    [[nodiscard]] double remaining_budget_s() const;
    /// Throws deadline_exceeded_error once the budget is spent. Handlers
    /// call this between steps so expiry is prompt and never interrupts a
    /// mutation (the faults-before-mutation invariant stays intact).
    void check_deadline() const;

private:
    friend class server;
    worker_context(detail::worker_state& w, double start_abs_s, double budget_s)
        : w_(&w), start_abs_s_(start_abs_s), budget_s_(budget_s) {}
    detail::worker_state* w_;
    double start_abs_s_;
    double budget_s_;
};

/// Executes one admitted request on the worker's device and returns its
/// value (a result digest, typically). Throwing a transient or sticky
/// cupp::exception triggers re-execution / breaker handling; throwing
/// deadline_exceeded_error finishes the request as deadline_exceeded.
using handler_fn = std::function<std::uint64_t(worker_context&, const request&)>;

// --- the server ------------------------------------------------------------

/// Aggregate counters, mirrored into cupp::trace as cupp.serve.*.
struct stats_snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_tenant_queued = 0;
    std::uint64_t rejected_tenant_in_flight = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t deadline_expired = 0;        ///< during execution
    std::uint64_t deadline_expired_queued = 0; ///< expired while waiting (run())
    std::uint64_t attempts = 0;
    std::uint64_t sticky_failures = 0;
    std::uint64_t transient_escapes = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_probes = 0;
    std::uint64_t breaker_recoveries = 0;
    std::uint64_t device_resets = 0;

    [[nodiscard]] std::uint64_t rejected() const {
        return rejected_queue_full + rejected_tenant_queued +
               rejected_tenant_in_flight + rejected_shutdown;
    }
};

class server {
public:
    server(config cfg, handler_fn handler);
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    [[nodiscard]] const config& options() const { return cfg_; }

    // --- concurrent mode ---
    /// Spawns one worker thread per configured device.
    void start();
    /// Admission control runs at submit time: the returned future is
    /// already satisfied (admission_rejected) when the request is shed.
    /// Requires start(); throws usage_error otherwise.
    [[nodiscard]] std::future<response> submit(request r);
    response submit_and_wait(request r);
    /// Stops admission (further submits are shed as "shutting down"),
    /// drains every queued request, and joins the workers. Idempotent.
    void stop();
    [[nodiscard]] bool running() const;

    // --- deterministic closed-loop mode ---
    /// Processes `reqs` on a virtual modelled clock: arrivals at
    /// request::arrival_s, workers as modelled lanes over real devices,
    /// responses indexed like `reqs`. Single-threaded and bit-identical
    /// across engine thread counts. Must not be mixed with start().
    [[nodiscard]] std::vector<response> run(std::vector<request> reqs);

    [[nodiscard]] stats_snapshot stats() const;

    /// True when every worker device is healthy right now — not lost and
    /// able to synchronize — without resetting anything. The post-soak
    /// health gate.
    [[nodiscard]] bool devices_healthy() const;

private:
    struct impl;
    friend class worker_context;

    response execute(detail::worker_state& w, const request& r, std::uint64_t id,
                     double waited_s);
    void breaker_on_sticky(detail::worker_state& w);
    void breaker_on_success(detail::worker_state& w);
    void breaker_recover(detail::worker_state& w);

    config cfg_;
    handler_fn handler_;
    std::unique_ptr<impl> impl_;
};

}  // namespace cupp::serve
