#include "serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <queue>
#include <string_view>
#include <thread>

#include "cupp/trace.hpp"
#include "cusim/device.hpp"
#include "cusim/registry.hpp"

namespace cupp::serve {

namespace tr = cupp::trace;

const char* outcome_name(outcome o) {
    switch (o) {
        case outcome::completed: return "completed";
        case outcome::admission_rejected: return "admission_rejected";
        case outcome::deadline_exceeded: return "deadline_exceeded";
    }
    return "unknown";
}

namespace detail {

/// Circuit-breaker state machine (per device / worker). Transitions:
///   closed --K consecutive sticky failures--> open (trip)
///   open --drain + device::reset()--> half_open
///   half_open --probe success x N--> closed (recovery)
///   half_open --probe sticky failure--> open (re-trip)
enum class breaker_state { closed, open, half_open };

struct worker_state {
    int index = 0;
    int ordinal = 0;
    cusim::Device* sim = nullptr;

    breaker_state brk = breaker_state::closed;
    int consecutive_sticky = 0;
    int probe_successes = 0;

    // run() mode bookkeeping (driver thread only).
    bool busy = false;
};

}  // namespace detail

using detail::breaker_state;
using detail::worker_state;

// --- worker_context ---------------------------------------------------------

cusim::Device& worker_context::sim() const { return *w_->sim; }
int worker_context::ordinal() const { return w_->ordinal; }
int worker_context::worker_index() const { return w_->index; }

double worker_context::remaining_budget_s() const {
    if (!std::isfinite(budget_s_)) return budget_s_;
    return budget_s_ - (w_->sim->absolute_host_time() - start_abs_s_);
}

void worker_context::check_deadline() const {
    const double remaining = remaining_budget_s();
    if (remaining < 0.0) {
        throw deadline_exceeded_error(
            tr::format("request budget of %.0f us exhausted (over by %.0f us)",
                       budget_s_ * 1e6, -remaining * 1e6));
    }
}

// --- server impl ------------------------------------------------------------

struct server::impl {
    struct job {
        request req;
        std::uint64_t id = 0;
        double arrival_virtual = 0.0;  ///< run() mode: modelled arrival
        std::size_t index = 0;         ///< run() mode: slot in the response array
        std::promise<response> promise;  ///< concurrent mode
    };

    struct tenant_state {
        std::uint32_t queued = 0;
        std::uint32_t in_flight = 0;
    };

    mutable std::mutex mu;
    std::condition_variable cv_work;
    std::deque<job> queue;
    std::map<std::string, tenant_state, std::less<>> tenants;
    std::uint32_t total_queued = 0;
    std::uint64_t next_id = 0;
    bool accepting = false;
    bool stopping = false;
    bool started = false;

    std::vector<worker_state> workers;
    std::vector<std::thread> threads;

    // Counters: per-server atomics (stats()) mirrored into the process-wide
    // metrics registry as cupp.serve.* so traces and trace_check see them.
    struct counters {
        std::atomic<std::uint64_t> submitted{0}, admitted{0}, completed{0};
        std::atomic<std::uint64_t> rejected_queue_full{0}, rejected_tenant_queued{0};
        std::atomic<std::uint64_t> rejected_tenant_in_flight{0}, rejected_shutdown{0};
        std::atomic<std::uint64_t> deadline_expired{0}, deadline_expired_queued{0};
        std::atomic<std::uint64_t> attempts{0}, sticky_failures{0}, transient_escapes{0};
        std::atomic<std::uint64_t> breaker_trips{0}, breaker_probes{0};
        std::atomic<std::uint64_t> breaker_recoveries{0}, device_resets{0};
    } c;

    static void count(std::atomic<std::uint64_t>& slot, const char* metric) {
        slot.fetch_add(1, std::memory_order_relaxed);
        tr::metrics().add(metric);
    }

    [[nodiscard]] tenant_quota quota_for(const config& cfg, std::string_view tenant) const {
        const auto it = cfg.tenant_quotas.find(tenant);
        return it != cfg.tenant_quotas.end() ? it->second : cfg.default_quota;
    }

    /// Admission decision for one request; the caller holds `mu` (or is the
    /// single run() driver thread). Returns nullptr when admitted (and the
    /// queue bookkeeping has been charged), else a static reason string.
    const char* try_admit(const config& cfg, const request& r, bool check_accepting) {
        count(c.submitted, "cupp.serve.submitted");
        if (check_accepting && !accepting) {
            count(c.rejected_shutdown, "cupp.serve.rejected.shutdown");
            return "server is shutting down";
        }
        if (total_queued >= cfg.queue_capacity) {
            count(c.rejected_queue_full, "cupp.serve.rejected.queue_full");
            return "global queue full";
        }
        const tenant_quota q = quota_for(cfg, r.tenant);
        tenant_state& t = tenants[r.tenant];
        if (q.max_in_flight == 0) {
            count(c.rejected_tenant_in_flight, "cupp.serve.rejected.tenant_in_flight");
            return "tenant in-flight quota is zero";
        }
        if (t.queued >= q.max_queued) {
            count(c.rejected_tenant_queued, "cupp.serve.rejected.tenant_queued");
            return "tenant queue quota exceeded";
        }
        ++t.queued;
        ++total_queued;
        count(c.admitted, "cupp.serve.admitted");
        return nullptr;
    }

    void on_dispatch(const std::string& tenant) {
        tenant_state& t = tenants[tenant];
        --t.queued;
        ++t.in_flight;
        --total_queued;
    }
    void on_finish(const std::string& tenant) { --tenants[tenant].in_flight; }
    void on_expire_queued(const std::string& tenant) {
        --tenants[tenant].queued;
        --total_queued;
    }

    [[nodiscard]] bool tenant_eligible(const config& cfg, std::string_view tenant) {
        return tenants[std::string(tenant)].in_flight <
               quota_for(cfg, tenant).max_in_flight;
    }
};

// --- construction -----------------------------------------------------------

server::server(config cfg, handler_fn handler)
    : cfg_(std::move(cfg)), handler_(std::move(handler)), impl_(new impl()) {
    if (cfg_.workers < 1) throw usage_error("cupp::serve: config.workers must be >= 1");
    if (cfg_.device_ordinals.empty()) {
        for (int i = 0; i < cfg_.workers; ++i) cfg_.device_ordinals.push_back(i);
    }
    if (static_cast<int>(cfg_.device_ordinals.size()) != cfg_.workers) {
        throw usage_error("cupp::serve: device_ordinals must name one device per worker");
    }
    // Register any missing ordinals now, on the constructing thread: the
    // Registry's device list is append-only and unsynchronised, so all
    // growth happens before any worker thread exists.
    auto& registry = cusim::Registry::instance();
    const int max_ordinal =
        *std::max_element(cfg_.device_ordinals.begin(), cfg_.device_ordinals.end());
    while (registry.device_count() <= max_ordinal) {
        registry.add_device(cusim::g80_properties());
    }
    impl_->workers.resize(static_cast<std::size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i) {
        worker_state& w = impl_->workers[static_cast<std::size_t>(i)];
        w.index = i;
        w.ordinal = cfg_.device_ordinals[static_cast<std::size_t>(i)];
        w.sim = &registry.device(w.ordinal);
    }
}

server::~server() { stop(); }

// --- breaker ----------------------------------------------------------------

namespace {
void breaker_instant(const worker_state& w, const char* what) {
    if (!tr::enabled()) return;
    tr::emit_instant("serve.breaker", what,
                     w.sim->absolute_host_time() * 1e6,
                     {{"worker", w.index}, {"device", w.ordinal}});
}
}  // namespace

void server::breaker_on_sticky(worker_state& w) {
    impl::count(impl_->c.sticky_failures, "cupp.serve.sticky_failures");
    switch (w.brk) {
        case breaker_state::closed:
            if (++w.consecutive_sticky >= cfg_.breaker_threshold) {
                w.brk = breaker_state::open;
                impl::count(impl_->c.breaker_trips, "cupp.serve.breaker.trips");
                breaker_instant(w, "breaker trip");
            }
            break;
        case breaker_state::half_open:
            // The probe failed: straight back to open (and count the trip —
            // the device is provably still bad).
            w.brk = breaker_state::open;
            w.probe_successes = 0;
            impl::count(impl_->c.breaker_trips, "cupp.serve.breaker.trips");
            breaker_instant(w, "breaker re-trip");
            break;
        case breaker_state::open:
            break;
    }
}

void server::breaker_on_success(worker_state& w) {
    w.consecutive_sticky = 0;
    if (w.brk == breaker_state::half_open) {
        if (++w.probe_successes >= cfg_.breaker_probe_successes) {
            w.brk = breaker_state::closed;
            w.probe_successes = 0;
            impl::count(impl_->c.breaker_recoveries, "cupp.serve.breaker.recoveries");
            breaker_instant(w, "breaker recovered");
        }
    }
}

/// Pre-attempt recovery. A lost device is always reset (attempts cannot
/// run otherwise) — that alone does NOT touch the consecutive-failure
/// count, or the breaker could never trip across reset-recovered
/// failures. Only an *open* breaker transitions here: open → half_open,
/// making the next attempt a probe. "Drain" is local: one worker owns one
/// device and runs one request at a time, so reset_device() abandoning the
/// failed request's queued stream work (PR 5 semantics) is all there is.
void server::breaker_recover(worker_state& w) {
    if (w.sim->lost()) {
        w.sim->reset_device();
        impl::count(impl_->c.device_resets, "cupp.serve.device_resets");
    }
    if (w.brk == breaker_state::open) {
        w.brk = breaker_state::half_open;
        w.probe_successes = 0;
        breaker_instant(w, "breaker half-open");
    }
}

// --- one request ------------------------------------------------------------

response server::execute(worker_state& w, const request& r, std::uint64_t id,
                         double waited_s) {
    response resp;
    resp.id = id;
    resp.worker = w.index;

    double budget = r.deadline_s;
    if (!std::isfinite(budget)) budget = cfg_.default_deadline_s;
    if (std::isfinite(budget)) budget -= waited_s;

    cusim::Registry::instance().set_device(w.ordinal);
    cusim::Device& sim = *w.sim;
    const double t0 = sim.absolute_host_time();

    auto finish_deadline = [&](std::string detail) {
        // A deadline expiry must never leak a poisoned device or a wedged
        // stream queue into the next request: heal before the worker moves
        // on. (The sticky failure itself was already counted against the
        // breaker by the catch that preceded this expiry.)
        if (sim.lost()) {
            sim.reset_device();
            impl::count(impl_->c.device_resets, "cupp.serve.device_resets");
        }
        resp.result = outcome::deadline_exceeded;
        resp.detail = std::move(detail);
        impl::count(impl_->c.deadline_expired, "cupp.serve.deadline_expired");
    };

    int attempts = 0;
    for (;;) {
        const double elapsed = sim.absolute_host_time() - t0;
        const double remaining = std::isfinite(budget)
                                     ? budget - elapsed
                                     : std::numeric_limits<double>::infinity();
        if (remaining <= 0.0) {
            finish_deadline(tr::format("budget of %.0f us exhausted after %d attempt(s)",
                                       budget * 1e6, attempts));
            break;
        }
        if (attempts >= cfg_.max_attempts) {
            finish_deadline(tr::format("attempt budget (%d) exhausted", cfg_.max_attempts));
            break;
        }
        // A lost device (or a tripped breaker) is recovered *before* the
        // next attempt; the attempt below then runs in half-open probe mode.
        if (w.brk == breaker_state::open || sim.lost()) breaker_recover(w);
        if (w.brk == breaker_state::half_open) {
            impl::count(impl_->c.breaker_probes, "cupp.serve.breaker.probes");
        }

        ++attempts;
        impl::count(impl_->c.attempts, "cupp.serve.attempts");

        // Thread the remaining budget through every framework-level retry
        // this attempt performs (vector uploads, launches, stream syncs):
        // backoff inside the handler can never overrun the request.
        retry_policy pol = cfg_.retry;
        pol.max_total_backoff_s = std::min(pol.max_total_backoff_s, remaining);
        pol.jitter_seed = cfg_.retry.jitter_seed ^ (id * 0x9e3779b97f4a7c15ull);
        scoped_retry_policy scope(pol);

        worker_context ctx(w, t0, budget);
        try {
            resp.value = handler_(ctx, r);
            resp.result = outcome::completed;
            breaker_on_success(w);
            impl::count(impl_->c.completed, "cupp.serve.completed");
            break;
        } catch (const deadline_exceeded_error& e) {
            finish_deadline(e.what());
            break;
        } catch (const exception& e) {
            if (is_sticky(e.code()) || sim.lost()) {
                breaker_on_sticky(w);
            } else if (e.transient()) {
                // with_retry exhausted its attempts and rethrew: the
                // request-level loop re-executes the handler from scratch
                // (handlers are idempotent: a fresh plugin run).
                impl::count(impl_->c.transient_escapes, "cupp.serve.transient_escapes");
            } else {
                throw;  // a programming error, not a fault — surface it
            }
            // Serve-level backoff before the re-execution, clipped so it
            // cannot overrun the budget (the expiry check at the top of
            // the loop then fires deterministically).
            const double left = std::isfinite(budget)
                                    ? budget - (sim.absolute_host_time() - t0)
                                    : std::numeric_limits<double>::infinity();
            if (left <= 0.0) {
                finish_deadline(tr::format(
                    "budget exhausted after fault on attempt %d: %s", attempts, e.what()));
                break;
            }
            double backoff = pol.backoff_seconds(attempts);
            if (std::isfinite(left)) backoff = std::min(backoff, left);
            if (pol.sleep) {
                pol.sleep(backoff);
            } else {
                sim.advance_host(backoff);
            }
        }
    }

    resp.attempts = attempts;
    resp.service_s = sim.absolute_host_time() - t0;
    if (tr::enabled()) {
        tr::emit_complete(tr::format("serve.w%d", w.index),
                          tr::format("req %llu (%s)",
                                     static_cast<unsigned long long>(id),
                                     r.tenant.c_str()),
                          t0 * 1e6, resp.service_s * 1e6,
                          {{"outcome", outcome_name(resp.result)},
                           {"attempts", resp.attempts},
                           {"tenant", r.tenant}});
    }
    return resp;
}

// --- concurrent mode --------------------------------------------------------

void server::start() {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->started) throw usage_error("cupp::serve: server already started");
    impl_->started = true;
    impl_->accepting = true;
    impl_->stopping = false;
    impl_->threads.reserve(impl_->workers.size());
    for (worker_state& w : impl_->workers) {
        impl_->threads.emplace_back([this, &w] {
            cusim::Registry::instance().set_device(w.ordinal);
            impl* im = impl_.get();
            std::unique_lock<std::mutex> lk(im->mu);
            for (;;) {
                // First queued job whose tenant is under its in-flight cap.
                auto it = std::find_if(im->queue.begin(), im->queue.end(),
                                       [&](const impl::job& j) {
                                           return im->tenant_eligible(cfg_, j.req.tenant);
                                       });
                if (it == im->queue.end()) {
                    if (im->stopping && im->queue.empty()) break;
                    // Queue empty, or every queued tenant is at its cap:
                    // wait for a submit, a finish, or shutdown.
                    im->cv_work.wait(lk);
                    continue;
                }
                impl::job j = std::move(*it);
                im->queue.erase(it);
                im->on_dispatch(j.req.tenant);
                lk.unlock();

                response resp = execute(w, j.req, j.id, /*waited_s=*/0.0);
                resp.latency_s = resp.service_s;
                if (tr::enabled()) {
                    tr::metrics().record("cupp.serve.latency_s", resp.latency_s);
                }

                lk.lock();
                im->on_finish(j.req.tenant);
                im->cv_work.notify_all();
                lk.unlock();
                j.promise.set_value(std::move(resp));
                lk.lock();
            }
        });
    }
}

std::future<response> server::submit(request r) {
    impl* im = impl_.get();
    std::promise<response> promise;
    std::future<response> fut = promise.get_future();
    std::unique_lock<std::mutex> lk(im->mu);
    if (!im->started) throw usage_error("cupp::serve: submit() before start()");
    const std::uint64_t id = im->next_id++;
    const char* reason = im->try_admit(cfg_, r, /*check_accepting=*/true);
    if (reason != nullptr) {
        lk.unlock();
        response resp;
        resp.id = id;
        resp.result = outcome::admission_rejected;
        resp.detail = reason;
        promise.set_value(std::move(resp));
        return fut;
    }
    impl::job j;
    j.req = std::move(r);
    j.id = id;
    j.promise = std::move(promise);
    im->queue.push_back(std::move(j));
    im->cv_work.notify_one();
    return fut;
}

response server::submit_and_wait(request r) { return submit(std::move(r)).get(); }

void server::stop() {
    impl* im = impl_.get();
    {
        std::lock_guard<std::mutex> lock(im->mu);
        if (!im->started) return;
        im->accepting = false;
        im->stopping = true;
        im->cv_work.notify_all();
    }
    for (std::thread& t : im->threads) t.join();
    im->threads.clear();
    std::lock_guard<std::mutex> lock(im->mu);
    im->started = false;
    im->stopping = false;
}

bool server::running() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->started;
}

// --- deterministic closed-loop mode ----------------------------------------

std::vector<response> server::run(std::vector<request> reqs) {
    impl* im = impl_.get();
    {
        std::lock_guard<std::mutex> lock(im->mu);
        if (im->started) throw usage_error("cupp::serve: run() while started");
    }
    im->accepting = true;

    std::vector<response> responses(reqs.size());
    // Arrival order: time, then submission index (stable for equal times).
    std::vector<std::size_t> order(reqs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return reqs[a].arrival_s < reqs[b].arrival_s;
    });

    struct completion {
        double time;
        std::uint64_t seq;
        int worker;
        std::string tenant;
        bool operator>(const completion& other) const {
            return time != other.time ? time > other.time : seq > other.seq;
        }
    };
    std::priority_queue<completion, std::vector<completion>, std::greater<completion>>
        completions;
    std::uint64_t completion_seq = 0;

    struct queued {
        std::size_t index;
        double arrival;
    };
    std::deque<queued> queue;

    auto deadline_of = [&](const request& r) {
        return std::isfinite(r.deadline_s) ? r.deadline_s : cfg_.default_deadline_s;
    };

    // Dispatches queued work onto free workers at virtual time `now`.
    auto try_dispatch = [&](double now) {
        // Queued requests whose budget already expired are shed before any
        // dispatch decision — deterministic queue-wait expiry.
        for (auto it = queue.begin(); it != queue.end();) {
            const request& r = reqs[it->index];
            if (now - it->arrival >= deadline_of(r)) {
                response& resp = responses[it->index];
                resp.id = it->index;
                resp.result = outcome::deadline_exceeded;
                resp.detail = tr::format("expired in queue after its %.0f us budget",
                                         deadline_of(r) * 1e6);
                // Client-perceived latency: the moment the budget ran out,
                // not the (later) dispatch scan that noticed it.
                resp.latency_s = deadline_of(r);
                im->on_expire_queued(r.tenant);
                impl::count(im->c.deadline_expired_queued,
                            "cupp.serve.deadline_expired_queued");
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
        for (worker_state& w : im->workers) {
            if (w.busy) continue;
            const auto it = std::find_if(queue.begin(), queue.end(), [&](const queued& q) {
                return im->tenant_eligible(cfg_, reqs[q.index].tenant);
            });
            if (it == queue.end()) break;
            const queued q = *it;
            queue.erase(it);
            const request& r = reqs[q.index];
            im->on_dispatch(r.tenant);
            w.busy = true;
            const double waited = now - q.arrival;
            response resp = execute(w, r, q.index, waited);
            resp.latency_s = waited + resp.service_s;
            tr::metrics().record("cupp.serve.latency_s", resp.latency_s);
            completions.push({now + resp.service_s, completion_seq++, w.index, r.tenant});
            responses[q.index] = std::move(resp);
        }
    };

    auto pop_completion = [&](const completion& c) {
        im->workers[static_cast<std::size_t>(c.worker)].busy = false;
        im->on_finish(c.tenant);
    };

    for (const std::size_t idx : order) {
        const request& r = reqs[idx];
        while (!completions.empty() && completions.top().time <= r.arrival_s) {
            const completion c = completions.top();
            completions.pop();
            pop_completion(c);
            try_dispatch(c.time);
        }
        const char* reason = im->try_admit(cfg_, r, /*check_accepting=*/false);
        if (reason != nullptr) {
            response& resp = responses[idx];
            resp.id = idx;
            resp.result = outcome::admission_rejected;
            resp.detail = reason;
            continue;
        }
        queue.push_back({idx, r.arrival_s});
        try_dispatch(r.arrival_s);
    }
    while (!completions.empty()) {
        const completion c = completions.top();
        completions.pop();
        pop_completion(c);
        try_dispatch(c.time);
    }
    // Anything still queued can only be waiting on a deadline that never
    // comes (all workers idle): expire it at its own deadline.
    while (!queue.empty()) {
        double next = std::numeric_limits<double>::infinity();
        for (const queued& q : queue) {
            next = std::min(next, q.arrival + deadline_of(reqs[q.index]));
        }
        if (!std::isfinite(next)) break;  // unreachable: free workers take them
        try_dispatch(next);
    }

    im->accepting = false;
    return responses;
}

// --- introspection ----------------------------------------------------------

stats_snapshot server::stats() const {
    const impl::counters& c = impl_->c;
    stats_snapshot s;
    s.submitted = c.submitted.load(std::memory_order_relaxed);
    s.admitted = c.admitted.load(std::memory_order_relaxed);
    s.completed = c.completed.load(std::memory_order_relaxed);
    s.rejected_queue_full = c.rejected_queue_full.load(std::memory_order_relaxed);
    s.rejected_tenant_queued = c.rejected_tenant_queued.load(std::memory_order_relaxed);
    s.rejected_tenant_in_flight =
        c.rejected_tenant_in_flight.load(std::memory_order_relaxed);
    s.rejected_shutdown = c.rejected_shutdown.load(std::memory_order_relaxed);
    s.deadline_expired = c.deadline_expired.load(std::memory_order_relaxed);
    s.deadline_expired_queued = c.deadline_expired_queued.load(std::memory_order_relaxed);
    s.attempts = c.attempts.load(std::memory_order_relaxed);
    s.sticky_failures = c.sticky_failures.load(std::memory_order_relaxed);
    s.transient_escapes = c.transient_escapes.load(std::memory_order_relaxed);
    s.breaker_trips = c.breaker_trips.load(std::memory_order_relaxed);
    s.breaker_probes = c.breaker_probes.load(std::memory_order_relaxed);
    s.breaker_recoveries = c.breaker_recoveries.load(std::memory_order_relaxed);
    s.device_resets = c.device_resets.load(std::memory_order_relaxed);
    return s;
}

bool server::devices_healthy() const {
    for (const worker_state& w : impl_->workers) {
        if (w.sim->lost()) return false;
        try {
            w.sim->synchronize();
        } catch (...) {
            return false;
        }
    }
    return true;
}

}  // namespace cupp::serve
