#include "serve/boids_service.hpp"

#include <algorithm>
#include <cstring>

#include "cupp/cupp.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/simulation.hpp"
#include "steer/world.hpp"

namespace cupp::serve {

namespace {

/// splitmix64 — the same stateless mixer retry_policy jitter uses; here it
/// decorrelates catalog fields derived from one payload.
std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

cusim::KernelTask scale_speeds(cusim::ThreadCtx& ctx,
                               cupp::deviceT::vector<float>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        v.write(ctx, gid, v.read(ctx, gid) * 2.0f);
    }
    co_return;
}
using ScaleK = cusim::KernelTask (*)(cusim::ThreadCtx&,
                                     cupp::deviceT::vector<float>&);

steer::WorldSpec spec_for(const boids_request& r) {
    steer::WorldSpec spec;
    spec.agents = r.agents;
    spec.think_period = r.think_period;
    spec.seed = r.seed;
    return spec;
}

/// Final-flock speeds through `nstreams` streams: prefetch out, scale on
/// the stream, prefetch back, verify against host math. Throws usage_error
/// on any mismatch — that would be corruption, not a fault.
void stream_postprocess(worker_context& ctx, const std::vector<steer::Agent>& flock,
                        unsigned nstreams) {
    cupp::device d(ctx.ordinal());
    std::vector<cupp::stream> streams;
    std::vector<cupp::vector<float>> chunks;
    const std::size_t per = (flock.size() + nstreams - 1) / nstreams;
    for (unsigned s = 0; s < nstreams; ++s) {
        streams.emplace_back(d);
        const std::size_t lo = std::min(flock.size(), s * per);
        const std::size_t hi = std::min(flock.size(), lo + per);
        cupp::vector<float> v;
        v.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) v.push_back(flock[i].speed);
        chunks.push_back(std::move(v));
    }

    cupp::kernel k(static_cast<ScaleK>(scale_speeds), cusim::dim3{1}, cusim::dim3{128});
    k.set_name("serve scale_speeds");
    for (unsigned s = 0; s < nstreams; ++s) {
        const std::size_t n = chunks[s].size();
        if (n == 0) continue;
        ctx.check_deadline();
        k.set_grid_dim(cusim::dim3{static_cast<unsigned>((n + 127) / 128)});
        chunks[s].prefetch_to_device(d, streams[s]);
        k(d, streams[s], chunks[s]);
        chunks[s].prefetch_to_host(streams[s]);
    }
    d.synchronize();  // joins every stream's queued work

    for (unsigned s = 0; s < nstreams; ++s) {
        const std::size_t lo = std::min(flock.size(), s * per);
        for (std::size_t i = 0; i < chunks[s].size(); ++i) {
            if (chunks[s][i] != flock[lo + i].speed * 2.0f) {
                throw usage_error(trace::format(
                    "serve postprocess corruption: stream %u element %zu", s, i));
            }
        }
    }
}

}  // namespace

boids_request boids_catalog_entry(std::uint64_t payload) {
    boids_request r;
    r.agents = 128u * (1u + static_cast<std::uint32_t>(mix(payload) % 2));  // 128 / 256
    r.steps = 2u + static_cast<std::uint32_t>(mix(payload ^ 0xb01d5ull) % 3);  // 2..4
    r.think_period = 1u + static_cast<std::uint32_t>(mix(payload ^ 0x7417cull) % 2);
    r.seed = 2009ull + payload * 7919ull;
    r.postprocess_streams = (payload % 5ull == 0ull) ? 2u : 0u;
    return r;
}

std::uint64_t flock_digest(const std::vector<steer::Agent>& flock) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    auto mix_in = [&h](float f) {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &f, sizeof bits);
        for (int shift = 0; shift < 32; shift += 8) {
            h ^= (bits >> shift) & 0xffu;
            h *= 1099511628211ull;  // FNV prime
        }
    };
    for (const steer::Agent& a : flock) {
        mix_in(a.position.x);
        mix_in(a.position.y);
        mix_in(a.position.z);
        mix_in(a.forward.x);
        mix_in(a.forward.y);
        mix_in(a.forward.z);
        mix_in(a.speed);
    }
    return h;
}

std::uint64_t boids_oracle_digest(const boids_request& r) {
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec_for(r));
    for (std::uint32_t i = 0; i < r.steps; ++i) cpu.step();
    const std::uint64_t digest = flock_digest(cpu.snapshot());
    cpu.close();
    return digest;
}

handler_fn make_boids_handler() {
    return [](worker_context& ctx, const request& req) -> std::uint64_t {
        const boids_request br = boids_catalog_entry(req.payload);
        gpusteer::GpuBoidsPlugin gpu(gpusteer::Version::V5_FullUpdateOnDevice,
                                     /*double_buffering=*/true,
                                     /*with_draw_stage=*/false);
        ctx.check_deadline();
        gpu.open(spec_for(br));
        for (std::uint32_t i = 0; i < br.steps; ++i) {
            ctx.check_deadline();
            gpu.step();
        }
        const std::vector<steer::Agent> flock = gpu.snapshot();
        const std::uint64_t digest = flock_digest(flock);
        // The plugin absorbs mid-step DeviceLost itself (checkpoint +
        // CPU replay + reset); surface those recoveries in the serve
        // metric family so the soak report shows them.
        if (gpu.device_resets() > 0) {
            trace::metrics().add("cupp.serve.handler_recoveries", gpu.device_resets());
        }
        if (br.postprocess_streams > 0) {
            stream_postprocess(ctx, flock, br.postprocess_streams);
        }
        gpu.close();
        return digest;
    };
}

}  // namespace cupp::serve
