// The GPU Boids plugin — the CUDA/CuPP OpenSteer integration of thesis
// chapter 6, selectable in the five development versions of Table 6.1 and
// with the double-buffering optimisation of §6.3.2.
//
// Time lives on the simulated clock of the device handle: host-side work
// advances the host clock through the CPU cost model, kernels run
// asynchronously on the device clock, and host access to device data
// blocks until the device is idle — so overlap (or the lack of it) shows up
// in the measured frame times exactly as it did on the thesis hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cupp/cupp.hpp"
#include "gpusteer/grid_kernels.hpp"
#include "gpusteer/kernels.hpp"
#include "steer/plugin.hpp"
#include "steer/simulation.hpp"

namespace gpusteer {

/// The five development versions of Table 6.1, plus the future-work grid
/// variant of §7 as version 6.
enum class Version {
    V1_NeighborSearchGlobal = 1,  ///< NS on device, global memory only
    V2_NeighborSearchShared = 2,  ///< NS on device, shared-memory cache
    V3_SimSubstageCached = 3,     ///< full simulation substage, local-mem caching
    V4_SimSubstageRecompute = 4,  ///< full simulation substage, recompute
    V5_FullUpdateOnDevice = 5,    ///< + modification substage on device
    V6_GridNeighborSearch = 6,    ///< v5 with the host-built spatial grid (§7)
};

/// Which update-stage parts run on the device for `v` (the rows of
/// Table 6.1).
struct VersionTraits {
    bool ns_on_device;
    bool steering_on_device;
    bool modification_on_device;

    static constexpr VersionTraits of(Version v) {
        switch (v) {
            case Version::V1_NeighborSearchGlobal:
            case Version::V2_NeighborSearchShared:
                return {true, false, false};
            case Version::V3_SimSubstageCached:
            case Version::V4_SimSubstageRecompute:
                return {true, true, false};
            case Version::V5_FullUpdateOnDevice:
            case Version::V6_GridNeighborSearch:
                return {true, true, true};
        }
        return {false, false, false};
    }
};

class GpuBoidsPlugin final : public steer::PlugIn {
public:
    explicit GpuBoidsPlugin(Version version, bool double_buffering = false,
                            bool with_draw_stage = true);

    [[nodiscard]] std::string_view name() const override { return name_; }
    void open(const steer::WorldSpec& spec) override;
    steer::StageTimes step() override;
    [[nodiscard]] std::span<const steer::Mat4> draw_matrices() const override {
        return drawn_;
    }
    [[nodiscard]] std::vector<steer::Agent> snapshot() const override;
    [[nodiscard]] const steer::UpdateCounters& counters() const override { return totals_; }
    void close() override;

    [[nodiscard]] Version version() const { return version_; }
    [[nodiscard]] bool double_buffering() const { return double_buffer_; }

    /// Aggregated simulator statistics of all kernel launches so far —
    /// the divergence counters of §6.3.1 among them.
    [[nodiscard]] std::uint64_t divergent_warp_steps() const { return divergent_events_; }
    [[nodiscard]] std::uint64_t branch_evaluations() const { return branch_evaluations_; }
    [[nodiscard]] std::uint64_t kernel_launches() const { return launches_; }

    /// The device handle (e.g. to reset the simulated clock between runs).
    [[nodiscard]] const cupp::device& device_handle() const { return dev_; }

    // --- device-lost resilience ---
    /// Steps that ran on the CPU fallback path because the device was lost
    /// mid-step, and how often the device was reset to recover.
    [[nodiscard]] std::uint64_t cpu_fallback_steps() const { return cpu_fallback_steps_; }
    [[nodiscard]] std::uint64_t device_resets() const { return device_resets_; }

private:
    /// A DeviceLost fault escaped a step: reset the device, replay the run
    /// from the last checkpoint on the CPU, execute the failed step on the
    /// CPU too, then re-upload everything and resume on the GPU.
    steer::StageTimes recover_and_step_on_cpu();
    /// One full CPU update step (the CpuBoidsPlugin math, §5.3) over
    /// flock_/steering_host_. `count_stats` mirrors exactly the counter
    /// updates the GPU step would have made, so a recovered run's totals
    /// equal a fault-free run's.
    void cpu_update_step(std::uint64_t step, bool count_stats);
    /// Declares every device-side copy dead after a reset.
    void abandon_device_vectors();
    /// Pushes flock_/steering_host_ back into the device vectors and
    /// re-primes their buffers + cached handles (mirrors open()).
    void reupload_state();
    steer::StageTimes step_host_versions();  // v1-v4
    steer::StageTimes step_device_version(); // v5/v6
    /// Launches the simulation-substage kernel(s) for this step: the
    /// shared-memory brute force (v5) or the host-built grid pipeline (v6).
    void launch_simulation_kernel(const ThinkMap& map, const FlockParams& fp,
                                  std::uint32_t thinking_count);
    void host_steering(const std::vector<std::uint32_t>& thinking);
    void host_modification();
    void extract_positions();
    void extract_forwards();
    double draw_stage(bool from_device_matrices);
    [[nodiscard]] ThinkMap think_map() const;
    void accumulate_stats(const cusim::LaunchStats& s);

    Version version_;
    bool double_buffer_;
    bool with_draw_;
    std::string name_;

    steer::WorldSpec spec_{};
    steer::CpuCostModel cpu_{};
    cupp::device dev_;

    // Device-side state.
    cupp::vector<steer::Vec3> positions_;
    cupp::vector<steer::Vec3> forwards_;
    cupp::vector<float> speeds_;
    cupp::vector<steer::Vec3> steerings_;
    cupp::vector<std::uint32_t> result_;
    cupp::vector<std::uint32_t> result_count_;
    cupp::vector<steer::Mat4> matrices_[2];
    int current_buffer_ = 0;

    // Host-side state (authoritative for versions 1-4).
    std::vector<steer::Agent> flock_;
    std::vector<steer::Vec3> steering_host_;
    std::vector<steer::Mat4> drawn_;

    // Kernel functors (constructed once; geometry set per step).
    using NsKernelFn = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, float, DU32&,
                                             DU32&, ThinkMap);
    using SimKernelFn = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, const DVec3&,
                                              DVec3&, FlockParams, ThinkMap, NeighborData);
    using ModKernelFn = cusim::KernelTask (*)(cusim::ThreadCtx&, DVec3&, DVec3&, DF32&,
                                              const DVec3&, DMat4&, ModifyParams);
    using GridSimKernelFn = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&,
                                                  const DVec3&, const DU32&, const DU32&,
                                                  steer::GridSpec, DVec3&, FlockParams,
                                                  ThinkMap);
    cupp::kernel<NsKernelFn> ns_kernel_;
    cupp::kernel<SimKernelFn> sim_kernel_;
    cupp::kernel<ModKernelFn> mod_kernel_;
    cupp::kernel<GridSimKernelFn> grid_sim_kernel_;
    GridUpload grid_upload_;  ///< v6: host-built grid, lazily uploaded CSR

    // Device-lost recovery: host-side snapshot of the complete simulation
    // state (agents + steering carry-over) as of the start of step
    // checkpoint_step_. The GPU owns the truth in versions 5/6, so after a
    // reset the state is re-derived by replaying from here on the CPU —
    // bit-identical, because the CPU and GPU paths compute the same flock.
    std::vector<steer::Agent> checkpoint_flock_;
    std::vector<steer::Vec3> checkpoint_steering_;
    std::uint64_t checkpoint_step_ = 0;
    std::uint64_t cpu_fallback_steps_ = 0;
    std::uint64_t device_resets_ = 0;

    steer::UpdateCounters totals_{};
    std::uint64_t step_index_ = 0;
    std::uint64_t divergent_events_ = 0;
    std::uint64_t branch_evaluations_ = 0;
    std::uint64_t launches_ = 0;
};

}  // namespace gpusteer
