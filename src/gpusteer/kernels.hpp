// The Boids kernels — the five development versions of thesis chapter 6.
//
//   version | device executes                          | kernel(s)
//   --------+------------------------------------------+----------------------------
//     1     | neighbor search (global memory only)     | ns_global_kernel
//     2     | neighbor search (shared-memory tiling)   | ns_shared_kernel
//     3     | full simulation substage (local-memory   | sim_kernel (CacheLocal)
//           | caching of neighbor data)                |
//     4     | full simulation substage (recompute)     | sim_kernel (Recompute)
//     5     | + modification substage & draw matrices  | sim_kernel + modify_kernel
//
// All kernels compute with the *identical* steering math as the CPU
// reference (they call into steer/), so CPU and GPU flocks agree bit for
// bit; the versions differ in where data lives and what the cost model is
// charged — exactly the axes the thesis varies.
#pragma once

#include <cstdint>

#include "cupp/vector.hpp"
#include "cusim/kernel_task.hpp"
#include "cusim/thread_ctx.hpp"
#include "steer/agent.hpp"
#include "steer/draw_stage.hpp"
#include "steer/vec3.hpp"

namespace gpusteer {

using DVec3 = cupp::deviceT::vector<steer::Vec3>;
using DU32 = cupp::deviceT::vector<std::uint32_t>;
using DF32 = cupp::deviceT::vector<float>;
using DMat4 = cupp::deviceT::vector<steer::Mat4>;

/// Threads per block used by every Boids kernel. 128 gives each
/// multiprocessor 4 resident blocks (register-limited) = 16 warps.
inline constexpr unsigned kThreadsPerBlock = 128;

/// Think-frequency thread->agent mapping (§5.3): in step t only agents with
/// index % period == t % period run the simulation substage; thread gid
/// simulates agent phase + gid * period.
struct ThinkMap {
    std::uint32_t phase = 0;
    std::uint32_t period = 1;

    [[nodiscard]] constexpr std::uint32_t agent_of(std::uint64_t gid) const {
        return phase + static_cast<std::uint32_t>(gid) * period;
    }
    [[nodiscard]] constexpr std::uint32_t thinking_count(std::uint32_t n) const {
        return phase >= n ? 0 : (n - phase + period - 1) / period;
    }
};

/// Flocking parameters as they travel to the device.
struct FlockParams {
    float search_radius;
    float weight_separation;
    float weight_alignment;
    float weight_cohesion;
    std::uint32_t max_neighbors;
};

/// Modification-substage parameters.
struct ModifyParams {
    float dt;
    float world_radius;
    steer::AgentParams params;
};

/// How the simulation-substage kernel treats per-neighbor intermediate
/// values (§6.2.2): version 3 caches them in thread-local memory (which the
/// compiler spills to device memory), version 4 recomputes them.
enum class NeighborData : std::uint32_t {
    CacheLocal = 0,  ///< version 3
    Recompute = 1,   ///< version 4
};

// --- kernels -------------------------------------------------------------

/// Version 1: neighbor search reading every candidate position from global
/// memory ("hardly more than a copy and paste work of the code running on
/// the CPU", §6.2.1). Writes up to 7 neighbor indices per thinking agent
/// into `result` (7 slots per agent) and the found count into `result_count`.
cusim::KernelTask ns_global_kernel(cusim::ThreadCtx& ctx, const DVec3& positions,
                                   float search_radius, DU32& result, DU32& result_count,
                                   ThinkMap map);

/// Version 2: neighbor search with the shared-memory position cache of
/// listing 6.2. Requires the agent count to be a multiple of the block size
/// ("the number of agents has to be a multiply of threads_per_block").
cusim::KernelTask ns_shared_kernel(cusim::ThreadCtx& ctx, const DVec3& positions,
                                   float search_radius, DU32& result, DU32& result_count,
                                   ThinkMap map);

/// Versions 3/4: the complete simulation substage on the device — shared-
/// memory neighbor search plus the flocking combination, writing one
/// steering vector per thinking agent.
cusim::KernelTask sim_kernel(cusim::ThreadCtx& ctx, const DVec3& positions,
                             const DVec3& forwards, DVec3& steerings, FlockParams fp,
                             ThinkMap map, NeighborData mode);

/// Version 5: the modification substage on the device — applies the
/// steering vectors to every agent and emits the 4x4 draw matrices (the
/// only data that still travels back to the host, §6.2.3). Uses shared
/// memory as an extension of the register file, as the thesis describes.
cusim::KernelTask modify_kernel(cusim::ThreadCtx& ctx, DVec3& positions, DVec3& forwards,
                                DF32& speeds, const DVec3& steerings, DMat4& matrices,
                                ModifyParams mp);

}  // namespace gpusteer
