// Instruction-cost charges for the Boids kernels.
//
// The simulator executes the real steering math on host registers (register
// access is free, Table 2.2); the *instruction issue* costs of that math are
// charged through these helpers so the timing model sees the same mix of
// FADD/FMAD/compare/rsqrt instructions the real kernel would execute. Every
// constant maps to a line of the algorithm listings in the thesis.
#pragma once

#include "cusim/cost_model.hpp"
#include "cusim/thread_ctx.hpp"

namespace gpusteer {

/// One iteration of the neighbor-search inner loop (listing 6.3 lines 2-5):
/// offset = position - s_positions[i] (3 FADD), lengthSquared (3 FMAD),
/// r*r (1 FMUL), index arithmetic (1 IADD), the combined compare (2 CMP +
/// 1 logical op). The memory access itself is charged by the container.
inline void charge_pair_test(cusim::ThreadCtx& ctx) {
    ctx.charge(cusim::Op::FAdd, 3);
    ctx.charge(cusim::Op::FMad, 3);
    ctx.charge(cusim::Op::FMul, 1);
    ctx.charge(cusim::Op::IAdd, 1);
    ctx.charge(cusim::Op::Compare, 2);
    ctx.charge(cusim::Op::Bitwise, 1);
}

/// Appending a neighbor while fewer than 7 are known (listing 5.2).
inline void charge_neighbor_add(cusim::ThreadCtx& ctx) {
    ctx.charge(cusim::Op::IAdd, 2);        // store index, bump counter
    ctx.charge(cusim::Op::Register, 2);
}

/// Replace-farthest path: scan 7 entries for the maximum distance and
/// conditionally overwrite (listing 5.2 / listing 6.3 else-branch).
inline void charge_neighbor_replace(cusim::ThreadCtx& ctx) {
    ctx.charge(cusim::Op::Compare, 7);
    ctx.charge(cusim::Op::MinMax, 7);
    ctx.charge(cusim::Op::Compare, 1);
    ctx.charge(cusim::Op::Register, 3);
}

/// The flocking combination (listing 5.1) over `neighbors` found agents:
/// separation + cohesion + alignment are ~20 scalar FLOPs per neighbor,
/// plus three normalisations (3 FMAD + RSQRT + 3 FMUL each) and the
/// weighted sum (9 FMAD) once.
inline void charge_flocking(cusim::ThreadCtx& ctx, unsigned neighbors) {
    ctx.charge(cusim::Op::FMad, 20 * neighbors);
    ctx.charge(cusim::Op::Recip, neighbors);  // the 1/d falloff division
    for (int b = 0; b < 3; ++b) {
        ctx.charge(cusim::Op::FMad, 3);
        ctx.charge(cusim::Op::RSqrt, 1);
        ctx.charge(cusim::Op::FMul, 3);
    }
    ctx.charge(cusim::Op::FMad, 9);
}

/// The modification substage for one agent: truncate force, integrate,
/// truncate speed, wrap, renormalise forward (agent.hpp apply_steering +
/// wrap_world).
inline void charge_modify(cusim::ThreadCtx& ctx) {
    ctx.charge(cusim::Op::FMad, 14);
    ctx.charge(cusim::Op::FMul, 8);
    ctx.charge(cusim::Op::RSqrt, 2);
    ctx.charge(cusim::Op::Compare, 3);
}

/// Building the 4x4 draw matrix (draw_stage.hpp agent_matrix): one cross
/// product is 6 FMAD, two crosses + normalisations + stores.
inline void charge_draw_matrix(cusim::ThreadCtx& ctx) {
    ctx.charge(cusim::Op::FMad, 18);
    ctx.charge(cusim::Op::RSqrt, 2);
    ctx.charge(cusim::Op::FMul, 6);
}

}  // namespace gpusteer
