#include "gpusteer/pursuit_kernels.hpp"

#include <array>

#include "gpusteer/dev_costs.hpp"

namespace gpusteer {

using cusim::KernelTask;
using cusim::Op;
using cusim::ThreadCtx;
using steer::Agent;
using steer::SphereObstacle;
using steer::Vec3;

namespace {

Agent load_agent(ThreadCtx& ctx, const DVec3& positions, const DVec3& forwards,
                 const DF32& speeds, std::uint64_t i) {
    Agent a;
    a.position = positions.read(ctx, i);
    a.forward = forwards.read(ctx, i);
    a.speed = speeds.read(ctx, i);
    return a;
}

/// Distance-squared scan cost per candidate (offset + lengthSquared + cmp).
void charge_scan_step(ThreadCtx& ctx) {
    ctx.charge(Op::FAdd, 3);
    ctx.charge(Op::FMad, 3);
    ctx.charge(Op::Compare, 1);
}

}  // namespace

KernelTask pursuit_sim_kernel(ThreadCtx& ctx, const DVec3& positions, const DVec3& forwards,
                              const DF32& speeds, DWander& wander, DU32& targets,
                              DObstacles obstacles, std::uint32_t obstacle_count,
                              PursuitParams pp, DVec3& steerings) {
    const std::uint32_t n = positions.size();
    const std::uint64_t gid = ctx.global_id();
    if (gid >= n) co_return;
    const auto me = static_cast<std::uint32_t>(gid);

    const Agent self = load_agent(ctx, positions, forwards, speeds, me);
    Vec3 steering;

    if (ctx.branch(me < pp.predators)) {
        // --- predator: sticky pursuit of the nearest prey ---
        std::uint32_t nearest = pp.predators;
        float nearest_d2 = 1e30f;
        for (std::uint32_t i = pp.predators; i < n; ++i) {
            charge_scan_step(ctx);
            const float d2 = (positions.read(ctx, i) - self.position).length_squared();
            if (ctx.branch(d2 < nearest_d2)) {
                nearest_d2 = d2;
                nearest = i;
            }
        }
        std::uint32_t quarry = targets.read(ctx, me);
        if (ctx.branch(quarry >= n || quarry < pp.predators)) quarry = nearest;
        const Agent quarry_agent = load_agent(ctx, positions, forwards, speeds, quarry);
        const float quarry_d = (quarry_agent.position - self.position).length();
        const float nearest_d =
            (positions.read(ctx, nearest) - self.position).length();
        ctx.charge(Op::RSqrt, 2);
        if (ctx.branch(quarry_d > 2.0f * nearest_d + 5.0f)) quarry = nearest;
        targets.write(ctx, me, quarry);

        const Agent fresh_quarry = load_agent(ctx, positions, forwards, speeds, quarry);
        const float fresh_d = (fresh_quarry.position - self.position).length();
        ctx.charge(Op::FMad, 24);  // the pursue/seek math
        ctx.charge(Op::RSqrt, 2);
        steering = ctx.branch(fresh_d < pp.close_range)
                       ? steer::seek(self, fresh_quarry.position, pp.predator_max_speed)
                       : steer::pursue(self, fresh_quarry, pp.predator_max_speed);
    } else {
        // --- prey: evade the closest predator if near, otherwise wander ---
        std::uint32_t threat = 0;
        float threat_d2 = 1e30f;
        for (std::uint32_t p = 0; p < pp.predators; ++p) {
            charge_scan_step(ctx);
            const float d2 = (positions.read(ctx, p) - self.position).length_squared();
            if (ctx.branch(d2 < threat_d2)) {
                threat_d2 = d2;
                threat = p;
            }
        }
        if (ctx.branch(threat_d2 < pp.evade_radius * pp.evade_radius)) {
            const Agent menace = load_agent(ctx, positions, forwards, speeds, threat);
            ctx.charge(Op::FMad, 20);
            ctx.charge(Op::RSqrt, 2);
            steering = steer::evade(self, menace, pp.max_speed);
        } else {
            steer::WanderState w = wander.read(ctx, me);
            ctx.charge(Op::FMad, 22);
            ctx.charge(Op::RSqrt, 2);
            steering = w.step(self, pp.wander_strength);
            wander.write(ctx, me, w);
        }
    }

    // Obstacle avoidance overrides everything when a collision looms; the
    // obstacle set lives in constant memory (cheap broadcast reads).
    std::array<SphereObstacle, 16> local{};
    const std::uint32_t nobs = obstacle_count < 16 ? obstacle_count : 16;
    for (std::uint32_t i = 0; i < nobs; ++i) local[i] = obstacles.read(ctx, i);
    ctx.charge(Op::FMad, 12 * nobs);
    const Vec3 avoid = steer::avoid_obstacles(
        self, pp.agent_radius, std::span<const SphereObstacle>(local.data(), nobs),
        pp.avoid_horizon);
    if (ctx.branch(!avoid.is_zero())) steering = avoid * pp.max_force;

    steerings.write(ctx, me, steering);
    co_return;
}

KernelTask pursuit_modify_kernel(ThreadCtx& ctx, DVec3& positions, DVec3& forwards,
                                 DF32& speeds, const DVec3& steerings, DMat4& matrices,
                                 ModifyParams prey_mp, steer::AgentParams predator_params,
                                 std::uint32_t predators) {
    const std::uint64_t gid = ctx.global_id();
    if (gid >= positions.size()) co_return;

    Agent agent = load_agent(ctx, positions, forwards, speeds, gid);
    const Vec3 steering = steerings.read(ctx, gid);
    charge_modify(ctx);
    const steer::AgentParams& params =
        ctx.branch(gid < predators) ? predator_params : prey_mp.params;
    steer::apply_steering(agent, steering, prey_mp.dt, params);
    steer::wrap_world(agent, prey_mp.world_radius);

    positions.write(ctx, gid, agent.position);
    forwards.write(ctx, gid, agent.forward);
    speeds.write(ctx, gid, agent.speed);
    charge_draw_matrix(ctx);
    matrices.write(ctx, gid, steer::agent_matrix(agent.position, agent.forward));
    co_return;
}

}  // namespace gpusteer
