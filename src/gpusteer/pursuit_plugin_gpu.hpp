// The pursuit scenario on the GPU — the same plugin contract and the same
// decision logic as steer::PursuitPlugin, with the simulation and
// modification substages running on the device. Captures (rare, branchy,
// serial) stay on the host: the same construct-on-the-host split the
// framework encourages everywhere else.
#pragma once

#include <string_view>
#include <vector>

#include "cupp/cupp.hpp"
#include "gpusteer/pursuit_kernels.hpp"
#include "steer/plugin.hpp"
#include "steer/pursuit_plugin.hpp"

namespace gpusteer {

class GpuPursuitPlugin final : public steer::PlugIn {
public:
    explicit GpuPursuitPlugin(std::uint32_t prey_per_predator = 32)
        : prey_per_predator_(prey_per_predator),
          sim_kernel_(&pursuit_sim_kernel),
          mod_kernel_(&pursuit_modify_kernel) {
        sim_kernel_.set_block_dim(cusim::dim3{kThreadsPerBlock});
        mod_kernel_.set_block_dim(cusim::dim3{kThreadsPerBlock});
    }

    [[nodiscard]] std::string_view name() const override { return "pursuit-gpu"; }
    void open(const steer::WorldSpec& spec) override;
    steer::StageTimes step() override;
    [[nodiscard]] std::span<const steer::Mat4> draw_matrices() const override {
        return drawn_;
    }
    [[nodiscard]] std::vector<steer::Agent> snapshot() const override;
    [[nodiscard]] const steer::UpdateCounters& counters() const override { return totals_; }
    void close() override;

    [[nodiscard]] std::uint32_t predators() const { return predators_; }
    [[nodiscard]] std::uint32_t captures() const { return captures_; }
    [[nodiscard]] std::uint64_t divergent_warp_steps() const { return divergent_events_; }
    [[nodiscard]] std::uint64_t branch_evaluations() const { return branch_evaluations_; }
    [[nodiscard]] const cupp::device& device_handle() const { return dev_; }

private:
    std::uint32_t prey_per_predator_;
    steer::WorldSpec spec_{};
    steer::AgentParams predator_params_{};
    steer::CpuCostModel cpu_{};
    cupp::device dev_;

    std::uint32_t predators_ = 0;
    std::uint32_t captures_ = 0;
    std::vector<steer::SphereObstacle> obstacles_;
    std::optional<cupp::constant_array<steer::SphereObstacle>> dev_obstacles_;

    cupp::vector<steer::Vec3> positions_;
    cupp::vector<steer::Vec3> forwards_;
    cupp::vector<float> speeds_;
    cupp::vector<steer::Vec3> steerings_;
    cupp::vector<steer::WanderState> wander_;
    cupp::vector<std::uint32_t> targets_;
    cupp::vector<steer::Mat4> matrices_;
    std::vector<steer::Mat4> drawn_;

    using SimFn = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, const DVec3&,
                                        const DF32&, DWander&, DU32&, DObstacles,
                                        std::uint32_t, PursuitParams, DVec3&);
    using ModFn = cusim::KernelTask (*)(cusim::ThreadCtx&, DVec3&, DVec3&, DF32&,
                                        const DVec3&, DMat4&, ModifyParams,
                                        steer::AgentParams, std::uint32_t);
    cupp::kernel<SimFn> sim_kernel_;
    cupp::kernel<ModFn> mod_kernel_;

    steer::UpdateCounters totals_{};
    std::uint64_t step_index_ = 0;
    std::uint64_t divergent_events_ = 0;
    std::uint64_t branch_evaluations_ = 0;
};

}  // namespace gpusteer
