#include "gpusteer/pursuit_plugin_gpu.hpp"

namespace gpusteer {

using steer::Agent;
using steer::StageTimes;
using steer::Vec3;
namespace pc = steer::pursuit;

void GpuPursuitPlugin::open(const steer::WorldSpec& spec) {
    spec_ = spec;
    predator_params_ = pc::predator_params(spec.params);
    predators_ = std::max(1u, spec.agents / std::max(1u, prey_per_predator_));
    captures_ = 0;
    obstacles_ = pc::make_obstacles(spec);
    dev_obstacles_.emplace(
        dev_, std::span<const steer::SphereObstacle>(obstacles_.data(), obstacles_.size()));

    const auto flock = steer::make_flock(spec);
    const auto n = spec.agents;
    positions_ = cupp::vector<Vec3>(n);
    forwards_ = cupp::vector<Vec3>(n);
    speeds_ = cupp::vector<float>(n);
    steerings_ = cupp::vector<Vec3>(n, steer::kZero);
    wander_ = cupp::vector<steer::WanderState>(n);
    targets_ = cupp::vector<std::uint32_t>(n, n);  // invalid: resolved on first step
    matrices_ = cupp::vector<steer::Mat4>(n);
    {
        auto& p = positions_.mutate();
        auto& f = forwards_.mutate();
        auto& s = speeds_.mutate();
        auto& w = wander_.mutate();
        for (std::uint32_t i = 0; i < n; ++i) {
            p[i] = flock[i].position;
            f[i] = flock[i].forward;
            s[i] = flock[i].speed;
            w[i].rng = pc::wander_rng(spec.seed, i);
        }
    }
    // Prime device storage and cached handles while the device is idle.
    (void)positions_.get_device_reference(dev_);
    (void)forwards_.get_device_reference(dev_);
    (void)speeds_.get_device_reference(dev_);
    (void)steerings_.get_device_reference(dev_);
    (void)wander_.get_device_reference(dev_);
    (void)targets_.get_device_reference(dev_);
    (void)matrices_.get_device_reference(dev_);

    drawn_.clear();
    totals_ = {};
    step_index_ = 0;
    divergent_events_ = 0;
    branch_evaluations_ = 0;
    dev_.sim().reset_clock();
}

void GpuPursuitPlugin::close() {
    drawn_.clear();
    obstacles_.clear();
}

StageTimes GpuPursuitPlugin::step() {
    auto& sim = dev_.sim();
    const std::uint32_t n = spec_.agents;
    StageTimes times;
    const double t0 = sim.host_time();

    const PursuitParams pp{predators_,
                           pc::kEvadeRadius,
                           pc::kCloseRange,
                           spec_.params.max_speed,
                           predator_params_.max_speed,
                           spec_.params.max_force,
                           spec_.params.max_speed * pc::kWanderFraction,
                           pc::kAvoidHorizonSeconds,
                           spec_.params.radius};
    const ModifyParams mp{spec_.dt, spec_.world_radius, spec_.params};

    const cusim::dim3 grid{(n + kThreadsPerBlock - 1) / kThreadsPerBlock};
    sim_kernel_.set_grid_dim(grid);
    sim_kernel_(dev_, positions_, forwards_, speeds_, wander_, targets_,
                *dev_obstacles_, static_cast<std::uint32_t>(obstacles_.size()), pp,
                steerings_);
    divergent_events_ += sim_kernel_.last_stats().divergent_events;
    branch_evaluations_ += sim_kernel_.last_stats().branch_evaluations;

    mod_kernel_.set_grid_dim(grid);
    mod_kernel_(dev_, positions_, forwards_, speeds_, steerings_, matrices_, mp,
                predator_params_, predators_);
    divergent_events_ += mod_kernel_.last_stats().divergent_events;
    branch_evaluations_ += mod_kernel_.last_stats().branch_evaluations;

    // --- captures (host side, like the grid construction: cheap, branchy,
    //     serial work stays on the CPU) ---
    // Mutable local copy: a respawn by predator p must be visible to the
    // capture checks of predators > p, exactly as in the CPU plugin's
    // in-place loop over the flock.
    auto positions = positions_.snapshot();  // syncs with the kernels
    const auto targets = targets_.snapshot();
    std::uint32_t captured_this_step = 0;
    for (std::uint32_t p = 0; p < predators_; ++p) {
        std::uint32_t quarry = targets[p];
        if (quarry >= n || quarry < predators_) {
            // Fallback: nearest prey, as in the CPU plugin.
            float best_d2 = 1e30f;
            quarry = predators_;
            for (std::uint32_t i = predators_; i < n; ++i) {
                const float d2 = (positions[i] - positions[p]).length_squared();
                if (d2 < best_d2) {
                    best_d2 = d2;
                    quarry = i;
                }
            }
        }
        if ((positions[p] - positions[quarry]).length() <
            pc::kCaptureRadius + 2.0f * spec_.params.radius) {
            ++captures_;
            ++captured_this_step;
            positions[quarry] = -positions[quarry];
            positions_.mutate()[quarry] = positions[quarry];
            targets_.mutate()[p] = predators_ + n;  // force re-target
        }
    }
    sim.advance_host(cpu_.seconds(40.0 * predators_));  // capture-scan cost

    totals_.thinks += n;
    totals_.modifies += n;
    totals_.pairs_examined +=
        std::uint64_t{predators_} * (n - predators_) + std::uint64_t{n - predators_} * predators_;

    times.simulation = sim.host_time() - t0;

    // --- graphics stage ---
    const double d0 = sim.host_time();
    drawn_ = matrices_.snapshot();
    sim.advance_host(steer::draw_stage_seconds(n, cpu_));
    times.draw = sim.host_time() - d0;

    ++step_index_;
    return times;
}

std::vector<Agent> GpuPursuitPlugin::snapshot() const {
    const auto p = positions_.snapshot();
    const auto f = forwards_.snapshot();
    const auto s = speeds_.snapshot();
    std::vector<Agent> out(spec_.agents);
    for (std::uint32_t i = 0; i < spec_.agents; ++i) {
        out[i].position = p[i];
        out[i].forward = f[i];
        out[i].speed = s[i];
    }
    return out;
}

}  // namespace gpusteer
