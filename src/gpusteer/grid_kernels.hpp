// GPU neighbor search over the host-built spatial grid — the future-work
// extension of thesis §7 realised with the type-transformation machinery:
// the host constructs the grid (cheap, serial), the flat CSR arrays are
// transferred, and the device performs high-arithmetic-intensity lookups.
#pragma once

#include "cupp/cupp.hpp"
#include "gpusteer/kernels.hpp"
#include "steer/spatial_grid.hpp"

namespace gpusteer {

/// Host-side holder: rebuilds the grid each step and keeps the CuPP vectors
/// whose lazy copying moves the CSR arrays only when they changed.
class GridUpload {
public:
    /// Rebuilds from current positions and refreshes the device vectors.
    void build(std::span<const steer::Vec3> positions, float cell_size,
               float world_radius) {
        grid_.build(positions, cell_size, world_radius);
        auto& cs = cell_start_.mutate();
        cs.assign(grid_.cell_start().begin(), grid_.cell_start().end());
        auto& en = entries_.mutate();
        en.assign(grid_.entries().begin(), grid_.entries().end());
    }

    /// Device-lost recovery: declare the CSR vectors' device copies dead
    /// (the next build/upload refreshes them from the host).
    void abandon_device_data() {
        cell_start_.abandon_device_data();
        entries_.abandon_device_data();
    }

    [[nodiscard]] const steer::SpatialGrid& host_grid() const { return grid_; }
    [[nodiscard]] cupp::vector<std::uint32_t>& cell_start() { return cell_start_; }
    [[nodiscard]] cupp::vector<std::uint32_t>& entries() { return entries_; }
    [[nodiscard]] const steer::GridSpec& spec() const { return grid_.spec(); }

private:
    steer::SpatialGrid grid_;
    cupp::vector<std::uint32_t> cell_start_;
    cupp::vector<std::uint32_t> entries_;
};

/// Neighbor search visiting only the 27 cells around each agent. Same
/// output contract as ns_global_kernel / ns_shared_kernel.
cusim::KernelTask ns_grid_kernel(cusim::ThreadCtx& ctx, const DVec3& positions,
                                 const DU32& cell_start, const DU32& entries,
                                 steer::GridSpec spec, float search_radius, DU32& result,
                                 DU32& result_count, ThinkMap map);

/// The full simulation substage over the grid: grid-walk neighbor search +
/// flocking, one steering vector per thinking agent. Visits candidates in
/// the identical order as steer::SpatialGrid::find_neighbors, so a CPU run
/// with WorldSpec::use_spatial_grid computes the identical flock.
cusim::KernelTask sim_grid_kernel(cusim::ThreadCtx& ctx, const DVec3& positions,
                                  const DVec3& forwards, const DU32& cell_start,
                                  const DU32& entries, steer::GridSpec spec,
                                  DVec3& steerings, FlockParams fp, ThinkMap map);

}  // namespace gpusteer
