#include "gpusteer/grid_kernels.hpp"

#include "gpusteer/dev_costs.hpp"
#include "gpusteer/kernel_detail.hpp"

namespace gpusteer {

using cusim::KernelTask;
using cusim::Op;
using cusim::ThreadCtx;
using steer::NeighborList;
using steer::Vec3;

using detail::device_flocking;
using detail::for_each_grid_candidate;
using detail::offer_candidate;
using detail::write_neighbor_list;

namespace {

/// Cell coordinates of the agent: a handful of arithmetic instructions.
void charge_cell_lookup(ThreadCtx& ctx) {
    ctx.charge(Op::FMad, 3);
    ctx.charge(Op::Recip, 1);
}

}  // namespace

KernelTask ns_grid_kernel(ThreadCtx& ctx, const DVec3& positions, const DU32& cell_start,
                          const DU32& entries, steer::GridSpec spec, float search_radius,
                          DU32& result, DU32& result_count, ThinkMap map) {
    const std::uint32_t n = positions.size();
    const std::uint32_t me = map.agent_of(ctx.global_id());
    if (me >= n) co_return;

    const Vec3 my_pos = positions.read(ctx, me);
    const float r2 = search_radius * search_radius;
    charge_cell_lookup(ctx);
    const std::uint32_t cx = spec.clamp_axis(my_pos.x);
    const std::uint32_t cy = spec.clamp_axis(my_pos.y);
    const std::uint32_t cz = spec.clamp_axis(my_pos.z);

    NeighborList list;
    for_each_grid_candidate(ctx, cell_start, entries, spec, cx, cy, cz,
                            [&](std::uint32_t candidate) {
                                const Vec3 p = positions.read(ctx, candidate);
                                const Vec3 offset = p - my_pos;
                                offer_candidate(ctx, list, candidate,
                                                offset.length_squared(), r2,
                                                candidate != me, NeighborList::kCapacity);
                            });

    write_neighbor_list(ctx, list, me, result, result_count);
    co_return;
}

KernelTask sim_grid_kernel(ThreadCtx& ctx, const DVec3& positions, const DVec3& forwards,
                           const DU32& cell_start, const DU32& entries, steer::GridSpec spec,
                           DVec3& steerings, FlockParams fp, ThinkMap map) {
    const std::uint32_t n = positions.size();
    const std::uint32_t me = map.agent_of(ctx.global_id());
    if (me >= n) co_return;

    const Vec3 my_pos = positions.read(ctx, me);
    const Vec3 my_fwd = forwards.read(ctx, me);
    const float r2 = fp.search_radius * fp.search_radius;
    charge_cell_lookup(ctx);
    const std::uint32_t cx = spec.clamp_axis(my_pos.x);
    const std::uint32_t cy = spec.clamp_axis(my_pos.y);
    const std::uint32_t cz = spec.clamp_axis(my_pos.z);

    NeighborList list;
    for_each_grid_candidate(ctx, cell_start, entries, spec, cx, cy, cz,
                            [&](std::uint32_t candidate) {
                                const Vec3 p = positions.read(ctx, candidate);
                                const Vec3 offset = p - my_pos;
                                offer_candidate(ctx, list, candidate,
                                                offset.length_squared(), r2,
                                                candidate != me, fp.max_neighbors);
                            });

    const Vec3 steering = device_flocking(ctx, positions, forwards, my_pos, my_fwd, list,
                                          fp, NeighborData::Recompute);
    steerings.write(ctx, me, steering);
    co_return;
}

}  // namespace gpusteer
