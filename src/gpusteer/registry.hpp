// Registration of the Boids plugins with the OpenSteerDemo-style registry.
#pragma once

#include "steer/plugin.hpp"

namespace gpusteer {

/// Registers the CPU reference plugin and every GPU development version
/// (plus the double-buffered variant) under their canonical names:
///   boids-cpu, boids-gpu-v1 ... boids-gpu-v5, boids-gpu-v5-db
void register_all_plugins(steer::PlugInRegistry& registry = steer::PlugInRegistry::instance());

}  // namespace gpusteer
