// The pursuit scenario on the device — a second CuPP application beyond
// Boids, showing the framework carries over unchanged: the same lazy
// vectors, the same call semantics, plus the constant-memory extension for
// the obstacle set.
//
// Unlike the Boids kernels this one is control-flow heavy (predator vs
// prey roles, evade-vs-wander decisions, obstacle overrides), which makes
// it a worst-case probe for the SIMD branching issue of §6.3.1.
#pragma once

#include "cupp/constant_array.hpp"
#include "gpusteer/kernels.hpp"
#include "steer/basic_behaviors.hpp"
#include "steer/obstacles.hpp"

namespace gpusteer {

using DWander = cupp::deviceT::vector<steer::WanderState>;
using DObstacles = cusim::ConstantPtr<steer::SphereObstacle>;

/// Scenario parameters as they travel to the device.
struct PursuitParams {
    std::uint32_t predators;     ///< agents [0, predators) hunt the rest
    float evade_radius;          ///< prey notice a predator this close
    float close_range;           ///< predators switch to pure pursuit here
    float max_speed;             ///< prey top speed
    float predator_max_speed;
    float max_force;             ///< prey force (obstacle override scale)
    float wander_strength;
    float avoid_horizon;         ///< obstacle look-ahead seconds
    float agent_radius;
};

/// The pursuit simulation substage: every agent decides its steering vector
/// on a state snapshot. Mirrors steer::PursuitPlugin's host loop statement
/// for statement, so a host run over the same inputs computes the identical
/// steering vectors.
cusim::KernelTask pursuit_sim_kernel(cusim::ThreadCtx& ctx, const DVec3& positions,
                                     const DVec3& forwards, const DF32& speeds,
                                     DWander& wander, DU32& targets, DObstacles obstacles,
                                     std::uint32_t obstacle_count, PursuitParams pp,
                                     DVec3& steerings);

/// The pursuit modification substage: applies the steering vectors with the
/// per-role kinematic limits (predators are faster and stronger) and emits
/// the draw matrices.
cusim::KernelTask pursuit_modify_kernel(cusim::ThreadCtx& ctx, DVec3& positions,
                                        DVec3& forwards, DF32& speeds,
                                        const DVec3& steerings, DMat4& matrices,
                                        ModifyParams prey_mp, steer::AgentParams predator_params,
                                        std::uint32_t predators);

}  // namespace gpusteer
