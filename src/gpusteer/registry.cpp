#include "gpusteer/registry.hpp"

#include <memory>

#include "gpusteer/plugin.hpp"
#include "gpusteer/pursuit_plugin_gpu.hpp"
#include "steer/pursuit_plugin.hpp"
#include "steer/simulation.hpp"

namespace gpusteer {

void register_all_plugins(steer::PlugInRegistry& registry) {
    registry.add("boids-cpu", []() -> std::unique_ptr<steer::PlugIn> {
        return std::make_unique<steer::CpuBoidsPlugin>();
    });
    for (int v = 1; v <= 6; ++v) {
        registry.add("boids-gpu-v" + std::to_string(v),
                     [v]() -> std::unique_ptr<steer::PlugIn> {
                         return std::make_unique<GpuBoidsPlugin>(static_cast<Version>(v));
                     });
    }
    registry.add("boids-gpu-v5-db", []() -> std::unique_ptr<steer::PlugIn> {
        return std::make_unique<GpuBoidsPlugin>(Version::V5_FullUpdateOnDevice,
                                                /*double_buffering=*/true);
    });
    registry.add("pursuit-cpu", []() -> std::unique_ptr<steer::PlugIn> {
        return std::make_unique<steer::PursuitPlugin>();
    });
    registry.add("pursuit-gpu", []() -> std::unique_ptr<steer::PlugIn> {
        return std::make_unique<GpuPursuitPlugin>();
    });
}

}  // namespace gpusteer
