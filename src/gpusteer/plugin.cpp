#include "gpusteer/plugin.hpp"

#include "steer/behaviors.hpp"
#include "steer/neighbor_search.hpp"

namespace gpusteer {

using steer::Agent;
using steer::NeighborList;
using steer::StageTimes;
using steer::Vec3;

namespace {

/// Host-side cycle cost of extracting one agent's state into the staging
/// vectors (the copy loop of listing 6.1).
constexpr double kExtractCyclesPerAgent = 22.0;

cusim::dim3 grid_for(std::uint32_t threads) {
    return cusim::dim3{(threads + kThreadsPerBlock - 1) / kThreadsPerBlock};
}

/// RAII span over a per-step phase (neighbor search, steering, grid
/// rebuild, draw ...) on the plugin device's host lane of the trace.
class ScopedPhase {
public:
    ScopedPhase(cusim::Device& sim, const char* name)
        : sim_(sim), name_(name), on_(cupp::trace::enabled()),
          t0_(on_ ? sim.host_time() : 0.0) {}
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;
    ~ScopedPhase() {
        if (on_) {
            cupp::trace::emit_complete(sim_.host_track(), name_,
                                       sim_.trace_time_us(t0_),
                                       (sim_.host_time() - t0_) * 1e6);
        }
    }

private:
    cusim::Device& sim_;
    const char* name_;
    bool on_;
    double t0_;
};

}  // namespace

GpuBoidsPlugin::GpuBoidsPlugin(Version version, bool double_buffering, bool with_draw_stage)
    : version_(version),
      double_buffer_(double_buffering),
      with_draw_(with_draw_stage),
      name_("boids-gpu-v" + std::to_string(static_cast<int>(version)) +
            (double_buffering ? "-db" : "")),
      ns_kernel_(version == Version::V1_NeighborSearchGlobal ? &ns_global_kernel
                                                             : &ns_shared_kernel),
      sim_kernel_(&sim_kernel),
      mod_kernel_(&modify_kernel),
      grid_sim_kernel_(&sim_grid_kernel) {
    ns_kernel_.set_block_dim(cusim::dim3{kThreadsPerBlock});
    sim_kernel_.set_block_dim(cusim::dim3{kThreadsPerBlock});
    mod_kernel_.set_block_dim(cusim::dim3{kThreadsPerBlock});
    grid_sim_kernel_.set_block_dim(cusim::dim3{kThreadsPerBlock});
    if (version != Version::V1_NeighborSearchGlobal) {
        ns_kernel_.set_shared_bytes(kThreadsPerBlock * sizeof(Vec3));
    }
    sim_kernel_.set_shared_bytes(kThreadsPerBlock * sizeof(Vec3));
    ns_kernel_.set_name(version == Version::V1_NeighborSearchGlobal ? "ns_global"
                                                                    : "ns_shared");
    sim_kernel_.set_name("sim_substage");
    mod_kernel_.set_name("modify");
    grid_sim_kernel_.set_name("sim_grid");
}

void GpuBoidsPlugin::open(const steer::WorldSpec& spec) {
    const bool needs_tile_multiple = version_ != Version::V1_NeighborSearchGlobal &&
                                     version_ != Version::V6_GridNeighborSearch;
    if (spec.agents % kThreadsPerBlock != 0 && needs_tile_multiple) {
        // §6.2.1: "the number of agents has to be a multiply of
        // threads_per_block" for the shared-memory kernels.
        throw cupp::usage_error("agent count must be a multiple of " +
                                std::to_string(kThreadsPerBlock));
    }
    spec_ = spec;
    flock_ = steer::make_flock(spec);
    steering_host_.assign(spec.agents, steer::kZero);
    drawn_.clear();

    const auto n = spec.agents;
    positions_ = cupp::vector<Vec3>(n);
    forwards_ = cupp::vector<Vec3>(n);
    speeds_ = cupp::vector<float>(n);
    steerings_ = cupp::vector<Vec3>(n, steer::kZero);
    result_ = cupp::vector<std::uint32_t>(std::uint64_t{n} * NeighborList::kCapacity);
    result_count_ = cupp::vector<std::uint32_t>(n);
    matrices_[0] = cupp::vector<steer::Mat4>(n);
    matrices_[1] = cupp::vector<steer::Mat4>(n);
    current_buffer_ = 0;

    // Initial upload of the full agent state.
    extract_positions();
    extract_forwards();
    {
        auto& s = speeds_.mutate();
        for (std::uint32_t i = 0; i < n; ++i) s[i] = flock_[i].speed;
    }
    // Prime every vector's device storage *and* its cached global-memory
    // handle now, while the device is idle: a first-use upload (even the
    // 32-byte handle copy of get_device_reference) would otherwise
    // synchronise with a running kernel mid-frame, costing the overlap the
    // asynchronous launches are supposed to buy.
    (void)positions_.get_device_reference(dev_);
    (void)forwards_.get_device_reference(dev_);
    (void)speeds_.get_device_reference(dev_);
    (void)steerings_.get_device_reference(dev_);
    (void)result_.get_device_reference(dev_);
    (void)result_count_.get_device_reference(dev_);
    (void)matrices_[0].get_device_reference(dev_);
    (void)matrices_[1].get_device_reference(dev_);

    totals_ = {};
    step_index_ = 0;
    divergent_events_ = 0;
    branch_evaluations_ = 0;
    launches_ = 0;
    // Device-lost recovery baseline: the initial state is the first
    // checkpoint (steering carry-over starts at zero, like steerings_).
    checkpoint_flock_ = flock_;
    checkpoint_steering_ = steering_host_;
    checkpoint_step_ = 0;
    cpu_fallback_steps_ = 0;
    device_resets_ = 0;
    dev_.sim().reset_clock();
}

void GpuBoidsPlugin::close() {
    flock_.clear();
    steering_host_.clear();
    drawn_.clear();
}

ThinkMap GpuBoidsPlugin::think_map() const {
    ThinkMap map;
    map.period = spec_.think_period <= 1 ? 1 : spec_.think_period;
    map.phase = static_cast<std::uint32_t>(step_index_ % map.period);
    return map;
}

void GpuBoidsPlugin::accumulate_stats(const cusim::LaunchStats& s) {
    divergent_events_ += s.divergent_events;
    branch_evaluations_ += s.branch_evaluations;
    ++launches_;
}

void GpuBoidsPlugin::extract_positions() {
    ScopedPhase span(dev_.sim(), "extract_positions");
    auto& p = positions_.mutate();
    for (std::uint32_t i = 0; i < spec_.agents; ++i) p[i] = flock_[i].position;
    dev_.sim().advance_host(cpu_.seconds(kExtractCyclesPerAgent * spec_.agents));
}

void GpuBoidsPlugin::extract_forwards() {
    ScopedPhase span(dev_.sim(), "extract_forwards");
    auto& f = forwards_.mutate();
    for (std::uint32_t i = 0; i < spec_.agents; ++i) f[i] = flock_[i].forward;
    dev_.sim().advance_host(cpu_.seconds(kExtractCyclesPerAgent * spec_.agents));
}

void GpuBoidsPlugin::host_steering(const std::vector<std::uint32_t>& thinking) {
    ScopedPhase span(dev_.sim(), "host_steering");
    // Versions 1/2: the device found the neighbors, the host computes the
    // steering vectors from them ("continue with the old CPU simulation",
    // listing 6.1).
    const steer::FlockingWeights weights{spec_.weight_separation, spec_.weight_alignment,
                                         spec_.weight_cohesion};
    std::vector<Vec3> positions(spec_.agents);
    std::vector<Vec3> forwards(spec_.agents);
    for (std::uint32_t i = 0; i < spec_.agents; ++i) {
        positions[i] = flock_[i].position;
        forwards[i] = flock_[i].forward;
    }
    std::uint64_t neighbors_total = 0;
    const auto& counts = result_count_;  // const access: lazy download once
    const auto& indices = result_;
    for (const std::uint32_t me : thinking) {
        NeighborList list;
        list.count = counts[me];
        for (std::uint32_t k = 0; k < list.count; ++k) {
            list.index[k] = indices[std::uint64_t{me} * NeighborList::kCapacity + k];
        }
        steering_host_[me] = steer::flocking(positions[me], forwards[me], list, positions,
                                             forwards, weights);
        neighbors_total += list.count;
    }
    totals_.neighbors_found += neighbors_total;
    dev_.sim().advance_host(
        cpu_.seconds(static_cast<double>(thinking.size()) * cpu_.cycles_per_think +
                     static_cast<double>(neighbors_total) * cpu_.cycles_per_neighbor));
}

void GpuBoidsPlugin::host_modification() {
    ScopedPhase span(dev_.sim(), "host_modification");
    for (std::uint32_t i = 0; i < spec_.agents; ++i) {
        steer::apply_steering(flock_[i], steering_host_[i], spec_.dt, spec_.params);
        steer::wrap_world(flock_[i], spec_.world_radius);
    }
    totals_.modifies += spec_.agents;
    dev_.sim().advance_host(
        cpu_.seconds(static_cast<double>(spec_.agents) * cpu_.cycles_per_modify));
}

double GpuBoidsPlugin::draw_stage(bool from_device_matrices) {
    ScopedPhase span(dev_.sim(), "draw");
    const double t0 = dev_.sim().host_time();
    if (!from_device_matrices) {
        steer::build_draw_matrices(flock_, drawn_);
    }
    if (with_draw_) {
        dev_.sim().advance_host(steer::draw_stage_seconds(spec_.agents, cpu_));
    }
    return dev_.sim().host_time() - t0;
}

StageTimes GpuBoidsPlugin::step_host_versions() {
    auto& sim = dev_.sim();
    StageTimes times;
    const ThinkMap map = think_map();
    const std::uint32_t thinking_count = map.thinking_count(spec_.agents);

    const double t0 = sim.host_time();

    // --- simulation substage ---
    extract_positions();
    const bool steering_on_device = VersionTraits::of(version_).steering_on_device;
    if (steering_on_device) {
        extract_forwards();
        const FlockParams fp{spec_.search_radius, spec_.weight_separation,
                             spec_.weight_alignment, spec_.weight_cohesion,
                             spec_.max_neighbors};
        const NeighborData mode = version_ == Version::V3_SimSubstageCached
                                      ? NeighborData::CacheLocal
                                      : NeighborData::Recompute;
        sim_kernel_.set_grid_dim(grid_for(thinking_count));
        sim_kernel_(dev_, positions_, forwards_, steerings_, fp, map, mode);
        accumulate_stats(sim_kernel_.last_stats());
        // Download the updated steering vectors; the lazy vector fetches
        // them once, synchronising with the kernel.
        const auto steerings = steerings_.snapshot();
        for (std::uint32_t i = 0; i < spec_.agents; ++i) steering_host_[i] = steerings[i];
    } else {
        {
            ScopedPhase span(sim, "neighbor_search");
            ns_kernel_.set_grid_dim(grid_for(thinking_count));
            ns_kernel_(dev_, positions_, spec_.search_radius, result_, result_count_, map);
            accumulate_stats(ns_kernel_.last_stats());
        }
        std::vector<std::uint32_t> thinking;
        thinking.reserve(thinking_count);
        for (std::uint32_t i = 0; i < spec_.agents; ++i) {
            if (steer::thinks_this_step(i, step_index_, spec_.think_period)) {
                thinking.push_back(i);
            }
        }
        host_steering(thinking);
    }
    totals_.thinks += thinking_count;
    totals_.pairs_examined += std::uint64_t{thinking_count} * spec_.agents;
    times.simulation = sim.host_time() - t0;

    // --- modification substage (host) ---
    const double t1 = sim.host_time();
    host_modification();
    times.modification = sim.host_time() - t1;

    // --- graphics stage ---
    times.draw = draw_stage(/*from_device_matrices=*/false);

    ++step_index_;
    return times;
}

void GpuBoidsPlugin::launch_simulation_kernel(const ThinkMap& map, const FlockParams& fp,
                                              std::uint32_t thinking_count) {
    if (version_ == Version::V6_GridNeighborSearch) {
        // Future-work §7 pipeline: download the current positions (the
        // device owns them in version 6), build the grid on the host, and
        // let the lazy vectors carry the CSR arrays across.
        auto& sim = dev_.sim();
        {
            ScopedPhase span(sim, "grid_rebuild");
            const auto host_positions = positions_.snapshot();
            grid_upload_.build(host_positions, spec_.search_radius, spec_.world_radius);
            sim.advance_host(
                cpu_.seconds(cpu_.cycles_per_grid_agent * spec_.agents +
                             cpu_.cycles_per_grid_cell * grid_upload_.spec().cells()));
        }
        grid_sim_kernel_.set_grid_dim(grid_for(thinking_count));
        grid_sim_kernel_(dev_, positions_, forwards_, grid_upload_.cell_start(),
                         grid_upload_.entries(), grid_upload_.spec(), steerings_, fp, map);
        accumulate_stats(grid_sim_kernel_.last_stats());
    } else {
        sim_kernel_.set_grid_dim(grid_for(thinking_count));
        sim_kernel_(dev_, positions_, forwards_, steerings_, fp, map,
                    NeighborData::Recompute);
        accumulate_stats(sim_kernel_.last_stats());
    }
}

StageTimes GpuBoidsPlugin::step_device_version() {
    auto& sim = dev_.sim();
    StageTimes times;
    const ThinkMap map = think_map();
    const std::uint32_t thinking_count = map.thinking_count(spec_.agents);
    const FlockParams fp{spec_.search_radius, spec_.weight_separation,
                         spec_.weight_alignment, spec_.weight_cohesion, spec_.max_neighbors};
    const ModifyParams mp{spec_.dt, spec_.world_radius, spec_.params};

    const double t0 = sim.host_time();

    if (double_buffer_) {
        // §6.3.2: read the *previous* step's draw data first (the device is
        // usually idle by now), then launch step n+1 and draw step n on the
        // host while the device computes.
        const int prev = 1 - current_buffer_;
        const double d0 = sim.host_time();
        {
            ScopedPhase span(sim, "matrices_download");
            drawn_ = matrices_[prev].snapshot();
        }
        const double download = sim.host_time() - d0;

        launch_simulation_kernel(map, fp, thinking_count);
        mod_kernel_.set_grid_dim(grid_for(spec_.agents));
        mod_kernel_(dev_, positions_, forwards_, speeds_, steerings_, matrices_[current_buffer_],
                    mp);
        accumulate_stats(mod_kernel_.last_stats());

        times.transfer = download;
        times.draw = draw_stage(/*from_device_matrices=*/true);
        // The update "time" of this frame is whatever of the device work
        // could not hide under the draw stage; it surfaces as the wait at
        // the *next* host access. For reporting we bill the launch window.
        times.simulation = sim.host_time() - t0 - times.draw - times.transfer;
        current_buffer_ = prev;
    } else {
        launch_simulation_kernel(map, fp, thinking_count);
        mod_kernel_.set_grid_dim(grid_for(spec_.agents));
        mod_kernel_(dev_, positions_, forwards_, speeds_, steerings_, matrices_[current_buffer_],
                    mp);
        accumulate_stats(mod_kernel_.last_stats());

        // Draw this step's matrices: the download blocks until the kernels
        // are done, so update and draw serialise.
        drawn_ = matrices_[current_buffer_].snapshot();
        times.simulation = sim.host_time() - t0;  // launches + device wait + download
        times.draw = draw_stage(/*from_device_matrices=*/true);
    }

    totals_.thinks += thinking_count;
    totals_.pairs_examined += std::uint64_t{thinking_count} * spec_.agents;
    totals_.modifies += spec_.agents;

    ++step_index_;
    return times;
}

StageTimes GpuBoidsPlugin::step() {
    try {
        return VersionTraits::of(version_).modification_on_device ? step_device_version()
                                                                  : step_host_versions();
    } catch (const cupp::device_lost_error&) {
        // Transient failures were already absorbed by cupp's retry layer;
        // a sticky DeviceLost escaping the step means the device is gone.
        // Degrade gracefully: recover the state on the CPU, finish the
        // step there, reset the device and resume on the GPU.
        return recover_and_step_on_cpu();
    }
}

void GpuBoidsPlugin::cpu_update_step(std::uint64_t step, bool count_stats) {
    const std::uint32_t n = spec_.agents;
    // Exactly the CpuBoidsPlugin update (§5.3): snapshot, steering for the
    // thinking agents, modification for all. The GPU kernels compute the
    // identical flock (that equivalence is what the tier-1 version tests
    // pin down), so CPU-replayed steps are bit-identical to lost GPU ones.
    std::vector<Vec3> positions(n);
    std::vector<Vec3> forwards(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        positions[i] = flock_[i].position;
        forwards[i] = flock_[i].forward;
    }
    const steer::FlockingWeights weights{spec_.weight_separation, spec_.weight_alignment,
                                         spec_.weight_cohesion};
    const bool use_grid = version_ == Version::V6_GridNeighborSearch;
    steer::SpatialGrid grid;
    if (use_grid) grid.build(positions, spec_.search_radius, spec_.world_radius);
    steer::SearchCounters sc;
    std::uint64_t thinks = 0;
    std::uint64_t neighbors_total = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!steer::thinks_this_step(i, step, spec_.think_period)) continue;
        const NeighborList neighbors =
            use_grid ? grid.find_neighbors(i, positions, spec_.search_radius,
                                           spec_.max_neighbors, &sc)
                     : steer::find_neighbors(i, positions, spec_.search_radius,
                                             spec_.max_neighbors, &sc);
        steering_host_[i] = steer::flocking(positions[i], forwards[i], neighbors,
                                            positions, forwards, weights);
        ++thinks;
        neighbors_total += neighbors.count;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        steer::apply_steering(flock_[i], steering_host_[i], spec_.dt, spec_.params);
        steer::wrap_world(flock_[i], spec_.world_radius);
    }
    if (count_stats) {
        // Mirror exactly what the interrupted GPU step would have added,
        // so a recovered run's totals equal a fault-free run's.
        totals_.thinks += thinks;
        totals_.pairs_examined += thinks * n;
        totals_.modifies += n;
        if (!VersionTraits::of(version_).steering_on_device) {
            totals_.neighbors_found += neighbors_total;
        }
    }
    dev_.sim().advance_host(
        cpu_.seconds(static_cast<double>(sc.pairs_examined) * cpu_.cycles_per_pair +
                     static_cast<double>(neighbors_total) * cpu_.cycles_per_neighbor +
                     static_cast<double>(thinks) * cpu_.cycles_per_think +
                     static_cast<double>(n) * cpu_.cycles_per_modify));
}

void GpuBoidsPlugin::abandon_device_vectors() {
    positions_.abandon_device_data();
    forwards_.abandon_device_data();
    speeds_.abandon_device_data();
    steerings_.abandon_device_data();
    result_.abandon_device_data();
    result_count_.abandon_device_data();
    matrices_[0].abandon_device_data();
    matrices_[1].abandon_device_data();
    grid_upload_.abandon_device_data();
}

void GpuBoidsPlugin::reupload_state() {
    ScopedPhase span(dev_.sim(), "reupload_state");
    const std::uint32_t n = spec_.agents;
    {
        auto& p = positions_.mutate();
        for (std::uint32_t i = 0; i < n; ++i) p[i] = flock_[i].position;
    }
    {
        auto& f = forwards_.mutate();
        for (std::uint32_t i = 0; i < n; ++i) f[i] = flock_[i].forward;
    }
    {
        auto& s = speeds_.mutate();
        for (std::uint32_t i = 0; i < n; ++i) s[i] = flock_[i].speed;
    }
    {
        auto& st = steerings_.mutate();
        for (std::uint32_t i = 0; i < n; ++i) st[i] = steering_host_[i];
    }
    dev_.sim().advance_host(cpu_.seconds(3.0 * kExtractCyclesPerAgent * n));
    // Re-prime buffers and cached global-memory handles like open() does,
    // so the resumed GPU steps pay no mid-frame first-use upload.
    (void)positions_.get_device_reference(dev_);
    (void)forwards_.get_device_reference(dev_);
    (void)speeds_.get_device_reference(dev_);
    (void)steerings_.get_device_reference(dev_);
    (void)result_.get_device_reference(dev_);
    (void)result_count_.get_device_reference(dev_);
    (void)matrices_[0].get_device_reference(dev_);
    (void)matrices_[1].get_device_reference(dev_);
}

StageTimes GpuBoidsPlugin::recover_and_step_on_cpu() {
    auto& sim = dev_.sim();
    ScopedPhase span(sim, "device_lost_recovery");
    const double t0 = sim.host_time();
    ++device_resets_;
    dev_.reset();
    abandon_device_vectors();

    const bool device_owns_state = VersionTraits::of(version_).modification_on_device;
    if (device_owns_state) {
        // Versions 5/6: the lost device held the only current flock.
        // Rewind to the checkpoint and replay the committed steps on the
        // CPU (their stats are already in totals_, so no re-counting).
        flock_ = checkpoint_flock_;
        steering_host_ = checkpoint_steering_;
        for (std::uint64_t s = checkpoint_step_; s < step_index_; ++s) {
            cpu_update_step(s, /*count_stats=*/false);
        }
    }
    // In double-buffer mode this step presents the *previous* step's
    // matrices (§6.3.2), which also died with the device.
    std::vector<steer::Mat4> prev_matrices;
    if (device_owns_state && double_buffer_) {
        steer::build_draw_matrices(flock_, prev_matrices);
    }

    // The step the device failed: finish it on the CPU.
    cpu_update_step(step_index_, /*count_stats=*/true);
    ++cpu_fallback_steps_;
    cupp::trace::metrics().add("gpusteer.cpu_fallback_steps");

    if (device_owns_state) {
        std::vector<steer::Mat4> now;
        steer::build_draw_matrices(flock_, now);
        // Leave this step's matrices in the buffer the GPU path would have
        // written, so the next double-buffered step downloads the right one.
        matrices_[current_buffer_].mutate() = now;
        if (double_buffer_) {
            drawn_ = std::move(prev_matrices);
            current_buffer_ = 1 - current_buffer_;
        } else {
            drawn_ = std::move(now);
        }
        reupload_state();
        checkpoint_flock_ = flock_;
        checkpoint_steering_ = steering_host_;
        checkpoint_step_ = step_index_ + 1;
    } else {
        // Versions 1-4: the host copy was authoritative all along; the
        // CPU step above recomputed every thinking agent of this step, so
        // any partially-updated steering is overwritten.
        steer::build_draw_matrices(flock_, drawn_);
        reupload_state();
    }

    ++step_index_;
    StageTimes times;
    times.draw = draw_stage(/*from_device_matrices=*/true);
    times.simulation = sim.host_time() - t0 - times.draw;
    return times;
}

std::vector<Agent> GpuBoidsPlugin::snapshot() const {
    if (!VersionTraits::of(version_).modification_on_device) return flock_;
    // Version 5: the truth lives on the device; download it.
    const auto p = positions_.snapshot();
    const auto f = forwards_.snapshot();
    const auto s = speeds_.snapshot();
    std::vector<Agent> out(spec_.agents);
    for (std::uint32_t i = 0; i < spec_.agents; ++i) {
        out[i].position = p[i];
        out[i].forward = f[i];
        out[i].speed = s[i];
    }
    return out;
}

}  // namespace gpusteer
