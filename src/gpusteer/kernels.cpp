#include "gpusteer/kernels.hpp"

#include "gpusteer/dev_costs.hpp"
#include "gpusteer/kernel_detail.hpp"
#include "steer/behaviors.hpp"
#include "steer/neighbor_search.hpp"

namespace gpusteer {

using cusim::KernelTask;
using cusim::Op;
using cusim::ThreadCtx;
using steer::NeighborList;
using steer::Vec3;

using detail::device_flocking;
using detail::offer_candidate;
using detail::write_neighbor_list;

KernelTask ns_global_kernel(ThreadCtx& ctx, const DVec3& positions, float search_radius,
                            DU32& result, DU32& result_count, ThinkMap map) {
    const std::uint32_t n = positions.size();
    const std::uint32_t me = map.agent_of(ctx.global_id());
    if (me >= n) co_return;  // no barrier in this kernel: early exit is fine

    const Vec3 my_pos = positions.read(ctx, me);
    const float r2 = search_radius * search_radius;
    NeighborList list;
    for (std::uint32_t i = 0; i < n; ++i) {
        ctx.charge(Op::Branch);  // uniform loop condition
        // Every candidate comes from global memory: the expensive version.
        const Vec3 p = positions.read(ctx, i);
        const Vec3 offset = p - my_pos;
        offer_candidate(ctx, list, i, offset.length_squared(), r2, i != me,
                        NeighborList::kCapacity);
    }
    write_neighbor_list(ctx, list, me, result, result_count);
    co_return;
}

KernelTask ns_shared_kernel(ThreadCtx& ctx, const DVec3& positions, float search_radius,
                            DU32& result, DU32& result_count, ThinkMap map) {
    const std::uint32_t n = positions.size();
    const std::uint32_t tpb = ctx.block_dim().x;
    const std::uint32_t tid = ctx.thread_idx().x;
    const std::uint32_t me = map.agent_of(ctx.global_id());
    const bool active = me < n;

    auto s_positions = ctx.shared_array<Vec3>(tpb);
    Vec3 my_pos{};
    if (active) my_pos = positions.read(ctx, me);
    const float r2 = search_radius * search_radius;
    NeighborList list;

    // Listing 6.2: iterate through all agents one block-sized tile at a
    // time; each thread stages one element, everyone synchronises, then the
    // search runs against the fast shared copy.
    for (std::uint32_t base = 0; base < n; base += tpb) {
        s_positions.write(ctx, tid, positions.read(ctx, base + tid));
        co_await ctx.syncthreads();
        if (ctx.branch(active)) {
            for (std::uint32_t i = 0; i < tpb; ++i) {
                ctx.charge(Op::Branch);
                const Vec3 p = s_positions.read(ctx, i);
                const Vec3 offset = p - my_pos;
                const std::uint32_t global_index = base + i;
                offer_candidate(ctx, list, global_index, offset.length_squared(), r2,
                                global_index != me, NeighborList::kCapacity);
            }
        }
        co_await ctx.syncthreads();
    }
    if (active) write_neighbor_list(ctx, list, me, result, result_count);
    co_return;
}

KernelTask sim_kernel(ThreadCtx& ctx, const DVec3& positions, const DVec3& forwards,
                      DVec3& steerings, FlockParams fp, ThinkMap map, NeighborData mode) {
    const std::uint32_t n = positions.size();
    const std::uint32_t tpb = ctx.block_dim().x;
    const std::uint32_t tid = ctx.thread_idx().x;
    const std::uint32_t me = map.agent_of(ctx.global_id());
    const bool active = me < n;

    auto s_positions = ctx.shared_array<Vec3>(tpb);
    Vec3 my_pos{};
    Vec3 my_fwd{};
    if (active) {
        my_pos = positions.read(ctx, me);
        my_fwd = forwards.read(ctx, me);
    }
    const float r2 = fp.search_radius * fp.search_radius;
    NeighborList list;

    for (std::uint32_t base = 0; base < n; base += tpb) {
        s_positions.write(ctx, tid, positions.read(ctx, base + tid));
        co_await ctx.syncthreads();
        if (ctx.branch(active)) {
            for (std::uint32_t i = 0; i < tpb; ++i) {
                ctx.charge(Op::Branch);
                const Vec3 p = s_positions.read(ctx, i);
                const Vec3 offset = p - my_pos;
                const std::uint32_t global_index = base + i;
                offer_candidate(ctx, list, global_index, offset.length_squared(), r2,
                                global_index != me, fp.max_neighbors);
            }
        }
        co_await ctx.syncthreads();
    }

    if (active) {
        const Vec3 steering =
            device_flocking(ctx, positions, forwards, my_pos, my_fwd, list, fp, mode);
        steerings.write(ctx, me, steering);
    }
    co_return;
}

KernelTask modify_kernel(ThreadCtx& ctx, DVec3& positions, DVec3& forwards, DF32& speeds,
                         const DVec3& steerings, DMat4& matrices, ModifyParams mp) {
    const std::uint64_t gid = ctx.global_id();
    if (gid >= positions.size()) co_return;

    steer::Agent agent;
    agent.position = positions.read(ctx, gid);
    agent.forward = forwards.read(ctx, gid);
    agent.speed = speeds.read(ctx, gid);
    const Vec3 steering = steerings.read(ctx, gid);

    // Version 5 keeps its temporaries in shared memory, "used as an
    // extension to thread local memory, so local variables are not stored
    // in device memory" (§6.2.3) — cheap shared traffic instead of spills.
    ctx.charge(Op::SharedAccess, 10);

    // The kernel's few branches (§6.3.1): division-by-zero guards. They
    // rarely diverge, which is why the modification kernel "is not the
    // important factor considering the SIMD branching issue".
    (void)ctx.branch(!steering.is_zero());
    (void)ctx.branch(agent.speed > 0.0f);
    charge_modify(ctx);
    steer::apply_steering(agent, steering, mp.dt, mp.params);
    steer::wrap_world(agent, mp.world_radius);

    positions.write(ctx, gid, agent.position);
    forwards.write(ctx, gid, agent.forward);
    speeds.write(ctx, gid, agent.speed);

    charge_draw_matrix(ctx);
    matrices.write(ctx, gid, steer::agent_matrix(agent.position, agent.forward));
    co_return;
}

}  // namespace gpusteer
