// Internals shared by the Boids kernels (brute-force and grid-based): the
// listing-6.3 candidate test and the device-side flocking combination.
// Not part of the public API.
#pragma once

#include <array>
#include <span>

#include "gpusteer/dev_costs.hpp"
#include "gpusteer/kernels.hpp"
#include "steer/behaviors.hpp"
#include "steer/neighbor_search.hpp"
#include "steer/spatial_grid.hpp"

namespace gpusteer::detail {

using cusim::Op;
using cusim::ThreadCtx;
using steer::NeighborList;
using steer::Vec3;

/// The branch cascade of listing 6.3 applied to one candidate. Returns
/// whether the candidate was accepted into the list. The two ctx.branch()
/// sites are the ones §6.3.1 discusses: "there is no order within the way
/// the agents are stored [...] so it is expected that only a single thread
/// executes a branch most of the time".
inline bool offer_candidate(ThreadCtx& ctx, NeighborList& list, std::uint32_t candidate,
                            float d2, float r2, bool not_me, std::uint32_t max_neighbors) {
    charge_pair_test(ctx);
    if (!ctx.branch(d2 < r2 && not_me)) return false;
    if (ctx.branch(list.count < max_neighbors)) {
        charge_neighbor_add(ctx);
    } else {
        charge_neighbor_replace(ctx);
    }
    list.offer(candidate, d2, max_neighbors);
    return true;
}

/// Gathers the found neighbors' state from global memory, computes the
/// flocking steering vector with the *same* code the CPU runs, and charges
/// the corresponding instruction mix. `mode` decides what versions 3/4
/// additionally pay: local-memory spills vs. recomputation (§6.2.2).
inline Vec3 device_flocking(ThreadCtx& ctx, const DVec3& positions, const DVec3& forwards,
                            const Vec3& my_pos, const Vec3& my_fwd,
                            const NeighborList& found, const FlockParams& fp,
                            NeighborData mode) {
    std::array<Vec3, NeighborList::kCapacity> nbr_pos{};
    std::array<Vec3, NeighborList::kCapacity> nbr_fwd{};
    NeighborList local;
    for (std::uint32_t k = 0; k < found.count; ++k) {
        nbr_pos[k] = positions.read(ctx, found.index[k]);
        nbr_fwd[k] = forwards.read(ctx, found.index[k]);
        local.index[k] = k;
        local.dist2[k] = found.dist2[k];
    }
    local.count = found.count;

    if (mode == NeighborData::CacheLocal) {
        // Version 3: per-neighbor intermediates (offset vector, distance)
        // were stored in thread-local arrays, which the compiler places in
        // (slow) device memory (Table 2.1). One spilled write per neighbor
        // during the search, three spilled reads per neighbor across the
        // behaviors.
        ctx.local_spill_write(found.count);
        ctx.local_spill_read(3 * found.count);
    } else {
        // Version 4: recompute offsets and distances instead (~8 extra
        // arithmetic instructions per neighbor) — cheaper than device
        // memory, which is why version 4 beats version 3 (§6.2.2).
        ctx.charge(Op::FMad, 8 * found.count);
    }

    charge_flocking(ctx, found.count);
    const steer::FlockingWeights weights{fp.weight_separation, fp.weight_alignment,
                                         fp.weight_cohesion};
    return steer::flocking(my_pos, my_fwd, local,
                           std::span<const Vec3>(nbr_pos.data(), found.count),
                           std::span<const Vec3>(nbr_fwd.data(), found.count), weights);
}

/// Writes a neighbor list into the per-agent result slots.
inline void write_neighbor_list(ThreadCtx& ctx, const NeighborList& list, std::uint32_t me,
                                DU32& result, DU32& result_count) {
    for (std::uint32_t k = 0; k < list.count; ++k) {
        result.write(ctx, std::uint64_t{me} * NeighborList::kCapacity + k, list.index[k]);
    }
    result_count.write(ctx, me, list.count);
}

/// The grid walk of the grid-accelerated neighbor search: visits the 27
/// cells around (cx, cy, cz) in the identical order as
/// steer::SpatialGrid::find_neighbors, so host and device agree bit for
/// bit. Invokes `body(candidate_index)` for every entry.
template <typename Body>
void for_each_grid_candidate(ThreadCtx& ctx, const DU32& cell_start, const DU32& entries,
                             const steer::GridSpec& spec, std::uint32_t cx, std::uint32_t cy,
                             std::uint32_t cz, Body&& body) {
    for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                const std::int64_t x = std::int64_t{cx} + dx;
                const std::int64_t y = std::int64_t{cy} + dy;
                const std::int64_t z = std::int64_t{cz} + dz;
                ctx.charge(Op::Compare, 3);
                if (ctx.branch(x < 0 || y < 0 || z < 0 || x >= spec.dim || y >= spec.dim ||
                               z >= spec.dim)) {
                    continue;
                }
                const auto cell = static_cast<std::uint32_t>(
                    x + spec.dim * (y + std::int64_t{spec.dim} * z));
                ctx.charge(Op::IAdd, 3);
                const std::uint32_t begin = cell_start.read(ctx, cell);
                const std::uint32_t end = cell_start.read(ctx, cell + 1);
                for (std::uint32_t e = begin; e < end; ++e) {
                    ctx.charge(Op::Branch);
                    body(entries.read(ctx, e));
                }
            }
        }
    }
}

}  // namespace gpusteer::detail
