// cusim::Stream / cusim::Event — RAII handles over the Device's
// asynchronous work queues (cudaStream_t / cudaEvent_t, CUDA-1.x flavour).
//
// A stream is a FIFO queue of deferred device operations (kernel launches,
// async transfers, event records, cross-stream event waits). Enqueueing is
// a host-side action that never runs device work; the queued operations
// execute at the next synchronization point — any stream/event synchronize,
// or any legacy (default-stream) operation, which joins with every stream
// first. Execution order at that point is fixed by the determinism
// contract: streams drain in ascending stream-id, each stream in enqueue
// order, an op blocked on an event wait yielding to the next stream until
// the recorded event it waits on has executed. Because that order is a
// function of the enqueue sequence only, LaunchStats, memcheck reports,
// fault counters and the trace are bit-identical for any engine thread
// count (see DESIGN.md "Streams & events").
//
// The default stream (cusim::kDefaultStream, id 0) is the legacy
// synchronous path: work "enqueued" on it runs immediately with the
// pre-stream semantics, after joining with every explicit stream.
#pragma once

#include <utility>

#include "cusim/device.hpp"

namespace cusim {

class Event;

/// RAII stream handle. Move-only; destruction drains the stream's pending
/// work (cudaStreamDestroy completes outstanding operations) and releases
/// the id.
class Stream {
public:
    explicit Stream(Device& dev) : dev_(&dev), id_(dev.stream_create()) {}
    ~Stream() { destroy(); }

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    Stream(Stream&& other) noexcept : dev_(other.dev_), id_(other.id_) {
        other.dev_ = nullptr;
        other.id_ = kDefaultStream;
    }
    Stream& operator=(Stream&& other) noexcept {
        if (this != &other) {
            destroy();
            dev_ = other.dev_;
            id_ = other.id_;
            other.dev_ = nullptr;
            other.id_ = kDefaultStream;
        }
        return *this;
    }

    [[nodiscard]] StreamId id() const { return id_; }
    [[nodiscard]] Device& device() const { return *dev_; }

    /// cudaStreamQuery: true when every enqueued op has executed *and* its
    /// modelled completion time has been reached by the host clock.
    [[nodiscard]] bool query() const { return dev_->stream_query(id_); }

    /// cudaStreamSynchronize: executes pending work and blocks the host
    /// clock until this stream's modelled timeline is idle.
    void synchronize() { dev_->stream_synchronize(id_); }

    /// cudaStreamWaitEvent: all work enqueued on this stream after this
    /// call waits for `ev`'s most recent record (a no-op if `ev` was never
    /// recorded). Defined out-of-line below, after Event.
    void wait(const Event& ev);

private:
    void destroy() noexcept {
        if (dev_ != nullptr && id_ != kDefaultStream) {
            try {
                dev_->stream_destroy(id_);
            } catch (...) {
                // Teardown must not throw; a deferred kernel failure
                // surfacing here is dropped like cudaStreamDestroy would.
            }
        }
        dev_ = nullptr;
        id_ = kDefaultStream;
    }

    Device* dev_;
    StreamId id_;
};

/// RAII event handle. Move-only. An event marks a point in a stream's
/// FIFO; recording captures "after everything enqueued so far", and other
/// streams can order behind it with Stream::wait.
class Event {
public:
    explicit Event(Device& dev) : dev_(&dev), id_(dev.event_create()) {}
    ~Event() { destroy(); }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    Event(Event&& other) noexcept : dev_(other.dev_), id_(other.id_) {
        other.dev_ = nullptr;
        other.id_ = 0;
    }
    Event& operator=(Event&& other) noexcept {
        if (this != &other) {
            destroy();
            dev_ = other.dev_;
            id_ = other.id_;
            other.dev_ = nullptr;
            other.id_ = 0;
        }
        return *this;
    }

    [[nodiscard]] EventId id() const { return id_; }
    [[nodiscard]] Device& device() const { return *dev_; }

    /// cudaEventRecord on a stream (or the default stream, which captures
    /// all previously issued work device-wide).
    void record(const Stream& s) { dev_->event_record(id_, s.id()); }
    void record() { dev_->event_record(id_, kDefaultStream); }

    /// cudaEventQuery: true when the recorded point has been reached
    /// (a never-recorded event counts as complete, as on CUDA).
    [[nodiscard]] bool query() const { return dev_->event_query(id_); }

    /// cudaEventSynchronize: blocks the host clock until the recorded
    /// point completes.
    void synchronize() { dev_->event_synchronize(id_); }

    /// cudaEventElapsedTime between two completed records.
    [[nodiscard]] static double elapsed_ms(const Event& start, const Event& stop) {
        return start.dev_->event_elapsed_ms(start.id_, stop.id_);
    }

private:
    void destroy() noexcept {
        if (dev_ != nullptr && id_ != 0) {
            try {
                dev_->event_destroy(id_);
            } catch (...) {
            }
        }
        dev_ = nullptr;
        id_ = 0;
    }

    Device* dev_;
    EventId id_;
};

inline void Stream::wait(const Event& ev) { dev_->stream_wait_event(id_, ev.id()); }

}  // namespace cusim
