// Pitched (2D) device memory — the second linear-memory flavour of the
// CUDA host runtime (§3.2.3 discusses cudaMalloc; cudaMallocPitch is its 2D
// sibling: rows padded to an alignment boundary so row starts coalesce).
//
// The thesis uses only plain linear memory; this completes the memory-
// management surface for workloads with 2D data (matrices, images).
#pragma once

#include <cstdint>

#include "cusim/device.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/error.hpp"

namespace cusim {

/// A 2D allocation: `height` rows of `width` elements, each row starting at
/// a multiple of the pitch (bytes).
template <typename T>
class PitchedPtr {
    static_assert(std::is_trivially_copyable_v<T>,
                  "device memory holds byte-wise copyable values only");

public:
    PitchedPtr() = default;
    PitchedPtr(DevicePtr<std::byte> storage, std::uint64_t width, std::uint64_t height,
               std::uint64_t pitch_bytes)
        : storage_(storage), width_(width), height_(height), pitch_(pitch_bytes) {}

    [[nodiscard]] std::uint64_t width() const { return width_; }
    [[nodiscard]] std::uint64_t height() const { return height_; }
    [[nodiscard]] std::uint64_t pitch() const { return pitch_; }
    [[nodiscard]] DeviceAddr addr() const { return storage_.addr(); }

    /// Accounted 2D element access: row-start alignment makes these
    /// coalescible regardless of the row width.
    T read(ThreadCtx& ctx, std::uint64_t row, std::uint64_t col) const {
        return view_row(row).read(ctx, col);
    }
    void write(ThreadCtx& ctx, std::uint64_t row, std::uint64_t col, const T& v) const {
        view_row(row).write(ctx, col, v);
    }

private:
    [[nodiscard]] DevicePtr<T> view_row(std::uint64_t row) const {
        if (row >= height_) {
            throw Error(ErrorCode::InvalidDevicePointer, "pitched row out of range");
        }
        return storage_.slice(row * pitch_, width_ * sizeof(T)).template as<T>();
    }

    DevicePtr<std::byte> storage_;
    std::uint64_t width_ = 0;
    std::uint64_t height_ = 0;
    std::uint64_t pitch_ = 0;
};

/// cudaMallocPitch: allocates height rows padded to 256-byte pitch.
template <typename T>
[[nodiscard]] PitchedPtr<T> malloc_pitched(Device& dev, std::uint64_t width,
                                           std::uint64_t height) {
    constexpr std::uint64_t kPitchAlign = 256;
    const std::uint64_t row_bytes = width * sizeof(T);
    const std::uint64_t pitch = (row_bytes + kPitchAlign - 1) / kPitchAlign * kPitchAlign;
    auto storage = dev.malloc_n<std::byte>(pitch * height);
    return PitchedPtr<T>(storage, width, height, pitch);
}

/// Host <-> device 2D copies (cudaMemcpy2D): row by row, skipping padding.
template <typename T>
void copy_to_pitched(Device& dev, const PitchedPtr<T>& dst, const T* src) {
    for (std::uint64_t r = 0; r < dst.height(); ++r) {
        dev.copy_to_device(dst.addr() + r * dst.pitch(), src + r * dst.width(),
                           dst.width() * sizeof(T));
    }
}

template <typename T>
void copy_from_pitched(Device& dev, T* dst, const PitchedPtr<T>& src) {
    for (std::uint64_t r = 0; r < src.height(); ++r) {
        dev.copy_to_host(dst + r * src.width(), src.addr() + r * src.pitch(),
                         src.width() * sizeof(T));
    }
}

}  // namespace cusim
