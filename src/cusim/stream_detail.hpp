// Shared internal representation of deferred stream work.
//
// Historically these structs lived inside stream.cpp; graph capture/replay
// (graph.cpp) records and re-enqueues the same ops, so the IR moved here.
// Everything in cusim::detail is an implementation detail: device.hpp only
// forward-declares these types and no public header includes this one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cusim/device.hpp"
#include "cusim/graph.hpp"
#include "cusim/launch.hpp"

namespace cusim::detail {

/// One deferred operation. `seq` is the global enqueue index (determinism
/// + wait targeting); `issue_host_time` pins when the host issued it so a
/// drained op can never start before it was enqueued.
struct StreamOp {
    enum class Kind { Launch, CopyH2D, CopyD2H, CopyD2D, Record, Wait };

    Kind kind = Kind::Launch;
    std::uint64_t seq = 0;
    double issue_host_time = 0.0;

    // Launch
    LaunchConfig cfg{};
    KernelSpec entry;  ///< dual-form kernel; run_grid picks the engine at drain
    std::string name;

    // Copies
    DeviceAddr dst = 0;
    DeviceAddr src = 0;
    std::uint64_t bytes = 0;
    std::vector<std::byte> staged;  ///< H2D source snapshot (pageable semantics)
    void* host_dst = nullptr;       ///< D2H destination

    // Events
    EventId event = 0;
    std::uint64_t wait_target_seq = 0;  ///< record op a Wait orders behind
    bool wait_has_target = false;       ///< false: event unrecorded -> no-op

    // Timeline (captured at enqueue, consumed at drain)
    std::uint64_t corr = 0;       ///< correlation id of the enqueueing API call
    std::uint64_t tl_anchor = 0;  ///< host-lane node ending at the issue point
};

struct StreamState {
    std::deque<StreamOp> pending;
    double free_at = 0.0;  ///< this stream's modelled busy horizon
};

struct EventState {
    double time = 0.0;                  ///< timeline point of the last drained record
    std::uint64_t last_record_seq = 0;  ///< newest record *enqueued* (0 = never)
    std::uint64_t completed_seq = 0;    ///< newest record *executed*
};

/// Host range an in-flight async D2H copy will write. Reading it from the
/// host before the covering synchronize is the race memcheck reports.
struct PendingHostWrite {
    const std::byte* begin = nullptr;
    const std::byte* end = nullptr;
    StreamId stream = 0;
    std::uint64_t seq = 0;
    bool drained = false;      ///< op executed (bytes materialized)
    double complete_at = 0.0;  ///< modelled completion (valid once drained)
};

struct StreamTable {
    // std::map: drain() walks streams in ascending id — the contract.
    std::map<StreamId, StreamState> streams;
    std::map<EventId, EventState> events;
    std::vector<PendingHostWrite> host_writes;
    StreamId next_stream = 1;
    EventId next_event = 1;
    std::uint64_t next_seq = 1;
};

// --- graph capture IR ---------------------------------------------------------

/// One captured op. `wait_edge` links a Wait to the index of the captured
/// Record it orders behind (kNoEdge: the wait targets a record from before
/// the capture, or an unrecorded event — replayed as a no-op wait).
struct GraphNode {
    static constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);

    StreamOp op;
    StreamId stream = 0;
    std::size_t wait_edge = kNoEdge;
};

/// Live recording state while Device::capturing() is true. Seq numbers,
/// clocks and observables are untouched during capture — the recorded ops
/// get real seqs at each graph_launch().
struct CaptureState {
    bool invalidated = false;
    std::string reason;      ///< why the capture was invalidated
    StreamId origin = 0;     ///< stream stream_begin_capture() named
    CaptureMode mode = CaptureMode::Origin;
    std::set<StreamId> captured;             ///< streams pulled into the capture
    std::vector<GraphNode> nodes;            ///< capture order = replay order
    std::map<EventId, std::size_t> recorded; ///< event -> newest captured record
};

/// The immutable DAG a Graph/GraphExec shares. Bound to the Device that
/// captured it: closures and staged bytes reference its address space.
struct GraphIR {
    std::vector<GraphNode> nodes;
    Device* device = nullptr;
};

}  // namespace cusim::detail
