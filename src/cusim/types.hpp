// cusim — a software model of the CUDA 1.0 / G80 machine.
//
// Basic index and launch-geometry types mirroring the CUDA common runtime
// library (uint3 / dim3, thesis §3.1.3) plus the launch limits of the
// software model (§2.2): up to 512 threads per block, blocks and threads
// addressed by up to 3-dimensional indexes (<= 2^16 blocks per grid
// dimension).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cusim {

/// 3-component unsigned vector; CUDA's built-in uint3.
struct uint3 {
    unsigned x = 0;
    unsigned y = 0;
    unsigned z = 0;

    friend bool operator==(const uint3&, const uint3&) = default;
};

/// Launch-geometry type; like uint3 but unspecified components default to 1.
struct dim3 {
    unsigned x = 1;
    unsigned y = 1;
    unsigned z = 1;

    constexpr dim3() = default;
    constexpr dim3(unsigned x_, unsigned y_ = 1, unsigned z_ = 1) : x(x_), y(y_), z(z_) {}

    [[nodiscard]] constexpr std::uint64_t count() const {
        return std::uint64_t{x} * y * z;
    }

    friend bool operator==(const dim3&, const dim3&) = default;
};

/// CUDA-style factory (the thesis example uses make_dim3(10, 10)).
constexpr dim3 make_dim3(unsigned x, unsigned y = 1, unsigned z = 1) {
    return dim3{x, y, z};
}

/// Hardware constants of the simulated G80 part (thesis §2.1/§2.2 and §5.3).
inline constexpr unsigned kWarpSize = 32;
inline constexpr unsigned kMaxThreadsPerBlock = 512;
inline constexpr unsigned kMaxGridDim = 1u << 16;   // 2^16 blocks per grid dimension
inline constexpr unsigned kProcessorsPerMP = 8;
/// Shared memory is organised in 16 banks of 32-bit words; bank conflicts
/// are resolved per half-warp (§2.1 — compute capability 1.x).
inline constexpr unsigned kSharedMemBanks = 16;

/// A byte offset into a device's global-memory address space.
/// The paper's hardware has a 32-bit linear address space (§3.2.3); we keep
/// 64 bits in the handle and enforce the 32-bit limit in the allocator.
using DeviceAddr = std::uint64_t;

/// Sentinel for "no address".
inline constexpr DeviceAddr kNullAddr = ~DeviceAddr{0};

/// Direction of a host<->device transfer (cudaMemcpyKind).
enum class CopyKind {
    HostToDevice,
    DeviceToHost,
    DeviceToDevice,
    HostToHost,
};

}  // namespace cusim
