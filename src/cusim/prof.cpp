#include "cusim/prof.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "cupp/trace.hpp"

namespace cusim::prof {

namespace detail {
std::atomic<bool> g_armed{false};
std::atomic<bool> g_collecting{false};
std::atomic<bool> g_correlation_tracking{false};
std::atomic<std::uint64_t> g_next_correlation{0};
}  // namespace detail

void set_correlation_tracking(bool on) {
    detail::g_correlation_tracking.store(on, std::memory_order_relaxed);
}

void reset_correlation_ids() {
    detail::g_next_correlation.store(0, std::memory_order_relaxed);
}

namespace {

using cupp::trace::format;
using cupp::trace::json_quote;

struct Subscriber {
    std::uint64_t id = 0;
    Callback cb;
};

/// Process-wide profiler state. Intentionally leaked (like the trace,
/// memcheck and faults registries) so the atexit report still sees it.
class State {
public:
    static State& instance() {
        static State* s = new State();
        return *s;
    }

    // --- subscriptions ---

    std::uint64_t subscribe(Callback cb) {
        std::lock_guard<std::mutex> lock(mu_);
        const std::uint64_t id = ++next_sub_id_;
        subs_.push_back(Subscriber{id, std::move(cb)});
        recompute_gates_locked();
        return id;
    }

    bool unsubscribe(std::uint64_t id) {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < subs_.size(); ++i) {
            if (subs_[i].id == id) {
                subs_.erase(subs_.begin() + static_cast<std::ptrdiff_t>(i));
                recompute_gates_locked();
                return true;
            }
        }
        return false;
    }

    void dispatch(const ApiRecord& rec) {
        // Copy the callbacks out so a callback throwing or a concurrent
        // runtime call never runs user code under the registry lock.
        std::vector<Callback> cbs;
        {
            std::lock_guard<std::mutex> lock(mu_);
            cbs.reserve(subs_.size());
            for (const Subscriber& s : subs_) cbs.push_back(s.cb);
        }
        for (const Callback& cb : cbs) cb(rec);
    }

    void note_api_enter(Api api) {
        api_calls_[static_cast<std::size_t>(api)].fetch_add(1,
                                                            std::memory_order_relaxed);
    }

    std::uint64_t api_calls(Api api) const {
        return api_calls_[static_cast<std::size_t>(api)].load(
            std::memory_order_relaxed);
    }

    // --- sessions ---

    void enable(std::string path) {
        std::lock_guard<std::mutex> lock(mu_);
        collector_enabled_ = true;
        in_session_ = true;
        ++session_starts_;
        if (!path.empty()) report_path_ = std::move(path);
        recompute_gates_locked();
    }

    void disable() {
        std::lock_guard<std::mutex> lock(mu_);
        if (collector_enabled_ && in_session_) ++session_stops_;
        collector_enabled_ = false;
        in_session_ = false;
        recompute_gates_locked();
    }

    void clear() {
        std::lock_guard<std::mutex> lock(mu_);
        collector_enabled_ = false;
        in_session_ = false;
        session_starts_ = 0;
        session_stops_ = 0;
        report_path_.clear();
        kernels_.clear();
        transfers_ = {};
        model_ = {};
        for (auto& c : api_calls_) c.store(0, std::memory_order_relaxed);
        recompute_gates_locked();
    }

    /// cusimProfilerStart: a no-op unless the collector is enabled.
    void start() {
        bool started = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (collector_enabled_ && !in_session_) {
                in_session_ = true;
                ++session_starts_;
                started = true;
            }
            recompute_gates_locked();
        }
        if (started) note_session_edge("profiler start");
    }

    void stop() {
        bool stopped = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (collector_enabled_ && in_session_) {
                in_session_ = false;
                ++session_stops_;
                stopped = true;
            }
            recompute_gates_locked();
        }
        if (stopped) note_session_edge("profiler stop");
    }

    std::uint64_t session_starts() const {
        std::lock_guard<std::mutex> lock(mu_);
        return session_starts_;
    }
    std::uint64_t session_stops() const {
        std::lock_guard<std::mutex> lock(mu_);
        return session_stops_;
    }

    // --- activities ---

    void record_launch(std::string_view name, const LaunchConfig& cfg,
                       const LaunchStats& stats, std::string_view lane, int device,
                       double host_seconds, const CostModel& cm) {
        (void)device;
        std::lock_guard<std::mutex> lock(mu_);
        if (!model_.valid) {
            model_.valid = true;
            model_.core_clock_hz = cm.core_clock_hz;
            model_.multiprocessors = cm.multiprocessors;
            model_.max_warps_per_mp = cm.max_warps_per_mp;
            model_.divergence_penalty = cm.divergence_penalty;
            model_.mem_bandwidth_bytes_per_s = cm.mem_bandwidth_bytes_per_s;
        }
        KernelActivity& k = find_or_add_locked(name, cfg);
        ++k.launches;
        k.device_seconds += stats.device_seconds;
        k.host_seconds += host_seconds;
        LaunchStats& t = k.totals;
        t.blocks += stats.blocks;
        t.warps += stats.warps;
        t.threads += stats.threads;
        t.threads_per_block = stats.threads_per_block;
        t.compute_cycles += stats.compute_cycles;
        t.stall_cycles += stats.stall_cycles;
        t.bytes_read += stats.bytes_read;
        t.bytes_written += stats.bytes_written;
        t.useful_bytes_read += stats.useful_bytes_read;
        t.useful_bytes_written += stats.useful_bytes_written;
        t.divergent_events += stats.divergent_events;
        t.branch_evaluations += stats.branch_evaluations;
        t.shared_accesses += stats.shared_accesses;
        t.shared_bank_conflicts += stats.shared_bank_conflicts;
        t.syncthreads_count += stats.syncthreads_count;
        t.resident_blocks_per_mp = stats.resident_blocks_per_mp;
        for (LaneActivity& l : k.lanes) {
            if (l.lane == lane) {
                ++l.launches;
                l.device_seconds += stats.device_seconds;
                return;
            }
        }
        LaneActivity l;
        l.lane = std::string(lane);
        l.launches = 1;
        l.device_seconds = stats.device_seconds;
        k.lanes.push_back(std::move(l));
    }

    void record_transfer(CopyKind kind, std::uint64_t bytes, double seconds) {
        std::lock_guard<std::mutex> lock(mu_);
        TransferTotals& t = transfers_[static_cast<std::size_t>(kind)];
        ++t.count;
        t.bytes += bytes;
        t.seconds += seconds;
    }

    std::vector<KernelActivity> kernels() const {
        std::lock_guard<std::mutex> lock(mu_);
        return kernels_;
    }
    TransferTotals transfers(CopyKind kind) const {
        std::lock_guard<std::mutex> lock(mu_);
        return transfers_[static_cast<std::size_t>(kind)];
    }
    ModelSnapshot model() const {
        std::lock_guard<std::mutex> lock(mu_);
        return model_;
    }
    std::string report_path() const {
        std::lock_guard<std::mutex> lock(mu_);
        return report_path_;
    }

private:
    State() = default;

    /// g_armed = any subscriber or an enabled collector; g_collecting =
    /// enabled collector inside a session. Both derived here, under mu_.
    void recompute_gates_locked() {
        detail::g_collecting.store(collector_enabled_ && in_session_,
                                   std::memory_order_relaxed);
        detail::g_armed.store(!subs_.empty() || collector_enabled_,
                              std::memory_order_relaxed);
    }

    KernelActivity& find_or_add_locked(std::string_view name,
                                       const LaunchConfig& cfg) {
        for (KernelActivity& k : kernels_) {
            if (k.name == name && k.grid == cfg.grid && k.block == cfg.block &&
                k.shared_bytes == cfg.shared_bytes &&
                k.regs_per_thread == cfg.regs_per_thread) {
                return k;
            }
        }
        KernelActivity k;
        k.name = std::string(name.empty() ? std::string_view("kernel") : name);
        k.grid = cfg.grid;
        k.block = cfg.block;
        k.shared_bytes = cfg.shared_bytes;
        k.regs_per_thread = cfg.regs_per_thread;
        kernels_.push_back(std::move(k));
        return kernels_.back();
    }

    static void note_session_edge(const char* what) {
        if (cupp::trace::enabled()) {
            cupp::trace::emit_instant("prof", what, cupp::trace::wall_clock_us());
        }
    }

    mutable std::mutex mu_;
    std::vector<Subscriber> subs_;
    std::uint64_t next_sub_id_ = 0;
    std::array<std::atomic<std::uint64_t>, kApiCount> api_calls_{};

    bool collector_enabled_ = false;
    bool in_session_ = false;
    std::uint64_t session_starts_ = 0;
    std::uint64_t session_stops_ = 0;
    std::string report_path_;

    std::vector<KernelActivity> kernels_;
    std::array<TransferTotals, 4> transfers_{};
    ModelSnapshot model_;
};

void atexit_report() {
    if (!report_path().empty()) write_report();
}

void register_atexit_once() {
    static const bool registered = [] {
        std::atexit(atexit_report);
        return true;
    }();
    (void)registered;
}

/// Reads CUPP_PROF once at static-init: its value is the report path, and
/// collection runs for the whole process.
struct EnvGate {
    EnvGate() {
        if (const char* env = std::getenv("CUPP_PROF");
            env != nullptr && *env != '\0') {
            enable(std::string(env));
        }
    }
};
const EnvGate g_env_gate;

const char* copy_kind_key(CopyKind kind) {
    switch (kind) {
        case CopyKind::HostToDevice: return "h2d";
        case CopyKind::DeviceToHost: return "d2h";
        case CopyKind::DeviceToDevice: return "d2d";
        case CopyKind::HostToHost: return "h2h";
    }
    return "unknown";
}

std::string dim3_json(const dim3& d) {
    return format("[%u, %u, %u]", d.x, d.y, d.z);
}

}  // namespace

const char* api_name(Api api) {
    switch (api) {
        case Api::Malloc: return "malloc";
        case Api::Free: return "free";
        case Api::MemcpyH2D: return "memcpy_h2d";
        case Api::MemcpyD2H: return "memcpy_d2h";
        case Api::MemcpyD2D: return "memcpy_d2d";
        case Api::Launch: return "launch";
        case Api::Sync: return "sync";
        case Api::StreamCreate: return "stream_create";
        case Api::StreamDestroy: return "stream_destroy";
        case Api::StreamSynchronize: return "stream_synchronize";
        case Api::StreamWaitEvent: return "stream_wait_event";
        case Api::EventCreate: return "event_create";
        case Api::EventDestroy: return "event_destroy";
        case Api::EventRecord: return "event_record";
        case Api::EventSynchronize: return "event_synchronize";
        case Api::LaunchAsync: return "launch_async";
        case Api::MemcpyH2DAsync: return "memcpy_h2d_async";
        case Api::MemcpyD2HAsync: return "memcpy_d2h_async";
        case Api::MemcpyD2DAsync: return "memcpy_d2d_async";
        case Api::ProfilerStart: return "profiler_start";
        case Api::ProfilerStop: return "profiler_stop";
        case Api::StreamBeginCapture: return "stream_begin_capture";
        case Api::StreamEndCapture: return "stream_end_capture";
        case Api::GraphInstantiate: return "graph_instantiate";
        case Api::GraphLaunch: return "graph_launch";
    }
    return "unknown";
}

std::uint64_t subscribe(Callback cb) {
    return State::instance().subscribe(std::move(cb));
}

bool unsubscribe(std::uint64_t id) { return State::instance().unsubscribe(id); }

void dispatch(const ApiRecord& rec) { State::instance().dispatch(rec); }

void note_api_enter(Api api) {
    State::instance().note_api_enter(api);
    cupp::trace::metrics().add("cusim.prof.api_calls");
}

std::uint64_t api_calls(Api api) { return State::instance().api_calls(api); }

// --- derived metrics ---------------------------------------------------------

double KernelActivity::occupancy(unsigned max_warps_per_mp) const {
    if (max_warps_per_mp == 0) return 0.0;
    const unsigned warps_per_block = static_cast<unsigned>(
        (std::uint64_t{block.count()} + kWarpSize - 1) / kWarpSize);
    const unsigned resident =
        std::min(totals.resident_blocks_per_mp * warps_per_block, max_warps_per_mp);
    return static_cast<double>(resident) / max_warps_per_mp;
}

double KernelActivity::coalescing_efficiency() const {
    const std::uint64_t charged = totals.bytes_read + totals.bytes_written;
    if (charged == 0) return 1.0;
    const std::uint64_t useful = totals.useful_bytes_read + totals.useful_bytes_written;
    const double eff = static_cast<double>(useful) / static_cast<double>(charged);
    return eff > 1.0 ? 1.0 : eff;
}

double KernelActivity::divergence_serialization(unsigned divergence_penalty) const {
    // BlockCost::from folds the divergence penalty into compute_cycles, so
    // the factor is compute over what compute would have been without it.
    const std::uint64_t penalty =
        std::uint64_t{divergence_penalty} * totals.divergent_events;
    if (totals.compute_cycles == 0 || penalty >= totals.compute_cycles) return 1.0;
    return static_cast<double>(totals.compute_cycles) /
           static_cast<double>(totals.compute_cycles - penalty);
}

double KernelActivity::arithmetic_intensity() const {
    const std::uint64_t bytes = totals.bytes_read + totals.bytes_written;
    if (bytes == 0) return 0.0;
    return static_cast<double>(totals.compute_cycles) / static_cast<double>(bytes);
}

// --- activities & sessions ---------------------------------------------------

void record_launch(std::string_view name, const LaunchConfig& cfg,
                   const LaunchStats& stats, std::string_view lane, int device,
                   double host_seconds, const CostModel& cm) {
    if (!collecting()) return;
    State::instance().record_launch(name, cfg, stats, lane, device, host_seconds, cm);
    cupp::trace::metrics().add("cusim.prof.launches");
    cupp::trace::metrics().record("cusim.prof.launch_host_us", host_seconds * 1e6);
}

void record_transfer(CopyKind kind, std::uint64_t bytes, double seconds, int device) {
    (void)device;
    if (!collecting()) return;
    State::instance().record_transfer(kind, bytes, seconds);
    cupp::trace::metrics().add("cusim.prof.transfers");
}

void enable() {
    register_atexit_once();
    State::instance().enable({});
}

void enable(std::string path) {
    register_atexit_once();
    State::instance().enable(std::move(path));
}

void disable() { State::instance().disable(); }

void reset() {
    State::instance().clear();
    reset_correlation_ids();
}

void start() { State::instance().start(); }

void stop() { State::instance().stop(); }

std::uint64_t session_starts() { return State::instance().session_starts(); }

std::uint64_t session_stops() { return State::instance().session_stops(); }

std::vector<KernelActivity> kernel_activities() { return State::instance().kernels(); }

TransferTotals transfer_totals(CopyKind kind) {
    return State::instance().transfers(kind);
}

ModelSnapshot model_snapshot() { return State::instance().model(); }

std::string report_path() { return State::instance().report_path(); }

// --- report ------------------------------------------------------------------

std::string report_json() {
    const ModelSnapshot model = model_snapshot();
    std::vector<KernelActivity> kernels = kernel_activities();
    std::sort(kernels.begin(), kernels.end(),
              [](const KernelActivity& a, const KernelActivity& b) {
                  if (a.device_seconds != b.device_seconds) {
                      return a.device_seconds > b.device_seconds;
                  }
                  return a.name < b.name;
              });
    double total_device = 0.0;
    for (const KernelActivity& k : kernels) total_device += k.device_seconds;

    std::string out = "{\n  \"prof\": {\n    \"version\": 1,\n";
    out += format(
        "    \"model\": {\"core_clock_hz\": %g, \"multiprocessors\": %u, "
        "\"max_warps_per_mp\": %u, \"divergence_penalty\": %u, "
        "\"mem_bandwidth_bytes_per_s\": %g, \"ridge_cycles_per_byte\": %g},\n",
        model.core_clock_hz, model.multiprocessors, model.max_warps_per_mp,
        model.divergence_penalty, model.mem_bandwidth_bytes_per_s,
        model.ridge_cycles_per_byte());
    out += format(
        "    \"sessions\": {\"starts\": %llu, \"stops\": %llu},\n",
        static_cast<unsigned long long>(session_starts()),
        static_cast<unsigned long long>(session_stops()));

    out += "    \"api_calls\": {";
    bool first = true;
    for (std::size_t a = 0; a < kApiCount; ++a) {
        const std::uint64_t n = api_calls(static_cast<Api>(a));
        if (n == 0) continue;
        if (!first) out += ", ";
        first = false;
        out += format("\"%s\": %llu", api_name(static_cast<Api>(a)),
                      static_cast<unsigned long long>(n));
    }
    out += "},\n";

    out += "    \"kernels\": [";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelActivity& k = kernels[i];
        const LaunchStats& t = k.totals;
        const char* bound =
            model.valid && k.arithmetic_intensity() > model.ridge_cycles_per_byte()
                ? "compute"
                : "memory";
        out += i == 0 ? "\n" : ",\n";
        out += format(
            "      {\"name\": %s, \"grid\": %s, \"block\": %s, "
            "\"shared_bytes\": %u, \"regs_per_thread\": %u,\n"
            "       \"launches\": %llu, \"device_seconds\": %.9g, "
            "\"host_seconds\": %.9g,\n"
            "       \"blocks\": %llu, \"warps\": %llu, \"threads\": %llu, "
            "\"compute_cycles\": %llu, \"stall_cycles\": %llu,\n"
            "       \"bytes_read\": %llu, \"bytes_written\": %llu, "
            "\"useful_bytes_read\": %llu, \"useful_bytes_written\": %llu,\n"
            "       \"branch_evaluations\": %llu, \"divergent_events\": %llu, "
            "\"shared_accesses\": %llu, \"shared_bank_conflicts\": %llu,\n"
            "       \"syncthreads\": %llu, \"resident_blocks_per_mp\": %u,\n"
            "       \"occupancy\": %.6g, \"coalescing_efficiency\": %.6g, "
            "\"divergence_serialization\": %.6g,\n"
            "       \"arithmetic_intensity_cycles_per_byte\": %.6g, "
            "\"roofline_bound\": \"%s\",\n"
            "       \"lanes\": [",
            json_quote(k.name).c_str(), dim3_json(k.grid).c_str(),
            dim3_json(k.block).c_str(), k.shared_bytes, k.regs_per_thread,
            static_cast<unsigned long long>(k.launches), k.device_seconds,
            k.host_seconds, static_cast<unsigned long long>(t.blocks),
            static_cast<unsigned long long>(t.warps),
            static_cast<unsigned long long>(t.threads),
            static_cast<unsigned long long>(t.compute_cycles),
            static_cast<unsigned long long>(t.stall_cycles),
            static_cast<unsigned long long>(t.bytes_read),
            static_cast<unsigned long long>(t.bytes_written),
            static_cast<unsigned long long>(t.useful_bytes_read),
            static_cast<unsigned long long>(t.useful_bytes_written),
            static_cast<unsigned long long>(t.branch_evaluations),
            static_cast<unsigned long long>(t.divergent_events),
            static_cast<unsigned long long>(t.shared_accesses),
            static_cast<unsigned long long>(t.shared_bank_conflicts),
            static_cast<unsigned long long>(t.syncthreads_count),
            t.resident_blocks_per_mp, k.occupancy(model.max_warps_per_mp),
            k.coalescing_efficiency(),
            k.divergence_serialization(model.divergence_penalty),
            k.arithmetic_intensity(), bound);
        for (std::size_t l = 0; l < k.lanes.size(); ++l) {
            const LaneActivity& lane = k.lanes[l];
            out += format(
                "%s{\"lane\": %s, \"launches\": %llu, \"device_seconds\": %.9g}",
                l == 0 ? "" : ", ", json_quote(lane.lane).c_str(),
                static_cast<unsigned long long>(lane.launches),
                lane.device_seconds);
        }
        out += "]}";
    }
    out += kernels.empty() ? "],\n" : "\n    ],\n";

    out += "    \"hotspots\": [";
    const std::size_t top = std::min<std::size_t>(kernels.size(), 10);
    for (std::size_t i = 0; i < top; ++i) {
        const KernelActivity& k = kernels[i];
        out += format(
            "%s\n      {\"rank\": %zu, \"name\": %s, \"device_seconds\": %.9g, "
            "\"share\": %.6g}",
            i == 0 ? "" : ",", i + 1, json_quote(k.name).c_str(), k.device_seconds,
            total_device > 0.0 ? k.device_seconds / total_device : 0.0);
    }
    out += top == 0 ? "],\n" : "\n    ],\n";

    out += "    \"transfers\": {";
    first = true;
    for (const CopyKind kind : {CopyKind::HostToDevice, CopyKind::DeviceToHost,
                                CopyKind::DeviceToDevice}) {
        const TransferTotals t = transfer_totals(kind);
        if (!first) out += ", ";
        first = false;
        out += format(
            "\"%s\": {\"count\": %llu, \"bytes\": %llu, \"seconds\": %.9g}",
            copy_kind_key(kind), static_cast<unsigned long long>(t.count),
            static_cast<unsigned long long>(t.bytes), t.seconds);
    }
    out += format("},\n    \"total_device_seconds\": %.9g\n  }\n}\n", total_device);
    return out;
}

bool write_report(const std::string& path) {
    const std::string target = path.empty() ? report_path() : path;
    if (target.empty()) return false;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << report_json();
    return static_cast<bool>(out);
}

}  // namespace cusim::prof
