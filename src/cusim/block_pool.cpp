#include "cusim/block_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace cusim {

namespace {

/// Programmatic override of the thread count (0 = use env/default).
std::atomic<unsigned> g_thread_override{0};

unsigned env_threads() {
    static const unsigned cached = [] {
        if (const char* env = std::getenv("CUPP_SIM_THREADS");
            env != nullptr && *env != '\0') {
            const long n = std::strtol(env, nullptr, 10);
            if (n >= 1) return static_cast<unsigned>(n);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw != 0 ? hw : 1u;
    }();
    return cached;
}

}  // namespace

/// One grid's worth of work. Shared between run() and the workers so a
/// worker that drains its last index after run() has already returned
/// never touches freed state.
struct Job {
    const std::function<void(std::uint64_t)>* fn = nullptr;
    std::uint64_t count = 0;
    std::atomic<std::uint64_t> next{0};  ///< next unclaimed index
    std::atomic<std::uint64_t> done{0};  ///< finished indices
};

struct BlockPool::Impl {
    std::mutex mu;                 ///< guards job/generation/workers
    std::condition_variable wake;  ///< workers park here between grids
    std::condition_variable idle;  ///< run() waits here for completion
    std::shared_ptr<Job> job;      ///< the active grid (nullptr when idle)
    std::uint64_t generation = 0;  ///< bumped per grid; wakes the workers
    std::vector<std::thread> workers;
    bool stopping = false;

    std::mutex run_mu;  ///< serialises concurrent run() callers

    void worker_loop() {
        std::uint64_t seen_generation = 0;
        for (;;) {
            std::shared_ptr<Job> j;
            {
                std::unique_lock<std::mutex> lock(mu);
                wake.wait(lock, [&] {
                    return stopping || (job != nullptr && generation != seen_generation);
                });
                if (stopping) return;
                seen_generation = generation;
                j = job;
            }
            drain(*j);
        }
    }

    /// Claims and runs indices until the job is exhausted; signals idle
    /// when the last index *finishes* (not merely gets claimed).
    void drain(Job& j) {
        for (;;) {
            const std::uint64_t i = j.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= j.count) return;
            (*j.fn)(i);
            if (j.done.fetch_add(1, std::memory_order_acq_rel) + 1 == j.count) {
                std::lock_guard<std::mutex> lock(mu);
                idle.notify_all();
            }
        }
    }

    void ensure_workers(unsigned n) {
        while (workers.size() < n) {
            workers.emplace_back([this] { worker_loop(); });
        }
    }

    void shutdown() {
        std::vector<std::thread> joinable;
        {
            std::lock_guard<std::mutex> lock(mu);
            stopping = true;
            joinable.swap(workers);
        }
        wake.notify_all();
        for (std::thread& t : joinable) t.join();
    }
};

BlockPool::BlockPool() : impl_(new Impl) {}

BlockPool::~BlockPool() {
    impl_->shutdown();
    delete impl_;
}

BlockPool& BlockPool::instance() {
    // Leaked like the trace session so launches from late static
    // destructors still work; the atexit hook joins the workers so
    // ThreadSanitizer sees no leaked threads.
    static BlockPool* pool = [] {
        auto* p = new BlockPool();
        std::atexit([] { instance().impl_->shutdown(); });
        return p;
    }();
    return *pool;
}

unsigned BlockPool::configured_threads() {
    const unsigned n = g_thread_override.load(std::memory_order_relaxed);
    return n != 0 ? n : env_threads();
}

void BlockPool::set_threads(unsigned n) {
    g_thread_override.store(n, std::memory_order_relaxed);
}

unsigned BlockPool::pool_size() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return static_cast<unsigned>(impl_->workers.size());
}

void BlockPool::run(std::uint64_t count, unsigned threads,
                    const std::function<void(std::uint64_t)>& fn) {
    if (count == 0) return;
    if (threads < 2 || count == 1) {
        for (std::uint64_t i = 0; i < count; ++i) fn(i);
        return;
    }
    // One grid at a time; a second launching host thread queues here.
    std::lock_guard<std::mutex> run_lock(impl_->run_mu);

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->count = count;

    const unsigned helpers =
        static_cast<unsigned>(std::min<std::uint64_t>(threads - 1, count - 1));
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        if (impl_->stopping) {
            // Post-shutdown (atexit ran): degrade to inline execution.
            for (std::uint64_t i = 0; i < count; ++i) fn(i);
            return;
        }
        impl_->ensure_workers(helpers);
        impl_->job = job;
        ++impl_->generation;
    }
    impl_->wake.notify_all();

    // The caller is participant #0.
    impl_->drain(*job);

    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->idle.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->count;
    });
    impl_->job.reset();
}

}  // namespace cusim
