// Cycle and divergence accounting structures.
//
// Costs are charged per thread; at thread completion the engine folds them
// into the thread's warp with SIMD (max) semantics: in a warp all threads
// execute the same instruction stream, so a full warp charging one FADD per
// thread costs 4 cycles once, not 32 times (Table 2.2 is "per warp").
//
// Branch divergence (§2.3/§6.3.1) is tracked per static branch site and per
// dynamic occurrence: within a warp, the k-th evaluation of a site by one
// lane is lined up against the k-th evaluation by every other lane (exact
// for uniform loop structure, an approximation when the site itself sits
// behind non-uniform control flow). A warp-step whose lanes disagree about
// the predicate is a divergent event: the hardware serialises both paths.
// The thesis itself could not measure this ("no profiling tool is
// available", §6.3.1); the simulator exposes the counters it could not get.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "cusim/cost_model.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// Per-site branch record within one warp.
struct BranchSiteStats {
    /// Occurrences beyond this are counted but not divergence-checked
    /// (bounds memory for degenerate barrier-free mega-loops).
    static constexpr std::uint64_t kMaxTrackedOccurrences = 1ull << 22;

    explicit BranchSiteStats(std::uint64_t key) : site_key(key) {}

    std::uint64_t site_key = 0;   ///< hash of the source location
    std::uint64_t evaluations = 0;
    std::uint64_t taken = 0;
    std::uint64_t divergent = 0;  ///< warp-steps whose lanes disagreed

    std::vector<bool> pred_log;   ///< first-lane predicate per occurrence
    std::vector<bool> diverged;   ///< occurrence already counted divergent
    std::array<std::uint32_t, kWarpSize> lane_occurrence{};

    void note(unsigned lane, bool pred) {
        ++evaluations;
        taken += pred ? 1u : 0u;
        const std::uint32_t idx = lane_occurrence[lane]++;
        if (idx >= kMaxTrackedOccurrences) return;
        if (idx >= pred_log.size()) {
            pred_log.resize(idx + 1, pred);
            diverged.resize(idx + 1, false);
        } else if (pred_log[idx] != pred && !diverged[idx]) {
            diverged[idx] = true;
            ++divergent;
        }
    }

    /// Batched equivalent of calling note(l, (preds >> l) & 1) for every set
    /// lane of `mask` in ascending lane order, valid only when all those
    /// lanes sit at the same occurrence `idx` (the caller checks). One
    /// popcount replaces up to 32 vector<bool> round trips.
    void note_lanes(std::uint32_t mask, std::uint32_t preds, std::uint32_t idx) {
        const auto n = static_cast<unsigned>(std::popcount(mask));
        evaluations += n;
        taken += static_cast<unsigned>(std::popcount(preds & mask));
        for (std::uint32_t m = mask; m != 0; m &= m - 1) {
            ++lane_occurrence[std::countr_zero(m)];
        }
        if (idx >= kMaxTrackedOccurrences) return;
        const bool pred0 = ((preds >> std::countr_zero(mask)) & 1u) != 0;
        if (idx >= pred_log.size()) {
            pred_log.resize(idx + 1, pred0);
            diverged.resize(idx + 1, false);
        }
        const bool ref = pred_log[idx];
        const std::uint32_t agree = ref ? (preds & mask) : (~preds & mask);
        if (agree != mask && !diverged[idx]) {
            diverged[idx] = true;
            ++divergent;
        }
    }
};

/// Shared-memory bank-conflict tracking for one warp, occurrence-aligned
/// like BranchSiteStats: the k-th shared access by one lane is lined up
/// against the k-th access by every other lane of its half-warp (banks are
/// resolved per half-warp on compute capability 1.x). Within one aligned
/// step, lanes hitting the *same* 32-bit word broadcast (no conflict);
/// lanes hitting a *different* word of an already-claimed bank each count
/// one conflict — the hardware serialises those accesses. Conflicts are
/// counted, not charged to cycles, so enabling the profiler never changes
/// modelled time. Only populated while cusim::prof is collecting.
struct SharedAcct {
    /// Occurrences beyond this are counted but not conflict-checked.
    static constexpr std::uint32_t kMaxTrackedOccurrences = 1u << 16;

    std::uint64_t accesses = 0;   ///< every instrumented shared read/write
    std::uint64_t conflicts = 0;  ///< serialised accesses (see above)

    /// Per aligned step and half-warp: first 32-bit word claimed per bank
    /// (+1, 0 = unclaimed).
    struct Step {
        std::array<std::uint32_t, kSharedMemBanks> word_plus1_lo{};
        std::array<std::uint32_t, kSharedMemBanks> word_plus1_hi{};
    };
    std::vector<Step> steps;
    std::array<std::uint32_t, kWarpSize> lane_occurrence{};

    void note(unsigned lane, std::uint64_t byte_offset) {
        ++accesses;
        const std::uint32_t idx = lane_occurrence[lane]++;
        if (idx >= kMaxTrackedOccurrences) return;
        if (idx >= steps.size()) steps.resize(idx + 1);
        const auto word = static_cast<std::uint32_t>(byte_offset / 4);
        const unsigned bank = word % kSharedMemBanks;
        auto& claimed = lane < kWarpSize / 2 ? steps[idx].word_plus1_lo
                                             : steps[idx].word_plus1_hi;
        if (claimed[bank] == 0) {
            claimed[bank] = word + 1;
        } else if (claimed[bank] != word + 1) {
            ++conflicts;
        }
    }
};

/// Accounting state of one warp.
struct WarpAcct {
    // Cycle costs are SIMD-folded: max over the warp's threads (the warp
    // advances at the pace of its slowest lane). Byte traffic is summed —
    // each lane moves its own data over the bus.
    std::uint64_t compute_cycles = 0;  ///< issue (compute-pipe) cycles, max-fold
    std::uint64_t stall_cycles = 0;    ///< memory-latency cycles (hideable), max-fold
    std::uint64_t bytes_read = 0;      ///< device-memory traffic, sum-fold
    std::uint64_t bytes_written = 0;   ///< sum-fold
    /// Payload bytes the kernel actually asked for, before the coalescing
    /// model padded the bus transactions (charged/useful = the coalescing
    /// efficiency the profiler reports). Sum-fold like the charged bytes.
    std::uint64_t useful_bytes_read = 0;
    std::uint64_t useful_bytes_written = 0;

    std::vector<BranchSiteStats> branch_sites;
    SharedAcct shared;

    void note_branch(std::uint64_t site_key, unsigned lane, bool pred) {
        for (auto& s : branch_sites) {
            if (s.site_key == site_key) {
                s.note(lane, pred);
                return;
            }
        }
        branch_sites.emplace_back(site_key);
        branch_sites.back().note(lane, pred);
    }

    /// Warp-batched branch note: one site lookup for the whole warp instead
    /// of one per lane. Equivalent to note_branch(key, l, (preds >> l) & 1)
    /// for each set lane of `mask` in ascending order; when the lanes'
    /// occurrence counters have drifted apart (divergent control flow around
    /// the site itself), falls back to exactly those per-lane calls.
    void note_branch_lanes(std::uint64_t site_key, std::uint32_t mask,
                           std::uint32_t preds) {
        if (mask == 0) return;
        BranchSiteStats* site = nullptr;
        for (auto& s : branch_sites) {
            if (s.site_key == site_key) {
                site = &s;
                break;
            }
        }
        if (site == nullptr) {
            branch_sites.emplace_back(site_key);
            site = &branch_sites.back();
        }
        const auto l0 = static_cast<unsigned>(std::countr_zero(mask));
        const std::uint32_t idx = site->lane_occurrence[l0];
        bool aligned = true;
        if (mask == ~std::uint32_t{0}) {
            for (unsigned l = 0; l < kWarpSize; ++l) {
                aligned &= site->lane_occurrence[l] == idx;
            }
        } else {
            for (std::uint32_t m = mask; m != 0; m &= m - 1) {
                if (site->lane_occurrence[std::countr_zero(m)] != idx) {
                    aligned = false;
                    break;
                }
            }
        }
        if (aligned) {
            site->note_lanes(mask, preds, idx);
            return;
        }
        for (std::uint32_t m = mask; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            site->note(l, ((preds >> l) & 1u) != 0);
        }
    }

    /// Divergent warp-steps over the whole kernel.
    [[nodiscard]] std::uint64_t divergent_events() const {
        std::uint64_t events = 0;
        for (const auto& s : branch_sites) events += s.divergent;
        return events;
    }

    [[nodiscard]] std::uint64_t total_branch_evaluations() const {
        std::uint64_t n = 0;
        for (const auto& s : branch_sites) n += s.evaluations;
        return n;
    }
};

/// Per-thread accounting, folded into the warp when the thread finishes.
struct ThreadAcct {
    std::uint64_t compute_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t useful_bytes_read = 0;
    std::uint64_t useful_bytes_written = 0;

    void charge(const CostModel& cm, Op op, unsigned n = 1) {
        compute_cycles += std::uint64_t{cm.issue_cycles(op)} * n;
        stall_cycles += std::uint64_t{cm.stall_cycles(op)} * n;
    }
};

/// Aggregate result of one kernel launch (returned by Device::launch).
struct LaunchStats {
    std::uint64_t blocks = 0;
    std::uint64_t warps = 0;
    std::uint64_t threads = 0;
    /// Threads per block as configured — recorded at launch so reports
    /// never have to re-derive it from threads/blocks.
    std::uint64_t threads_per_block = 0;

    std::uint64_t compute_cycles = 0;       ///< sum over warps
    std::uint64_t stall_cycles = 0;         ///< sum over warps
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    /// Payload bytes before coalescing padding (see WarpAcct); the
    /// profiler's coalescing efficiency is useful / charged.
    std::uint64_t useful_bytes_read = 0;
    std::uint64_t useful_bytes_written = 0;
    std::uint64_t divergent_events = 0;     ///< estimated divergent warp-steps
    std::uint64_t branch_evaluations = 0;
    /// Shared-memory accesses and bank conflicts (populated only while
    /// cusim::prof is collecting — see SharedAcct).
    std::uint64_t shared_accesses = 0;
    std::uint64_t shared_bank_conflicts = 0;
    std::uint64_t syncthreads_count = 0;    ///< barrier episodes summed over blocks

    unsigned resident_blocks_per_mp = 0;    ///< occupancy actually achieved
    double device_seconds = 0.0;            ///< modelled execution time
};

}  // namespace cusim
