// cusim::memcheck — a shadow-state device-memory sanitizer.
//
// The thesis' central promise (§4.1/§4.2) is that CuPP makes device memory
// safe by construction: RAII handles, checked transfers, "destroying the
// device handle frees every allocation". The checked transfers catch
// out-of-bounds host access, but three whole bug classes stay silent in the
// seed simulator: a stale DevicePtr reads freed arena bytes (the raw
// pointer captured at creation still aims at valid host memory), leaks
// vanish unreported inside free_all(), and the zero-initialised arena masks
// reads of never-written device bytes. Cudagrind (Baumann & Gracia 2013)
// bolts Memcheck-style shadow tracking onto real CUDA via Valgrind; because
// our device is simulated we can build the sanitizer natively.
//
// Model (per simulated device):
//  * every allocation gets a monotonically increasing id plus the
//    std::source_location of the allocating call (threaded down from
//    cupp::vector / cupp::memory1d / cudaMalloc-style entry points);
//  * typed views (DevicePtr) remember the id of the allocation they were
//    created over — an access whose containing allocation is gone, or has
//    a different id, is a use-after-free even if the address range has
//    been recycled;
//  * allocations made while checking is enabled carry a per-byte
//    "defined" bitmap: host uploads and device writes set bits, device
//    reads of unset bits are uninitialized-read violations;
//  * each executing block can carry a per-byte shadow of its shared
//    arena recording (epoch, thread, kind) of the last accesses; two
//    threads touching the same byte in the same __syncthreads() interval
//    with at least one write is a shared-memory race (the engine's
//    barrier episodes give exact happens-before, so there are no false
//    positives for properly synchronised code);
//  * free_all() and GlobalMemory teardown report still-live allocations
//    as leaks, with their allocation sites.
//
// Violations are reported three ways: recorded in a process-wide registry
// (deduplicated per allocation-site/kernel, exported as JSON + text at
// exit when CUPP_MEMCHECK=<report.json> is set — mirroring the CUPP_TRACE
// workflow), mirrored into cupp::trace as instant events and counters, and
// thrown as cusim::Error(MemcheckViolation) in strict mode
// (CUPP_MEMCHECK=strict or memcheck::set_strict(true)).
//
// The disabled fast path is a single relaxed atomic load per access site,
// exactly like cupp::trace — instrumented hot paths cost nothing
// measurable when the checker is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <source_location>
#include <string>
#include <vector>

#include "cusim/types.hpp"

namespace cusim::memcheck {

// --- enablement -----------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_strict;
}  // namespace detail

/// True while checking. The only cost instrumentation pays when the
/// checker is off — keep per-access sites behind this check.
[[nodiscard]] inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// True when violations should throw cusim::Error(MemcheckViolation) at
/// the faulting access instead of only being recorded.
[[nodiscard]] inline bool strict() {
    return detail::g_strict.load(std::memory_order_relaxed);
}

/// Starts checking (record-only, no report file).
void enable();
/// Starts checking and arranges for a JSON violation report to be written
/// to `path` at process exit (and on write_report()).
void enable(std::string path);
/// Violations additionally throw at the faulting access.
void set_strict(bool strict);
/// Stops checking; recorded violations are kept.
void disable();

// --- violations -----------------------------------------------------------

enum class Kind {
    OutOfBounds,        ///< access outside any live allocation
    UseAfterFree,       ///< access through a stale view of a freed allocation
    UninitializedRead,  ///< device read of never-written bytes
    DoubleFree,         ///< free of an already-freed allocation
    InvalidFree,        ///< free of an address that was never an allocation base
    Leak,               ///< allocation still live at free_all()/teardown
    SharedRace,         ///< same-epoch conflicting shared-memory accesses
    AsyncHostRace,      ///< host read of an in-flight async D2H destination
};

/// Stable lower_snake_case name (report JSON keys, metric suffixes).
[[nodiscard]] const char* kind_name(Kind kind);

/// One recorded (deduplicated) violation.
struct Violation {
    Kind kind = Kind::OutOfBounds;
    std::string message;  ///< full human-readable diagnostic
    std::string kernel;   ///< kernel name ("" for host-side violations)
    std::string origin;   ///< allocation site "label @ file:line" ("" if unknown)
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
    int device = -1;
    bool has_coords = false;  ///< thread/block below are meaningful
    uint3 thread{};
    uint3 block{};
    std::uint64_t count = 1;  ///< occurrences folded into this record
};

/// Records a violation: deduplicates per (kind, origin, kernel), bumps the
/// per-kind totals and the cupp::trace metrics, and emits a trace instant
/// event when tracing is on. Never throws — strict-mode throwing is the
/// caller's job (leak/teardown paths must not throw).
void record(Violation v);

/// Snapshot of the deduplicated violation records.
[[nodiscard]] std::vector<Violation> violations();
/// Total occurrences (not deduplicated) across all kinds / of one kind.
[[nodiscard]] std::uint64_t total_violations();
[[nodiscard]] std::uint64_t violation_count(Kind kind);

/// Drops all recorded violations and totals (between test cases). Keeps
/// the enabled/strict mode and the report path.
void reset();

/// The configured report file ("" when none).
[[nodiscard]] std::string report_path();
/// The violation report as a JSON document / as human-readable text.
[[nodiscard]] std::string report_json();
[[nodiscard]] std::string report_text();
/// Writes report_json() to `path` (or the configured path when omitted).
/// Returns false when no path is known or the write failed.
bool write_report(const std::string& path = {});

// --- global-memory shadow state -------------------------------------------

enum class Access { Read, Write };

/// What a failed device-access check found (the caller adds thread/block
/// coordinates and the kernel name, which the shadow cannot know).
struct AccessIssue {
    Kind kind = Kind::OutOfBounds;
    std::string detail;  ///< e.g. "allocation freed at foo.cpp:12"
    std::string origin;  ///< allocation site of the (old) allocation
};

/// Per-device shadow map over GlobalMemory. All bookkeeping is gated on
/// memcheck::enabled() — a disabled shadow costs one relaxed load per
/// allocator call and nothing per access. Allocations made before
/// enable() are simply untracked: accesses through their views stay
/// unchecked (conservative) instead of misreporting.
class Shadow {
public:
    Shadow() = default;
    Shadow(const Shadow&) = delete;
    Shadow& operator=(const Shadow&) = delete;

    /// Lane/ordinal of the owning device, for violation attribution.
    void set_device(int ordinal);

    /// Registers an allocation; returns its id (used by typed views for
    /// stale-view detection).
    std::uint64_t on_alloc(DeviceAddr base, std::uint64_t requested,
                           std::source_location loc, const char* label);
    /// Unregisters a live allocation (the allocator validated `base`).
    void on_free(DeviceAddr base, std::source_location loc);
    /// The allocator rejected this free: attribute it as a double free
    /// (recently freed base) or an invalid free. Records a violation when
    /// enabled; never throws.
    void note_bad_free(DeviceAddr addr, std::source_location loc);
    /// free_all(): records every live allocation as a leak (when enabled),
    /// then clears the live set.
    void on_free_all();
    /// GlobalMemory teardown: records remaining live allocations as leaks.
    void report_leaks();

    /// Device::reset_device(): live allocations survive with their ids,
    /// but their contents were wiped — replay every tracked allocation's
    /// defined-bits back to "freshly allocated" so stale device data can
    /// never be read as defined after a recovery.
    void on_device_reset();

    /// Host upload landed on [dst, dst+bytes): marks bytes defined.
    void on_host_write(DeviceAddr dst, std::uint64_t bytes);
    /// Device-to-device copy: propagates defined bits from src to dst.
    void on_copy(DeviceAddr dst, DeviceAddr src, std::uint64_t bytes);

    /// Checks one device-side access. `expected_id` is the allocation id
    /// the view was created over (0 = unknown view, liveness checked but
    /// not identity). Marks bytes defined on writes. Returns the issue on
    /// violation, std::nullopt when the access is clean.
    [[nodiscard]] std::optional<AccessIssue> check_access(DeviceAddr addr,
                                                          std::uint64_t bytes,
                                                          std::uint64_t expected_id,
                                                          Access access);

    /// Id of the live allocation containing `addr` (0 when none).
    [[nodiscard]] std::uint64_t alloc_id(DeviceAddr addr) const;

    [[nodiscard]] std::uint64_t live_allocations() const;
    [[nodiscard]] std::uint64_t live_bytes() const;

private:
    struct AllocRecord {
        std::uint64_t id = 0;
        std::uint64_t requested = 0;
        std::source_location loc{};
        const char* label = "";
        /// Per-byte defined bits; empty when the allocation predates
        /// enable() (then all bytes count as defined — conservative).
        std::vector<std::uint64_t> defined;
    };
    struct FreedRecord {
        std::uint64_t id = 0;
        DeviceAddr base = 0;
        std::uint64_t requested = 0;
        std::source_location alloc_loc{};
        const char* label = "";
        std::source_location free_loc{};
    };

    /// Live allocation containing [addr, addr+bytes), or nullptr.
    [[nodiscard]] const AllocRecord* find_containing(DeviceAddr addr,
                                                     std::uint64_t bytes,
                                                     DeviceAddr* base_out) const;
    [[nodiscard]] const FreedRecord* find_freed(DeviceAddr addr,
                                                std::uint64_t expected_id) const;

    static constexpr std::size_t kFreedHistory = 512;

    mutable std::mutex mu_;
    std::map<DeviceAddr, AllocRecord> live_;
    std::deque<FreedRecord> freed_;  ///< most recent last, bounded
    std::uint64_t next_id_ = 1;
    int device_ = -1;
};

// --- shared-memory race detection -----------------------------------------

/// Per-block shadow of the shared arena: for every byte, the barrier
/// episode ("epoch") and thread of the last read and the last write. Two
/// accesses to the same byte in the same epoch from different threads with
/// at least one write conflict — the engine releases barriers collectively,
/// so epoch equality is exact happens-before, not a heuristic.
class SharedShadow {
public:
    explicit SharedShadow(std::size_t arena_bytes);

    struct Conflict {
        std::uint64_t offset = 0;  ///< first conflicting byte
        unsigned other_tid = 0;    ///< linear tid of the earlier access
        bool other_was_write = false;
    };

    /// Notes an access of [offset, offset+bytes) by linear thread `tid`
    /// during barrier episode `epoch`; returns the conflict, if any.
    [[nodiscard]] std::optional<Conflict> note_access(std::uint64_t offset,
                                                      std::uint64_t bytes,
                                                      unsigned tid, std::uint64_t epoch,
                                                      bool is_write);

private:
    struct ByteState {
        std::uint64_t write_epoch = 0;  ///< epoch+1 of last write (0 = never)
        std::uint64_t read_epoch = 0;   ///< epoch+1 of last read (0 = never)
        unsigned write_tid = 0;
        unsigned read_tid = 0;
    };
    std::vector<ByteState> bytes_;
};

// --- execution context -----------------------------------------------------

/// What the engine threads into every ThreadCtx so device-side diagnostics
/// can name the kernel and reach the owning device's shadow state.
struct ExecContext {
    std::string kernel_name = "kernel";
    Shadow* shadow = nullptr;
    int device = -1;
};

}  // namespace cusim::memcheck
