#include "cusim/timeline.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "cupp/trace.hpp"
#include "cusim/prof.hpp"

namespace cusim::timeline {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using cupp::trace::format;
using cupp::trace::json_quote;

/// Per-device lane bookkeeping: the tail node of each lane (what the next
/// node on that lane FIFO-depends on) and the host cursor (how far the
/// gapless host lane has been materialized).
struct DeviceLanes {
    std::uint64_t host_tail = 0;
    double host_cursor = 0.0;
    std::uint64_t dev_tail = 0;
    std::map<std::uint32_t, std::uint64_t> stream_tails;
    std::map<std::uint64_t, std::uint64_t> event_records;  ///< event -> node
};

/// Process-wide recorder. Intentionally leaked (like the trace, memcheck,
/// faults and prof registries) so the atexit report still sees it.
class State {
public:
    static State& instance() {
        static State* s = new State();
        return *s;
    }

    void enable(std::string path) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!path.empty()) report_path_ = std::move(path);
        detail::g_enabled.store(true, std::memory_order_relaxed);
        prof::set_correlation_tracking(true);
    }

    void disable() {
        std::lock_guard<std::mutex> lock(mu_);
        detail::g_enabled.store(false, std::memory_order_relaxed);
        prof::set_correlation_tracking(false);
    }

    void clear() {
        std::lock_guard<std::mutex> lock(mu_);
        detail::g_enabled.store(false, std::memory_order_relaxed);
        prof::set_correlation_tracking(false);
        nodes_.clear();
        devices_.clear();
        report_path_.clear();
        prof::reset_correlation_ids();
    }

    std::string path() const {
        std::lock_guard<std::mutex> lock(mu_);
        return report_path_;
    }

    std::vector<Node> snapshot() const {
        std::lock_guard<std::mutex> lock(mu_);
        return nodes_;
    }

    // --- recording (host thread; the lock keeps TSan and any future
    // multi-threaded caller honest) ---

    std::uint64_t anchor_host(int device, double t) {
        std::lock_guard<std::mutex> lock(mu_);
        return anchor_host_locked(devices_[device], device, t);
    }

    std::uint64_t host_op(int device, Category cat, std::string_view name,
                          std::uint64_t bytes, std::uint64_t corr, double start,
                          double end, std::uint64_t extra) {
        std::lock_guard<std::mutex> lock(mu_);
        DeviceLanes& d = devices_[device];
        std::uint64_t fifo = d.host_tail;
        if (start > d.host_cursor && !ends_at(extra, start)) {
            // The gap is untracked host progress (advance_host), not a
            // device wait: fill it so the walk stays exact.
            fifo = anchor_host_locked(d, device, start);
        }
        const std::uint64_t id =
            push_locked(make(cat, Lane::Host, name, device, 0, corr, start, end,
                             bytes, {fifo, extra}));
        d.host_tail = id;
        d.host_cursor = std::max(d.host_cursor, end);
        return id;
    }

    std::uint64_t host_sync(int device, std::string_view name,
                            std::uint64_t corr, double t, std::uint64_t waited) {
        std::lock_guard<std::mutex> lock(mu_);
        DeviceLanes& d = devices_[device];
        std::uint64_t fifo = d.host_tail;
        if (t > d.host_cursor && !ends_at(waited, t)) {
            fifo = anchor_host_locked(d, device, t);
        }
        const std::uint64_t id = push_locked(make(Category::Sync, Lane::Host, name,
                                                  device, 0, corr, t, t, 0,
                                                  {fifo, waited}));
        d.host_tail = id;
        d.host_cursor = std::max(d.host_cursor, t);
        return id;
    }

    std::uint64_t device_op(int device, Category cat, std::string_view name,
                            std::uint64_t bytes, std::uint64_t corr, double start,
                            double end, std::uint64_t extra) {
        std::lock_guard<std::mutex> lock(mu_);
        DeviceLanes& d = devices_[device];
        const std::uint64_t id =
            push_locked(make(cat, Lane::Device, name, device, 0, corr, start, end,
                             bytes, {d.dev_tail, extra}));
        d.dev_tail = id;
        return id;
    }

    std::uint64_t stream_op(int device, std::uint32_t stream, Category cat,
                            std::string_view name, std::uint64_t bytes,
                            std::uint64_t corr, double start, double end,
                            std::uint64_t dep_a, std::uint64_t dep_b) {
        std::lock_guard<std::mutex> lock(mu_);
        DeviceLanes& d = devices_[device];
        const std::uint64_t id =
            push_locked(make(cat, Lane::Stream, name, device, stream, corr, start,
                             end, bytes, {d.stream_tails[stream], dep_a, dep_b}));
        d.stream_tails[stream] = id;
        return id;
    }

    void failed_op(int device, std::uint32_t stream, Category cat,
                   std::string_view name, std::uint64_t bytes,
                   std::uint64_t corr, double t) {
        std::lock_guard<std::mutex> lock(mu_);
        Node n = make(cat, stream == 0 ? Lane::Host : Lane::Stream, name, device,
                      stream, corr, t, t, bytes, {});
        n.failed = true;
        push_locked(std::move(n));  // never a tail: contributes no edges
    }

    std::uint64_t device_tail(int device) {
        std::lock_guard<std::mutex> lock(mu_);
        return devices_[device].dev_tail;
    }

    std::uint64_t stream_tail(int device, std::uint32_t stream) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& tails = devices_[device].stream_tails;
        const auto it = tails.find(stream);
        return it == tails.end() ? 0 : it->second;
    }

    void set_device_tail(int device, std::uint64_t node) {
        std::lock_guard<std::mutex> lock(mu_);
        if (node != 0) devices_[device].dev_tail = node;
    }

    void register_event_record(int device, std::uint64_t event,
                               std::uint64_t node) {
        std::lock_guard<std::mutex> lock(mu_);
        devices_[device].event_records[event] = node;
    }

    std::uint64_t event_record_node(int device, std::uint64_t event) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& recs = devices_[device].event_records;
        const auto it = recs.find(event);
        return it == recs.end() ? 0 : it->second;
    }

private:
    State() = default;

    [[nodiscard]] bool ends_at(std::uint64_t id, double t) const {
        return id != 0 && nodes_[id - 1].end == t;
    }

    std::uint64_t anchor_host_locked(DeviceLanes& d, int device, double t) {
        if (d.host_tail != 0 && nodes_[d.host_tail - 1].end == t) {
            return d.host_tail;
        }
        if (t <= d.host_cursor) {
            // Host already materialized past t (an async issue anchored at
            // enqueue always lands here-or-later, so this is best-effort).
            return d.host_tail;
        }
        const std::uint64_t id =
            push_locked(make(Category::Host, Lane::Host, "host", device, 0, 0,
                             d.host_cursor, t, 0, {d.host_tail}));
        d.host_tail = id;
        d.host_cursor = t;
        return id;
    }

    static Node make(Category cat, Lane lane, std::string_view name, int device,
                     std::uint32_t stream, std::uint64_t corr, double start,
                     double end, std::uint64_t bytes,
                     std::initializer_list<std::uint64_t> deps) {
        Node n;
        n.cat = cat;
        n.lane = lane;
        n.name = std::string(name);
        n.device = device;
        n.stream = stream;
        n.correlation = corr;
        n.start = start;
        n.end = end;
        n.bytes = bytes;
        for (std::uint64_t d : deps) {
            if (d == 0) continue;
            if (std::find(n.deps.begin(), n.deps.end(), d) == n.deps.end()) {
                n.deps.push_back(d);
            }
        }
        return n;
    }

    std::uint64_t push_locked(Node&& n) {
        n.id = nodes_.size() + 1;
        nodes_.push_back(std::move(n));
        cupp::trace::metrics().add("cusim.timeline.nodes");
        return nodes_.back().id;
    }

    mutable std::mutex mu_;
    std::vector<Node> nodes_;  ///< id == index + 1
    std::map<int, DeviceLanes> devices_;
    std::string report_path_;
};

void atexit_report() {
    if (!report_path().empty()) write_report();
}

void register_atexit_once() {
    static const bool registered = [] {
        std::atexit(atexit_report);
        return true;
    }();
    (void)registered;
}

/// Reads CUPP_TIMELINE once at static-init: its value is the report path,
/// and recording runs for the whole process.
struct EnvGate {
    EnvGate() {
        if (const char* env = std::getenv("CUPP_TIMELINE");
            env != nullptr && *env != '\0') {
            enable(std::string(env));
        }
    }
};
const EnvGate g_env_gate;

}  // namespace

const char* category_name(Category cat) {
    switch (cat) {
        case Category::Kernel: return "kernel";
        case Category::MemcpyH2D: return "h2d";
        case Category::MemcpyD2H: return "d2h";
        case Category::MemcpyD2D: return "d2d";
        case Category::EventRecord: return "record";
        case Category::EventWait: return "wait";
        case Category::Sync: return "sync";
        case Category::Host: return "host";
    }
    return "unknown";
}

std::string lane_name(const Node& n) {
    std::string out = "dev" + std::to_string(n.device);
    switch (n.lane) {
        case Lane::Host: return out + ".host";
        case Lane::Device: return out + ".device";
        case Lane::Stream: return out + ".stream" + std::to_string(n.stream);
    }
    return out;
}

void enable() {
    register_atexit_once();
    State::instance().enable({});
}

void enable(std::string path) {
    register_atexit_once();
    State::instance().enable(std::move(path));
}

void disable() { State::instance().disable(); }

void reset() { State::instance().clear(); }

std::uint64_t anchor_host(int device, double t) {
    return State::instance().anchor_host(device, t);
}

std::uint64_t host_op(int device, Category cat, std::string_view name,
                      std::uint64_t bytes, std::uint64_t correlation,
                      double start, double end, std::uint64_t extra_dep) {
    return State::instance().host_op(device, cat, name, bytes, correlation, start,
                                     end, extra_dep);
}

std::uint64_t host_sync(int device, std::string_view name,
                        std::uint64_t correlation, double t,
                        std::uint64_t waited) {
    return State::instance().host_sync(device, name, correlation, t, waited);
}

std::uint64_t device_op(int device, Category cat, std::string_view name,
                        std::uint64_t bytes, std::uint64_t correlation,
                        double start, double end, std::uint64_t extra_dep) {
    return State::instance().device_op(device, cat, name, bytes, correlation,
                                       start, end, extra_dep);
}

std::uint64_t stream_op(int device, std::uint32_t stream, Category cat,
                        std::string_view name, std::uint64_t bytes,
                        std::uint64_t correlation, double start, double end,
                        std::uint64_t dep_a, std::uint64_t dep_b) {
    return State::instance().stream_op(device, stream, cat, name, bytes,
                                       correlation, start, end, dep_a, dep_b);
}

void failed_op(int device, std::uint32_t stream, Category cat,
               std::string_view name, std::uint64_t bytes,
               std::uint64_t correlation, double t) {
    State::instance().failed_op(device, stream, cat, name, bytes, correlation, t);
}

std::uint64_t device_tail(int device) {
    return State::instance().device_tail(device);
}

std::uint64_t stream_tail(int device, std::uint32_t stream) {
    return State::instance().stream_tail(device, stream);
}

void set_device_tail(int device, std::uint64_t node) {
    State::instance().set_device_tail(device, node);
}

void register_event_record(int device, std::uint64_t event, std::uint64_t node) {
    State::instance().register_event_record(device, event, node);
}

std::uint64_t event_record_node(int device, std::uint64_t event) {
    return State::instance().event_record_node(device, event);
}

std::vector<Node> nodes() { return State::instance().snapshot(); }

// --- analysis ----------------------------------------------------------------

Report analyze() {
    const std::vector<Node> ns = nodes();
    Report r;
    r.total_nodes = ns.size();

    // Makespan: the latest successful completion. Ties break to the
    // earliest-recorded node for determinism.
    const Node* head = nullptr;
    for (const Node& n : ns) {
        if (n.failed) {
            ++r.failed_nodes;
            continue;
        }
        r.serialized_seconds += n.duration();
        r.category_seconds[static_cast<std::size_t>(n.cat)] += n.duration();
        r.edges += n.deps.size();
        if (head == nullptr || n.end > head->end) head = &n;
    }
    if (head == nullptr) return r;
    r.makespan_seconds = head->end;
    r.overlap_efficiency =
        r.makespan_seconds > 0.0 ? r.serialized_seconds / r.makespan_seconds : 0.0;

    // Walk backwards from the makespan node. Every constraint that can
    // determine a start time is an edge to a node ending at exactly that
    // time, so the walk follows exact end==start matches; any mismatch is
    // accounted as gap (0 in normal operation). Deps always point at
    // earlier-recorded nodes, so the walk terminates.
    const Node* cur = head;
    for (;;) {
        r.critical_path.push_back(cur->id);
        const double t = cur->start;
        const Node* pick = nullptr;
        const Node* latest = nullptr;
        for (const std::uint64_t dep : cur->deps) {
            const Node& dn = ns[dep - 1];
            if (dn.failed) continue;
            if (dn.end == t && (pick == nullptr || dn.id < pick->id)) pick = &dn;
            if (latest == nullptr || dn.end > latest->end) latest = &dn;
        }
        if (pick != nullptr) {
            cur = pick;
        } else if (latest != nullptr && t > 0.0) {
            r.gap_seconds += t - latest->end;
            cur = latest;
        } else {
            r.gap_seconds += t;
            break;
        }
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
    // The path tiles [0, makespan] except for the accounted gap, so the
    // attributed time is exactly the makespan when the walk was gapless
    // (summing per-node durations instead would accumulate float rounding).
    r.critical_path_seconds = r.makespan_seconds - r.gap_seconds;

    // Per-lane utilization and bubbles. Nodes are recorded per lane in
    // nondecreasing start order (the FIFO contract), so one forward scan
    // with a running horizon finds every idle gap.
    std::vector<const Node*> order;
    order.reserve(ns.size());
    for (const Node& n : ns) {
        if (!n.failed) order.push_back(&n);
    }
    std::map<std::string, std::size_t> lane_index;
    std::vector<double> horizon;
    for (const Node* n : order) {
        const std::string lane = lane_name(*n);
        auto [it, fresh] = lane_index.emplace(lane, r.lanes.size());
        if (fresh) {
            LaneSummary s;
            s.lane = lane;
            s.first_start = n->start;
            s.last_end = n->end;
            r.lanes.push_back(std::move(s));
            horizon.push_back(n->end);
        }
        LaneSummary& s = r.lanes[it->second];
        double& h = horizon[it->second];
        if (s.nodes > 0 && n->start > h) {
            s.bubbles.emplace_back(h, n->start);
            s.bubble_seconds += n->start - h;
        }
        ++s.nodes;
        s.busy_seconds += n->duration();
        s.last_end = std::max(s.last_end, n->end);
        h = std::max(h, n->end);
    }
    return r;
}

std::string report_path() { return State::instance().path(); }

std::string report_json() {
    const std::vector<Node> ns = nodes();
    const Report r = analyze();

    std::string out = "{\n  \"timeline\": {\n    \"version\": 1,\n";
    out += format(
        "    \"makespan_seconds\": %.17g,\n"
        "    \"serialized_seconds\": %.17g,\n"
        "    \"overlap_efficiency\": %.6g,\n"
        "    \"critical_path_seconds\": %.17g,\n"
        "    \"critical_path_gap_seconds\": %.17g,\n",
        r.makespan_seconds, r.serialized_seconds, r.overlap_efficiency,
        r.critical_path_seconds, r.gap_seconds);
    out += format(
        "    \"counts\": {\"nodes\": %llu, \"failed\": %llu, \"edges\": %llu},\n",
        static_cast<unsigned long long>(r.total_nodes),
        static_cast<unsigned long long>(r.failed_nodes),
        static_cast<unsigned long long>(r.edges));

    out += "    \"categories\": [";
    bool first = true;
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
        if (r.category_seconds[c] == 0.0) continue;
        out += format("%s\n      {\"category\": \"%s\", \"seconds\": %.17g, "
                      "\"share\": %.6g}",
                      first ? "" : ",", category_name(static_cast<Category>(c)),
                      r.category_seconds[c],
                      r.serialized_seconds > 0.0
                          ? r.category_seconds[c] / r.serialized_seconds
                          : 0.0);
        first = false;
    }
    out += first ? "],\n" : "\n    ],\n";

    out += "    \"lanes\": [";
    for (std::size_t i = 0; i < r.lanes.size(); ++i) {
        const LaneSummary& s = r.lanes[i];
        out += format(
            "%s\n      {\"lane\": %s, \"nodes\": %llu, \"busy_seconds\": %.17g, "
            "\"utilization\": %.6g, \"first_start\": %.17g, \"last_end\": %.17g, "
            "\"bubble_seconds\": %.17g, \"bubbles\": [",
            i == 0 ? "" : ",", json_quote(s.lane).c_str(),
            static_cast<unsigned long long>(s.nodes), s.busy_seconds,
            r.makespan_seconds > 0.0 ? s.busy_seconds / r.makespan_seconds : 0.0,
            s.first_start, s.last_end, s.bubble_seconds);
        for (std::size_t b = 0; b < s.bubbles.size(); ++b) {
            out += format("%s{\"start\": %.17g, \"end\": %.17g}",
                          b == 0 ? "" : ", ", s.bubbles[b].first,
                          s.bubbles[b].second);
        }
        out += "]}";
    }
    out += r.lanes.empty() ? "],\n" : "\n    ],\n";

    out += "    \"critical_path\": [";
    for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
        const Node& n = ns[r.critical_path[i] - 1];
        out += format(
            "%s\n      {\"id\": %llu, \"category\": \"%s\", \"name\": %s, "
            "\"lane\": %s, \"start\": %.17g, \"end\": %.17g, "
            "\"duration\": %.17g, \"share\": %.6g}",
            i == 0 ? "" : ",", static_cast<unsigned long long>(n.id),
            category_name(n.cat), json_quote(n.name).c_str(),
            json_quote(lane_name(n)).c_str(), n.start, n.end, n.duration(),
            r.makespan_seconds > 0.0 ? n.duration() / r.makespan_seconds : 0.0);
    }
    out += r.critical_path.empty() ? "],\n" : "\n    ],\n";

    out += "    \"nodes\": [";
    for (std::size_t i = 0; i < ns.size(); ++i) {
        const Node& n = ns[i];
        out += format(
            "%s\n      {\"id\": %llu, \"correlation\": %llu, \"category\": "
            "\"%s\", \"name\": %s, \"lane\": %s, \"device\": %d, \"stream\": %u, "
            "\"start\": %.17g, \"end\": %.17g, \"duration\": %.17g, "
            "\"bytes\": %llu, \"failed\": %s, \"deps\": [",
            i == 0 ? "" : ",", static_cast<unsigned long long>(n.id),
            static_cast<unsigned long long>(n.correlation), category_name(n.cat),
            json_quote(n.name).c_str(), json_quote(lane_name(n)).c_str(),
            n.device, n.stream, n.start, n.end, n.duration(),
            static_cast<unsigned long long>(n.bytes),
            n.failed ? "true" : "false");
        for (std::size_t d = 0; d < n.deps.size(); ++d) {
            out += format("%s%llu", d == 0 ? "" : ", ",
                          static_cast<unsigned long long>(n.deps[d]));
        }
        out += "]}";
    }
    out += ns.empty() ? "]\n" : "\n    ]\n";
    out += "  }\n}\n";
    return out;
}

bool write_report(const std::string& path) {
    const std::string target = path.empty() ? report_path() : path;
    if (target.empty()) return false;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << report_json();
    return static_cast<bool>(out);
}

}  // namespace cusim::timeline
