// Human-readable kernel launch reports — the profiler the thesis wished it
// had ("no profiling tool is available offering this information", §6.3.1).
#pragma once

#include <string>

#include "cupp/trace.hpp"
#include "cusim/accounting.hpp"
#include "cusim/block_pool.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_properties.hpp"

namespace cusim {

/// Which of the three wave-time lower bounds dominated a launch.
enum class BoundBy { Compute, LatencyChain, Bandwidth };

[[nodiscard]] inline const char* to_string(BoundBy b) {
    switch (b) {
        case BoundBy::Compute: return "compute";
        case BoundBy::LatencyChain: return "latency";
        case BoundBy::Bandwidth: return "bandwidth";
    }
    return "?";
}

/// Classifies a launch by its dominating resource (approximate: aggregates
/// over the whole grid rather than per wave).
[[nodiscard]] inline BoundBy bound_by(const LaunchStats& s, const CostModel& cm) {
    const double compute = static_cast<double>(s.compute_cycles);
    const double bandwidth =
        static_cast<double>(s.bytes_read + s.bytes_written) / cm.bytes_per_cycle_per_mp();
    const double chain =
        s.warps > 0 ? static_cast<double>(s.compute_cycles + s.stall_cycles) / s.warps *
                          cm.multiprocessors
                    : 0.0;
    if (bandwidth >= compute && bandwidth >= chain) return BoundBy::Bandwidth;
    if (chain > compute) return BoundBy::LatencyChain;
    return BoundBy::Compute;
}

/// One-paragraph report of a launch, e.g. for examples and harness logs.
/// Formats through cupp::trace::format (an auto-sizing std::string builder,
/// immune to the silent truncation of a fixed snprintf buffer) and reads
/// the threads-per-block figure recorded at launch instead of re-deriving
/// it from threads/blocks.
[[nodiscard]] inline std::string describe(const LaunchStats& s, const CostModel& cm) {
    const double div_rate =
        s.branch_evaluations > 0
            ? 100.0 * static_cast<double>(s.divergent_events) /
                  (static_cast<double>(s.branch_evaluations) / kWarpSize)
            : 0.0;
    return cupp::trace::format(
        "%llu blocks x %llu threads (%u resident blocks/MP), %.3f ms, "
        "%s-bound; %.2f MiB read, %.2f MiB written; "
        "%llu divergent warp-steps (%.1f%% of warp branches); "
        "%llu barrier rounds",
        static_cast<unsigned long long>(s.blocks),
        static_cast<unsigned long long>(s.threads_per_block),
        s.resident_blocks_per_mp, s.device_seconds * 1e3, to_string(bound_by(s, cm)),
        s.bytes_read / 1048576.0, s.bytes_written / 1048576.0,
        static_cast<unsigned long long>(s.divergent_events), div_rate,
        static_cast<unsigned long long>(s.syncthreads_count));
}

/// Machine-readable flavour of describe(): the same launch profile as a
/// JSON object (the per-launch args the trace exporter attaches to device
/// spans use the same fields).
[[nodiscard]] inline std::string describe_json(const LaunchStats& s, const CostModel& cm) {
    return cupp::trace::format(
        "{\"blocks\":%llu,\"threads\":%llu,\"threads_per_block\":%llu,"
        "\"warps\":%llu,\"resident_blocks_per_mp\":%u,\"device_ms\":%.6f,"
        "\"bound_by\":\"%s\",\"bytes_read\":%llu,\"bytes_written\":%llu,"
        "\"divergent_events\":%llu,\"branch_evaluations\":%llu,"
        "\"syncthreads\":%llu,\"compute_cycles\":%llu,\"stall_cycles\":%llu}",
        static_cast<unsigned long long>(s.blocks),
        static_cast<unsigned long long>(s.threads),
        static_cast<unsigned long long>(s.threads_per_block),
        static_cast<unsigned long long>(s.warps), s.resident_blocks_per_mp,
        s.device_seconds * 1e3, to_string(bound_by(s, cm)),
        static_cast<unsigned long long>(s.bytes_read),
        static_cast<unsigned long long>(s.bytes_written),
        static_cast<unsigned long long>(s.divergent_events),
        static_cast<unsigned long long>(s.branch_evaluations),
        static_cast<unsigned long long>(s.syncthreads_count),
        static_cast<unsigned long long>(s.compute_cycles),
        static_cast<unsigned long long>(s.stall_cycles));
}

/// Describes a simulated part as JSON, including the engine's execution
/// knob: `sim_threads` is the raw DeviceProperties setting (0 = auto) and
/// `sim_threads_resolved` the thread count a launch on this part would
/// actually use (CUPP_SIM_THREADS / hardware_concurrency when auto). The
/// knob lives here rather than in LaunchStats on purpose — stats stay
/// bit-identical across thread counts.
[[nodiscard]] inline std::string describe_json(const DeviceProperties& p) {
    const unsigned resolved =
        p.sim_threads != 0 ? p.sim_threads : BlockPool::configured_threads();
    return cupp::trace::format(
        "{\"name\":%s,\"total_global_mem\":%llu,\"multiprocessors\":%u,"
        "\"processors\":%u,\"warp_size\":%u,\"max_threads_per_block\":%u,"
        "\"shared_mem_per_block\":%u,\"registers_per_block\":%u,"
        "\"supports_atomics\":%s,\"sim_threads\":%u,\"sim_threads_resolved\":%u}",
        cupp::trace::json_quote(p.name).c_str(),
        static_cast<unsigned long long>(p.total_global_mem), p.multiprocessors,
        p.processor_count(), p.warp_size, p.max_threads_per_block,
        p.shared_mem_per_block, p.registers_per_block,
        p.supports_atomics ? "true" : "false", p.sim_threads, resolved);
}

}  // namespace cusim
