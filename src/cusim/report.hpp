// Human-readable kernel launch reports — the profiler the thesis wished it
// had ("no profiling tool is available offering this information", §6.3.1).
#pragma once

#include <cstdio>
#include <string>

#include "cusim/accounting.hpp"
#include "cusim/cost_model.hpp"

namespace cusim {

/// Which of the three wave-time lower bounds dominated a launch.
enum class BoundBy { Compute, LatencyChain, Bandwidth };

[[nodiscard]] inline const char* to_string(BoundBy b) {
    switch (b) {
        case BoundBy::Compute: return "compute";
        case BoundBy::LatencyChain: return "latency";
        case BoundBy::Bandwidth: return "bandwidth";
    }
    return "?";
}

/// Classifies a launch by its dominating resource (approximate: aggregates
/// over the whole grid rather than per wave).
[[nodiscard]] inline BoundBy bound_by(const LaunchStats& s, const CostModel& cm) {
    const double compute = static_cast<double>(s.compute_cycles);
    const double bandwidth =
        static_cast<double>(s.bytes_read + s.bytes_written) / cm.bytes_per_cycle_per_mp();
    const double chain =
        s.warps > 0 ? static_cast<double>(s.compute_cycles + s.stall_cycles) / s.warps *
                          cm.multiprocessors
                    : 0.0;
    if (bandwidth >= compute && bandwidth >= chain) return BoundBy::Bandwidth;
    if (chain > compute) return BoundBy::LatencyChain;
    return BoundBy::Compute;
}

/// One-paragraph report of a launch, e.g. for examples and harness logs.
[[nodiscard]] inline std::string describe(const LaunchStats& s, const CostModel& cm) {
    char buf[512];
    const double div_rate =
        s.branch_evaluations > 0
            ? 100.0 * static_cast<double>(s.divergent_events) /
                  (static_cast<double>(s.branch_evaluations) / kWarpSize)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%llu blocks x %llu threads (%u resident blocks/MP), %.3f ms, "
                  "%s-bound; %.2f MiB read, %.2f MiB written; "
                  "%llu divergent warp-steps (%.1f%% of warp branches); "
                  "%llu barrier rounds",
                  static_cast<unsigned long long>(s.blocks),
                  static_cast<unsigned long long>(s.threads / (s.blocks ? s.blocks : 1)),
                  s.resident_blocks_per_mp, s.device_seconds * 1e3,
                  to_string(bound_by(s, cm)), s.bytes_read / 1048576.0,
                  s.bytes_written / 1048576.0,
                  static_cast<unsigned long long>(s.divergent_events), div_rate,
                  static_cast<unsigned long long>(s.syncthreads_count));
    return std::string(buf);
}

}  // namespace cusim
