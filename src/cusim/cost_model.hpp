// The performance model of the simulated G80 device.
//
// This file is the single source of truth for every timing constant used by
// the reproduction. The instruction costs implement Table 2.2 of the thesis:
//
//   FADD, FMUL, FMAD, IADD                       4 cycles / warp
//   bitwise, compare, min, max                   4
//   reciprocal, reciprocal square root           16
//   accessing registers                          0
//   accessing shared memory                      >= 4
//   reading from device memory                   400 - 600
//   synchronizing all threads within a block     4 + waiting time
//
// Writing to device memory is "fire and forget" (§2.3): it costs one issue
// slot, the latency is absorbed by the memory write unit, but it consumes
// bandwidth.
//
// Memory-latency hiding by warp switching (§2.3) and the bandwidth ceiling of
// the part are modelled in multiprocessor.hpp from the constants below.
#pragma once

#include <cstdint>

#include "cusim/types.hpp"

namespace cusim {

/// Instruction classes the accounting hooks can charge.
enum class Op : std::uint8_t {
    FAdd,          ///< floating-point add
    FMul,          ///< floating-point multiply
    FMad,          ///< fused multiply-add
    IAdd,          ///< integer add
    Bitwise,       ///< and/or/xor/shift
    Compare,       ///< compare / set-predicate
    MinMax,        ///< min or max
    Recip,         ///< reciprocal
    RSqrt,         ///< reciprocal square root
    Register,      ///< register move (free)
    SharedAccess,  ///< shared-memory read or write
    GlobalRead,    ///< device-memory read (latency!)
    GlobalWrite,   ///< device-memory write (fire and forget)
    LocalSpill,    ///< thread-local variable spilled to device memory (§6.2.2 / Table 2.1)
    SyncThreads,   ///< barrier
    Branch,        ///< control-flow instruction (cost of the branch itself)
    ConstantRead,  ///< read through the per-MP constant cache (broadcast)
    TextureHit,    ///< texture fetch served by the texture cache
};

inline constexpr int kOpCount = static_cast<int>(Op::TextureHit) + 1;

/// Cost table + machine constants of the simulated device. All figures are
/// in core clock cycles *per warp* as in Table 2.2.
struct CostModel {
    // --- Table 2.2 ---
    unsigned fadd = 4;
    unsigned fmul = 4;
    unsigned fmad = 4;
    unsigned iadd = 4;
    unsigned bitwise = 4;
    unsigned compare = 4;
    unsigned minmax = 4;
    unsigned recip = 16;
    unsigned rsqrt = 16;
    unsigned register_access = 0;
    unsigned shared_access = 4;
    unsigned global_read_latency = 500;  ///< 400-600; we take the midpoint.
    unsigned global_write_issue = 4;     ///< fire-and-forget: issue cost only.
    unsigned sync_base = 4;              ///< 4 + waiting time (waiting modelled by the barrier).
    unsigned branch = 4;                 ///< uniform control-flow instruction.

    /// Cost of reading a thread-local variable the compiler spilled to
    /// device memory (§6.2.2). Spilled loads feed an immediately dependent
    /// use, so most of the 400-600 cycle latency is exposed rather than
    /// hidden — which is exactly why version 4 (recompute) beats version 3
    /// (cache in local memory).
    unsigned local_spill_cycles = 400;

    // --- the cached read-only paths (§2.1, future-work §7) ---
    unsigned constant_read = 4;   ///< constant-cache read (warp broadcast)
    unsigned texture_hit = 4;     ///< texture fetch served from cache
    /// One in `texture_miss_period` texture fetches goes to device memory
    /// (a deterministic stand-in for a ~75% cache hit rate on streaming
    /// access patterns).
    unsigned texture_miss_period = 4;

    // --- machine constants (GeForce 8800 GTS 640 MB, §5.3) ---
    double core_clock_hz = 1.2e9;        ///< processor ("shader") clock.
    unsigned multiprocessors = 12;
    unsigned max_blocks_per_mp = 8;
    /// Warp residency ceiling of one multiprocessor (768 threads / 32 on
    /// compute capability 1.0). Achieved occupancy = resident warps / this.
    unsigned max_warps_per_mp = 24;
    std::uint32_t shared_mem_per_mp = 16 * 1024;   ///< bytes
    std::uint32_t registers_per_mp = 8192;         ///< 32-bit registers
    double mem_bandwidth_bytes_per_s = 64.0e9;     ///< aggregate device bandwidth.

    // --- host/device interaction ---
    double pcie_bandwidth_bytes_per_s = 3.0e9;     ///< PCIe x16 gen1-ish.
    double transfer_latency_s = 10e-6;             ///< fixed per-transfer cost.
    double launch_overhead_s = 8e-6;               ///< host-side cost of a launch.

    /// Serialisation penalty charged per divergent branch event: both sides
    /// of the branch are executed by the warp (§2.3). The per-instruction
    /// cost of the longer path is already accounted by the executing
    /// threads; this constant adds the re-issue of the shorter path.
    unsigned divergence_penalty = 16;

    /// Bus bytes charged per lane for an access that G80 cannot coalesce.
    /// G80 coalescing demands 4-, 8- or 16-byte elements at aligned
    /// addresses; anything else (e.g. a 12-byte Vec3) splits into one 32-byte
    /// transaction per lane pair — modelled as a flat per-lane cost.
    unsigned uncoalesced_access_bytes = 64;

    /// Bus traffic charged for one lane accessing an element of `elem_size`
    /// bytes.
    [[nodiscard]] constexpr std::uint64_t charged_bytes(std::uint64_t elem_size) const {
        const bool coalesced =
            elem_size == 4 || elem_size == 8 || (elem_size % 16 == 0 && elem_size > 0);
        if (coalesced) return elem_size;
        return elem_size > uncoalesced_access_bytes ? elem_size : uncoalesced_access_bytes;
    }

    /// Issue (compute-pipe) cycles for an op. For GlobalRead this is the
    /// issue slot only; the latency goes to the stall pipe.
    [[nodiscard]] constexpr unsigned issue_cycles(Op op) const {
        switch (op) {
            case Op::FAdd: return fadd;
            case Op::FMul: return fmul;
            case Op::FMad: return fmad;
            case Op::IAdd: return iadd;
            case Op::Bitwise: return bitwise;
            case Op::Compare: return compare;
            case Op::MinMax: return minmax;
            case Op::Recip: return recip;
            case Op::RSqrt: return rsqrt;
            case Op::Register: return register_access;
            case Op::SharedAccess: return shared_access;
            case Op::GlobalRead: return 4;
            case Op::GlobalWrite: return global_write_issue;
            case Op::LocalSpill: return local_spill_cycles;
            case Op::SyncThreads: return sync_base;
            case Op::Branch: return branch;
            case Op::ConstantRead: return constant_read;
            case Op::TextureHit: return texture_hit;
        }
        return 0;
    }

    /// Memory-stall cycles for an op (hideable by warp switching). Spilled
    /// local-memory reads carry their exposed latency in issue_cycles
    /// instead — see local_spill_cycles.
    [[nodiscard]] constexpr unsigned stall_cycles(Op op) const {
        switch (op) {
            case Op::GlobalRead: return global_read_latency;
            default: return 0;
        }
    }

    /// Per-multiprocessor memory bandwidth expressed in bytes per core cycle.
    [[nodiscard]] double bytes_per_cycle_per_mp() const {
        return mem_bandwidth_bytes_per_s / multiprocessors / core_clock_hz;
    }
};

}  // namespace cusim
