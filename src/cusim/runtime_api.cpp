#include "cusim/runtime_api.hpp"

#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>

#include "cusim/registry.hpp"

namespace cusim::rt {

namespace {

/// Per-host-thread launch staging area (config + argument stack), matching
/// the statefulness of the real three-step launch protocol.
struct LaunchState {
    LaunchConfig config;
    bool configured = false;
    std::array<std::byte, kKernelStackSize> stack{};
    std::size_t stack_high_water = 0;
};

thread_local LaunchState t_launch;
thread_local ErrorCode t_last_error = ErrorCode::Success;

ErrorCode set_error(ErrorCode code) {
    t_last_error = code;
    return code;
}

/// Registered trampolines. A deque keeps element addresses stable, so the
/// element address itself can serve as the handle.
std::deque<Trampoline>& trampolines() {
    static std::deque<Trampoline> t;
    return t;
}
std::mutex& trampoline_mutex() {
    static std::mutex m;
    return m;
}

template <typename F>
ErrorCode guarded(F&& f) {
    try {
        f();
        return set_error(ErrorCode::Success);
    } catch (const Error& e) {
        return set_error(e.code());
    } catch (...) {
        return set_error(ErrorCode::LaunchFailure);
    }
}

/// Graph/exec handle registries. Mutex-guarded like the trampolines: the
/// C API may be driven from several host threads.
struct GraphRegistry {
    std::mutex mutex;
    std::map<GraphHandle, Graph> graphs;
    std::map<GraphExecHandle, GraphExec> execs;
    GraphHandle next_graph = 1;
    GraphExecHandle next_exec = 1;

    static GraphRegistry& instance() {
        static GraphRegistry r;
        return r;
    }
};

}  // namespace

KernelHandle register_kernel(Trampoline trampoline) {
    std::lock_guard<std::mutex> lock(trampoline_mutex());
    trampolines().push_back(std::move(trampoline));
    return &trampolines().back();
}

ErrorCode cusimSetDevice(int device) {
    return guarded([&] { Registry::instance().set_device(device); });
}

ErrorCode cusimGetDevice(int* device) {
    if (!device) return set_error(ErrorCode::InvalidValue);
    return guarded([&] { *device = Registry::instance().current_ordinal(); });
}

ErrorCode cusimGetDeviceCount(int* count) {
    if (!count) return set_error(ErrorCode::InvalidValue);
    *count = Registry::instance().device_count();
    return set_error(ErrorCode::Success);
}

ErrorCode cusimChooseDevice(int* device, const DeviceProperties* prop) {
    if (!device || !prop) return set_error(ErrorCode::InvalidValue);
    return guarded([&] { *device = Registry::instance().choose_device(*prop); });
}

ErrorCode cusimGetDeviceProperties(DeviceProperties* prop, int device) {
    if (!prop) return set_error(ErrorCode::InvalidValue);
    return guarded([&] { *prop = Registry::instance().device(device).properties(); });
}

ErrorCode cusimMalloc(DeviceAddr* dev_ptr, std::size_t count, std::source_location loc) {
    if (!dev_ptr) return set_error(ErrorCode::InvalidValue);
    return guarded([&] {
        *dev_ptr = Registry::instance().current_device().malloc_bytes(count, loc,
                                                                      "cusimMalloc");
    });
}

ErrorCode cusimFree(DeviceAddr dev_ptr, std::source_location loc) {
    return guarded(
        [&] { Registry::instance().current_device().free_bytes(dev_ptr, loc); });
}

ErrorCode cusimMemcpy(void* dst, const void* src, std::size_t count, CopyKind kind) {
    if (kind != CopyKind::HostToHost) return set_error(ErrorCode::InvalidMemcpyDirection);
    if (!dst || !src) return set_error(ErrorCode::InvalidValue);
    std::memmove(dst, src, count);
    return set_error(ErrorCode::Success);
}

ErrorCode cusimMemcpyToDevice(DeviceAddr dst, const void* src, std::size_t count) {
    if (!src) return set_error(ErrorCode::InvalidValue);
    return guarded(
        [&] { Registry::instance().current_device().copy_to_device(dst, src, count); });
}

ErrorCode cusimMemcpyToHost(void* dst, DeviceAddr src, std::size_t count) {
    if (!dst) return set_error(ErrorCode::InvalidValue);
    return guarded(
        [&] { Registry::instance().current_device().copy_to_host(dst, src, count); });
}

ErrorCode cusimMemcpyDeviceToDevice(DeviceAddr dst, DeviceAddr src, std::size_t count) {
    return guarded([&] {
        Registry::instance().current_device().copy_device_to_device(dst, src, count);
    });
}

ErrorCode cusimConfigureCall(dim3 grid, dim3 block, std::uint32_t shared_bytes,
                             std::uint32_t regs_per_thread) {
    return guarded([&] {
        LaunchConfig cfg{grid, block, shared_bytes, regs_per_thread};
        cfg.validate();
        t_launch.config = cfg;
        t_launch.configured = true;
        t_launch.stack.fill(std::byte{0});
        t_launch.stack_high_water = 0;
    });
}

ErrorCode cusimSetupArgument(const void* arg, std::size_t size, std::size_t offset) {
    if (!arg) return set_error(ErrorCode::InvalidValue);
    if (offset + size > kKernelStackSize) return set_error(ErrorCode::InvalidValue);
    if (!t_launch.configured) return set_error(ErrorCode::InvalidConfiguration);
    std::memcpy(t_launch.stack.data() + offset, arg, size);
    t_launch.stack_high_water = std::max(t_launch.stack_high_water, offset + size);
    return set_error(ErrorCode::Success);
}

ErrorCode cusimLaunch(KernelHandle kernel) { return cusimLaunchNamed(kernel, nullptr); }

ErrorCode cusimLaunchNamed(KernelHandle kernel, const char* name) {
    if (!kernel) return set_error(ErrorCode::InvalidValue);
    if (!t_launch.configured) return set_error(ErrorCode::InvalidConfiguration);
    const auto* trampoline = static_cast<const Trampoline*>(kernel);
    return guarded([&] {
        Device& dev = Registry::instance().current_device();
        // The stack is copied so the staging area can be reused immediately.
        auto stack = std::make_shared<std::array<std::byte, kKernelStackSize>>(t_launch.stack);
        KernelEntry entry = [trampoline, &dev, stack](ThreadCtx& ctx) {
            return (*trampoline)(ctx, dev, stack->data());
        };
        dev.launch(t_launch.config, entry, name ? std::string_view(name) : std::string_view{});
        t_launch.configured = false;
    });
}

ErrorCode cusimStreamCreate(StreamId* stream) {
    if (!stream) return set_error(ErrorCode::InvalidValue);
    return guarded(
        [&] { *stream = Registry::instance().current_device().stream_create(); });
}

ErrorCode cusimStreamDestroy(StreamId stream) {
    return guarded([&] { Registry::instance().current_device().stream_destroy(stream); });
}

ErrorCode cusimStreamQuery(StreamId stream) {
    bool idle = false;
    const ErrorCode e =
        guarded([&] { idle = Registry::instance().current_device().stream_query(stream); });
    if (e != ErrorCode::Success) return e;
    // NotReady is a status, not a sticky error (cudaStreamQuery semantics).
    return idle ? ErrorCode::Success : ErrorCode::NotReady;
}

ErrorCode cusimStreamSynchronize(StreamId stream) {
    return guarded(
        [&] { Registry::instance().current_device().stream_synchronize(stream); });
}

ErrorCode cusimStreamWaitEvent(StreamId stream, EventId event) {
    return guarded(
        [&] { Registry::instance().current_device().stream_wait_event(stream, event); });
}

ErrorCode cusimEventCreate(EventId* event) {
    if (!event) return set_error(ErrorCode::InvalidValue);
    return guarded(
        [&] { *event = Registry::instance().current_device().event_create(); });
}

ErrorCode cusimEventDestroy(EventId event) {
    return guarded([&] { Registry::instance().current_device().event_destroy(event); });
}

ErrorCode cusimEventRecord(EventId event, StreamId stream) {
    return guarded(
        [&] { Registry::instance().current_device().event_record(event, stream); });
}

ErrorCode cusimEventQuery(EventId event) {
    bool done = false;
    const ErrorCode e =
        guarded([&] { done = Registry::instance().current_device().event_query(event); });
    if (e != ErrorCode::Success) return e;
    return done ? ErrorCode::Success : ErrorCode::NotReady;
}

ErrorCode cusimEventSynchronize(EventId event) {
    return guarded(
        [&] { Registry::instance().current_device().event_synchronize(event); });
}

ErrorCode cusimEventElapsedTime(float* ms, EventId start, EventId stop) {
    if (!ms) return set_error(ErrorCode::InvalidValue);
    // Defined output on every failure path (never-recorded event, re-recorded
    // but unreached record, unknown id): the caller must not read garbage.
    *ms = 0.0f;
    return guarded([&] {
        *ms = static_cast<float>(
            Registry::instance().current_device().event_elapsed_ms(start, stop));
    });
}

ErrorCode cusimMemcpyToDeviceAsync(DeviceAddr dst, const void* src, std::size_t count,
                                   StreamId stream) {
    if (!src) return set_error(ErrorCode::InvalidValue);
    return guarded([&] {
        Registry::instance().current_device().memcpy_to_device_async(dst, src, count,
                                                                     stream);
    });
}

ErrorCode cusimMemcpyToHostAsync(void* dst, DeviceAddr src, std::size_t count,
                                 StreamId stream) {
    if (!dst) return set_error(ErrorCode::InvalidValue);
    return guarded([&] {
        Registry::instance().current_device().memcpy_to_host_async(dst, src, count,
                                                                   stream);
    });
}

ErrorCode cusimLaunchAsync(KernelHandle kernel, const char* name, StreamId stream) {
    if (!kernel) return set_error(ErrorCode::InvalidValue);
    if (!t_launch.configured) return set_error(ErrorCode::InvalidConfiguration);
    const auto* trampoline = static_cast<const Trampoline*>(kernel);
    return guarded([&] {
        Device& dev = Registry::instance().current_device();
        // Same staging-copy trick as cusimLaunchNamed: the enqueued closure
        // owns its stack snapshot, so the thread-local staging area is free
        // for the next configure/setup sequence immediately.
        auto stack = std::make_shared<std::array<std::byte, kKernelStackSize>>(t_launch.stack);
        KernelEntry entry = [trampoline, &dev, stack](ThreadCtx& ctx) {
            return (*trampoline)(ctx, dev, stack->data());
        };
        dev.launch_async(t_launch.config, entry,
                         name ? std::string_view(name) : std::string_view{}, stream);
        t_launch.configured = false;
    });
}

const LaunchStats& cusimLastLaunchStats() {
    return Registry::instance().current_device().last_launch();
}

ErrorCode cusimGetLastError() {
    const ErrorCode e = t_last_error;
    t_last_error = ErrorCode::Success;
    return e;
}

const char* cusimGetErrorString(ErrorCode code) { return error_string(code); }

ErrorCode cusimStreamBeginCapture(StreamId stream) {
    return guarded([&] {
        Registry::instance().current_device().stream_begin_capture(stream);
    });
}

ErrorCode cusimStreamEndCapture(StreamId stream, GraphHandle* graph) {
    if (!graph) return set_error(ErrorCode::InvalidValue);
    *graph = 0;
    return guarded([&] {
        Graph g = Registry::instance().current_device().stream_end_capture(stream);
        GraphRegistry& r = GraphRegistry::instance();
        std::lock_guard<std::mutex> lock(r.mutex);
        const GraphHandle h = r.next_graph++;
        r.graphs.emplace(h, std::move(g));
        *graph = h;
    });
}

ErrorCode cusimGraphInstantiate(GraphExecHandle* exec, GraphHandle graph) {
    if (!exec) return set_error(ErrorCode::InvalidValue);
    *exec = 0;
    return guarded([&] {
        GraphRegistry& r = GraphRegistry::instance();
        Graph g;
        {
            std::lock_guard<std::mutex> lock(r.mutex);
            const auto it = r.graphs.find(graph);
            if (it == r.graphs.end()) {
                throw Error(ErrorCode::InvalidValue,
                            "cusimGraphInstantiate: unknown graph handle");
            }
            g = it->second;  // shares the immutable IR
        }
        // Instantiate outside the lock: it validates against the device.
        GraphExec e = Registry::instance().current_device().graph_instantiate(g);
        std::lock_guard<std::mutex> lock(r.mutex);
        const GraphExecHandle h = r.next_exec++;
        r.execs.emplace(h, std::move(e));
        *exec = h;
    });
}

ErrorCode cusimGraphLaunch(GraphExecHandle exec) {
    return guarded([&] {
        GraphRegistry& r = GraphRegistry::instance();
        GraphExec e;
        {
            std::lock_guard<std::mutex> lock(r.mutex);
            const auto it = r.execs.find(exec);
            if (it == r.execs.end()) {
                throw Error(ErrorCode::InvalidValue,
                            "cusimGraphLaunch: unknown exec handle");
            }
            e = it->second;
        }
        Registry::instance().current_device().graph_launch(e);
    });
}

ErrorCode cusimGraphDestroy(GraphHandle graph) {
    GraphRegistry& r = GraphRegistry::instance();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (r.graphs.erase(graph) == 0) return set_error(ErrorCode::InvalidValue);
    return set_error(ErrorCode::Success);
}

ErrorCode cusimGraphExecDestroy(GraphExecHandle exec) {
    GraphRegistry& r = GraphRegistry::instance();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (r.execs.erase(exec) == 0) return set_error(ErrorCode::InvalidValue);
    return set_error(ErrorCode::Success);
}

ErrorCode cusimProfilerStart() {
    return guarded([] {
        prof::ApiScope prof_scope(prof::Api::ProfilerStart, -1);
        prof::start();
    });
}

ErrorCode cusimProfilerStop() {
    return guarded([] {
        prof::ApiScope prof_scope(prof::Api::ProfilerStop, -1);
        prof::stop();
    });
}

ErrorCode cusimThreadSynchronize() {
    return guarded([] { Registry::instance().current_device().synchronize(); });
}

ErrorCode cusimDeviceReset() {
    return guarded([] { Registry::instance().current_device().reset_device(); });
}

}  // namespace cusim::rt
