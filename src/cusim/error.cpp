#include "cusim/error.hpp"

namespace cusim {

const char* error_string(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::Success: return "success";
        case ErrorCode::InvalidValue: return "invalid value";
        case ErrorCode::InvalidConfiguration: return "invalid launch configuration";
        case ErrorCode::MemoryAllocation: return "out of device memory";
        case ErrorCode::InvalidDevicePointer: return "invalid device pointer";
        case ErrorCode::InvalidMemcpyDirection: return "invalid memcpy direction";
        case ErrorCode::InvalidDevice: return "invalid device";
        case ErrorCode::LaunchFailure: return "kernel launch failure";
        case ErrorCode::NotReady: return "operation not ready";
        case ErrorCode::DeviceInUse: return "device memory busy (kernel active)";
        case ErrorCode::MemcheckViolation: return "memcheck violation";
        case ErrorCode::TransferFailure: return "transient transfer failure";
        case ErrorCode::DeviceLost: return "device lost";
        case ErrorCode::StreamCaptureInvalid: return "invalid stream capture state";
        case ErrorCode::AdmissionRejected: return "admission rejected (load shed)";
        case ErrorCode::DeadlineExceeded: return "deadline exceeded";
    }
    return "unknown error";
}

}  // namespace cusim
