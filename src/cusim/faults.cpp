#include "cusim/faults.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "cupp/detail/minijson.hpp"
#include "cupp/trace.hpp"
#include "cusim/device.hpp"

namespace cusim::faults {

namespace detail {
std::atomic<bool> g_armed{false};
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

using cupp::trace::format;

/// Deterministic PRNG for probability triggers (the steer::Lcg constants;
/// cusim cannot depend on steer, so the two lines live here too).
class Lcg {
public:
    explicit Lcg(std::uint64_t seed = 0) : state_(seed) {}
    std::uint32_t next_u32() {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(state_ >> 32);
    }
    /// Uniform double in [0, 1).
    double next_double() { return (next_u32() >> 8) * (1.0 / 16777216.0); }

private:
    std::uint64_t state_;
};

/// Process-wide injection state. Intentionally leaked (like the trace and
/// memcheck registries) so the atexit report still sees it.
class State {
public:
    static State& instance() {
        static State* s = new State();
        return *s;
    }

    void configure(std::vector<Rule> rules, std::uint64_t seed, std::string report,
                   std::string source) {
        std::lock_guard<std::mutex> lock(mu_);
        rules_ = std::move(rules);
        rng_ = Lcg(seed);
        seed_ = seed;
        calls_ = {};
        injected_by_site_ = {};
        injected_total_ = 0;
        if (!report.empty()) report_path_ = std::move(report);
        plan_source_ = std::move(source);
    }

    void clear() {
        std::lock_guard<std::mutex> lock(mu_);
        rules_.clear();
        calls_ = {};
        injected_by_site_ = {};
        injected_total_ = 0;
        report_path_.clear();
        plan_source_.clear();
        seed_ = 0;
    }

    void set_report_path(std::string path) {
        std::lock_guard<std::mutex> lock(mu_);
        report_path_ = std::move(path);
    }

    /// Evaluates the rules for one site call. Returns the code to inject
    /// (Success = none) and fills `message` / `call_no`.
    ErrorCode evaluate(Site site, std::string_view label, std::string* message,
                       std::uint64_t* call_no) {
        std::lock_guard<std::mutex> lock(mu_);
        const auto s = static_cast<std::size_t>(site);
        const std::uint64_t n = ++calls_[s];
        *call_no = n;
        for (Rule& r : rules_) {
            if (r.site != site) continue;
            if (r.injected >= r.max_injections) continue;
            if (!r.filter.empty() && label.find(r.filter) == std::string_view::npos) {
                continue;
            }
            const bool hit = (r.nth != 0 && n == r.nth) ||
                             (r.every != 0 && n % r.every == 0) ||
                             (r.probability > 0.0 && rng_.next_double() < r.probability);
            if (!hit) continue;
            ++r.injected;
            ++injected_total_;
            ++injected_by_site_[s];
            *message = format("injected %s fault at %s call #%llu%s%.*s%s",
                              code_name(r.code), site_name(site),
                              static_cast<unsigned long long>(n),
                              label.empty() ? "" : " (",
                              static_cast<int>(label.size()), label.data(),
                              label.empty() ? "" : ")");
            return r.code;
        }
        return ErrorCode::Success;
    }

    std::vector<Rule> rules() const {
        std::lock_guard<std::mutex> lock(mu_);
        return rules_;
    }
    std::uint64_t injections() const {
        std::lock_guard<std::mutex> lock(mu_);
        return injected_total_;
    }
    std::uint64_t injections(Site site) const {
        std::lock_guard<std::mutex> lock(mu_);
        return injected_by_site_[static_cast<std::size_t>(site)];
    }
    std::uint64_t site_calls(Site site) const {
        std::lock_guard<std::mutex> lock(mu_);
        return calls_[static_cast<std::size_t>(site)];
    }
    std::string plan_source() const {
        std::lock_guard<std::mutex> lock(mu_);
        return plan_source_;
    }
    std::string report_path() const {
        std::lock_guard<std::mutex> lock(mu_);
        return report_path_;
    }

    std::string to_json() const {
        std::lock_guard<std::mutex> lock(mu_);
        using cupp::trace::json_quote;
        std::string out = "{\n  \"faults\": {\n";
        out += format("    \"plan\": %s,\n", json_quote(plan_source_).c_str());
        out += format("    \"seed\": %llu,\n", static_cast<unsigned long long>(seed_));
        out += format("    \"total_injections\": %llu,\n",
                      static_cast<unsigned long long>(injected_total_));
        std::uint64_t total_calls = 0;
        for (const std::uint64_t c : calls_) total_calls += c;
        out += format("    \"total_calls\": %llu,\n",
                      static_cast<unsigned long long>(total_calls));
        out += "    \"by_site\": {";
        bool first = true;
        for (std::size_t s = 0; s < kSiteCount; ++s) {
            if (injected_by_site_[s] == 0) continue;
            if (!first) out += ", ";
            first = false;
            out += format("\"%s\": %llu", site_name(static_cast<Site>(s)),
                          static_cast<unsigned long long>(injected_by_site_[s]));
        }
        out += "},\n    \"rules\": [\n";
        for (std::size_t i = 0; i < rules_.size(); ++i) {
            const Rule& r = rules_[i];
            // "max": 0 means uncapped (a plan never writes 0 — absence is
            // the uncapped spelling there).
            const std::uint64_t cap =
                r.max_injections == ~std::uint64_t{0} ? 0 : r.max_injections;
            out += format(
                "      {\"site\": %s, \"code\": %s, \"probability\": %g, "
                "\"nth\": %llu, \"every\": %llu, \"max\": %llu, \"filter\": %s, "
                "\"injected\": %llu}%s\n",
                json_quote(site_name(r.site)).c_str(),
                json_quote(code_name(r.code)).c_str(), r.probability,
                static_cast<unsigned long long>(r.nth),
                static_cast<unsigned long long>(r.every),
                static_cast<unsigned long long>(cap),
                json_quote(r.filter).c_str(),
                static_cast<unsigned long long>(r.injected),
                i + 1 < rules_.size() ? "," : "");
        }
        out += "    ]\n  }\n}\n";
        return out;
    }

    std::string to_text() const {
        std::lock_guard<std::mutex> lock(mu_);
        if (injected_total_ == 0) return "cusim::faults: no faults injected\n";
        std::string out =
            format("cusim::faults: %llu fault(s) injected (plan %s)\n",
                   static_cast<unsigned long long>(injected_total_),
                   plan_source_.empty() ? "api" : plan_source_.c_str());
        for (const Rule& r : rules_) {
            if (r.injected == 0) continue;
            out += format("  %s at %s: %llu injection(s)\n", code_name(r.code),
                          site_name(r.site),
                          static_cast<unsigned long long>(r.injected));
        }
        return out;
    }

private:
    State() = default;

    mutable std::mutex mu_;
    std::vector<Rule> rules_;
    Lcg rng_{0};
    std::uint64_t seed_ = 0;
    std::array<std::uint64_t, kSiteCount> calls_{};
    std::array<std::uint64_t, kSiteCount> injected_by_site_{};
    std::uint64_t injected_total_ = 0;
    std::string report_path_;
    std::string plan_source_;
};

void atexit_report() {
    const std::string path = State::instance().report_path();
    if (!path.empty()) write_report(path);
    if (State::instance().injections() != 0) {
        std::fputs(report_text().c_str(), stderr);
    }
}

void register_atexit_once() {
    static const bool registered = [] {
        std::atexit(atexit_report);
        return true;
    }();
    (void)registered;
}

void arm() {
    register_atexit_once();
    detail::g_enabled.store(true, std::memory_order_relaxed);
    detail::g_armed.store(true, std::memory_order_relaxed);
}

[[noreturn]] void bad_plan(const std::string& what) {
    throw Error(ErrorCode::InvalidValue, "fault plan: " + what);
}

std::uint64_t plan_uint(const cupp::minijson::Value& v, const char* key) {
    if (!v.is_number() || v.number() < 0) {
        bad_plan(std::string(key) + " must be a non-negative number");
    }
    return static_cast<std::uint64_t>(v.number());
}

Rule parse_rule(const cupp::minijson::Value& v, std::size_t index) {
    if (!v.is_object()) bad_plan(format("rules[%zu] is not an object", index));
    Rule r;
    const auto* site = v.find("site");
    if (site == nullptr || !site->is_string() || !parse_site(site->str(), &r.site)) {
        bad_plan(format("rules[%zu]: missing or unknown \"site\"", index));
    }
    const auto* code = v.find("code");
    if (code == nullptr || !code->is_string() || !parse_code(code->str(), &r.code)) {
        bad_plan(format("rules[%zu]: missing or unknown \"code\"", index));
    }
    if (const auto* p = v.find("probability")) {
        if (!p->is_number() || p->number() < 0.0 || p->number() > 1.0) {
            bad_plan(format("rules[%zu]: probability must be in [0, 1]", index));
        }
        r.probability = p->number();
    }
    if (const auto* p = v.find("nth")) r.nth = plan_uint(*p, "nth");
    if (const auto* p = v.find("every")) r.every = plan_uint(*p, "every");
    if (const auto* p = v.find("max")) {
        const std::uint64_t cap = plan_uint(*p, "max");
        if (cap == 0) bad_plan(format("rules[%zu]: max must be >= 1", index));
        r.max_injections = cap;
    }
    if (const auto* p = v.find("filter")) {
        if (!p->is_string()) bad_plan(format("rules[%zu]: filter must be a string", index));
        r.filter = p->str();
    }
    if (r.probability == 0.0 && r.nth == 0 && r.every == 0) {
        bad_plan(format("rules[%zu]: needs a trigger (nth, every or probability)", index));
    }
    return r;
}

/// Reads CUPP_FAULTS / CUPP_FAULTS_REPORT once at static-init.
/// "seed:<n>" arms the default transient plan; anything else is a plan
/// file. A broken plan aborts the process — a fault-injection CI run that
/// silently executes fault-free would defeat its own purpose.
struct EnvGate {
    EnvGate() {
        const char* env = std::getenv("CUPP_FAULTS");
        if (env != nullptr && *env != '\0') {
            try {
                if (std::strncmp(env, "seed:", 5) == 0) {
                    enable_with_seed(std::strtoull(env + 5, nullptr, 10));
                } else {
                    enable_from_plan(env);
                }
            } catch (const Error& e) {
                std::fprintf(stderr, "cusim::faults: CUPP_FAULTS rejected: %s\n",
                             e.what());
                std::exit(2);
            }
        }
        if (const char* rep = std::getenv("CUPP_FAULTS_REPORT");
            rep != nullptr && *rep != '\0') {
            State::instance().set_report_path(rep);
            register_atexit_once();
        }
    }
};
const EnvGate g_env_gate;

}  // namespace

const char* site_name(Site site) {
    switch (site) {
        case Site::Malloc: return "malloc";
        case Site::MemcpyH2D: return "memcpy_h2d";
        case Site::MemcpyD2H: return "memcpy_d2h";
        case Site::MemcpyD2D: return "memcpy_d2d";
        case Site::Launch: return "launch";
        case Site::Sync: return "sync";
    }
    return "unknown";
}

bool parse_site(std::string_view name, Site* out) {
    for (std::size_t s = 0; s < kSiteCount; ++s) {
        if (name == site_name(static_cast<Site>(s))) {
            *out = static_cast<Site>(s);
            return true;
        }
    }
    return false;
}

const char* code_name(ErrorCode code) {
    switch (code) {
        case ErrorCode::Success: return "success";
        case ErrorCode::InvalidValue: return "invalid_value";
        case ErrorCode::InvalidConfiguration: return "invalid_configuration";
        case ErrorCode::MemoryAllocation: return "memory_allocation";
        case ErrorCode::InvalidDevicePointer: return "invalid_device_pointer";
        case ErrorCode::InvalidMemcpyDirection: return "invalid_memcpy_direction";
        case ErrorCode::InvalidDevice: return "invalid_device";
        case ErrorCode::LaunchFailure: return "launch_failure";
        case ErrorCode::NotReady: return "not_ready";
        case ErrorCode::DeviceInUse: return "device_in_use";
        case ErrorCode::MemcheckViolation: return "memcheck_violation";
        case ErrorCode::TransferFailure: return "transfer_failure";
        case ErrorCode::DeviceLost: return "device_lost";
        case ErrorCode::StreamCaptureInvalid: return "stream_capture_invalid";
        case ErrorCode::AdmissionRejected: return "admission_rejected";
        case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

bool parse_code(std::string_view name, ErrorCode* out) {
    // Success is not a valid injection target, so start past it. The codes
    // after DeviceLost (AdmissionRejected, DeadlineExceeded) are produced
    // by the cupp::serve layer above the device and are deliberately not
    // injectable here.
    for (int c = 1; c <= static_cast<int>(ErrorCode::DeviceLost); ++c) {
        if (name == code_name(static_cast<ErrorCode>(c))) {
            *out = static_cast<ErrorCode>(c);
            return true;
        }
    }
    return false;
}

void configure(std::vector<Rule> rules, std::uint64_t seed, std::string report_path) {
    State::instance().configure(std::move(rules), seed, std::move(report_path), "api");
    arm();
}

void enable_from_plan(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) bad_plan("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    cupp::minijson::Value root;
    try {
        root = cupp::minijson::parse(buf.str());
    } catch (const cupp::minijson::parse_error& e) {
        bad_plan(std::string("invalid JSON: ") + e.what());
    }
    if (!root.is_object()) bad_plan("top level is not an object");
    std::uint64_t seed = 0;
    if (const auto* s = root.find("seed")) seed = plan_uint(*s, "seed");
    std::string report;
    if (const auto* r = root.find("report")) {
        if (!r->is_string()) bad_plan("report must be a string");
        report = r->str();
    }
    const auto* rules_v = root.find("rules");
    if (rules_v == nullptr || !rules_v->is_array()) bad_plan("no rules array");
    std::vector<Rule> rules;
    rules.reserve(rules_v->array().size());
    for (std::size_t i = 0; i < rules_v->array().size(); ++i) {
        rules.push_back(parse_rule(rules_v->array()[i], i));
    }
    if (rules.empty()) bad_plan("rules array is empty");
    State::instance().configure(std::move(rules), seed, std::move(report), path);
    arm();
}

void enable_with_seed(std::uint64_t seed) {
    // Transient-only background noise: enough to exercise every retry
    // path over a full run, rare enough that bounded retries absorb it.
    std::vector<Rule> rules;
    Rule r;
    r.site = Site::Malloc;
    r.code = ErrorCode::MemoryAllocation;
    r.probability = 0.002;
    rules.push_back(r);
    r.site = Site::MemcpyH2D;
    r.code = ErrorCode::TransferFailure;
    r.probability = 0.005;
    rules.push_back(r);
    r.site = Site::MemcpyD2H;
    rules.push_back(r);
    r.site = Site::Launch;
    r.code = ErrorCode::LaunchFailure;
    rules.push_back(r);
    State::instance().configure(std::move(rules), seed, {},
                                format("seed:%llu",
                                       static_cast<unsigned long long>(seed)));
    arm();
}

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
    disable();
    detail::g_armed.store(false, std::memory_order_relaxed);
    State::instance().clear();
}

void note_device_poisoned() {
    // Keep the fast-path gate up for the sticky check even if the rules
    // are later disabled. reset() is the only way back down.
    detail::g_armed.store(true, std::memory_order_relaxed);
}

void preflight(Site site, std::string_view label, Device* dev) {
    if (dev != nullptr && dev->lost()) {
        throw Error(ErrorCode::DeviceLost,
                    format("%s rejected: device poisoned — recover with "
                           "device::reset()",
                           site_name(site)));
    }
    if (!enabled()) return;
    std::string message;
    std::uint64_t call_no = 0;
    const ErrorCode code = State::instance().evaluate(site, label, &message, &call_no);
    if (code == ErrorCode::Success) return;

    cupp::trace::metrics().add("cusim.faults.injections");
    cupp::trace::metrics().add(format("cusim.faults.%s", site_name(site)));
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant("faults", format("fault.%s", site_name(site)),
                                  cupp::trace::wall_clock_us(),
                                  {{"code", code_name(code)},
                                   {"label", label},
                                   {"call", call_no}});
    }
    if (code == ErrorCode::DeviceLost && dev != nullptr) dev->poison();
    throw Error(code, message);
}

std::vector<Rule> rules() { return State::instance().rules(); }

std::uint64_t injections() { return State::instance().injections(); }

std::uint64_t injections(Site site) { return State::instance().injections(site); }

std::uint64_t site_calls(Site site) { return State::instance().site_calls(site); }

std::string plan_source() { return State::instance().plan_source(); }

std::string report_path() { return State::instance().report_path(); }

std::string report_json() { return State::instance().to_json(); }

std::string report_text() { return State::instance().to_text(); }

bool write_report(const std::string& path) {
    const std::string target = path.empty() ? State::instance().report_path() : path;
    if (target.empty()) return false;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << State::instance().to_json();
    return static_cast<bool>(out);
}

}  // namespace cusim::faults
