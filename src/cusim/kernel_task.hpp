// The coroutine type used for simulated device threads.
//
// A cusim kernel is an ordinary C++ function returning KernelTask and taking
// ThreadCtx& as its first parameter — the moral equivalent of a __global__
// function. `co_await ctx.syncthreads()` suspends the thread until every
// thread of its block reaches the barrier; the block engine (engine.hpp)
// resumes it afterwards.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

namespace cusim {

namespace detail {

/// Thread-local recycler for coroutine frames. The block engine creates and
/// destroys one frame per device thread per block — up to 512 per block —
/// and a worker allocates and frees its own blocks' frames, so a lock-free
/// thread_local cache removes that churn entirely. Frames are bucketed by
/// exact size (a program typically has a handful of distinct kernel frame
/// sizes).
///
/// When a program cycles through more frame sizes than there are buckets,
/// the least-recently-used bucket is retargeted to the new size (its cached
/// frames are freed and counted as evictions) instead of the old behaviour
/// of silently sending every extra size to the global allocator forever.
/// Hit/miss/evict counts accumulate locally — the allocator path must stay
/// atomics-free — and are folded into cupp::trace::metrics() as
/// `cusim.framecache.{hit,miss,evict}` every 1024 take()s and at thread
/// exit.
struct FrameCache {
    struct Bucket {
        std::size_t size = 0;
        std::uint64_t last_used = 0;
        std::vector<void*> frames;
    };
    static constexpr std::size_t kBuckets = 4;
    /// One full block's worth (kMaxThreadsPerBlock) per size.
    static constexpr std::size_t kMaxCachedFrames = 512;
    static constexpr std::uint64_t kFlushEvery = 1024;

    Bucket buckets[kBuckets];
    std::uint64_t tick = 0;    ///< LRU clock; bumped on every bucket touch
    std::uint64_t hits = 0;    ///< take() served from a bucket (unflushed)
    std::uint64_t misses = 0;  ///< take() fell through to operator new (unflushed)
    std::uint64_t evicts = 0;  ///< frames freed by bucket retargeting (unflushed)
    std::uint64_t ops_since_flush = 0;

    ~FrameCache() {
        for (Bucket& b : buckets) {
            for (void* p : b.frames) ::operator delete(p);
        }
        try {
            flush_metrics();
        } catch (...) {
            // Metrics flushing must never terminate a thread at exit.
        }
    }

    void* take(std::size_t size) {
        if (++ops_since_flush >= kFlushEvery) flush_metrics();
        for (Bucket& b : buckets) {
            if (b.size == size && !b.frames.empty()) {
                b.last_used = ++tick;
                ++hits;
                void* p = b.frames.back();
                b.frames.pop_back();
                return p;
            }
        }
        ++misses;
        return ::operator new(size);
    }

    void give(void* p, std::size_t size) noexcept {
        Bucket* lru = nullptr;
        for (Bucket& b : buckets) {
            if (b.size == size) {
                b.last_used = ++tick;
                if (b.frames.size() < kMaxCachedFrames) {
                    b.frames.push_back(p);
                    return;
                }
                ::operator delete(p);  // bucket full: not an eviction, a cap
                return;
            }
            if (lru == nullptr || b.last_used < lru->last_used) lru = &b;
        }
        // No bucket holds this size: retarget the least-recently-used one
        // (empty buckets have last_used 0 and are claimed first). Freeing
        // its cached frames is the eviction the counters report.
        evicts += lru->frames.size();
        for (void* q : lru->frames) ::operator delete(q);
        lru->frames.clear();
        lru->size = size;
        lru->last_used = ++tick;
        lru->frames.push_back(p);
    }

    /// Adds the unflushed counter deltas to the process-wide metrics
    /// registry. Defined in engine.cpp so this hot header does not pull in
    /// cupp/trace.hpp.
    void flush_metrics();

    static FrameCache& local() {
        thread_local FrameCache cache;
        return cache;
    }
};

}  // namespace detail

/// Move-only handle to one device thread's coroutine frame. Created
/// suspended; the engine drives it with resume().
class KernelTask {
public:
    struct promise_type {
        std::exception_ptr exception;

        KernelTask get_return_object() {
            return KernelTask{std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() noexcept { exception = std::current_exception(); }

        // Frame allocation goes through the thread-local recycler above.
        static void* operator new(std::size_t size) {
            return detail::FrameCache::local().take(size);
        }
        static void operator delete(void* p, std::size_t size) noexcept {
            detail::FrameCache::local().give(p, size);
        }
    };

    KernelTask() = default;
    explicit KernelTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    KernelTask(KernelTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
    KernelTask& operator=(KernelTask&& other) noexcept {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    KernelTask(const KernelTask&) = delete;
    KernelTask& operator=(const KernelTask&) = delete;
    ~KernelTask() { destroy(); }

    /// Runs the thread until it suspends (barrier) or finishes.
    void resume() { handle_.resume(); }

    [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }
    [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

    /// Exception thrown by the kernel body, if any.
    [[nodiscard]] std::exception_ptr exception() const {
        return handle_ ? handle_.promise().exception : nullptr;
    }

private:
    void destroy() {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_{};
};

}  // namespace cusim
