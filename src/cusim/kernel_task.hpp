// The coroutine type used for simulated device threads.
//
// A cusim kernel is an ordinary C++ function returning KernelTask and taking
// ThreadCtx& as its first parameter — the moral equivalent of a __global__
// function. `co_await ctx.syncthreads()` suspends the thread until every
// thread of its block reaches the barrier; the block engine (engine.hpp)
// resumes it afterwards.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>
#include <vector>

namespace cusim {

namespace detail {

/// Thread-local recycler for coroutine frames. The block engine creates and
/// destroys one frame per device thread per block — up to 512 per block —
/// and a worker allocates and frees its own blocks' frames, so a lock-free
/// thread_local cache removes that churn entirely. Frames are bucketed by
/// exact size (a program typically has a handful of distinct kernel frame
/// sizes); anything past the bucket capacity falls through to the global
/// allocator.
struct FrameCache {
    struct Bucket {
        std::size_t size = 0;
        std::vector<void*> frames;
    };
    static constexpr std::size_t kBuckets = 4;
    /// One full block's worth (kMaxThreadsPerBlock) per size.
    static constexpr std::size_t kMaxCachedFrames = 512;

    Bucket buckets[kBuckets];

    ~FrameCache() {
        for (Bucket& b : buckets) {
            for (void* p : b.frames) ::operator delete(p);
        }
    }

    void* take(std::size_t size) {
        for (Bucket& b : buckets) {
            if (b.size == size && !b.frames.empty()) {
                void* p = b.frames.back();
                b.frames.pop_back();
                return p;
            }
        }
        return ::operator new(size);
    }

    void give(void* p, std::size_t size) noexcept {
        for (Bucket& b : buckets) {
            if (b.size == 0) b.size = size;
            if (b.size == size) {
                if (b.frames.size() < kMaxCachedFrames) {
                    b.frames.push_back(p);
                    return;
                }
                break;
            }
        }
        ::operator delete(p);
    }

    static FrameCache& local() {
        thread_local FrameCache cache;
        return cache;
    }
};

}  // namespace detail

/// Move-only handle to one device thread's coroutine frame. Created
/// suspended; the engine drives it with resume().
class KernelTask {
public:
    struct promise_type {
        std::exception_ptr exception;

        KernelTask get_return_object() {
            return KernelTask{std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() noexcept { exception = std::current_exception(); }

        // Frame allocation goes through the thread-local recycler above.
        static void* operator new(std::size_t size) {
            return detail::FrameCache::local().take(size);
        }
        static void operator delete(void* p, std::size_t size) noexcept {
            detail::FrameCache::local().give(p, size);
        }
    };

    KernelTask() = default;
    explicit KernelTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    KernelTask(KernelTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
    KernelTask& operator=(KernelTask&& other) noexcept {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    KernelTask(const KernelTask&) = delete;
    KernelTask& operator=(const KernelTask&) = delete;
    ~KernelTask() { destroy(); }

    /// Runs the thread until it suspends (barrier) or finishes.
    void resume() { handle_.resume(); }

    [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }
    [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

    /// Exception thrown by the kernel body, if any.
    [[nodiscard]] std::exception_ptr exception() const {
        return handle_ ? handle_.promise().exception : nullptr;
    }

private:
    void destroy() {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_{};
};

}  // namespace cusim
