// The coroutine type used for simulated device threads.
//
// A cusim kernel is an ordinary C++ function returning KernelTask and taking
// ThreadCtx& as its first parameter — the moral equivalent of a __global__
// function. `co_await ctx.syncthreads()` suspends the thread until every
// thread of its block reaches the barrier; the block engine (engine.hpp)
// resumes it afterwards.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace cusim {

/// Move-only handle to one device thread's coroutine frame. Created
/// suspended; the engine drives it with resume().
class KernelTask {
public:
    struct promise_type {
        std::exception_ptr exception;

        KernelTask get_return_object() {
            return KernelTask{std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() noexcept { exception = std::current_exception(); }
    };

    KernelTask() = default;
    explicit KernelTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    KernelTask(KernelTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
    KernelTask& operator=(KernelTask&& other) noexcept {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }
    KernelTask(const KernelTask&) = delete;
    KernelTask& operator=(const KernelTask&) = delete;
    ~KernelTask() { destroy(); }

    /// Runs the thread until it suspends (barrier) or finishes.
    void resume() { handle_.resume(); }

    [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }
    [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

    /// Exception thrown by the kernel body, if any.
    [[nodiscard]] std::exception_ptr exception() const {
        return handle_ ? handle_.promise().exception : nullptr;
    }

private:
    void destroy() {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_{};
};

}  // namespace cusim
