// The CUDA-1.0-style host runtime API (§3.2).
//
// This is the C-flavoured layer the thesis builds CuPP on: error codes, a
// per-host-thread bound device, and the three-step kernel launch of §3.2.2
// (cusimConfigureCall -> cusimSetupArgument xN -> cusimLaunch). The CuPP
// kernel functor (cupp/kernel.hpp) issues exactly these calls.
//
// Because the simulator has no nvcc, "__global__ function pointers" are
// handles obtained by registering a trampoline that unpacks the kernel
// stack into the typed coroutine call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <source_location>

#include "cusim/device.hpp"
#include "cusim/device_properties.hpp"
#include "cusim/error.hpp"
#include "cusim/kernel_task.hpp"
#include "cusim/types.hpp"

namespace cusim::rt {

/// Opaque handle standing in for a __global__ function pointer.
using KernelHandle = const void*;

/// A registered kernel: unpacks the launch stack and creates one device
/// thread's coroutine.
using Trampoline =
    std::function<KernelTask(ThreadCtx&, Device&, const std::byte* stack)>;

/// Registers a kernel trampoline; the returned handle is what
/// cusimLaunch accepts. Handles stay valid for the process lifetime.
KernelHandle register_kernel(Trampoline trampoline);

// --- device management (§3.2.1) ---
ErrorCode cusimSetDevice(int device);
ErrorCode cusimGetDevice(int* device);
ErrorCode cusimGetDeviceCount(int* count);
ErrorCode cusimChooseDevice(int* device, const DeviceProperties* prop);
ErrorCode cusimGetDeviceProperties(DeviceProperties* prop, int device);

// --- memory management (§3.2.3) ---
// The implicit source_location captures the caller's line, giving memcheck
// reports the real cudaMalloc/cudaFree call sites.
ErrorCode cusimMalloc(DeviceAddr* dev_ptr, std::size_t count,
                      std::source_location loc = std::source_location::current());
ErrorCode cusimFree(DeviceAddr dev_ptr,
                    std::source_location loc = std::source_location::current());
ErrorCode cusimMemcpy(void* dst, const void* src, std::size_t count, CopyKind kind);
/// Device-addressed variants (device "pointers" are arena offsets, so the
/// void* flavour cannot express them; these are the checked equivalents).
ErrorCode cusimMemcpyToDevice(DeviceAddr dst, const void* src, std::size_t count);
ErrorCode cusimMemcpyToHost(void* dst, DeviceAddr src, std::size_t count);
ErrorCode cusimMemcpyDeviceToDevice(DeviceAddr dst, DeviceAddr src, std::size_t count);

// --- execution control (§3.2.2) ---
ErrorCode cusimConfigureCall(dim3 grid, dim3 block, std::uint32_t shared_bytes = 0,
                             std::uint32_t regs_per_thread = 16);
ErrorCode cusimSetupArgument(const void* arg, std::size_t size, std::size_t offset);
ErrorCode cusimLaunch(KernelHandle kernel);
/// cusimLaunch with a kernel name for the trace and launch history (the
/// real runtime derives it from the symbol; the simulator has no nvcc, so
/// callers pass it). A null/empty name behaves like cusimLaunch.
ErrorCode cusimLaunchNamed(KernelHandle kernel, const char* name);

/// Stats of the most recent successful launch on the calling thread's device.
const LaunchStats& cusimLastLaunchStats();

// --- streams & events (cudaStream_t / cudaEvent_t mirrors) ---
// Handles are plain ids on the calling thread's bound device. Enqueue-only
// calls never run device work; queued ops execute at the next synchronize
// (see cusim/stream.hpp for the determinism contract).
ErrorCode cusimStreamCreate(StreamId* stream);
ErrorCode cusimStreamDestroy(StreamId stream);
/// Success when the stream is idle, NotReady while work is outstanding.
ErrorCode cusimStreamQuery(StreamId stream);
ErrorCode cusimStreamSynchronize(StreamId stream);
ErrorCode cusimStreamWaitEvent(StreamId stream, EventId event);

ErrorCode cusimEventCreate(EventId* event);
ErrorCode cusimEventDestroy(EventId event);
ErrorCode cusimEventRecord(EventId event, StreamId stream = kDefaultStream);
/// Success when the last record completed, NotReady while pending.
ErrorCode cusimEventQuery(EventId event);
ErrorCode cusimEventSynchronize(EventId event);
ErrorCode cusimEventElapsedTime(float* ms, EventId start, EventId stop);

/// cudaMemcpyAsync flavours. The H2D source is snapshotted at enqueue
/// (pageable semantics); the D2H destination is written when the op
/// executes and must not be read before the covering synchronize.
ErrorCode cusimMemcpyToDeviceAsync(DeviceAddr dst, const void* src, std::size_t count,
                                   StreamId stream);
ErrorCode cusimMemcpyToHostAsync(void* dst, DeviceAddr src, std::size_t count,
                                 StreamId stream);

/// The stream-bound cusimLaunchNamed: consumes the staged configure/setup
/// state and enqueues the launch on `stream` (stream 0 launches legacy).
ErrorCode cusimLaunchAsync(KernelHandle kernel, const char* name, StreamId stream);

// --- graphs (cudaGraph_t / cudaGraphExec_t mirrors, cusim/graph.hpp) ---
// Handles are process-wide ids over the C++ Graph/GraphExec objects;
// destroy calls release the handle (the underlying DAG is shared and
// reference-counted, so a GraphExec outlives its Graph's destroy).
using GraphHandle = std::uint64_t;
using GraphExecHandle = std::uint64_t;

/// Starts capture on `stream` (Origin mode: the stream plus any stream
/// joined to it via captured event edges).
ErrorCode cusimStreamBeginCapture(StreamId stream);
/// Ends the capture and returns the recorded DAG's handle.
ErrorCode cusimStreamEndCapture(StreamId stream, GraphHandle* graph);
/// Validates the DAG once and returns a launchable exec handle.
ErrorCode cusimGraphInstantiate(GraphExecHandle* exec, GraphHandle graph);
/// Replays the whole DAG for one launch-overhead charge.
ErrorCode cusimGraphLaunch(GraphExecHandle exec);
ErrorCode cusimGraphDestroy(GraphHandle graph);
ErrorCode cusimGraphExecDestroy(GraphExecHandle exec);

// --- profiler control (cudaProfilerStart/Stop mirrors, cusim/prof.hpp) ---
// Scope collection to a region of interest. No-ops (returning Success)
// unless the profiler's collector is enabled — CUPP_PROF or prof::enable()
// — exactly like cudaProfilerStart without an attached profiler.
ErrorCode cusimProfilerStart();
ErrorCode cusimProfilerStop();

// --- error handling ---
ErrorCode cusimGetLastError();
const char* cusimGetErrorString(ErrorCode code);
/// cudaThreadSynchronize.
ErrorCode cusimThreadSynchronize();
/// cudaDeviceReset-flavoured recovery from a sticky DeviceLost fault:
/// clears the poisoned state and wipes device memory contents while
/// keeping allocations live (see Device::reset_device()).
ErrorCode cusimDeviceReset();

/// Size of the kernel argument stack (CUDA 1.0: 256 bytes).
inline constexpr std::size_t kKernelStackSize = 256;

}  // namespace cusim::rt
