// ThreadCtx — the view a device thread has of the machine.
//
// Provides the CUDA built-in variables (threadIdx, blockIdx, blockDim,
// gridDim, §3.1.3), the __syncthreads() barrier (§3.1.4) as an awaitable,
// shared-memory allocation, and the accounting hooks that feed the
// performance model.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <source_location>
#include <string>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/constant_memory.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/shared_array.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// State shared by all threads of one executing block.
struct BlockState {
    std::vector<std::byte> shared_arena;  ///< the block's shared memory
    std::uint64_t sync_episodes = 0;      ///< completed barrier rounds
};

class ThreadCtx {
public:
    ThreadCtx(uint3 thread_idx, uint3 block_idx, dim3 block_dim, dim3 grid_dim,
              const CostModel* cm, BlockState* block, WarpAcct* warp)
        : thread_idx_(thread_idx),
          block_idx_(block_idx),
          block_dim_(block_dim),
          grid_dim_(grid_dim),
          cm_(cm),
          block_(block),
          warp_(warp) {}

    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;

    // --- built-in variables ---
    [[nodiscard]] const uint3& thread_idx() const { return thread_idx_; }
    [[nodiscard]] const uint3& block_idx() const { return block_idx_; }
    [[nodiscard]] const dim3& block_dim() const { return block_dim_; }
    [[nodiscard]] const dim3& grid_dim() const { return grid_dim_; }

    /// Linearised thread index within the block (CUDA convention: x fastest).
    [[nodiscard]] unsigned linear_tid() const {
        return thread_idx_.x + block_dim_.x * (thread_idx_.y + block_dim_.y * thread_idx_.z);
    }
    /// Linearised block index within the grid.
    [[nodiscard]] unsigned linear_bid() const {
        return block_idx_.x + grid_dim_.x * block_idx_.y;
    }
    /// Linearised grid-global thread id — the usual blockIdx*blockDim+threadIdx.
    [[nodiscard]] std::uint64_t global_id() const {
        return std::uint64_t{linear_bid()} * block_dim_.count() + linear_tid();
    }

    // --- __syncthreads() ---
    struct SyncAwaitable {
        ThreadCtx* ctx;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {
            ctx->at_barrier_ = true;
        }
        void await_resume() const noexcept {}
    };

    /// `co_await ctx.syncthreads();` — blocks until every thread of the
    /// block reaches the barrier. Costs 4 cycles + waiting time (Table 2.2);
    /// the waiting time is implicit in the max-fold over the warp.
    [[nodiscard]] SyncAwaitable syncthreads() {
        acct_.charge(*cm_, Op::SyncThreads);
        return SyncAwaitable{this};
    }

    // --- accounting hooks ---
    /// Charges `n` instructions of class `op` per Table 2.2.
    void charge(Op op, unsigned n = 1) { acct_.charge(*cm_, op, n); }

    /// Control-flow instruction with divergence tracking. Returns `pred`, so
    /// kernels write `if (ctx.branch(d2 < r2)) { ... }`. The warp records
    /// taken/not-taken counts per static site; see accounting.hpp for the
    /// divergence estimator.
    bool branch(bool pred, std::source_location loc = std::source_location::current()) {
        acct_.charge(*cm_, Op::Branch);
        const auto key = reinterpret_cast<std::uintptr_t>(loc.file_name()) ^
                         (std::uint64_t{loc.line()} << 40) ^ (std::uint64_t{loc.column()} << 52);
        warp_->note_branch(key, linear_tid() % kWarpSize, pred);
        return pred;
    }

    /// Models a thread-local variable that the compiler spilled to device
    /// memory (§2.2, Table 2.1: local memory is registers *or* device
    /// memory). Version 3 of the Boids port pays these (§6.2.2).
    void local_spill_read(unsigned n = 1) { acct_.charge(*cm_, Op::LocalSpill, n); }
    void local_spill_write(unsigned n = 1) { acct_.charge(*cm_, Op::GlobalWrite, n); }

    /// Accounts one texture fetch: served from the texture cache except for
    /// every `texture_miss_period`-th access, which goes to device memory.
    /// Returns whether this fetch missed (the caller charges the traffic).
    bool account_texture_fetch() {
        if (texture_fetches_++ % cm_->texture_miss_period == 0) {
            acct_.charge(*cm_, Op::GlobalRead);
            return true;
        }
        acct_.charge(*cm_, Op::TextureHit);
        return false;
    }

    // --- shared memory ---
    /// Carves a typed array out of the block's shared arena. Every thread of
    /// the block must perform the same sequence of shared_array calls (just
    /// as every CUDA thread sees the same __shared__ declarations).
    template <typename T>
    SharedArray<T> shared_array(std::uint64_t count) {
        const std::uint64_t align = alignof(T);
        std::uint64_t offset = (shared_cursor_ + align - 1) / align * align;
        const std::uint64_t end = offset + count * sizeof(T);
        if (end > block_->shared_arena.size()) {
            throw Error(ErrorCode::InvalidConfiguration,
                        "shared_array exceeds the block's shared memory (" +
                            std::to_string(block_->shared_arena.size()) + " bytes)");
        }
        shared_cursor_ = end;
        return SharedArray<T>(block_->shared_arena.data() + offset, count);
    }

    // --- internals used by the engine and the memory views ---
    [[nodiscard]] bool at_barrier() const { return at_barrier_; }
    void clear_barrier() { at_barrier_ = false; }
    [[nodiscard]] ThreadAcct& acct() { return acct_; }
    [[nodiscard]] WarpAcct& warp() { return *warp_; }
    [[nodiscard]] const CostModel& cost_model() const { return *cm_; }
    [[nodiscard]] BlockState& block_state() { return *block_; }

private:
    template <typename T>
    friend class DevicePtr;
    template <typename T>
    friend class SharedArray;

    uint3 thread_idx_;
    uint3 block_idx_;
    dim3 block_dim_;
    dim3 grid_dim_;
    const CostModel* cm_;
    BlockState* block_;
    WarpAcct* warp_;
    ThreadAcct acct_;
    std::uint64_t shared_cursor_ = 0;
    std::uint64_t texture_fetches_ = 0;
    bool at_barrier_ = false;
};

// --- accounted accesses (need the full ThreadCtx) ---

template <typename T>
T DevicePtr<T>::read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "device read at index " + std::to_string(i) + " of " +
                        std::to_string(count_));
    }
    ctx.acct().charge(ctx.cost_model(), Op::GlobalRead);
    ctx.acct().bytes_read += ctx.cost_model().charged_bytes(sizeof(T));
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
void DevicePtr<T>::write(ThreadCtx& ctx, std::uint64_t i, const T& v) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "device write at index " + std::to_string(i) + " of " +
                        std::to_string(count_));
    }
    ctx.acct().charge(ctx.cost_model(), Op::GlobalWrite);
    ctx.acct().bytes_written += ctx.cost_model().charged_bytes(sizeof(T));
    std::memcpy(base_ + i * sizeof(T), &v, sizeof(T));
}

template <typename T>
T DevicePtr<T>::tex_read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "texture fetch at index " + std::to_string(i) + " of " +
                        std::to_string(count_));
    }
    if (ctx.account_texture_fetch()) {
        ctx.acct().bytes_read += ctx.cost_model().charged_bytes(sizeof(T));
    }
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
T ConstantPtr<T>::read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "constant read at index " + std::to_string(i) + " of " +
                        std::to_string(count_));
    }
    ctx.charge(Op::ConstantRead);
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
T SharedArray<T>::read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidValue, "shared read out of range");
    }
    ctx.acct().charge(ctx.cost_model(), Op::SharedAccess);
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
void SharedArray<T>::write(ThreadCtx& ctx, std::uint64_t i, const T& v) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidValue, "shared write out of range");
    }
    ctx.acct().charge(ctx.cost_model(), Op::SharedAccess);
    std::memcpy(base_ + i * sizeof(T), &v, sizeof(T));
}

}  // namespace cusim
