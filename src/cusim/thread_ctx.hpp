// ThreadCtx — the view a device thread has of the machine.
//
// Provides the CUDA built-in variables (threadIdx, blockIdx, blockDim,
// gridDim, §3.1.3), the __syncthreads() barrier (§3.1.4) as an awaitable,
// shared-memory allocation, and the accounting hooks that feed the
// performance model.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <memory>
#include <source_location>
#include <string>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/constant_memory.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/memcheck.hpp"
#include "cusim/prof.hpp"
#include "cusim/shared_array.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// State shared by all threads of one executing block.
struct BlockState {
    std::vector<std::byte> shared_arena;  ///< the block's shared memory
    std::uint64_t sync_episodes = 0;      ///< completed barrier rounds
    /// Per-byte race-detection shadow of the arena; created lazily on the
    /// first instrumented shared access while memcheck is enabled.
    std::unique_ptr<memcheck::SharedShadow> shared_shadow;
    /// When non-null, memcheck violations are buffered here instead of being
    /// reported through memcheck::record() immediately. The parallel launch
    /// path sets this so each worker collects its block's violations locally
    /// and Device::launch flushes them in launch order — keeping the
    /// memcheck report (dedup insertion order, counters, trace mirror)
    /// bit-identical to a serial run. Strict mode still throws at the
    /// faulting access either way.
    std::vector<memcheck::Violation>* violation_sink = nullptr;
};

class ThreadCtx {
public:
    /// `acct` (optional) points the thread's accounting at caller-owned
    /// storage instead of the inline member — the warp-vectorized engine
    /// passes one slot of its contiguous per-lane array so charges made
    /// through a lane's ThreadCtx facade and through the warp-level batch
    /// paths land in the same place.
    ThreadCtx(uint3 thread_idx, uint3 block_idx, dim3 block_dim, dim3 grid_dim,
              const CostModel* cm, BlockState* block, WarpAcct* warp,
              const memcheck::ExecContext* exec = nullptr, ThreadAcct* acct = nullptr)
        : thread_idx_(thread_idx),
          block_idx_(block_idx),
          block_dim_(block_dim),
          grid_dim_(grid_dim),
          cm_(cm),
          block_(block),
          warp_(warp),
          exec_(exec),
          acct_(acct != nullptr ? acct : &own_acct_) {}

    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;

    // --- built-in variables ---
    [[nodiscard]] const uint3& thread_idx() const { return thread_idx_; }
    [[nodiscard]] const uint3& block_idx() const { return block_idx_; }
    [[nodiscard]] const dim3& block_dim() const { return block_dim_; }
    [[nodiscard]] const dim3& grid_dim() const { return grid_dim_; }

    /// Linearised thread index within the block (CUDA convention: x fastest).
    [[nodiscard]] unsigned linear_tid() const {
        return thread_idx_.x + block_dim_.x * (thread_idx_.y + block_dim_.y * thread_idx_.z);
    }
    /// Linearised block index within the grid (x fastest, then y, then z —
    /// the same order Device::launch deals blocks in).
    [[nodiscard]] unsigned linear_bid() const {
        return block_idx_.x + grid_dim_.x * (block_idx_.y + grid_dim_.y * block_idx_.z);
    }
    /// Linearised grid-global thread id — the usual blockIdx*blockDim+threadIdx.
    [[nodiscard]] std::uint64_t global_id() const {
        return std::uint64_t{linear_bid()} * block_dim_.count() + linear_tid();
    }

    // --- __syncthreads() ---
    struct SyncAwaitable {
        ThreadCtx* ctx;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {
            ctx->at_barrier_ = true;
        }
        void await_resume() const noexcept {}
    };

    /// `co_await ctx.syncthreads();` — blocks until every thread of the
    /// block reaches the barrier. Costs 4 cycles + waiting time (Table 2.2);
    /// the waiting time is implicit in the max-fold over the warp.
    [[nodiscard]] SyncAwaitable syncthreads() {
        acct_->charge(*cm_, Op::SyncThreads);
        return SyncAwaitable{this};
    }

    // --- accounting hooks ---
    /// Charges `n` instructions of class `op` per Table 2.2.
    void charge(Op op, unsigned n = 1) { acct_->charge(*cm_, op, n); }

    /// Stable identifier for a static source site: FNV-1a over the file
    /// name, hash-combined with line and column. (The previous scheme
    /// XOR-ed the file_name() *pointer* with shifted line/column, which
    /// collides across sites — e.g. any two sites whose line and column
    /// both differ by the same masked amounts.) The file-name hash is
    /// memoized per pointer: source_location hands out string-literal
    /// pointers, so within one TU the pointer is a perfect cache key.
    static std::uint64_t site_key(const std::source_location& loc) {
        struct FileHash {
            const char* file = nullptr;
            std::uint64_t hash = 0;
        };
        thread_local FileHash cache;
        if (cache.file != loc.file_name()) {
            std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
            for (const char* p = loc.file_name(); p != nullptr && *p != '\0'; ++p) {
                h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ull;
            }
            cache.file = loc.file_name();
            cache.hash = h;
        }
        const auto combine = [](std::uint64_t seed, std::uint64_t v) {
            return seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
        };
        return combine(combine(cache.hash, loc.line()), loc.column());
    }

    /// Control-flow instruction with divergence tracking. Returns `pred`, so
    /// kernels write `if (ctx.branch(d2 < r2)) { ... }`. The warp records
    /// taken/not-taken counts per static site; see accounting.hpp for the
    /// divergence estimator.
    bool branch(bool pred, std::source_location loc = std::source_location::current()) {
        acct_->charge(*cm_, Op::Branch);
        warp_->note_branch(site_key(loc), linear_tid() % kWarpSize, pred);
        return pred;
    }

    /// Models a thread-local variable that the compiler spilled to device
    /// memory (§2.2, Table 2.1: local memory is registers *or* device
    /// memory). Version 3 of the Boids port pays these (§6.2.2).
    void local_spill_read(unsigned n = 1) { acct_->charge(*cm_, Op::LocalSpill, n); }
    void local_spill_write(unsigned n = 1) { acct_->charge(*cm_, Op::GlobalWrite, n); }

    /// Bank-conflict tracking hook, called behind prof::collecting() with a
    /// pointer into the block's shared arena (see SharedAcct). Accesses
    /// through pointers outside the arena (unit tests driving SharedArray
    /// over stack buffers) are ignored.
    void note_shared_access(const std::byte* p) {
        if (block_ == nullptr || block_->shared_arena.empty()) return;
        const std::byte* base = block_->shared_arena.data();
        if (p < base || p >= base + block_->shared_arena.size()) return;
        warp_->shared.note(linear_tid() % kWarpSize,
                           static_cast<std::uint64_t>(p - base));
    }

    /// Accounts one texture fetch: served from the texture cache except for
    /// every `texture_miss_period`-th access, which goes to device memory.
    /// Returns whether this fetch missed (the caller charges the traffic).
    bool account_texture_fetch() {
        if (texture_fetches_++ % cm_->texture_miss_period == 0) {
            acct_->charge(*cm_, Op::GlobalRead);
            return true;
        }
        acct_->charge(*cm_, Op::TextureHit);
        return false;
    }

    // --- shared memory ---
    /// Carves a typed array out of the block's shared arena. Every thread of
    /// the block must perform the same sequence of shared_array calls (just
    /// as every CUDA thread sees the same __shared__ declarations).
    template <typename T>
    SharedArray<T> shared_array(std::uint64_t count) {
        const std::uint64_t align = alignof(T);
        std::uint64_t offset = (shared_cursor_ + align - 1) / align * align;
        const std::uint64_t end = offset + count * sizeof(T);
        if (end > block_->shared_arena.size()) {
            throw Error(ErrorCode::InvalidConfiguration,
                        "shared_array exceeds the block's shared memory (" +
                            std::to_string(block_->shared_arena.size()) + " bytes)");
        }
        shared_cursor_ = end;
        return SharedArray<T>(block_->shared_arena.data() + offset, count);
    }

    // --- diagnostics ---
    /// The kernel this thread belongs to ("?" when the engine was driven
    /// without an execution context, e.g. unit tests).
    [[nodiscard]] const char* kernel_name() const {
        return exec_ != nullptr ? exec_->kernel_name.c_str() : "?";
    }

    /// "thread (x,y,z) block (x,y,z) of kernel 'name'" — appended to every
    /// device-side error so a diagnostic names the faulting thread.
    [[nodiscard]] std::string where() const {
        return "thread (" + std::to_string(thread_idx_.x) + "," +
               std::to_string(thread_idx_.y) + "," + std::to_string(thread_idx_.z) +
               ") block (" + std::to_string(block_idx_.x) + "," +
               std::to_string(block_idx_.y) + "," + std::to_string(block_idx_.z) +
               ") of kernel '" + kernel_name() + "'";
    }

    // --- memcheck hooks (called behind memcheck::enabled()) ---
    /// Routes a violation to the block's deferred sink when one is set (the
    /// parallel launch path), else straight to the registry.
    void report_violation(memcheck::Violation v) {
        if (block_ != nullptr && block_->violation_sink != nullptr) {
            block_->violation_sink->push_back(std::move(v));
        } else {
            memcheck::record(std::move(v));
        }
    }

    /// Checks one device-side global-memory access against the shadow map;
    /// records a violation (and throws in strict mode) on OOB,
    /// use-after-free or uninitialized read.
    void memcheck_global_access(DeviceAddr addr, std::uint64_t bytes,
                                std::uint64_t alloc_id, memcheck::Access access) {
        if (exec_ == nullptr || exec_->shadow == nullptr) return;
        const auto issue = exec_->shadow->check_access(addr, bytes, alloc_id, access);
        if (!issue) return;
        memcheck::Violation v;
        v.kind = issue->kind;
        v.kernel = exec_->kernel_name;
        v.origin = issue->origin;
        v.addr = addr;
        v.bytes = bytes;
        v.device = exec_->device;
        v.has_coords = true;
        v.thread = thread_idx_;
        v.block = block_idx_;
        v.message = std::string("invalid global ") +
                    (access == memcheck::Access::Read ? "read" : "write") + " of " +
                    std::to_string(bytes) + " byte(s) at device address " +
                    std::to_string(addr) + " by " + where() + ": " + issue->detail;
        const std::string msg = v.message;
        report_violation(std::move(v));
        if (memcheck::strict()) {
            throw Error(ErrorCode::MemcheckViolation, msg);
        }
    }

    /// Race-checks one shared-memory access: conflicting same-epoch
    /// accesses to a byte from two different threads (at least one write)
    /// are flagged with both threads' coordinates.
    void memcheck_shared_access(const std::byte* p, std::uint64_t bytes, bool is_write) {
        if (exec_ == nullptr || block_ == nullptr || block_->shared_arena.empty()) return;
        const std::byte* base = block_->shared_arena.data();
        if (p < base || p >= base + block_->shared_arena.size()) return;
        if (!block_->shared_shadow) {
            block_->shared_shadow =
                std::make_unique<memcheck::SharedShadow>(block_->shared_arena.size());
        }
        const auto offset = static_cast<std::uint64_t>(p - base);
        const auto conflict = block_->shared_shadow->note_access(
            offset, bytes, linear_tid(), block_->sync_episodes, is_write);
        if (!conflict) return;
        const uint3 other = delinearize(conflict->other_tid);
        memcheck::Violation v;
        v.kind = memcheck::Kind::SharedRace;
        v.kernel = exec_->kernel_name;
        v.addr = offset;
        v.bytes = bytes;
        v.device = exec_->device;
        v.has_coords = true;
        v.thread = thread_idx_;
        v.block = block_idx_;
        v.message = std::string("shared-memory race on byte ") +
                    std::to_string(conflict->offset) + " of the shared arena: " +
                    (is_write ? "write" : "read") + " by " + where() +
                    " conflicts with a " + (conflict->other_was_write ? "write" : "read") +
                    " by thread (" + std::to_string(other.x) + "," +
                    std::to_string(other.y) + "," + std::to_string(other.z) +
                    ") in the same barrier interval (no __syncthreads() between them)";
        const std::string msg = v.message;
        report_violation(std::move(v));
        if (memcheck::strict()) {
            throw Error(ErrorCode::MemcheckViolation, msg);
        }
    }

    // --- internals used by the engine and the memory views ---
    [[nodiscard]] bool at_barrier() const { return at_barrier_; }
    void clear_barrier() { at_barrier_ = false; }
    [[nodiscard]] ThreadAcct& acct() { return *acct_; }
    [[nodiscard]] WarpAcct& warp() { return *warp_; }
    [[nodiscard]] const CostModel& cost_model() const { return *cm_; }
    [[nodiscard]] BlockState& block_state() { return *block_; }

private:
    /// Inverse of linear_tid() (CUDA convention: x fastest).
    [[nodiscard]] uint3 delinearize(unsigned tid) const {
        uint3 t;
        t.x = tid % block_dim_.x;
        t.y = (tid / block_dim_.x) % block_dim_.y;
        t.z = tid / (block_dim_.x * block_dim_.y);
        return t;
    }

    template <typename T>
    friend class DevicePtr;
    template <typename T>
    friend class SharedArray;

    uint3 thread_idx_;
    uint3 block_idx_;
    dim3 block_dim_;
    dim3 grid_dim_;
    const CostModel* cm_;
    BlockState* block_;
    WarpAcct* warp_;
    const memcheck::ExecContext* exec_;
    ThreadAcct own_acct_;
    /// Where charges land: &own_acct_, or caller-owned lane storage (see the
    /// constructor). Never null.
    ThreadAcct* acct_;
    std::uint64_t shared_cursor_ = 0;
    std::uint64_t texture_fetches_ = 0;
    bool at_barrier_ = false;
};

// --- accounted accesses (need the full ThreadCtx) ---

template <typename T>
T DevicePtr<T>::read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "device read at index " + std::to_string(i) + " of " +
                        std::to_string(count_) + " by " + ctx.where());
    }
    if (memcheck::enabled()) {
        ctx.memcheck_global_access(addr_ + i * sizeof(T), sizeof(T), alloc_id_,
                                   memcheck::Access::Read);
    }
    ctx.acct().charge(ctx.cost_model(), Op::GlobalRead);
    ctx.acct().bytes_read += ctx.cost_model().charged_bytes(sizeof(T));
    ctx.acct().useful_bytes_read += sizeof(T);
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
void DevicePtr<T>::write(ThreadCtx& ctx, std::uint64_t i, const T& v) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "device write at index " + std::to_string(i) + " of " +
                        std::to_string(count_) + " by " + ctx.where());
    }
    if (memcheck::enabled()) {
        ctx.memcheck_global_access(addr_ + i * sizeof(T), sizeof(T), alloc_id_,
                                   memcheck::Access::Write);
    }
    ctx.acct().charge(ctx.cost_model(), Op::GlobalWrite);
    ctx.acct().bytes_written += ctx.cost_model().charged_bytes(sizeof(T));
    ctx.acct().useful_bytes_written += sizeof(T);
    std::memcpy(base_ + i * sizeof(T), &v, sizeof(T));
}

template <typename T>
T DevicePtr<T>::tex_read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "texture fetch at index " + std::to_string(i) + " of " +
                        std::to_string(count_) + " by " + ctx.where());
    }
    if (memcheck::enabled()) {
        ctx.memcheck_global_access(addr_ + i * sizeof(T), sizeof(T), alloc_id_,
                                   memcheck::Access::Read);
    }
    if (ctx.account_texture_fetch()) {
        // Only the miss moves bus bytes, so only it contributes to the
        // useful/charged coalescing ratio.
        ctx.acct().bytes_read += ctx.cost_model().charged_bytes(sizeof(T));
        ctx.acct().useful_bytes_read += sizeof(T);
    }
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
T ConstantPtr<T>::read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "constant read at index " + std::to_string(i) + " of " +
                        std::to_string(count_) + " by " + ctx.where());
    }
    ctx.charge(Op::ConstantRead);
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
T SharedArray<T>::read(ThreadCtx& ctx, std::uint64_t i) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidValue,
                    "shared read at index " + std::to_string(i) + " of " +
                        std::to_string(count_) + " by " + ctx.where());
    }
    if (memcheck::enabled()) {
        ctx.memcheck_shared_access(base_ + i * sizeof(T), sizeof(T), /*is_write=*/false);
    }
    ctx.acct().charge(ctx.cost_model(), Op::SharedAccess);
    if (prof::collecting()) ctx.note_shared_access(base_ + i * sizeof(T));
    T v;
    std::memcpy(&v, base_ + i * sizeof(T), sizeof(T));
    return v;
}

template <typename T>
void SharedArray<T>::write(ThreadCtx& ctx, std::uint64_t i, const T& v) const {
    if (i >= count_) {
        throw Error(ErrorCode::InvalidValue,
                    "shared write at index " + std::to_string(i) + " of " +
                        std::to_string(count_) + " by " + ctx.where());
    }
    if (memcheck::enabled()) {
        ctx.memcheck_shared_access(base_ + i * sizeof(T), sizeof(T), /*is_write=*/true);
    }
    ctx.acct().charge(ctx.cost_model(), Op::SharedAccess);
    if (prof::collecting()) ctx.note_shared_access(base_ + i * sizeof(T));
    std::memcpy(base_ + i * sizeof(T), &v, sizeof(T));
}

}  // namespace cusim
