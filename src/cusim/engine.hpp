// The block execution engine.
//
// Executes one thread block functionally: every device thread is a coroutine
// that runs until it either finishes or suspends at __syncthreads(). The
// engine drives threads in rounds ("epochs"): one epoch ends when every live
// thread sits at the barrier, which is then released collectively. A block
// whose threads disagree about the barrier (some finished, some waiting) is
// the CUDA-undefined divergent-__syncthreads case; the engine turns it into
// a LaunchFailure instead of hanging.
#pragma once

#include <cstdint>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/launch.hpp"
#include "cusim/memcheck.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// Everything the timing model needs to know about one executed block.
struct BlockResult {
    std::vector<WarpAcct> warps;
    std::uint64_t sync_episodes = 0;
};

/// Runs all threads of block `block_idx` to completion. Throws
/// Error(LaunchFailure) wrapping any exception escaping a kernel body and on
/// divergent barrier use. `exec` (optional) gives the threads their
/// memcheck execution context — kernel name, global-memory shadow, device
/// ordinal — for attributed diagnostics.
BlockResult run_block(const CostModel& cm, const LaunchConfig& cfg,
                      const KernelEntry& entry, uint3 block_idx,
                      const memcheck::ExecContext* exec = nullptr);

}  // namespace cusim
