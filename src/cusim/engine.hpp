// The block execution engine.
//
// Executes one thread block functionally: every device thread is a coroutine
// that runs until it either finishes or suspends at __syncthreads(). The
// engine drives threads in rounds ("epochs"): one epoch ends when every live
// thread sits at the barrier, which is then released collectively. A block
// whose threads disagree about the barrier (some finished, some waiting) is
// the CUDA-undefined divergent-__syncthreads case; the engine turns it into
// a LaunchFailure instead of hanging.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/launch.hpp"
#include "cusim/memcheck.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// Which interpreter executes a block when a kernel provides both forms of
/// a KernelSpec. Selected by CUPP_SIM_ENGINE=warp|thread (default: warp;
/// anything else falls back to warp) with a programmatic override for
/// differential tests. Kernels that only have a per-thread form run the
/// classic coroutine-per-thread engine in either mode — the thread path is
/// retained verbatim as the differential oracle.
enum class EngineMode { Thread, Warp };

/// The effective engine mode: the override when set, else CUPP_SIM_ENGINE.
[[nodiscard]] EngineMode engine_mode();
/// Overrides the environment selection (differential tests/benches).
void set_engine_mode(EngineMode mode);
/// Drops the override; engine_mode() reads the environment again.
void clear_engine_mode();

/// Everything the timing model needs to know about one executed block.
struct BlockResult {
    std::vector<WarpAcct> warps;
    std::uint64_t sync_episodes = 0;
};

/// Reusable per-worker storage for run_block: the thread contexts, the
/// coroutine handles, the finished bitmap and the block's shared-memory
/// arena. A worker keeps one of these (thread_local in Device::launch) and
/// passes it to every block it runs, so steady-state execution allocates
/// nothing per block — contexts are re-constructed in place and the arena
/// keeps its capacity. Opaque; run_block owns the layout.
struct BlockScratch {
    BlockScratch();
    ~BlockScratch();
    BlockScratch(const BlockScratch&) = delete;
    BlockScratch& operator=(const BlockScratch&) = delete;

    struct State;
    std::unique_ptr<State> state;
};

/// Optional knobs for run_block (all default to the classic behaviour).
struct RunBlockOpts {
    /// Reuse this worker-owned storage instead of allocating per block.
    BlockScratch* scratch = nullptr;
    /// When non-null, memcheck violations are buffered here in program
    /// order instead of being reported through memcheck::record()
    /// immediately (strict mode still throws at the faulting access). The
    /// sink is caller-owned so buffered violations survive a mid-block
    /// exception — the parallel launch path flushes them in launch order.
    std::vector<memcheck::Violation>* violation_sink = nullptr;
};

/// Runs all threads of block `block_idx` to completion. Throws
/// Error(LaunchFailure) wrapping any exception escaping a kernel body and on
/// divergent barrier use. `exec` (optional) gives the threads their
/// memcheck execution context — kernel name, global-memory shadow, device
/// ordinal — for attributed diagnostics.
BlockResult run_block(const CostModel& cm, const LaunchConfig& cfg,
                      const KernelEntry& entry, uint3 block_idx,
                      const memcheck::ExecContext* exec = nullptr,
                      const RunBlockOpts& opts = {});

/// Dual-form dispatch: runs the warp-vectorized interpreter (one coroutine
/// per warp, lane-batched state, active-mask divergence — see warp_ctx.hpp)
/// when the spec carries a warp form and engine_mode() is Warp; otherwise
/// the classic per-thread engine above. Both produce bit-identical
/// observables for charge-equal kernel forms.
BlockResult run_block(const CostModel& cm, const LaunchConfig& cfg,
                      const KernelSpec& spec, uint3 block_idx,
                      const memcheck::ExecContext* exec = nullptr,
                      const RunBlockOpts& opts = {});

}  // namespace cusim
