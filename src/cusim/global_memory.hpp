// The global-memory (device memory) address space of a simulated device.
//
// Implements the linear-memory model of thesis §3.2.3: a 32-bit byte
// address space, malloc/free-style allocation, and host<->device transfers.
// Host access rules (§2.2: "device memory can only be accessed by the host
// if no kernel is active") are enforced by Device, which brokers all host
// access and blocks the host clock until the device is idle.
#pragma once

#include <cstddef>
#include <cstring>
#include <map>
#include <memory>
#include <source_location>
#include <vector>

#include "cusim/error.hpp"
#include "cusim/memcheck.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// Allocator + backing store for one device's global memory.
///
/// Addresses handed out are byte offsets into a single arena, so device
/// "pointers" are plain integers that mean nothing to the host — mirroring
/// the real rule that dereferencing a cudaMalloc pointer on the host is
/// undefined. All access from the simulator goes through checked methods.
class GlobalMemory {
public:
    /// Creates an address space of `size` bytes. The size is validated
    /// *before* the arena is allocated, so an invalid size doesn't commit
    /// gigabytes of backing store just to throw. (Virtual memory; pages
    /// commit on first touch.)
    explicit GlobalMemory(std::uint64_t size) : size_(size) {
        if (size > (1ull << 32)) {
            throw Error(ErrorCode::InvalidValue,
                        "G80 global memory is a 32-bit address space");
        }
        arena_.reset(new std::byte[size]());
        free_list_[0] = size;
    }

    GlobalMemory(const GlobalMemory&) = delete;
    GlobalMemory& operator=(const GlobalMemory&) = delete;

    /// Teardown without free_all() means the owner never released its
    /// allocations — report them as leaks (no-op when memcheck is off).
    ~GlobalMemory() { shadow_.report_leaks(); }

    /// cudaMalloc: first-fit allocation, 256-byte aligned like CUDA. Bounds
    /// checks are against the *requested* size, so off-by-one accesses are
    /// caught even when they land in alignment padding. The caller's source
    /// location and a layer label are recorded for memcheck attribution.
    [[nodiscard]] DeviceAddr allocate(
        std::uint64_t bytes,
        std::source_location loc = std::source_location::current(),
        const char* label = "cusimMalloc") {
        if (bytes == 0) bytes = 1;
        const std::uint64_t aligned = round_up(bytes, kAlignment);
        for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
            if (it->second >= aligned) {
                const DeviceAddr addr = it->first;
                const std::uint64_t remaining = it->second - aligned;
                free_list_.erase(it);
                if (remaining > 0) free_list_[addr + aligned] = remaining;
                allocations_[addr] = Allocation{bytes, aligned};
                used_ += aligned;
                shadow_.on_alloc(addr, bytes, loc, label);
                return addr;
            }
        }
        throw Error(ErrorCode::MemoryAllocation,
                    "requested " + std::to_string(bytes) + " bytes, " +
                        std::to_string(size_ - used_) + " free");
    }

    /// cudaFree. Freeing kNullAddr is a no-op (like free(nullptr)); freeing
    /// anything that was not allocated throws (after recording a
    /// double-free/invalid-free memcheck violation for attribution).
    void free(DeviceAddr addr,
              std::source_location loc = std::source_location::current()) {
        if (addr == kNullAddr) return;
        auto it = allocations_.find(addr);
        if (it == allocations_.end()) {
            shadow_.note_bad_free(addr, loc);
            throw Error(ErrorCode::InvalidDevicePointer,
                        "free of unallocated address " + std::to_string(addr));
        }
        const std::uint64_t bytes = it->second.aligned;
        used_ -= bytes;
        allocations_.erase(it);
        coalesce_insert(addr, bytes);
        shadow_.on_free(addr, loc);
    }

    /// Releases every allocation (used when a cupp::device handle dies:
    /// "when the device handle is destroyed, all memory allocated on this
    /// device is freed as well", §4.1). Live allocations are reported as
    /// leaks when memcheck is on — the RAII sweep is where C++-side leaks
    /// become visible.
    void free_all() {
        shadow_.on_free_all();
        allocations_.clear();
        free_list_.clear();
        free_list_[0] = size_;
        used_ = 0;
    }

    /// Size in bytes of the allocation starting at `addr`; throws if `addr`
    /// is not the base of a live allocation.
    [[nodiscard]] std::uint64_t allocation_size(DeviceAddr addr) const {
        auto it = allocations_.find(addr);
        if (it == allocations_.end()) {
            throw Error(ErrorCode::InvalidDevicePointer,
                        "address " + std::to_string(addr) + " is not an allocation base");
        }
        return it->second.requested;
    }

    /// True iff [addr, addr+bytes) lies fully inside one live allocation's
    /// requested extent.
    [[nodiscard]] bool range_valid(DeviceAddr addr, std::uint64_t bytes) const {
        auto it = allocations_.upper_bound(addr);
        if (it == allocations_.begin()) return false;
        --it;
        return addr >= it->first && addr + bytes <= it->first + it->second.requested;
    }

    /// Raw pointer into the arena. The caller must have validated the range;
    /// the accounting wrappers (DevicePtr) do so once at creation.
    [[nodiscard]] std::byte* raw(DeviceAddr addr) { return arena_.get() + addr; }
    [[nodiscard]] const std::byte* raw(DeviceAddr addr) const { return arena_.get() + addr; }

    /// Checked byte copy used by the memcpy paths.
    void write(DeviceAddr dst, const void* src, std::uint64_t bytes) {
        check_range(dst, bytes);
        std::memcpy(raw(dst), src, bytes);
        shadow_.on_host_write(dst, bytes);
    }
    void read(DeviceAddr src, void* dst, std::uint64_t bytes) const {
        check_range(src, bytes);
        std::memcpy(dst, raw(src), bytes);
    }
    void copy(DeviceAddr dst, DeviceAddr src, std::uint64_t bytes) {
        check_range(dst, bytes);
        check_range(src, bytes);
        std::memmove(raw(dst), raw(src), bytes);
        shadow_.on_copy(dst, src, bytes);
    }

    /// Device::reset_device() support: the allocation map survives (host
    /// RAII wrappers keep valid addresses, no dangling frees later), but
    /// the *contents* of every live allocation are wiped and the shadow's
    /// defined-bits are replayed to "freshly allocated". Only live extents
    /// are touched, not the whole arena — an untouched arena page stays
    /// uncommitted virtual memory.
    void wipe_for_recovery() {
        for (const auto& [addr, alloc] : allocations_) {
            std::memset(raw(addr), 0, alloc.aligned);
        }
        shadow_.on_device_reset();
    }

    [[nodiscard]] std::uint64_t size() const { return size_; }
    [[nodiscard]] std::uint64_t used() const { return used_; }
    [[nodiscard]] std::size_t allocation_count() const { return allocations_.size(); }

    /// Memcheck shadow state over this address space (allocation ids,
    /// defined bits, leak tracking).
    [[nodiscard]] memcheck::Shadow& shadow() { return shadow_; }
    [[nodiscard]] const memcheck::Shadow& shadow() const { return shadow_; }

private:
    static constexpr std::uint64_t kAlignment = 256;

    static std::uint64_t round_up(std::uint64_t v, std::uint64_t a) {
        return (v + a - 1) / a * a;
    }

    void check_range(DeviceAddr addr, std::uint64_t bytes) const {
        if (!range_valid(addr, bytes)) {
            throw Error(ErrorCode::InvalidDevicePointer,
                        "access [" + std::to_string(addr) + ", " +
                            std::to_string(addr + bytes) + ") outside any allocation");
        }
    }

    void coalesce_insert(DeviceAddr addr, std::uint64_t bytes) {
        auto next = free_list_.lower_bound(addr);
        if (next != free_list_.end() && addr + bytes == next->first) {
            bytes += next->second;
            next = free_list_.erase(next);
        }
        if (next != free_list_.begin()) {
            auto prev = std::prev(next);
            if (prev->first + prev->second == addr) {
                prev->second += bytes;
                return;
            }
        }
        free_list_[addr] = bytes;
    }

    struct Allocation {
        std::uint64_t requested;
        std::uint64_t aligned;
    };

    std::uint64_t size_;
    std::uint64_t used_ = 0;
    std::unique_ptr<std::byte[]> arena_;
    std::map<DeviceAddr, std::uint64_t> free_list_;   // addr -> bytes
    std::map<DeviceAddr, Allocation> allocations_;
    mutable memcheck::Shadow shadow_;
};

}  // namespace cusim
