// The device registry: the process-wide set of simulated devices and the
// per-host-thread device binding of CUDA 1.0 device management (§3.2.1):
// one host thread is bound to at most one device; if no device has been
// selected before the first use, device 0 is selected automatically.
#pragma once

#include <memory>
#include <vector>

#include "cusim/device.hpp"
#include "cusim/device_properties.hpp"

namespace cusim {

class Registry {
public:
    /// The process-wide registry. Starts out with a single default G80-class
    /// device; tests may add more.
    static Registry& instance();

    /// Registers a new device; returns its ordinal.
    int add_device(DeviceProperties props);

    [[nodiscard]] int device_count() const { return static_cast<int>(devices_.size()); }

    /// Device by ordinal; throws InvalidDevice for a bad ordinal.
    [[nodiscard]] Device& device(int ordinal);

    /// cudaChooseDevice: ordinal of the device best matching `request`.
    /// Matching prefers devices with enough memory and the requested
    /// capabilities; among matches, the one with the most multiprocessors.
    [[nodiscard]] int choose_device(const DeviceProperties& request) const;

    // --- per-host-thread binding ---
    /// cudaSetDevice for the calling thread.
    void set_device(int ordinal);

    /// Bound device of the calling thread, auto-binding device 0 on first use.
    [[nodiscard]] Device& current_device();
    [[nodiscard]] int current_ordinal();

    /// Drops every registered device and re-creates the default one
    /// (test isolation helper).
    void reset();

private:
    Registry();
    std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace cusim
