// cusim::graph — CUDA-graph-style capture and replay.
//
// Device::stream_begin_capture() flips the device into capture mode: ops
// enqueued on captured streams are *recorded* instead of queued — no seq
// numbers, no host-clock advance, no observables. stream_end_capture()
// returns the recorded DAG as an immutable Graph; graph_instantiate()
// validates every node once (geometry, pointer ranges, stream/event
// liveness) and returns a GraphExec; graph_launch() re-enqueues the whole
// DAG for a single launch-overhead charge, skipping the per-op argument
// transform/validation/preflight work eager enqueues pay. Replayed ops
// drain through the same canonical order as eager ones, so LaunchStats,
// memcheck, trace, prof and timeline observables are bit-identical.
//
// See DESIGN.md §5g for the capture state machine and the replay
// fast-path invariants.
#pragma once

#include <cstddef>
#include <memory>

namespace cusim {

namespace detail {
struct GraphIR;
}

/// Which streams a capture records.
///  * Origin: CUDA semantics — the origin stream, plus any stream that
///    joins the capture by waiting on an event recorded inside it; other
///    streams keep executing eagerly.
///  * AllStreams: every explicit-stream enqueue on the device is captured
///    (for whole-device DAGs that are not event-connected).
enum class CaptureMode { Origin, AllStreams };

/// An immutable captured stream DAG (shared, cheap to copy). Produced by
/// Device::stream_end_capture(); consumed by Device::graph_instantiate().
class Graph {
public:
    Graph() = default;

    [[nodiscard]] bool valid() const { return ir_ != nullptr; }
    /// Number of captured ops (defined out-of-line: the IR is internal).
    [[nodiscard]] std::size_t node_count() const;

private:
    friend class Device;
    explicit Graph(std::shared_ptr<const detail::GraphIR> ir) : ir_(std::move(ir)) {}
    std::shared_ptr<const detail::GraphIR> ir_;
};

/// A validated, launchable graph. Produced by Device::graph_instantiate();
/// every Device::graph_launch(exec) replays the full DAG. Instantiations
/// are independent: re-instantiating the same Graph yields another exec.
class GraphExec {
public:
    GraphExec() = default;

    [[nodiscard]] bool valid() const { return ir_ != nullptr; }
    [[nodiscard]] std::size_t node_count() const;

private:
    friend class Device;
    explicit GraphExec(std::shared_ptr<const detail::GraphIR> ir) : ir_(std::move(ir)) {}
    std::shared_ptr<const detail::GraphIR> ir_;
};

}  // namespace cusim
