// Device properties, mirroring cudaDeviceProp (thesis §3.2.1).
#pragma once

#include <cstdint>
#include <string>

#include "cusim/cost_model.hpp"
#include "cusim/types.hpp"

namespace cusim {

/// Static description of a simulated device. Devices are registered with the
/// Registry; cusimChooseDevice matches requested against available
/// properties, like the CUDA device-management API.
struct DeviceProperties {
    std::string name = "cusim G80 (8800 GTS class)";
    std::uint64_t total_global_mem = 640ull * 1024 * 1024;  ///< bytes
    unsigned multiprocessors = 12;
    unsigned warp_size = kWarpSize;
    unsigned max_threads_per_block = kMaxThreadsPerBlock;
    std::uint32_t shared_mem_per_block = 16 * 1024;
    std::uint32_t registers_per_block = 8192;
    bool supports_atomics = false;  ///< compute capability 1.0 has none.
    /// Host worker threads used to execute a grid's blocks (a simulator
    /// knob, not a property of the modelled part). 0 = resolve from the
    /// environment: CUPP_SIM_THREADS, else hardware_concurrency(). 1 runs
    /// the classic serial engine path. Any value produces bit-identical
    /// observables — see BlockPool (block_pool.hpp) for the contract.
    unsigned sim_threads = 0;
    CostModel cost;

    /// Number of scalar processors (12 MPs x 8 = 96 on the thesis hardware).
    [[nodiscard]] unsigned processor_count() const {
        return multiprocessors * kProcessorsPerMP;
    }
};

/// Default part used throughout the reproduction: the thesis hardware.
[[nodiscard]] inline DeviceProperties g80_properties() {
    return DeviceProperties{};
}

/// A smaller part, handy for tests that want to hit resource limits fast.
[[nodiscard]] inline DeviceProperties tiny_properties() {
    DeviceProperties p;
    p.name = "cusim tiny (test part)";
    p.total_global_mem = 4ull * 1024 * 1024;
    p.multiprocessors = 2;
    p.cost.multiprocessors = 2;
    return p;
}

}  // namespace cusim
