#include "cusim/registry.hpp"

#include "cusim/error.hpp"

namespace cusim {

namespace {
// CUDA 1.0 binds one device per host thread (§3.2.1).
thread_local int t_bound_ordinal = -1;
}  // namespace

Registry::Registry() { devices_.push_back(std::make_unique<Device>(g80_properties())); }

Registry& Registry::instance() {
    static Registry registry;
    return registry;
}

int Registry::add_device(DeviceProperties props) {
    devices_.push_back(std::make_unique<Device>(std::move(props)));
    return static_cast<int>(devices_.size()) - 1;
}

Device& Registry::device(int ordinal) {
    if (ordinal < 0 || ordinal >= device_count()) {
        throw Error(ErrorCode::InvalidDevice,
                    "device ordinal " + std::to_string(ordinal) + " of " +
                        std::to_string(device_count()));
    }
    return *devices_[static_cast<std::size_t>(ordinal)];
}

int Registry::choose_device(const DeviceProperties& request) const {
    int best = -1;
    unsigned best_mps = 0;
    for (int i = 0; i < device_count(); ++i) {
        const DeviceProperties& p = devices_[static_cast<std::size_t>(i)]->properties();
        if (p.total_global_mem < request.total_global_mem) continue;
        if (request.supports_atomics && !p.supports_atomics) continue;
        if (p.multiprocessors >= best_mps) {
            best_mps = p.multiprocessors;
            best = i;
        }
    }
    if (best < 0) {
        throw Error(ErrorCode::InvalidDevice, "no device matches the requested properties");
    }
    return best;
}

void Registry::set_device(int ordinal) {
    (void)device(ordinal);  // validate
    t_bound_ordinal = ordinal;
}

Device& Registry::current_device() { return device(current_ordinal()); }

int Registry::current_ordinal() {
    if (t_bound_ordinal < 0) t_bound_ordinal = 0;  // implicit device 0 (§3.2.1)
    return t_bound_ordinal;
}

void Registry::reset() {
    devices_.clear();
    devices_.push_back(std::make_unique<Device>(g80_properties()));
    t_bound_ordinal = -1;
}

}  // namespace cusim
