#include "cusim/multiprocessor.hpp"

#include <algorithm>

#include "cusim/error.hpp"

namespace cusim {

BlockCost BlockCost::from(const BlockResult& br, const CostModel& cm) {
    BlockCost c;
    c.warps = static_cast<unsigned>(br.warps.size());
    for (const WarpAcct& w : br.warps) {
        // Divergent warp-steps serialise both branch paths; the executing
        // threads already paid the longer path, the penalty re-issues the
        // shorter one (§2.3).
        const std::uint64_t div = w.divergent_events() * cm.divergence_penalty;
        const std::uint64_t warp_compute = w.compute_cycles + div;
        c.compute_cycles += warp_compute;
        c.stall_cycles += w.stall_cycles;
        c.max_warp_busy = std::max(c.max_warp_busy, warp_compute + w.stall_cycles);
        c.bytes += w.bytes_read + w.bytes_written;
    }
    return c;
}

unsigned blocks_per_mp(const CostModel& cm, const LaunchConfig& cfg) {
    unsigned limit = cm.max_blocks_per_mp;
    if (cfg.shared_bytes > 0) {
        if (cfg.shared_bytes > cm.shared_mem_per_mp) {
            throw Error(ErrorCode::InvalidConfiguration,
                        "block requests more shared memory than a multiprocessor has");
        }
        limit = std::min(limit, cm.shared_mem_per_mp / cfg.shared_bytes);
    }
    const std::uint64_t regs_per_block =
        std::uint64_t{cfg.regs_per_thread} * cfg.block.count();
    if (regs_per_block > cm.registers_per_mp) {
        throw Error(ErrorCode::InvalidConfiguration,
                    "block requests more registers than a multiprocessor has");
    }
    if (regs_per_block > 0) {
        limit = std::min<unsigned>(
            limit, static_cast<unsigned>(cm.registers_per_mp / regs_per_block));
    }
    return std::max(1u, limit);
}

double model_grid_seconds(const CostModel& cm, const LaunchConfig& cfg,
                          const std::vector<BlockCost>& blocks, unsigned* resident_out) {
    const unsigned resident = blocks_per_mp(cm, cfg);
    if (resident_out) *resident_out = resident;
    const unsigned nmp = cm.multiprocessors;
    const double bytes_per_cycle = cm.bytes_per_cycle_per_mp();

    // Blocks are dealt to MPs round-robin in launch order; each MP runs its
    // queue in waves of `resident` concurrent blocks.
    std::vector<double> mp_cycles(nmp, 0.0);
    for (std::size_t base = 0; base < blocks.size(); base += std::size_t{resident} * nmp) {
        for (unsigned mp = 0; mp < nmp; ++mp) {
            std::uint64_t compute = 0;
            std::uint64_t max_warp_busy = 0;
            std::uint64_t bytes = 0;
            unsigned warps = 0;
            for (unsigned r = 0; r < resident; ++r) {
                const std::size_t i = base + std::size_t{r} * nmp + mp;
                if (i >= blocks.size()) break;
                const BlockCost& b = blocks[i];
                compute += b.compute_cycles;
                max_warp_busy = std::max(max_warp_busy, b.max_warp_busy);
                bytes += b.bytes;
                warps += b.warps;
            }
            if (warps == 0) continue;
            // Three lower bounds, the largest of which is the wave time:
            //  * issue throughput — warps time-share the 8 processors, so
            //    at best the MP is busy for the sum of all issue cycles;
            //  * latency chain — a warp's own dependent loads serialise;
            //    other warps hide that latency (§2.3 warp switching), but
            //    no warp finishes before its own compute+stall chain;
            //  * memory bandwidth — traffic cannot exceed the bus.
            // The wave's *summed* stall cycles are deliberately not a bound:
            // warp switching hides one warp's stalls behind other warps'
            // issue slots, so aggregate stall time only surfaces through
            // max_warp_busy (each warp's own compute+stall chain) above.
            double wave = static_cast<double>(compute);
            wave = std::max(wave, static_cast<double>(max_warp_busy));
            wave = std::max(wave, static_cast<double>(bytes) / bytes_per_cycle);
            mp_cycles[mp] += wave;
        }
    }
    const double worst = *std::max_element(mp_cycles.begin(), mp_cycles.end());
    return worst / cm.core_clock_hz;
}

}  // namespace cusim
