// cusim::timeline — dependency-aware timeline recording and critical-path
// attribution for the simulated runtime.
//
// cusim::prof answers "which kernels cost the most in aggregate"; this
// module answers "why is the modelled makespan what it is". Every scheduled
// operation — kernel launch (legacy and stream-bound), H2D/D2H/D2D
// transfer (sync and async), event record, cross-stream wait_event, and
// host synchronization — is recorded as a node of a DAG with its modelled
// start/end times, lane (devN.host / devN.device / devN.streamK), the
// correlation id its runtime API call carried (shared with the
// cusim::prof callback API), and explicit dependency edges:
//
//   * FIFO edges along each lane (stream queue order, device-lane order,
//     host program order),
//   * event edges from a wait to the record whose completion released it,
//   * host-sync edges from a synchronize to the work it blocked on, and
//   * issue edges from an async op to the host-lane point that enqueued
//     it (an op can never start before it was issued).
//
// Because every constraint that can determine a node's start time is an
// edge to a node ending at exactly that time, walking backwards from the
// makespan node always follows an edge whose source ends where the current
// node starts: the resulting chain tiles [0, makespan] *exactly* — first
// node at 0, each end bitwise-equal to the next start, last end at the
// makespan. That chain is the critical path; everything else the
// report derives (per-lane utilization and bubble intervals, overlap
// efficiency, per-category shares) falls out of the same node set.
//
// Untracked host progress (Device::advance_host, the steering library's
// CPU cost model) is folded into synthetic "host" filler nodes, so the
// host lane is gapless and host compute shows up on the critical path
// when it is the bottleneck.
//
// Activation follows the CUPP_TRACE / CUPP_PROF pattern:
//
//   CUPP_TIMELINE=<report.json>   record for the whole run and write the
//                                 JSON report (tools/cupp_timeline renders
//                                 and diffs it) at process exit
//
// Recording happens on the host thread only — at enqueue time and inside
// the stream drain / launch-order reduction — so the report is
// bit-identical across CUPP_SIM_THREADS and engine configurations. A
// fault-rejected enqueue is recorded as a `failed` node that contributes
// no edges, no busy time, and never appears on the critical path. The
// disabled fast path is one relaxed atomic load per site.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cusim::timeline {

// --- enablement -------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The per-site fast-path gate: one relaxed load when recording is off.
[[nodiscard]] inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enables recording, in memory only.
void enable();
/// Enables recording and arranges for the JSON report to be written to
/// `path` at process exit (and on write_report()).
void enable(std::string path);
/// Stops recording; the recorded DAG is kept for analysis.
void disable();
/// disable() + drops every node, lane cursor and the report path, and
/// resets the shared prof correlation-id counter (test isolation).
void reset();

// --- the node model ---------------------------------------------------------

/// What kind of scheduled operation a node represents. `Host` covers both
/// real host-side costs (launch issue overhead) and the synthetic filler
/// intervals that keep the host lane gapless across untracked host time.
enum class Category : std::uint8_t {
    Kernel,       ///< a grid executing on the device timeline
    MemcpyH2D,    ///< host-to-device transfer (sync or drained async)
    MemcpyD2H,    ///< device-to-host transfer
    MemcpyD2D,    ///< device-to-device copy
    EventRecord,  ///< an event record completing (zero duration)
    EventWait,    ///< a stream ordering behind a recorded event (zero duration)
    Sync,         ///< a host synchronization point (zero duration)
    Host,         ///< host-side work: issue overhead, untracked host compute
};
inline constexpr std::size_t kCategoryCount = 8;

/// Stable lower-case category name (report JSON, tools, tests).
[[nodiscard]] const char* category_name(Category cat);

/// Which of a device's lanes a node executed on.
enum class Lane : std::uint8_t {
    Host,    ///< "devN.host" — the issuing host thread
    Device,  ///< "devN.device" — the legacy default-stream device timeline
    Stream,  ///< "devN.streamK" — an explicit stream's timeline
};

/// One recorded operation. Times are absolute modelled seconds (monotonic
/// across Device::reset_clock, like the exported trace's time axis).
struct Node {
    std::uint64_t id = 0;           ///< 1-based, in recording (launch) order
    std::uint64_t correlation = 0;  ///< shared with prof::ApiRecord::correlation
    Category cat = Category::Kernel;
    Lane lane = Lane::Host;
    std::string name;               ///< kernel name or op label
    int device = 0;                 ///< trace ordinal of the owning device
    std::uint32_t stream = 0;       ///< stream id when lane == Lane::Stream
    double start = 0.0;
    double end = 0.0;
    std::uint64_t bytes = 0;        ///< transfer size when applicable
    bool failed = false;            ///< fault-rejected enqueue: no edges
    std::vector<std::uint64_t> deps;  ///< node ids this one depended on

    [[nodiscard]] double duration() const { return end - start; }
};

/// The node's lane name as rendered in the report ("dev0.stream2").
[[nodiscard]] std::string lane_name(const Node& n);

// --- recording hooks (Device / stream internals; host thread only) -----------
// All hooks are no-ops unless enabled(). Times are absolute modelled
// seconds (the caller applies its trace_base offset).

/// Returns the id of the host-lane node ending exactly at `t`, creating a
/// synthetic Category::Host filler node over [cursor, t] when untracked
/// host time (advance_host) left a gap. Returns 0 when t == 0 and the
/// host lane is still empty.
std::uint64_t anchor_host(int device, double t);

/// Host-lane op with real duration (legacy transfer, launch issue
/// overhead). When `start` lies beyond the host cursor, the binding
/// constraint is `extra_dep` (a device-side node the host blocked on) if
/// it ends exactly at `start`; otherwise the gap is filled as untracked
/// host compute. Returns the node id.
std::uint64_t host_op(int device, Category cat, std::string_view name,
                      std::uint64_t bytes, std::uint64_t correlation,
                      double start, double end, std::uint64_t extra_dep = 0);

/// Zero-duration host synchronization point at `t` (Device::synchronize,
/// stream/event synchronize). `waited` is the node whose completion set
/// `t` (0 when unknown). Returns the node id.
std::uint64_t host_sync(int device, std::string_view name,
                        std::uint64_t correlation, double t,
                        std::uint64_t waited);

/// Legacy device-lane node (default-stream kernel, D2D copy, or the
/// zero-duration default-stream record/wait marks). FIFO-depends on the
/// current device-lane tail plus `extra_dep`. Returns the node id.
std::uint64_t device_op(int device, Category cat, std::string_view name,
                        std::uint64_t bytes, std::uint64_t correlation,
                        double start, double end, std::uint64_t extra_dep = 0);

/// Stream-lane node (a drained async op). FIFO-depends on the stream's
/// tail plus up to two explicit deps (issue anchor, event-record node).
/// Returns the node id.
std::uint64_t stream_op(int device, std::uint32_t stream, Category cat,
                        std::string_view name, std::uint64_t bytes,
                        std::uint64_t correlation, double start, double end,
                        std::uint64_t dep_a = 0, std::uint64_t dep_b = 0);

/// Records a fault-rejected enqueue: a failed node pinned at `t` with no
/// edges; it never becomes a lane tail and contributes no busy time.
void failed_op(int device, std::uint32_t stream, Category cat,
               std::string_view name, std::uint64_t bytes,
               std::uint64_t correlation, double t);

/// The current device-lane tail node (0 when none) — what a legacy op or
/// host sync is ordered behind.
[[nodiscard]] std::uint64_t device_tail(int device);
/// The stream's tail node (0 when none).
[[nodiscard]] std::uint64_t stream_tail(int device, std::uint32_t stream);
/// join_streams folding a stream's horizon into the device-wide one: the
/// stream's tail becomes the device-lane tail.
void set_device_tail(int device, std::uint64_t node);

/// Newest-wins registry of each event's last *executed* record node,
/// mirroring EventState::time (waits and event_synchronize edges).
void register_event_record(int device, std::uint64_t event, std::uint64_t node);
[[nodiscard]] std::uint64_t event_record_node(int device, std::uint64_t event);

/// RAII guard that records a failed node when the guarded runtime call
/// unwinds via exception (fault preflight / validation rejection).
/// Constructed after the prof::ApiScope so it can carry the same
/// correlation id. Costs one relaxed load when recording is off.
class FailScope {
public:
    FailScope(int device, std::uint32_t stream, Category cat,
              std::string_view name, std::uint64_t bytes,
              std::uint64_t correlation, double t)
        : armed_(enabled()) {
        if (!armed_) return;
        device_ = device;
        stream_ = stream;
        cat_ = cat;
        name_ = name;
        bytes_ = bytes;
        correlation_ = correlation;
        t_ = t;
        exceptions_ = std::uncaught_exceptions();
    }
    ~FailScope() {
        if (armed_ && std::uncaught_exceptions() > exceptions_) {
            failed_op(device_, stream_, cat_, name_, bytes_, correlation_, t_);
        }
    }
    FailScope(const FailScope&) = delete;
    FailScope& operator=(const FailScope&) = delete;

private:
    bool armed_;
    int device_ = 0;
    std::uint32_t stream_ = 0;
    Category cat_ = Category::Kernel;
    std::string_view name_;
    std::uint64_t bytes_ = 0;
    std::uint64_t correlation_ = 0;
    double t_ = 0.0;
    int exceptions_ = 0;
};

// --- analysis & report -------------------------------------------------------

/// One lane's activity summary.
struct LaneSummary {
    std::string lane;  ///< "dev0.host" / "dev0.device" / "dev0.stream2"
    std::uint64_t nodes = 0;
    double busy_seconds = 0.0;   ///< sum of node durations on the lane
    double first_start = 0.0;
    double last_end = 0.0;
    /// Idle gaps between consecutive nodes on the lane (within
    /// [first_start, last_end]), in time order.
    std::vector<std::pair<double, double>> bubbles;
    double bubble_seconds = 0.0;
};

/// The computed attribution for the recorded DAG.
struct Report {
    double makespan_seconds = 0.0;    ///< max node end (the modelled makespan)
    double serialized_seconds = 0.0;  ///< sum of all successful durations
    /// serialized / makespan: 1.0 when fully serial, >1 when lanes overlap.
    double overlap_efficiency = 0.0;
    /// Node ids of the critical path, in chronological order. The chain
    /// tiles the makespan: the first node starts at 0, each node's end is
    /// exactly the next node's start, and the last node ends at the
    /// makespan (gap_seconds accounts for any untiled remainder).
    std::vector<std::uint64_t> critical_path;
    /// makespan_seconds - gap_seconds: the time the path attributes.
    /// Exactly equal to the makespan when gap_seconds is 0.
    double critical_path_seconds = 0.0;
    /// Unattributed time along the walk (0 in normal operation; non-zero
    /// only if a constraint was not representable as an edge).
    double gap_seconds = 0.0;
    std::vector<LaneSummary> lanes;             ///< first-use order
    std::array<double, kCategoryCount> category_seconds{};
    std::uint64_t total_nodes = 0;
    std::uint64_t failed_nodes = 0;
    std::uint64_t edges = 0;
};

/// Snapshot of every recorded node, in recording order (tests).
[[nodiscard]] std::vector<Node> nodes();
/// Critical path, utilization, bubbles, category shares for the current DAG.
[[nodiscard]] Report analyze();

/// The configured report file ("" when none).
[[nodiscard]] std::string report_path();
/// The timeline report as a JSON document (schema: DESIGN.md §5e).
[[nodiscard]] std::string report_json();
/// Writes report_json() to `path` (or the configured path when omitted).
/// Returns false when no path is known or the write failed.
bool write_report(const std::string& path = {});

}  // namespace cusim::timeline
