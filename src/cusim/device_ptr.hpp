// Typed, accounted view of a global-memory allocation.
//
// A DevicePtr<T> is what a kernel parameter "T* in global memory" becomes in
// the simulator. Every element access goes through a ThreadCtx so it can be
// charged per Table 2.2 (reads cost 400-600 cycles of hideable latency,
// writes are fire-and-forget) and bounds-checked against the allocation.
// The host cannot dereference it — exactly the CUDA rule that dereferencing
// a cudaMalloc pointer on the host is undefined (§3.2.3); host transfers go
// through Device::copy_* which model the PCIe bus.
#pragma once

#include <cstdint>
#include <type_traits>

#include "cusim/error.hpp"
#include "cusim/types.hpp"

namespace cusim {

class ThreadCtx;
class WarpCtx;

template <typename T>
class DevicePtr {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only trivially copyable types can live in device memory");

public:
    DevicePtr() = default;

    /// Constructed by Device / higher layers from a validated allocation.
    /// `alloc_id` is the memcheck generation id of the allocation the view
    /// was created over (0 = unknown): if that allocation is freed, any
    /// later access through this view is flagged as a use-after-free even
    /// when the address range has been recycled.
    DevicePtr(std::byte* base, DeviceAddr addr, std::uint64_t count,
              std::uint64_t alloc_id = 0)
        : base_(base), addr_(addr), count_(count), alloc_id_(alloc_id) {}

    [[nodiscard]] DeviceAddr addr() const { return addr_; }
    [[nodiscard]] std::uint64_t size() const { return count_; }
    [[nodiscard]] bool null() const { return base_ == nullptr; }
    [[nodiscard]] std::uint64_t alloc_id() const { return alloc_id_; }

    /// Device-side element read; charges a global-memory read. Defined in
    /// thread_ctx.hpp (needs the full ThreadCtx).
    T read(ThreadCtx& ctx, std::uint64_t i) const;

    /// Device-side element write; fire-and-forget per §2.3.
    void write(ThreadCtx& ctx, std::uint64_t i, const T& v) const;

    /// Read routed through the texture cache (§2.1; the future-work item of
    /// §7). Cheaper than a plain read on access patterns with reuse.
    T tex_read(ThreadCtx& ctx, std::uint64_t i) const;

    /// Sub-view starting at element `offset`.
    [[nodiscard]] DevicePtr<T> slice(std::uint64_t offset, std::uint64_t count) const {
        if (offset + count > count_) {
            throw Error(ErrorCode::InvalidDevicePointer, "slice out of range");
        }
        return DevicePtr<T>(base_ + offset * sizeof(T), addr_ + offset * sizeof(T), count,
                            alloc_id_);
    }

    /// Reinterprets a byte view as a typed one (pitched-memory plumbing).
    template <typename U>
    [[nodiscard]] DevicePtr<U> as() const
        requires std::is_same_v<T, std::byte>
    {
        return DevicePtr<U>(base_, addr_, count_ / sizeof(U), alloc_id_);
    }

private:
    friend class ThreadCtx;
    friend class WarpCtx;
    std::byte* base_ = nullptr;   ///< raw arena pointer (simulator internal)
    DeviceAddr addr_ = kNullAddr;
    std::uint64_t count_ = 0;
    std::uint64_t alloc_id_ = 0;  ///< memcheck generation id (0 = unknown)
};

}  // namespace cusim
