#include "cusim/memcheck.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "cupp/trace.hpp"

namespace cusim::memcheck {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_strict{false};
}  // namespace detail

namespace {

using cupp::trace::format;
using cupp::trace::json_quote;

constexpr std::size_t kMaxStoredViolations = 4096;

/// "label @ file:line" — the attribution string used everywhere a
/// violation names its allocation site.
std::string origin_string(const char* label, const std::source_location& loc) {
    const char* file = loc.file_name() != nullptr ? loc.file_name() : "?";
    return format("%s @ %s:%u", label != nullptr ? label : "?", file, loc.line());
}

std::string site_string(const std::source_location& loc) {
    const char* file = loc.file_name() != nullptr ? loc.file_name() : "?";
    return format("%s:%u", file, loc.line());
}

/// Process-wide violation registry. Intentionally leaked (like the trace
/// Session) so violations recorded from static destructors — GlobalMemory
/// teardown reporting leaks — still land before the atexit report.
class Registry {
public:
    static Registry& instance() {
        static Registry* r = new Registry();
        return *r;
    }

    void set_report_path(std::string path) {
        std::lock_guard<std::mutex> lock(mu_);
        report_path_ = std::move(path);
    }

    std::string report_path() const {
        std::lock_guard<std::mutex> lock(mu_);
        return report_path_;
    }

    void record(Violation v) {
        static const char* const kTrack = "memcheck";
        if (cupp::trace::enabled()) {
            cupp::trace::emit_instant(
                kTrack, format("memcheck.%s", kind_name(v.kind)),
                cupp::trace::wall_clock_us(),
                {{"message", v.message},
                 {"kernel", v.kernel},
                 {"origin", v.origin}});
        }
        cupp::trace::metrics().add("cusim.memcheck.violations");
        cupp::trace::metrics().add(
            format("cusim.memcheck.%s", kind_name(v.kind)));

        std::lock_guard<std::mutex> lock(mu_);
        ++total_;
        ++per_kind_[static_cast<std::size_t>(v.kind)];
        const std::string key =
            format("%d|%s|%s", static_cast<int>(v.kind), v.origin.c_str(),
                   v.kernel.c_str());
        if (auto it = index_.find(key); it != index_.end()) {
            ++violations_[it->second].count;
            return;
        }
        if (violations_.size() >= kMaxStoredViolations) {
            ++dropped_;
            return;
        }
        index_.emplace(key, violations_.size());
        violations_.push_back(std::move(v));
    }

    std::vector<Violation> violations() const {
        std::lock_guard<std::mutex> lock(mu_);
        return violations_;
    }

    std::uint64_t total() const {
        std::lock_guard<std::mutex> lock(mu_);
        return total_;
    }

    std::uint64_t count(Kind kind) const {
        std::lock_guard<std::mutex> lock(mu_);
        return per_kind_[static_cast<std::size_t>(kind)];
    }

    void reset() {
        std::lock_guard<std::mutex> lock(mu_);
        violations_.clear();
        index_.clear();
        per_kind_ = {};
        total_ = 0;
        dropped_ = 0;
    }

    std::string to_json() const {
        std::lock_guard<std::mutex> lock(mu_);
        std::string out = "{\n  \"memcheck\": {\n";
        out += format("    \"total_violations\": %llu,\n",
                      static_cast<unsigned long long>(total_));
        out += format("    \"distinct_violations\": %llu,\n",
                      static_cast<unsigned long long>(
                          static_cast<std::uint64_t>(violations_.size())));
        out += format("    \"dropped\": %llu,\n",
                      static_cast<unsigned long long>(dropped_));
        out += "    \"by_kind\": {";
        bool first = true;
        for (std::size_t k = 0; k < per_kind_.size(); ++k) {
            if (per_kind_[k] == 0) continue;
            if (!first) out += ", ";
            first = false;
            out += format("\"%s\": %llu", kind_name(static_cast<Kind>(k)),
                          static_cast<unsigned long long>(per_kind_[k]));
        }
        out += "},\n    \"violations\": [\n";
        for (std::size_t i = 0; i < violations_.size(); ++i) {
            const Violation& v = violations_[i];
            out += "      {";
            out += format("\"kind\": %s, ", json_quote(kind_name(v.kind)).c_str());
            out += format("\"count\": %llu, ",
                          static_cast<unsigned long long>(v.count));
            out += format("\"message\": %s, ", json_quote(v.message).c_str());
            out += format("\"kernel\": %s, ", json_quote(v.kernel).c_str());
            out += format("\"origin\": %s, ", json_quote(v.origin).c_str());
            out += format("\"addr\": %llu, \"bytes\": %llu, \"device\": %d",
                          static_cast<unsigned long long>(v.addr),
                          static_cast<unsigned long long>(v.bytes), v.device);
            if (v.has_coords) {
                out += format(
                    ", \"thread\": [%u, %u, %u], \"block\": [%u, %u, %u]",
                    v.thread.x, v.thread.y, v.thread.z, v.block.x, v.block.y,
                    v.block.z);
            }
            out += "}";
            if (i + 1 < violations_.size()) out += ",";
            out += "\n";
        }
        out += "    ]\n  }\n}\n";
        return out;
    }

    std::string to_text() const {
        std::lock_guard<std::mutex> lock(mu_);
        if (total_ == 0) return "cusim::memcheck: no violations detected\n";
        std::string out = format(
            "cusim::memcheck: %llu violation(s) (%llu distinct site(s))\n",
            static_cast<unsigned long long>(total_),
            static_cast<unsigned long long>(
                static_cast<std::uint64_t>(violations_.size())));
        for (const Violation& v : violations_) {
            out += format("  [%s] x%llu: %s\n", kind_name(v.kind),
                          static_cast<unsigned long long>(v.count),
                          v.message.c_str());
        }
        if (dropped_ != 0) {
            out += format("  ... %llu further distinct site(s) dropped\n",
                          static_cast<unsigned long long>(dropped_));
        }
        return out;
    }

private:
    Registry() = default;

    mutable std::mutex mu_;
    std::string report_path_;
    std::vector<Violation> violations_;
    std::unordered_map<std::string, std::size_t> index_;
    std::array<std::uint64_t, 8> per_kind_{};
    std::uint64_t total_ = 0;
    std::uint64_t dropped_ = 0;
};

void atexit_report() {
    const std::string path = Registry::instance().report_path();
    if (!path.empty()) {
        write_report(path);
    }
    const std::uint64_t total = Registry::instance().total();
    if (total != 0) {
        std::fputs(report_text().c_str(), stderr);
    }
}

void register_atexit_once() {
    static const bool registered = [] {
        std::atexit(atexit_report);
        return true;
    }();
    (void)registered;
}

/// Reads CUPP_MEMCHECK / CUPP_MEMCHECK_STRICT once at static-init. Values
/// "1", "on", "true" enable record-only mode; "strict" enables strict
/// mode; anything else is a report-file path. CUPP_MEMCHECK_STRICT=1 adds
/// strict mode on top of either.
struct EnvGate {
    EnvGate() {
        if (const char* env = std::getenv("CUPP_MEMCHECK");
            env != nullptr && *env != '\0') {
            if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
                std::strcmp(env, "true") == 0) {
                enable();
            } else if (std::strcmp(env, "strict") == 0) {
                enable();
                set_strict(true);
            } else {
                enable(env);
            }
        }
        if (const char* env = std::getenv("CUPP_MEMCHECK_STRICT");
            env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
            enable();
            set_strict(true);
        }
    }
};
const EnvGate g_env_gate;

}  // namespace

const char* kind_name(Kind kind) {
    switch (kind) {
        case Kind::OutOfBounds: return "out_of_bounds";
        case Kind::UseAfterFree: return "use_after_free";
        case Kind::UninitializedRead: return "uninitialized_read";
        case Kind::DoubleFree: return "double_free";
        case Kind::InvalidFree: return "invalid_free";
        case Kind::Leak: return "leak";
        case Kind::SharedRace: return "shared_race";
        case Kind::AsyncHostRace: return "async_host_race";
    }
    return "unknown";
}

void enable() {
    register_atexit_once();
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void enable(std::string path) {
    Registry::instance().set_report_path(std::move(path));
    enable();
}

void set_strict(bool strict) {
    detail::g_strict.store(strict, std::memory_order_relaxed);
}

void disable() {
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void record(Violation v) {
    Registry::instance().record(std::move(v));
}

std::vector<Violation> violations() { return Registry::instance().violations(); }

std::uint64_t total_violations() { return Registry::instance().total(); }

std::uint64_t violation_count(Kind kind) { return Registry::instance().count(kind); }

void reset() { Registry::instance().reset(); }

std::string report_path() { return Registry::instance().report_path(); }

std::string report_json() { return Registry::instance().to_json(); }

std::string report_text() { return Registry::instance().to_text(); }

bool write_report(const std::string& path) {
    const std::string target =
        path.empty() ? Registry::instance().report_path() : path;
    if (target.empty()) return false;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << Registry::instance().to_json();
    return static_cast<bool>(out);
}

// --- Shadow ----------------------------------------------------------------

void Shadow::set_device(int ordinal) {
    std::lock_guard<std::mutex> lock(mu_);
    device_ = ordinal;
}

std::uint64_t Shadow::on_alloc(DeviceAddr base, std::uint64_t requested,
                               std::source_location loc, const char* label) {
    // Disabled fast path: one relaxed load and an empty-map test, so the
    // allocator microbenchmarks see no bookkeeping cost. (Shadow calls are
    // serialized by whatever serializes GlobalMemory itself, so the
    // unlocked empty() probe is safe; the mutex guards the report paths.)
    if (!enabled() && live_.empty()) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    AllocRecord rec;
    rec.id = next_id_++;
    rec.requested = requested;
    rec.loc = loc;
    rec.label = label != nullptr ? label : "";
    if (enabled()) {
        // One defined bit per byte; allocations made before enable() keep
        // an empty bitmap and count as fully defined (conservative — we
        // never saw their writes).
        rec.defined.assign((requested + 63) / 64, 0);
    }
    const std::uint64_t id = rec.id;
    live_[base] = std::move(rec);
    return id;
}

void Shadow::on_free(DeviceAddr base, std::source_location loc) {
    if (!enabled() && live_.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(base);
    if (it == live_.end()) return;
    FreedRecord fr;
    fr.id = it->second.id;
    fr.base = base;
    fr.requested = it->second.requested;
    fr.alloc_loc = it->second.loc;
    fr.label = it->second.label;
    fr.free_loc = loc;
    freed_.push_back(fr);
    if (freed_.size() > kFreedHistory) freed_.pop_front();
    live_.erase(it);
}

void Shadow::note_bad_free(DeviceAddr addr, std::source_location loc) {
    if (!enabled()) return;
    Violation v;
    v.addr = addr;
    v.bytes = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        v.device = device_;
        const FreedRecord* fr = find_freed(addr, 0);
        if (fr != nullptr) {
            v.kind = Kind::DoubleFree;
            v.origin = origin_string(fr->label, fr->alloc_loc);
            v.message = format(
                "double free of device address 0x%llx at %s: allocation of "
                "%llu bytes (%s) was already freed at %s",
                static_cast<unsigned long long>(addr),
                site_string(loc).c_str(),
                static_cast<unsigned long long>(fr->requested),
                v.origin.c_str(), site_string(fr->free_loc).c_str());
        } else {
            v.kind = Kind::InvalidFree;
            v.message = format(
                "invalid free of device address 0x%llx at %s: not the base "
                "of any allocation",
                static_cast<unsigned long long>(addr),
                site_string(loc).c_str());
        }
    }
    record(std::move(v));
}

void Shadow::on_free_all() {
    report_leaks();
    std::lock_guard<std::mutex> lock(mu_);
    live_.clear();
    freed_.clear();
}

void Shadow::report_leaks() {
    if (!enabled()) return;
    std::vector<Violation> leaks;
    {
        std::lock_guard<std::mutex> lock(mu_);
        leaks.reserve(live_.size());
        for (const auto& [base, rec] : live_) {
            Violation v;
            v.kind = Kind::Leak;
            v.addr = base;
            v.bytes = rec.requested;
            v.device = device_;
            v.origin = origin_string(rec.label, rec.loc);
            v.message = format(
                "leaked %llu bytes at device address 0x%llx, allocated at %s",
                static_cast<unsigned long long>(rec.requested),
                static_cast<unsigned long long>(base), v.origin.c_str());
            leaks.push_back(std::move(v));
        }
    }
    for (Violation& v : leaks) record(std::move(v));
}

void Shadow::on_device_reset() {
    std::lock_guard<std::mutex> lock(mu_);
    // Ids and allocation records survive (the host's views stay valid);
    // only the defined-bits are replayed, so post-reset reads of not-yet
    // re-uploaded bytes report as uninitialized instead of leaking stale
    // pre-reset data silently.
    for (auto& [base, rec] : live_) {
        std::fill(rec.defined.begin(), rec.defined.end(), 0);
    }
}

void Shadow::on_host_write(DeviceAddr dst, std::uint64_t bytes) {
    if (!enabled() || bytes == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    DeviceAddr base = 0;
    const AllocRecord* rec = find_containing(dst, bytes, &base);
    if (rec == nullptr || rec->defined.empty()) return;
    auto& defined = const_cast<AllocRecord*>(rec)->defined;
    const std::uint64_t off = dst - base;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        defined[(off + i) / 64] |= 1ull << ((off + i) % 64);
    }
}

void Shadow::on_copy(DeviceAddr dst, DeviceAddr src, std::uint64_t bytes) {
    if (!enabled() || bytes == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    DeviceAddr src_base = 0, dst_base = 0;
    const AllocRecord* src_rec = find_containing(src, bytes, &src_base);
    const AllocRecord* dst_rec = find_containing(dst, bytes, &dst_base);
    if (dst_rec == nullptr || dst_rec->defined.empty()) return;
    auto& dst_defined = const_cast<AllocRecord*>(dst_rec)->defined;
    const std::uint64_t dst_off = dst - dst_base;
    // Source bytes from an untracked (pre-enable) allocation — or from
    // outside any allocation, which the allocator will have rejected
    // separately — count as defined.
    const bool src_tracked = src_rec != nullptr && !src_rec->defined.empty();
    const std::uint64_t src_off = src_tracked ? src - src_base : 0;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        const bool def =
            !src_tracked ||
            (src_rec->defined[(src_off + i) / 64] >> ((src_off + i) % 64)) & 1;
        const std::uint64_t bit = 1ull << ((dst_off + i) % 64);
        if (def) {
            dst_defined[(dst_off + i) / 64] |= bit;
        } else {
            dst_defined[(dst_off + i) / 64] &= ~bit;
        }
    }
}

std::optional<AccessIssue> Shadow::check_access(DeviceAddr addr,
                                                std::uint64_t bytes,
                                                std::uint64_t expected_id,
                                                Access access) {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceAddr base = 0;
    const AllocRecord* rec = find_containing(addr, bytes, &base);
    if (rec == nullptr) {
        // Nothing live covers this range: distinguish a stale view of a
        // freed allocation from a plain wild access. A view with no
        // generation id and no freed match may simply predate enable()
        // (bookkeeping is skipped while disabled) — stay silent rather
        // than cry out-of-bounds at untracked memory.
        const FreedRecord* fr = find_freed(addr, expected_id);
        if (fr == nullptr && expected_id == 0) return std::nullopt;
        if (fr != nullptr) {
            AccessIssue issue;
            issue.kind = Kind::UseAfterFree;
            issue.origin = origin_string(fr->label, fr->alloc_loc);
            issue.detail = format(
                "allocation of %llu bytes (%s) was freed at %s",
                static_cast<unsigned long long>(fr->requested),
                issue.origin.c_str(), site_string(fr->free_loc).c_str());
            return issue;
        }
        AccessIssue issue;
        issue.kind = Kind::OutOfBounds;
        issue.detail = "address is not inside any live allocation";
        return issue;
    }
    if (expected_id != 0 && rec->id != expected_id) {
        // The range is live again, but under a *different* allocation than
        // the one this view was created over: the original was freed and
        // the address recycled.
        AccessIssue issue;
        issue.kind = Kind::UseAfterFree;
        if (const FreedRecord* fr = find_freed(addr, expected_id);
            fr != nullptr) {
            issue.origin = origin_string(fr->label, fr->alloc_loc);
            issue.detail = format(
                "allocation of %llu bytes (%s) was freed at %s; the address "
                "now belongs to a different allocation (%s)",
                static_cast<unsigned long long>(fr->requested),
                issue.origin.c_str(), site_string(fr->free_loc).c_str(),
                origin_string(rec->label, rec->loc).c_str());
        } else {
            issue.origin = origin_string(rec->label, rec->loc);
            issue.detail =
                "view refers to a freed allocation whose address was recycled";
        }
        return issue;
    }
    if (rec->defined.empty()) return std::nullopt;  // untracked allocation
    auto& defined = const_cast<AllocRecord*>(rec)->defined;
    const std::uint64_t off = addr - base;
    if (access == Access::Write) {
        for (std::uint64_t i = 0; i < bytes; ++i) {
            defined[(off + i) / 64] |= 1ull << ((off + i) % 64);
        }
        return std::nullopt;
    }
    for (std::uint64_t i = 0; i < bytes; ++i) {
        if (((defined[(off + i) / 64] >> ((off + i) % 64)) & 1) == 0) {
            AccessIssue issue;
            issue.kind = Kind::UninitializedRead;
            issue.origin = origin_string(rec->label, rec->loc);
            issue.detail = format(
                "byte %llu of the allocation (%s) was never written",
                static_cast<unsigned long long>(off + i),
                issue.origin.c_str());
            return issue;
        }
    }
    return std::nullopt;
}

std::uint64_t Shadow::alloc_id(DeviceAddr addr) const {
    if (live_.empty()) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    DeviceAddr base = 0;
    const AllocRecord* rec = find_containing(addr, 1, &base);
    return rec != nullptr ? rec->id : 0;
}

std::uint64_t Shadow::live_allocations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
}

std::uint64_t Shadow::live_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& [base, rec] : live_) total += rec.requested;
    return total;
}

const Shadow::AllocRecord* Shadow::find_containing(DeviceAddr addr,
                                                   std::uint64_t bytes,
                                                   DeviceAddr* base_out) const {
    auto it = live_.upper_bound(addr);
    if (it == live_.begin()) return nullptr;
    --it;
    if (addr + bytes > it->first + it->second.requested) return nullptr;
    *base_out = it->first;
    return &it->second;
}

const Shadow::FreedRecord* Shadow::find_freed(DeviceAddr addr,
                                              std::uint64_t expected_id) const {
    // Most recent first: the latest free of a recycled base is the one the
    // stale view refers to.
    for (auto it = freed_.rbegin(); it != freed_.rend(); ++it) {
        if (expected_id != 0) {
            if (it->id == expected_id) return &*it;
            continue;
        }
        if (addr >= it->base && addr < it->base + it->requested) return &*it;
    }
    return nullptr;
}

// --- SharedShadow ----------------------------------------------------------

SharedShadow::SharedShadow(std::size_t arena_bytes) : bytes_(arena_bytes) {}

std::optional<SharedShadow::Conflict> SharedShadow::note_access(
    std::uint64_t offset, std::uint64_t bytes, unsigned tid,
    std::uint64_t epoch, bool is_write) {
    // Blocks run on one engine thread at a time, so no lock is needed: the
    // interleaving the coroutine scheduler picks is the one we see.
    const std::uint64_t tag = epoch + 1;  // 0 stays "never accessed"
    std::optional<Conflict> conflict;
    const std::uint64_t end =
        offset + bytes <= bytes_.size() ? offset + bytes : bytes_.size();
    for (std::uint64_t i = offset; i < end; ++i) {
        ByteState& st = bytes_[i];
        if (!conflict) {
            if (st.write_epoch == tag && st.write_tid != tid) {
                conflict = Conflict{i, st.write_tid, true};
            } else if (is_write && st.read_epoch == tag && st.read_tid != tid) {
                conflict = Conflict{i, st.read_tid, false};
            }
        }
        if (is_write) {
            st.write_epoch = tag;
            st.write_tid = tid;
        } else {
            st.read_epoch = tag;
            st.read_tid = tid;
        }
    }
    return conflict;
}

}  // namespace cusim::memcheck
