// cusim::prof — CUPTI-style profiling for the simulated runtime.
//
// Real CUDA stacks split profiling into two halves, and so does this one:
//
//  * the **callback API**: every runtime entry point (malloc, memcpy sync
//    and async, launch, sync, stream/event ops) fires a typed callback at
//    entry and exit, so tools and tests can observe the runtime without
//    patching it. Subscribe with prof::subscribe(); an injected fault or
//    any other exception unwinding an instrumented call is visible as
//    `failed` on the Exit record.
//  * the **activity aggregator**: per kernel name × launch configuration,
//    the profiler accumulates launch count, modelled device time, host
//    interpreter wall time, achieved occupancy, divergence, coalescing
//    efficiency (useful vs. charged bytes), shared-memory bank conflicts
//    and per-lane attribution ("devN.device" / "devN.streamK") — all from
//    the LaunchStats the engine already reduces in launch order, so the
//    aggregates are bit-identical for any CUPP_SIM_THREADS value. Host
//    wall seconds are the one intentionally non-deterministic field.
//
// Activation follows the CUPP_TRACE / CUPP_MEMCHECK / CUPP_FAULTS pattern:
//
//   CUPP_PROF=<report.json>   collect for the whole run and write the JSON
//                             report (tools/cupp_prof renders it) at exit
//
// plus session scoping via the cusimProfilerStart/Stop runtime mirrors and
// the RAII cupp::prof_session. The disabled fast path is one relaxed
// atomic load per site, like memcheck and faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/launch.hpp"
#include "cusim/types.hpp"

namespace cusim::prof {

// --- enablement -----------------------------------------------------------

namespace detail {
/// True while any callback is subscribed or the collector is enabled —
/// the one gate the API hooks check.
extern std::atomic<bool> g_armed;
/// True while the collector is enabled *and* inside a profiling session
/// (start()ed, not stop()ped) — gates activity recording and the
/// engine-side shared-access tracking.
extern std::atomic<bool> g_collecting;
/// True while correlation ids must be allocated even when the profiler
/// itself is idle (cusim::timeline shares the id space).
extern std::atomic<bool> g_correlation_tracking;
/// The shared CUPTI-style correlation-id counter (next id to hand out).
extern std::atomic<std::uint64_t> g_next_correlation;
}  // namespace detail

/// The per-site fast-path gate: one relaxed load when nothing is armed.
[[nodiscard]] inline bool armed() {
    return detail::g_armed.load(std::memory_order_relaxed);
}

/// True while kernel activities are being recorded (collector enabled and
/// session active). The engine's bank-conflict tracking keys off this.
[[nodiscard]] inline bool collecting() {
    return detail::g_collecting.load(std::memory_order_relaxed);
}

/// True while correlation ids are needed by a consumer other than the
/// profiler (cusim::timeline enables this for its lifetime).
[[nodiscard]] inline bool correlation_tracking() {
    return detail::g_correlation_tracking.load(std::memory_order_relaxed);
}

/// Allocates the next correlation id (1-based). All instrumented entry
/// points run on the host thread, so the sequence is deterministic.
[[nodiscard]] inline std::uint64_t new_correlation_id() {
    return detail::g_next_correlation.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Turns correlation-id allocation on/off independently of the profiler
/// (called by cusim::timeline enable/disable).
void set_correlation_tracking(bool on);
/// Restarts the correlation-id sequence at 1 (test isolation; both
/// prof::reset() and timeline::reset() call this).
void reset_correlation_ids();

// --- the callback API ------------------------------------------------------

/// Runtime entry points the profiler observes. One call counter per api.
enum class Api : std::uint8_t {
    Malloc,
    Free,
    MemcpyH2D,
    MemcpyD2H,
    MemcpyD2D,
    Launch,
    Sync,
    StreamCreate,
    StreamDestroy,
    StreamSynchronize,
    StreamWaitEvent,
    EventCreate,
    EventDestroy,
    EventRecord,
    EventSynchronize,
    LaunchAsync,
    MemcpyH2DAsync,
    MemcpyD2HAsync,
    MemcpyD2DAsync,
    ProfilerStart,
    ProfilerStop,
    StreamBeginCapture,
    StreamEndCapture,
    GraphInstantiate,
    GraphLaunch,
};
inline constexpr std::size_t kApiCount = 25;

/// Stable lower_snake_case api name (report JSON, tests).
[[nodiscard]] const char* api_name(Api api);

enum class Phase : std::uint8_t { Enter, Exit };

/// One callback record. `label` points at caller-owned storage and is only
/// valid for the duration of the callback.
struct ApiRecord {
    Api api = Api::Malloc;
    Phase phase = Phase::Enter;
    int device = -1;            ///< trace ordinal of the device, -1 unknown
    std::uint32_t stream = 0;   ///< stream id (0 = default stream)
    std::uint64_t bytes = 0;    ///< transfer/allocation size when known
    std::string_view label;     ///< kernel or call-site label when known
    bool failed = false;        ///< Exit only: the call unwound via exception
    /// CUPTI-style correlation id linking this call's Enter/Exit pair to
    /// the timeline node(s) it scheduled (0 when tracking is off).
    std::uint64_t correlation = 0;
};

using Callback = std::function<void(const ApiRecord&)>;

/// Registers `cb` for every ApiRecord; returns its subscription id.
/// Callbacks run synchronously on the calling thread of the runtime API —
/// they must not call back into subscribe/unsubscribe.
std::uint64_t subscribe(Callback cb);
/// Drops a subscription; false when the id is unknown.
bool unsubscribe(std::uint64_t id);

/// Fires every subscribed callback (internal: ApiScope and tests).
void dispatch(const ApiRecord& rec);
/// Bumps the per-api call counter (Enter records only; internal).
void note_api_enter(Api api);
/// Enter records seen for one api since reset().
[[nodiscard]] std::uint64_t api_calls(Api api);

/// RAII entry/exit pair around one runtime call. Constructed *before* the
/// fault preflight, so an injected failure is observable as a failed Exit.
/// Costs one relaxed load when the profiler is idle.
class ApiScope {
public:
    ApiScope(Api api, int device, std::uint32_t stream = 0, std::uint64_t bytes = 0,
             std::string_view label = {})
        : armed_(armed()) {
        if (armed_ || correlation_tracking()) corr_ = new_correlation_id();
        if (!armed_) return;
        api_ = api;
        device_ = device;
        stream_ = stream;
        bytes_ = bytes;
        label_ = label;
        exceptions_ = std::uncaught_exceptions();
        note_api_enter(api);
        dispatch(ApiRecord{api, Phase::Enter, device, stream, bytes, label, false,
                           corr_});
    }
    ~ApiScope() {
        if (!armed_) return;
        dispatch(ApiRecord{api_, Phase::Exit, device_, stream_, bytes_, label_,
                           std::uncaught_exceptions() > exceptions_, corr_});
    }
    ApiScope(const ApiScope&) = delete;
    ApiScope& operator=(const ApiScope&) = delete;

    /// The correlation id allocated for this call (0 when nothing needs one).
    [[nodiscard]] std::uint64_t correlation() const { return corr_; }

private:
    bool armed_;
    Api api_ = Api::Malloc;
    int device_ = -1;
    std::uint32_t stream_ = 0;
    std::uint64_t bytes_ = 0;
    std::string_view label_;
    std::uint64_t corr_ = 0;
    int exceptions_ = 0;
};

// --- the activity aggregator ------------------------------------------------

/// Per-lane slice of one kernel's activity ("dev0.device", "dev0.stream2").
struct LaneActivity {
    std::string lane;
    std::uint64_t launches = 0;
    double device_seconds = 0.0;
};

/// Aggregated activity of one kernel name × launch configuration.
struct KernelActivity {
    std::string name;
    dim3 grid{};
    dim3 block{};
    std::uint32_t shared_bytes = 0;
    std::uint32_t regs_per_thread = 16;

    std::uint64_t launches = 0;
    double device_seconds = 0.0;  ///< modelled, summed over launches
    double host_seconds = 0.0;    ///< interpreter wall time (non-deterministic)

    /// Field-wise sums of every launch's LaunchStats. Exceptions:
    /// device_seconds lives in `device_seconds` above, and the per-config
    /// invariants threads_per_block / resident_blocks_per_mp are kept
    /// as-is rather than summed.
    LaunchStats totals{};

    std::vector<LaneActivity> lanes;  ///< first-use order

    // --- derived metrics (what the report prints) ---
    /// Achieved occupancy: resident warps vs. the part's warp capacity.
    [[nodiscard]] double occupancy(unsigned max_warps_per_mp) const;
    /// Charged-bus efficiency: useful payload bytes / charged bytes (1.0
    /// when every access coalesced, or when no traffic at all).
    [[nodiscard]] double coalescing_efficiency() const;
    /// Issue-time inflation from divergence re-issue: compute cycles over
    /// what they would have been without the divergence penalty (>= 1).
    [[nodiscard]] double divergence_serialization(unsigned divergence_penalty) const;
    /// Compute cycles per charged byte (the roofline x-axis).
    [[nodiscard]] double arithmetic_intensity() const;
};

/// Roofline constants snapshotted from the first recorded launch's
/// CostModel (zero/invalid until then).
struct ModelSnapshot {
    bool valid = false;
    double core_clock_hz = 0.0;
    unsigned multiprocessors = 0;
    unsigned max_warps_per_mp = 0;
    unsigned divergence_penalty = 0;
    double mem_bandwidth_bytes_per_s = 0.0;
    /// Cycles per byte at the roofline ridge: a kernel above it is
    /// compute-bound, below it memory-bound.
    [[nodiscard]] double ridge_cycles_per_byte() const {
        if (mem_bandwidth_bytes_per_s <= 0.0) return 0.0;
        return core_clock_hz * multiprocessors / mem_bandwidth_bytes_per_s;
    }
};

/// Aggregate of one transfer direction.
struct TransferTotals {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    double seconds = 0.0;  ///< modelled transfer time
};

/// Records one executed grid (device.cpp / stream.cpp, after run_grid's
/// launch-order reduction — never from pool workers, so insertion order is
/// deterministic). `host_seconds` is interpreter wall time for this launch.
void record_launch(std::string_view name, const LaunchConfig& cfg,
                   const LaunchStats& stats, std::string_view lane, int device,
                   double host_seconds, const CostModel& cm);

/// Records one executed transfer (sync or drained async).
void record_transfer(CopyKind kind, std::uint64_t bytes, double seconds, int device);

// --- sessions ---------------------------------------------------------------

/// Enables the collector, in memory only, and starts a session.
void enable();
/// Enables the collector, starts a session, and arranges for the JSON
/// report to be written to `path` at process exit (and on write_report()).
void enable(std::string path);
/// Ends the session and disarms collection; recorded data is kept.
void disable();
/// disable() + drops activities, api counters, report path (test isolation).
void reset();

/// cusimProfilerStart: resumes collection. A no-op unless the collector is
/// enabled (mirroring cudaProfilerStart without an attached profiler).
void start();
/// cusimProfilerStop: pauses collection; enable()/start() resume it.
void stop();
/// start()/stop() transitions seen since reset().
[[nodiscard]] std::uint64_t session_starts();
[[nodiscard]] std::uint64_t session_stops();

// --- introspection & report --------------------------------------------------

/// Snapshot of every kernel activity, in first-launch order.
[[nodiscard]] std::vector<KernelActivity> kernel_activities();
/// Totals of one transfer direction (HostToHost always empty).
[[nodiscard]] TransferTotals transfer_totals(CopyKind kind);
/// The model constants snapshotted from the first recorded launch.
[[nodiscard]] ModelSnapshot model_snapshot();

/// The configured report file ("" when none).
[[nodiscard]] std::string report_path();
/// The profiler report as a JSON document (schema: see DESIGN.md
/// "Profiling"; kernels sorted by modelled device time, hotspot ranking,
/// roofline summary).
[[nodiscard]] std::string report_json();
/// Writes report_json() to `path` (or the configured path when omitted).
/// Returns false when no path is known or the write failed.
bool write_report(const std::string& path = {});

}  // namespace cusim::prof
