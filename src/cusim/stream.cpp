// Streams & events: the Device's deferred asynchronous work queues.
//
// An explicit stream is a FIFO of ops captured at enqueue time (kernel
// closures, snapshotted H2D sources, host destinations, event marks).
// Nothing executes until a synchronization point; then drain() runs every
// executable op in the canonical order — streams in ascending id, each in
// enqueue order, an op blocked on a cross-stream event wait yielding to
// the next stream until the record it waits on has executed. The order is
// a pure function of the enqueue sequence: LaunchStats, memcheck reports,
// fault counters and trace output are bit-identical for any engine thread
// count (only the *blocks inside one grid* parallelize, under run_grid's
// existing launch-order reduction).
//
// Deadlock-freedom of drain(): a wait's target record is always an op
// enqueued strictly earlier (the target seq is snapshotted when the wait
// is enqueued). Consider the queue-front op with the smallest global seq:
// were it a blocked wait, its target record — with an even smaller seq —
// would still sit in some queue whose front would then have a smaller seq
// than the minimum. Contradiction, so the minimal front is always
// executable and every pass makes progress.

#include "cusim/stream.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "cusim/memcheck.hpp"
#include "cusim/multiprocessor.hpp"
#include "cusim/prof.hpp"
#include "cusim/report.hpp"
#include "cusim/stream_detail.hpp"
#include "cusim/timeline.hpp"

namespace cusim {

namespace {

using detail::StreamOp;

const char* op_label(StreamOp::Kind k) {
    switch (k) {
        case StreamOp::Kind::Launch: return "launch";
        case StreamOp::Kind::CopyH2D: return "memcpy H2D async";
        case StreamOp::Kind::CopyD2H: return "memcpy D2H async";
        case StreamOp::Kind::CopyD2D: return "memcpy D2D async";
        case StreamOp::Kind::Record: return "event record";
        case StreamOp::Kind::Wait: return "wait event";
    }
    return "?";
}

void count_enqueue() {
    if (cupp::trace::enabled()) {
        static const cupp::trace::counter_handle ops("cusim.stream.ops_enqueued");
        ops.add();
    }
}

}  // namespace

Device::Device(DeviceProperties props)
    : props_(std::move(props)), memory_(props_.total_global_mem) {
    static std::atomic<int> next_ordinal{0};
    trace_ordinal_ = next_ordinal.fetch_add(1, std::memory_order_relaxed);
    memory_.shadow().set_device(trace_ordinal_);
}

Device::~Device() = default;

detail::StreamTable& Device::stream_table() {
    if (!streams_) streams_ = std::make_unique<detail::StreamTable>();
    return *streams_;
}

// --- creation / destruction -------------------------------------------------

StreamId Device::stream_create() {
    prof::ApiScope prof_scope(prof::Api::StreamCreate, trace_ordinal_);
    // Creating a stream allocates runtime resources; the Malloc site with a
    // recognisable label lets fault plans target it.
    fault_preflight(faults::Site::Malloc, "stream_create");
    detail::StreamTable& t = stream_table();
    const StreamId id = t.next_stream++;
    t.streams[id];  // default StreamState: idle, empty queue
    if (cupp::trace::enabled()) {
        static const cupp::trace::counter_handle created("cusim.stream.created");
        created.add();
        cupp::trace::emit_instant(host_track(), "stream create",
                                  trace_time_us(host_time_), {{"stream", id}});
    }
    return id;
}

void Device::stream_destroy(StreamId stream) {
    prof::ApiScope prof_scope(prof::Api::StreamDestroy, trace_ordinal_, stream);
    detail::StreamTable& t = stream_table();
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "stream_destroy: unknown stream");
    }
    // cudaStreamDestroy semantics: queued work still completes. Draining is
    // global (the canonical order is device-wide), which executes at least
    // everything this stream needs.
    if (capturing_) capture_violation("stream_destroy during stream capture");
    drain_streams();
    t.streams.erase(stream);
}

EventId Device::event_create() {
    prof::ApiScope prof_scope(prof::Api::EventCreate, trace_ordinal_);
    fault_preflight(faults::Site::Malloc, "event_create");
    detail::StreamTable& t = stream_table();
    const EventId id = t.next_event++;
    t.events[id];
    return id;
}

void Device::event_destroy(EventId event) {
    prof::ApiScope prof_scope(prof::Api::EventDestroy, trace_ordinal_);
    detail::StreamTable& t = stream_table();
    if (t.events.erase(event) == 0) {
        throw Error(ErrorCode::InvalidValue, "event_destroy: unknown event");
    }
    // Pending record/wait ops referencing the id degrade to no-ops at
    // drain; ids are never reused, so no aliasing.
}

// --- enqueue ----------------------------------------------------------------

void Device::launch_async(const LaunchConfig& cfg, const KernelEntry& entry,
                          std::string_view name, StreamId stream) {
    launch_async(cfg, KernelSpec(entry), name, stream);
}

void Device::launch_async(const LaunchConfig& cfg, KernelSpec spec,
                          std::string_view name, StreamId stream) {
    if (stream == kDefaultStream) {
        (void)launch(cfg, std::move(spec), name);
        return;
    }
    prof::ApiScope prof_scope(prof::Api::LaunchAsync, trace_ordinal_, stream, 0, name);
    timeline::FailScope tl_fail(trace_ordinal_, stream, timeline::Category::Kernel,
                                name, 0, prof_scope.correlation(),
                                tl_abs(host_time_));
    // Same atomic-rejection contract as launch(): preflight and validation
    // happen at enqueue, before anything is queued, so an injected failure
    // leaves no half-enqueued op and a retry is clean.
    const std::string label = "async " + (name.empty() ? std::string("kernel")
                                                       : std::string(name));
    fault_preflight(faults::Site::Launch, label);
    cfg.validate();
    (void)blocks_per_mp(props_.cost, cfg);

    detail::StreamTable& t = stream_table();
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "launch_async: unknown stream");
    }
    StreamOp op;
    op.kind = StreamOp::Kind::Launch;
    op.cfg = cfg;
    op.entry = std::move(spec);
    op.name = name.empty() ? std::string("kernel") : std::string(name);
    if (capturing_ && capture_op(op, stream)) return;
    op.seq = t.next_seq++;
    op.issue_host_time = host_time_;
    op.corr = prof_scope.correlation();
    if (timeline::enabled()) {
        op.tl_anchor = timeline::anchor_host(trace_ordinal_, tl_abs(host_time_));
    }
    it->second.pending.push_back(std::move(op));

    // The host pays only the issue overhead, exactly like a legacy launch.
    const double t0 = host_time_;
    host_time_ += props_.cost.launch_overhead_s;
    if (timeline::enabled()) {
        timeline::host_op(trace_ordinal_, timeline::Category::Host,
                          "launch " + it->second.pending.back().name + " (s" +
                              std::to_string(stream) + ")",
                          0, prof_scope.correlation(), tl_abs(t0),
                          tl_abs(host_time_));
    }
    if (cupp::trace::enabled()) {
        cupp::trace::emit_complete(host_track(),
                                   "launch " + it->second.pending.back().name +
                                       " (s" + std::to_string(stream) + ")",
                                   trace_time_us(t0),
                                   props_.cost.launch_overhead_s * 1e6,
                                   {{"stream", stream}});
    }
    count_enqueue();
}

void Device::memcpy_to_device_async(DeviceAddr dst, const void* src,
                                    std::uint64_t bytes, StreamId stream) {
    if (stream == kDefaultStream) {
        copy_to_device(dst, src, bytes);
        return;
    }
    prof::ApiScope prof_scope(prof::Api::MemcpyH2DAsync, trace_ordinal_, stream, bytes);
    timeline::FailScope tl_fail(trace_ordinal_, stream,
                                timeline::Category::MemcpyH2D, "memcpy H2D async",
                                bytes, prof_scope.correlation(), tl_abs(host_time_));
    fault_preflight(faults::Site::MemcpyH2D, "async");
    if (src == nullptr) throw Error(ErrorCode::InvalidValue, "null async H2D source");
    if (!memory_.range_valid(dst, bytes)) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "async H2D outside any allocation");
    }
    detail::StreamTable& t = stream_table();
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "memcpy_to_device_async: unknown stream");
    }
    StreamOp op;
    op.kind = StreamOp::Kind::CopyH2D;
    op.dst = dst;
    op.bytes = bytes;
    // Pageable-memory semantics: snapshot now, so host writes to `src`
    // after this call never leak into the copy.
    const auto* p = static_cast<const std::byte*>(src);
    op.staged.assign(p, p + bytes);
    if (capturing_ && capture_op(op, stream)) return;
    op.seq = t.next_seq++;
    op.issue_host_time = host_time_;
    op.corr = prof_scope.correlation();
    if (timeline::enabled()) {
        op.tl_anchor = timeline::anchor_host(trace_ordinal_, tl_abs(host_time_));
    }
    it->second.pending.push_back(std::move(op));
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant(
            host_track(), "enqueue H2D (s" + std::to_string(stream) + ")",
            trace_time_us(host_time_), {{"bytes", bytes}, {"stream", stream}});
    }
    count_enqueue();
}

void Device::memcpy_to_host_async(void* dst, DeviceAddr src, std::uint64_t bytes,
                                  StreamId stream) {
    if (stream == kDefaultStream) {
        copy_to_host(dst, src, bytes);
        return;
    }
    prof::ApiScope prof_scope(prof::Api::MemcpyD2HAsync, trace_ordinal_, stream, bytes);
    timeline::FailScope tl_fail(trace_ordinal_, stream,
                                timeline::Category::MemcpyD2H, "memcpy D2H async",
                                bytes, prof_scope.correlation(), tl_abs(host_time_));
    fault_preflight(faults::Site::MemcpyD2H, "async");
    if (dst == nullptr) throw Error(ErrorCode::InvalidValue, "null async D2H destination");
    if (!memory_.range_valid(src, bytes)) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "async D2H outside any allocation");
    }
    detail::StreamTable& t = stream_table();
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "memcpy_to_host_async: unknown stream");
    }
    StreamOp op;
    op.kind = StreamOp::Kind::CopyD2H;
    op.src = src;
    op.bytes = bytes;
    op.host_dst = dst;
    if (capturing_ && capture_op(op, stream)) return;
    op.seq = t.next_seq++;
    op.issue_host_time = host_time_;
    if (memcheck::enabled()) {
        detail::PendingHostWrite w;
        w.begin = static_cast<const std::byte*>(dst);
        w.end = w.begin + bytes;
        w.stream = stream;
        w.seq = op.seq;
        t.host_writes.push_back(w);
    }
    op.corr = prof_scope.correlation();
    if (timeline::enabled()) {
        op.tl_anchor = timeline::anchor_host(trace_ordinal_, tl_abs(host_time_));
    }
    it->second.pending.push_back(std::move(op));
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant(
            host_track(), "enqueue D2H (s" + std::to_string(stream) + ")",
            trace_time_us(host_time_), {{"bytes", bytes}, {"stream", stream}});
    }
    count_enqueue();
}

void Device::memcpy_device_to_device_async(DeviceAddr dst, DeviceAddr src,
                                           std::uint64_t bytes, StreamId stream) {
    if (stream == kDefaultStream) {
        copy_device_to_device(dst, src, bytes);
        return;
    }
    prof::ApiScope prof_scope(prof::Api::MemcpyD2DAsync, trace_ordinal_, stream, bytes);
    timeline::FailScope tl_fail(trace_ordinal_, stream,
                                timeline::Category::MemcpyD2D, "memcpy D2D async",
                                bytes, prof_scope.correlation(), tl_abs(host_time_));
    fault_preflight(faults::Site::MemcpyD2D, "async");
    if (!memory_.range_valid(src, bytes) || !memory_.range_valid(dst, bytes)) {
        throw Error(ErrorCode::InvalidDevicePointer,
                    "async D2D outside any allocation");
    }
    detail::StreamTable& t = stream_table();
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue,
                    "memcpy_device_to_device_async: unknown stream");
    }
    StreamOp op;
    op.kind = StreamOp::Kind::CopyD2D;
    op.dst = dst;
    op.src = src;
    op.bytes = bytes;
    if (capturing_ && capture_op(op, stream)) return;
    op.seq = t.next_seq++;
    op.issue_host_time = host_time_;
    op.corr = prof_scope.correlation();
    if (timeline::enabled()) {
        op.tl_anchor = timeline::anchor_host(trace_ordinal_, tl_abs(host_time_));
    }
    it->second.pending.push_back(std::move(op));
    count_enqueue();
}

void Device::event_record(EventId event, StreamId stream) {
    prof::ApiScope prof_scope(prof::Api::EventRecord, trace_ordinal_, stream);
    timeline::FailScope tl_fail(trace_ordinal_, stream,
                                timeline::Category::EventRecord, "event record", 0,
                                prof_scope.correlation(), tl_abs(host_time_));
    detail::StreamTable& t = stream_table();
    auto ev = t.events.find(event);
    if (ev == t.events.end()) {
        throw Error(ErrorCode::InvalidValue, "event_record: unknown event");
    }
    if (stream == kDefaultStream) {
        // Legacy-stream record: after all currently issued work, device-wide.
        join_streams();
        const std::uint64_t seq = t.next_seq++;
        ev->second.time = std::max(host_time_, device_free_at_);
        ev->second.last_record_seq = seq;
        ev->second.completed_seq = seq;
        if (timeline::enabled()) {
            const double done = ev->second.time;
            const std::uint64_t anchor =
                host_time_ >= device_free_at_
                    ? timeline::anchor_host(trace_ordinal_, tl_abs(done))
                    : 0;
            const std::uint64_t node = timeline::device_op(
                trace_ordinal_, timeline::Category::EventRecord, "event record",
                0, prof_scope.correlation(), tl_abs(done), tl_abs(done), anchor);
            timeline::register_event_record(trace_ordinal_, event, node);
        }
        return;
    }
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "event_record: unknown stream");
    }
    StreamOp op;
    op.kind = StreamOp::Kind::Record;
    op.event = event;
    // A captured record never touches EventState: the event's live record
    // chain is only updated when the graph replays.
    if (capturing_ && capture_op(op, stream)) return;
    op.seq = t.next_seq++;
    op.issue_host_time = host_time_;
    op.corr = prof_scope.correlation();
    if (timeline::enabled()) {
        op.tl_anchor = timeline::anchor_host(trace_ordinal_, tl_abs(host_time_));
    }
    ev->second.last_record_seq = op.seq;
    it->second.pending.push_back(std::move(op));
    if (cupp::trace::enabled()) {
        static const cupp::trace::counter_handle recs("cusim.stream.events_recorded");
        recs.add();
    }
    count_enqueue();
}

void Device::stream_wait_event(StreamId stream, EventId event) {
    prof::ApiScope prof_scope(prof::Api::StreamWaitEvent, trace_ordinal_, stream);
    timeline::FailScope tl_fail(trace_ordinal_, stream,
                                timeline::Category::EventWait, "wait event", 0,
                                prof_scope.correlation(), tl_abs(host_time_));
    detail::StreamTable& t = stream_table();
    auto ev = t.events.find(event);
    if (ev == t.events.end()) {
        throw Error(ErrorCode::InvalidValue, "stream_wait_event: unknown event");
    }
    if (stream == kDefaultStream) {
        // The legacy stream orders behind the event: execute everything, then
        // push the device-wide horizon past the recorded point.
        join_streams();
        device_free_at_ = std::max(device_free_at_, ev->second.time);
        if (timeline::enabled() && ev->second.last_record_seq != 0) {
            timeline::device_op(
                trace_ordinal_, timeline::Category::EventWait, "wait event", 0,
                prof_scope.correlation(), tl_abs(device_free_at_),
                tl_abs(device_free_at_),
                timeline::event_record_node(trace_ordinal_, event));
        }
        return;
    }
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "stream_wait_event: unknown stream");
    }
    StreamOp op;
    op.kind = StreamOp::Kind::Wait;
    op.event = event;
    // Capture resolves the wait against the *captured* record chain
    // (becoming a graph edge, or a no-op for pre-capture records) and can
    // pull an uncaptured stream into the capture — see capture_op().
    if (capturing_ && capture_op(op, stream)) return;
    op.seq = t.next_seq++;
    op.issue_host_time = host_time_;
    // CUDA captures the event's *current* record; a later re-record does not
    // move this wait. An unrecorded event makes the wait a no-op.
    op.wait_target_seq = ev->second.last_record_seq;
    op.wait_has_target = ev->second.last_record_seq != 0;
    op.corr = prof_scope.correlation();
    it->second.pending.push_back(std::move(op));
    if (cupp::trace::enabled()) {
        static const cupp::trace::counter_handle waits("cusim.stream.wait_events");
        waits.add();
    }
    count_enqueue();
}

// --- the drain (canonical execution order) ----------------------------------

bool Device::op_ready(const detail::StreamOp& op) const {
    if (op.kind != StreamOp::Kind::Wait || !op.wait_has_target) return true;
    const auto ev = streams_->events.find(op.event);
    if (ev == streams_->events.end()) return true;  // destroyed -> no-op
    return ev->second.completed_seq >= op.wait_target_seq;
}

void Device::execute_op(StreamId sid, detail::StreamState& st, detail::StreamOp& op) {
    detail::StreamTable& t = *streams_;
    const bool tracing = cupp::trace::enabled();
    switch (op.kind) {
        case StreamOp::Kind::Launch: {
            // Same attribution as Device::launch, but to the stream's lane —
            // per-stream clocks stay the profiler's time base.
            const bool profiling = prof::collecting();
            const double wall0 = profiling ? cupp::trace::wall_clock_us() : 0.0;
            const LaunchStats stats = run_grid(op.cfg, op.entry, op.name);
            if (profiling) {
                prof::record_launch(op.name, op.cfg, stats, stream_track(sid),
                                    trace_ordinal_,
                                    (cupp::trace::wall_clock_us() - wall0) * 1e-6,
                                    props_.cost);
            }
            const double start = std::max(st.free_at, op.issue_host_time);
            st.free_at = start + stats.device_seconds;
            last_launch_ = stats;
            ++launch_count_;
            record_launch(op.name, stats, start, st.free_at);
            if (timeline::enabled()) {
                timeline::stream_op(trace_ordinal_, sid, timeline::Category::Kernel,
                                    op.name, 0, op.corr, tl_abs(start),
                                    tl_abs(st.free_at), op.tl_anchor);
            }
            if (tracing) {
                cupp::trace::emit_complete(
                    stream_track(sid), op.name, trace_time_us(start),
                    stats.device_seconds * 1e6,
                    {{"stream", sid},
                     {"blocks", stats.blocks},
                     {"threads", stats.threads},
                     {"threads_per_block", stats.threads_per_block},
                     {"warps", stats.warps},
                     {"compute_cycles", stats.compute_cycles},
                     {"stall_cycles", stats.stall_cycles},
                     {"bytes_read", stats.bytes_read},
                     {"bytes_written", stats.bytes_written},
                     {"divergent_events", stats.divergent_events},
                     {"branch_evaluations", stats.branch_evaluations},
                     {"syncthreads", stats.syncthreads_count},
                     {"resident_blocks_per_mp", stats.resident_blocks_per_mp},
                     {"bound_by", to_string(bound_by(stats, props_.cost))}});
                static const cupp::trace::counter_handle launches(
                    "cusim.stream.kernel_launches");
                launches.add();
            }
            break;
        }
        case StreamOp::Kind::CopyH2D: {
            const double start = std::max(st.free_at, op.issue_host_time);
            const double secs =
                props_.cost.transfer_latency_s +
                static_cast<double>(op.bytes) / props_.cost.pcie_bandwidth_bytes_per_s;
            st.free_at = start + secs;
            memory_.write(op.dst, op.staged.data(), op.bytes);
            bytes_to_device_ += op.bytes;
            if (prof::collecting()) {
                prof::record_transfer(CopyKind::HostToDevice, op.bytes, secs,
                                      trace_ordinal_);
            }
            if (timeline::enabled()) {
                timeline::stream_op(trace_ordinal_, sid,
                                    timeline::Category::MemcpyH2D, op_label(op.kind),
                                    op.bytes, op.corr, tl_abs(start),
                                    tl_abs(st.free_at), op.tl_anchor);
            }
            if (tracing) {
                cupp::trace::emit_complete(stream_track(sid), op_label(op.kind),
                                           trace_time_us(start), secs * 1e6,
                                           {{"bytes", op.bytes}, {"kind", "H2D"}});
                static const cupp::trace::counter_handle h2d("cusim.stream.bytes_h2d");
                h2d.add(op.bytes);
            }
            break;
        }
        case StreamOp::Kind::CopyD2H: {
            const double start = std::max(st.free_at, op.issue_host_time);
            const double secs =
                props_.cost.transfer_latency_s +
                static_cast<double>(op.bytes) / props_.cost.pcie_bandwidth_bytes_per_s;
            st.free_at = start + secs;
            memory_.read(op.src, op.host_dst, op.bytes);
            bytes_to_host_ += op.bytes;
            if (prof::collecting()) {
                prof::record_transfer(CopyKind::DeviceToHost, op.bytes, secs,
                                      trace_ordinal_);
            }
            if (timeline::enabled()) {
                timeline::stream_op(trace_ordinal_, sid,
                                    timeline::Category::MemcpyD2H, op_label(op.kind),
                                    op.bytes, op.corr, tl_abs(start),
                                    tl_abs(st.free_at), op.tl_anchor);
            }
            for (detail::PendingHostWrite& w : t.host_writes) {
                if (w.seq == op.seq) {
                    w.drained = true;
                    w.complete_at = st.free_at;
                }
            }
            if (tracing) {
                cupp::trace::emit_complete(stream_track(sid), op_label(op.kind),
                                           trace_time_us(start), secs * 1e6,
                                           {{"bytes", op.bytes}, {"kind", "D2H"}});
                static const cupp::trace::counter_handle d2h("cusim.stream.bytes_d2h");
                d2h.add(op.bytes);
            }
            break;
        }
        case StreamOp::Kind::CopyD2D: {
            const double start = std::max(st.free_at, op.issue_host_time);
            const double secs = static_cast<double>(op.bytes) /
                                props_.cost.mem_bandwidth_bytes_per_s;
            st.free_at = start + secs;
            memory_.copy(op.dst, op.src, op.bytes);
            if (prof::collecting()) {
                prof::record_transfer(CopyKind::DeviceToDevice, op.bytes, secs,
                                      trace_ordinal_);
            }
            if (timeline::enabled()) {
                timeline::stream_op(trace_ordinal_, sid,
                                    timeline::Category::MemcpyD2D, op_label(op.kind),
                                    op.bytes, op.corr, tl_abs(start),
                                    tl_abs(st.free_at), op.tl_anchor);
            }
            if (tracing) {
                cupp::trace::emit_complete(stream_track(sid), op_label(op.kind),
                                           trace_time_us(start), secs * 1e6,
                                           {{"bytes", op.bytes}, {"kind", "D2D"}});
            }
            break;
        }
        case StreamOp::Kind::Record: {
            auto ev = t.events.find(op.event);
            if (ev != t.events.end()) {
                // An idle stream completes the record immediately at issue
                // time; a busy one at its current horizon. When one event is
                // recorded on several streams, drain order may execute an
                // *older* record (lower enqueue seq) after a newer one — the
                // newest record must win, or a wait targeting it would spin
                // on a regressed completed_seq.
                const double done = std::max(st.free_at, op.issue_host_time);
                const bool newest = op.seq >= ev->second.completed_seq;
                if (newest) {
                    ev->second.time = done;
                    ev->second.completed_seq = op.seq;
                }
                if (timeline::enabled()) {
                    const std::uint64_t node = timeline::stream_op(
                        trace_ordinal_, sid, timeline::Category::EventRecord,
                        "event record", 0, op.corr, tl_abs(done), tl_abs(done),
                        op.tl_anchor);
                    // Mirrors EventState::time: waits edge to the record
                    // that actually defines the event's completion point.
                    if (newest) {
                        timeline::register_event_record(trace_ordinal_, op.event,
                                                        node);
                    }
                }
                if (tracing) {
                    cupp::trace::emit_instant(stream_track(sid), "event record",
                                              trace_time_us(done),
                                              {{"event", op.event}});
                }
            }
            break;
        }
        case StreamOp::Kind::Wait: {
            auto ev = t.events.find(op.event);
            if (ev != t.events.end() && op.wait_has_target) {
                st.free_at = std::max(st.free_at, ev->second.time);
                if (timeline::enabled()) {
                    // Cross-stream edge: the wait point depends on the event's
                    // defining record (and the stream FIFO, via the tail).
                    timeline::stream_op(
                        trace_ordinal_, sid, timeline::Category::EventWait,
                        "wait event", 0, op.corr, tl_abs(st.free_at),
                        tl_abs(st.free_at),
                        timeline::event_record_node(trace_ordinal_, op.event));
                }
            }
            break;
        }
    }
}

void Device::drain_streams() {
    if (!streams_) return;
    detail::StreamTable& t = *streams_;
    for (;;) {
        bool progress = false;
        bool remaining = false;
        for (auto& [sid, st] : t.streams) {
            while (!st.pending.empty() && op_ready(st.pending.front())) {
                // Pop before executing: a deferred kernel failure surfaces
                // from the synchronizing call (as on CUDA) and the faulting
                // op is consumed, so the queue stays drainable afterwards.
                StreamOp op = std::move(st.pending.front());
                st.pending.pop_front();
                execute_op(sid, st, op);
                progress = true;
            }
            if (!st.pending.empty()) remaining = true;
        }
        if (!remaining) return;
        if (!progress) {
            // Unreachable (see the deadlock-freedom argument above) —
            // surfacing a bug beats spinning forever.
            throw Error(ErrorCode::LaunchFailure, "stream drain stalled");
        }
    }
}

void Device::join_streams_slow() {
    drain_streams();
    for (const auto& [sid, st] : streams_->streams) {
        if (st.free_at > device_free_at_) {
            device_free_at_ = st.free_at;
            // The stream that pushed the device-wide horizon becomes the
            // node later default-stream work FIFO-orders behind.
            if (timeline::enabled()) {
                timeline::set_device_tail(
                    trace_ordinal_, timeline::stream_tail(trace_ordinal_, sid));
            }
        }
    }
}

// --- queries & synchronization ----------------------------------------------

bool Device::stream_query(StreamId stream) const {
    if (stream == kDefaultStream) return !kernel_active();
    if (!streams_) {
        throw Error(ErrorCode::InvalidValue, "stream_query: unknown stream");
    }
    const auto it = streams_->streams.find(stream);
    if (it == streams_->streams.end()) {
        throw Error(ErrorCode::InvalidValue, "stream_query: unknown stream");
    }
    return it->second.pending.empty() && it->second.free_at <= host_time_;
}

void Device::stream_synchronize(StreamId stream) {
    if (stream == kDefaultStream) {
        synchronize();
        return;
    }
    prof::ApiScope prof_scope(prof::Api::StreamSynchronize, trace_ordinal_, stream);
    timeline::FailScope tl_fail(trace_ordinal_, stream, timeline::Category::Sync,
                                "stream synchronize", 0, prof_scope.correlation(),
                                tl_abs(host_time_));
    if (capturing_) capture_violation("stream_synchronize during stream capture");
    fault_preflight(faults::Site::Sync, "stream");
    detail::StreamTable& t = stream_table();
    auto it = t.streams.find(stream);
    if (it == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "stream_synchronize: unknown stream");
    }
    drain_streams();
    host_time_ = std::max(host_time_, it->second.free_at);
    prune_completed_async();
    if (timeline::enabled()) {
        timeline::host_sync(trace_ordinal_, "stream synchronize",
                            prof_scope.correlation(), tl_abs(host_time_),
                            timeline::stream_tail(trace_ordinal_, stream));
    }
}

bool Device::event_query(EventId event) const {
    if (!streams_) {
        throw Error(ErrorCode::InvalidValue, "event_query: unknown event");
    }
    const auto it = streams_->events.find(event);
    if (it == streams_->events.end()) {
        throw Error(ErrorCode::InvalidValue, "event_query: unknown event");
    }
    const detail::EventState& ev = it->second;
    if (ev.last_record_seq == 0) return true;  // never recorded: complete (CUDA)
    return ev.completed_seq >= ev.last_record_seq && ev.time <= host_time_;
}

void Device::event_synchronize(EventId event) {
    prof::ApiScope prof_scope(prof::Api::EventSynchronize, trace_ordinal_);
    timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::Sync,
                                "event synchronize", 0, prof_scope.correlation(),
                                tl_abs(host_time_));
    if (capturing_) capture_violation("event_synchronize during stream capture");
    fault_preflight(faults::Site::Sync, "event");
    detail::StreamTable& t = stream_table();
    auto it = t.events.find(event);
    if (it == t.events.end()) {
        throw Error(ErrorCode::InvalidValue, "event_synchronize: unknown event");
    }
    drain_streams();
    host_time_ = std::max(host_time_, it->second.time);
    prune_completed_async();
    if (timeline::enabled()) {
        timeline::host_sync(trace_ordinal_, "event synchronize",
                            prof_scope.correlation(), tl_abs(host_time_),
                            timeline::event_record_node(trace_ordinal_, event));
    }
}

double Device::event_elapsed_ms(EventId start, EventId stop) {
    detail::StreamTable& t = stream_table();
    auto a = t.events.find(start);
    auto b = t.events.find(stop);
    if (a == t.events.end() || b == t.events.end()) {
        throw Error(ErrorCode::InvalidValue, "event_elapsed_ms: unknown event");
    }
    if (capturing_) capture_violation("event_elapsed_ms during stream capture");
    drain_streams();
    if (a->second.last_record_seq == 0 || b->second.last_record_seq == 0) {
        throw Error(ErrorCode::InvalidValue, "event_elapsed_ms: event never recorded");
    }
    if (a->second.time > host_time_ || b->second.time > host_time_) {
        throw Error(ErrorCode::NotReady,
                    "event_elapsed_ms: events not yet complete (synchronize first)");
    }
    return (b->second.time - a->second.time) * 1e3;
}

std::uint64_t Device::pending_async_ops() const {
    if (!streams_) return 0;
    std::uint64_t n = 0;
    for (const auto& [sid, st] : streams_->streams) n += st.pending.size();
    return n;
}

// --- async host-race detection (memcheck) ------------------------------------

void Device::note_host_read(const void* p, std::uint64_t bytes) {
    if (!streams_ || !memcheck::enabled()) return;
    const auto* begin = static_cast<const std::byte*>(p);
    const auto* end = begin + bytes;
    for (const detail::PendingHostWrite& w : streams_->host_writes) {
        const bool in_flight = !w.drained || w.complete_at > host_time_;
        if (!in_flight || begin >= w.end || end <= w.begin) continue;
        memcheck::Violation v;
        v.kind = memcheck::Kind::AsyncHostRace;
        v.message = "host read of " + std::to_string(bytes) +
                    " byte(s) races an in-flight async D2H copy on stream " +
                    std::to_string(w.stream) +
                    " (synchronize the stream before touching the destination)";
        v.origin = "stream " + std::to_string(w.stream) + " D2H";
        v.addr = reinterpret_cast<std::uintptr_t>(p);
        v.bytes = bytes;
        v.device = trace_ordinal_;
        memcheck::record(std::move(v));
        if (memcheck::strict()) {
            throw Error(ErrorCode::MemcheckViolation,
                        "async host race (strict memcheck)");
        }
        return;  // one report per touched range is enough
    }
}

void Device::prune_completed_async() {
    if (!streams_) return;
    auto& ws = streams_->host_writes;
    ws.erase(std::remove_if(ws.begin(), ws.end(),
                            [&](const detail::PendingHostWrite& w) {
                                return w.drained && w.complete_at <= host_time_;
                            }),
             ws.end());
}

// --- reset paths --------------------------------------------------------------

void Device::reset_stream_clocks() {
    for (auto& [sid, st] : streams_->streams) st.free_at = 0.0;
}

void Device::abandon_streams() {
    // A device reset kills any live capture outright (as on CUDA, where
    // capture state dies with the context).
    capturing_ = false;
    capture_.reset();
    // Queued work died with the device: drop it unexecuted. Events whose
    // record was still queued complete at the reset point so waits and
    // event_synchronize can't stall on an op that will never run.
    detail::StreamTable& t = *streams_;
    for (auto& [sid, st] : t.streams) {
        for (const StreamOp& op : st.pending) {
            if (op.kind != StreamOp::Kind::Record) continue;
            auto ev = t.events.find(op.event);
            if (ev != t.events.end() && ev->second.completed_seq < op.seq) {
                ev->second.time = host_time_;
                ev->second.completed_seq = op.seq;
            }
        }
        st.pending.clear();
        st.free_at = host_time_;
    }
    t.host_writes.clear();
}

}  // namespace cusim
