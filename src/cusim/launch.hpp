// Launch configuration (grid/block geometry + per-block resources).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cusim/error.hpp"
#include "cusim/kernel_task.hpp"
#include "cusim/types.hpp"

namespace cusim {

class ThreadCtx;

/// Geometry and resource demand of a kernel launch. Mirrors
/// cudaConfigureCall plus the implicit per-kernel resource usage that nvcc
/// would report (registers per thread, static shared memory).
struct LaunchConfig {
    dim3 grid;
    dim3 block;
    std::uint32_t shared_bytes = 0;       ///< static __shared__ usage per block
    std::uint32_t regs_per_thread = 16;   ///< occupancy input (G80 default-ish)

    /// Validates the geometry against the software model (§2.2): <= 512
    /// threads per block, grids of <= 2^16 blocks per dimension, 3-dim
    /// blocks. Grids may use all three dimensions; the engine linearises
    /// blocks x-fastest (then y, then z), so a 3-D grid runs every
    /// grid.count() block — it is never silently truncated to one z-slice.
    void validate() const {
        if (block.count() == 0 || block.count() > kMaxThreadsPerBlock) {
            throw Error(ErrorCode::InvalidConfiguration,
                        "block has " + std::to_string(block.count()) +
                            " threads (max " + std::to_string(kMaxThreadsPerBlock) + ")");
        }
        if (grid.count() == 0) {
            throw Error(ErrorCode::InvalidConfiguration, "empty grid");
        }
        if (grid.x > kMaxGridDim || grid.y > kMaxGridDim || grid.z > kMaxGridDim) {
            throw Error(ErrorCode::InvalidConfiguration,
                        "grid dimension exceeds 2^16 blocks");
        }
    }

    [[nodiscard]] std::uint64_t total_threads() const { return grid.count() * block.count(); }
    [[nodiscard]] unsigned warps_per_block() const {
        return static_cast<unsigned>((block.count() + kWarpSize - 1) / kWarpSize);
    }
};

/// Type-erased per-thread kernel entry: the engine calls it once per device
/// thread with that thread's context. Higher layers (cupp::kernel) bind the
/// user's typed arguments into this.
using KernelEntry = std::function<KernelTask(ThreadCtx&)>;

class WarpCtx;

/// Type-erased warp-native kernel entry: the warp-vectorized engine calls it
/// once per *warp* — one coroutine frame and one resume per 32 lanes — with
/// the warp's lane-batched context (warp_ctx.hpp).
using WarpKernelEntry = std::function<KernelTask(WarpCtx&)>;

/// A kernel in up to two executable forms. `thread` is mandatory and is the
/// differential oracle: the classic one-coroutine-per-thread interpretation.
/// `warp`, when provided, is the same kernel written against WarpCtx; the
/// engine runs it when CUPP_SIM_ENGINE selects the warp engine. The two
/// forms must charge identically (same ops per lane in the same per-lane
/// occurrence order) — the differential harness holds them to bit-identical
/// LaunchStats/memcheck/trace/timeline.
struct KernelSpec {
    KernelEntry thread;
    WarpKernelEntry warp;

    KernelSpec() = default;
    KernelSpec(KernelEntry t) : thread(std::move(t)) {}  // NOLINT(google-explicit-constructor)
    KernelSpec(KernelEntry t, WarpKernelEntry w)
        : thread(std::move(t)), warp(std::move(w)) {}
};

}  // namespace cusim
