// Constant and texture memory — the read-only cached address spaces of the
// hardware model (§2.1: "texture and constant caches are available on every
// multiprocessor") and the subject of the thesis' future-work list ("Future
// work on the CuPP framework could refer to currently missing CUDA
// functionality, like support for texture or constant memory").
//
// Model:
//  * constant memory: a 64 KiB space, writable by the host (only while no
//    kernel is active), read by kernels at near-register cost through the
//    per-MP constant cache (a warp-wide read of one address is broadcast).
//  * texture fetches: reads of ordinary global memory routed through the
//    texture cache; they keep the global-read issue slot but hit in cache
//    with probability `texture_hit_rate`, paying latency and bus traffic
//    only on misses.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

#include "cusim/error.hpp"
#include "cusim/types.hpp"

namespace cusim {

class ThreadCtx;

/// The 64 KiB constant address space of one device.
class ConstantMemory {
public:
    static constexpr std::uint64_t kSize = 64 * 1024;

    ConstantMemory() : arena_(new std::byte[kSize]()) {}

    ConstantMemory(const ConstantMemory&) = delete;
    ConstantMemory& operator=(const ConstantMemory&) = delete;

    /// Linear allocation (constant memory is declared statically in CUDA;
    /// there is no free()).
    [[nodiscard]] DeviceAddr allocate(std::uint64_t bytes) {
        const std::uint64_t aligned = (bytes + 255) / 256 * 256;
        if (cursor_ + aligned > kSize) {
            throw Error(ErrorCode::MemoryAllocation,
                        "constant memory exhausted (64 KiB total)");
        }
        const DeviceAddr addr = cursor_;
        cursor_ += aligned;
        return addr;
    }

    /// Host write (Device enforces the no-kernel-active rule).
    void write(DeviceAddr addr, const void* src, std::uint64_t bytes) {
        check(addr, bytes);
        std::memcpy(arena_.get() + addr, src, bytes);
    }
    void read(DeviceAddr addr, void* dst, std::uint64_t bytes) const {
        check(addr, bytes);
        std::memcpy(dst, arena_.get() + addr, bytes);
    }

    [[nodiscard]] std::byte* raw(DeviceAddr addr) { return arena_.get() + addr; }
    [[nodiscard]] std::uint64_t used() const { return cursor_; }

    /// Resets the allocation cursor (new scenario).
    void reset() { cursor_ = 0; }

private:
    void check(DeviceAddr addr, std::uint64_t bytes) const {
        if (addr + bytes > cursor_) {
            throw Error(ErrorCode::InvalidDevicePointer,
                        "constant-memory access outside any allocation");
        }
    }

    std::unique_ptr<std::byte[]> arena_;
    std::uint64_t cursor_ = 0;
};

/// Typed kernel-side view of a constant-memory range. Reads cost
/// `constant_read` cycles (cached, broadcast); there is no write path.
template <typename T>
class ConstantPtr {
    static_assert(std::is_trivially_copyable_v<T>,
                  "constant memory holds byte-wise copyable values only");

public:
    ConstantPtr() = default;
    ConstantPtr(const std::byte* base, DeviceAddr addr, std::uint64_t count)
        : base_(base), addr_(addr), count_(count) {}

    [[nodiscard]] DeviceAddr addr() const { return addr_; }
    [[nodiscard]] std::uint64_t size() const { return count_; }

    /// Accounted read; defined in thread_ctx extensions below.
    T read(ThreadCtx& ctx, std::uint64_t i) const;

private:
    const std::byte* base_ = nullptr;
    DeviceAddr addr_ = kNullAddr;
    std::uint64_t count_ = 0;
};

}  // namespace cusim
