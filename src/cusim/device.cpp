#include "cusim/device.hpp"

#include <algorithm>

#include "cusim/engine.hpp"
#include "cusim/multiprocessor.hpp"

namespace cusim {

LaunchStats Device::launch(const LaunchConfig& cfg, const KernelEntry& entry) {
    cfg.validate();
    // Occupancy limits are checked before running anything.
    (void)blocks_per_mp(props_.cost, cfg);

    LaunchStats stats;
    stats.blocks = cfg.grid.count();
    stats.threads = cfg.total_threads();
    stats.warps = std::uint64_t{cfg.warps_per_block()} * cfg.grid.count();

    std::vector<BlockCost> costs;
    costs.reserve(static_cast<std::size_t>(cfg.grid.count()));

    for (unsigned by = 0; by < cfg.grid.y; ++by) {
        for (unsigned bx = 0; bx < cfg.grid.x; ++bx) {
            BlockResult br = run_block(props_.cost, cfg, entry, uint3{bx, by, 0});
            stats.syncthreads_count += br.sync_episodes;
            for (const WarpAcct& w : br.warps) {
                stats.divergent_events += w.divergent_events();
                stats.branch_evaluations += w.total_branch_evaluations();
                stats.bytes_read += w.bytes_read;
                stats.bytes_written += w.bytes_written;
            }
            costs.push_back(BlockCost::from(br, props_.cost));
            stats.compute_cycles += costs.back().compute_cycles;
            stats.stall_cycles += costs.back().stall_cycles;
        }
    }

    stats.device_seconds =
        model_grid_seconds(props_.cost, cfg, costs, &stats.resident_blocks_per_mp);

    // Asynchronous launch semantics: the device starts as soon as it is free
    // and the host has issued the call; the host only pays the launch
    // overhead (§2.2 "a kernel invocation does not block the host").
    const double start = std::max(host_time_, device_free_at_);
    device_free_at_ = start + stats.device_seconds;
    host_time_ += props_.cost.launch_overhead_s;

    last_launch_ = stats;
    ++launch_count_;
    return stats;
}

}  // namespace cusim
