#include "cusim/device.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <utility>

#include "cusim/block_pool.hpp"
#include "cusim/engine.hpp"
#include "cusim/multiprocessor.hpp"
#include "cusim/report.hpp"

namespace cusim {

namespace {

/// Inverse of ThreadCtx::linear_bid() (x fastest, then y, then z).
uint3 unlinearize_block(std::uint64_t i, const dim3& g) {
    uint3 b;
    b.x = static_cast<unsigned>(i % g.x);
    b.y = static_cast<unsigned>((i / g.x) % g.y);
    b.z = static_cast<unsigned>(i / (std::uint64_t{g.x} * g.y));
    return b;
}

}  // namespace

LaunchStats Device::launch(const LaunchConfig& cfg, const KernelEntry& entry,
                           std::string_view name) {
    return launch(cfg, KernelSpec(entry), name);
}

LaunchStats Device::launch(const LaunchConfig& cfg, KernelSpec spec,
                           std::string_view name) {
    prof::ApiScope prof_scope(prof::Api::Launch, trace_ordinal_, kDefaultStream, 0,
                              name);
    timeline::FailScope tl_fail(trace_ordinal_, kDefaultStream,
                                timeline::Category::Kernel, name, 0,
                                prof_scope.correlation(), trace_base_ + host_time_);
    // Before validation and before any block runs: an injected launch
    // failure (or a poisoned device) rejects the launch atomically.
    fault_preflight(faults::Site::Launch, name);
    cfg.validate();
    // Occupancy limits are checked before running anything.
    (void)blocks_per_mp(props_.cost, cfg);
    // Default-stream semantics: a legacy launch orders behind every
    // explicit stream's already-enqueued work.
    join_streams();

    // Host interpreter wall time is the one profiler field that is real
    // (and thus non-deterministic) rather than modelled; only measured
    // while a profiling session is collecting.
    const bool profiling = prof::collecting();
    const double wall0 = profiling ? cupp::trace::wall_clock_us() : 0.0;
    const LaunchStats stats = run_grid(cfg, spec, name);
    if (profiling) {
        prof::record_launch(name, cfg, stats, device_track(), trace_ordinal_,
                            (cupp::trace::wall_clock_us() - wall0) * 1e-6,
                            props_.cost);
    }

    // Asynchronous launch semantics: the device starts as soon as it is free
    // and the host has issued the call; the host only pays the launch
    // overhead (§2.2 "a kernel invocation does not block the host").
    const double start = std::max(host_time_, device_free_at_);
    device_free_at_ = start + stats.device_seconds;
    const double host_issue_t0 = host_time_;
    host_time_ += props_.cost.launch_overhead_s;

    last_launch_ = stats;
    ++launch_count_;
    record_launch(name, stats, start, device_free_at_);

    if (timeline::enabled()) {
        const std::string label =
            name.empty() ? std::string("kernel") : std::string(name);
        // Host-bound start: the grid began the moment the host issued it,
        // so the binding edge is the host lane's point at `start`; when the
        // device was still busy, the device FIFO tail already ends there.
        const std::uint64_t anchor =
            start == host_issue_t0
                ? timeline::anchor_host(trace_ordinal_, trace_base_ + start)
                : 0;
        timeline::device_op(trace_ordinal_, timeline::Category::Kernel, label, 0,
                            prof_scope.correlation(), trace_base_ + start,
                            trace_base_ + device_free_at_, anchor);
        timeline::host_op(trace_ordinal_, timeline::Category::Host,
                          "launch " + label, 0, prof_scope.correlation(),
                          trace_base_ + host_issue_t0, trace_base_ + host_time_);
    }

    if (cupp::trace::enabled()) {
        const std::string label =
            name.empty() ? std::string("kernel") : std::string(name);
        // The device lane shows the grid actually executing — with the full
        // LaunchStats attached, this is the §6.3.1 profile per launch.
        cupp::trace::emit_complete(
            device_track(), label, trace_time_us(start), stats.device_seconds * 1e6,
            {{"blocks", stats.blocks},
             {"threads", stats.threads},
             {"threads_per_block", stats.threads_per_block},
             {"warps", stats.warps},
             {"compute_cycles", stats.compute_cycles},
             {"stall_cycles", stats.stall_cycles},
             {"bytes_read", stats.bytes_read},
             {"bytes_written", stats.bytes_written},
             {"divergent_events", stats.divergent_events},
             {"branch_evaluations", stats.branch_evaluations},
             {"syncthreads", stats.syncthreads_count},
             {"resident_blocks_per_mp", stats.resident_blocks_per_mp},
             {"bound_by", to_string(bound_by(stats, props_.cost))}});
        // The host lane shows only the (tiny) synchronous issue cost — the
        // gap between this span's end and the device span's end is the
        // overlap the asynchronous model buys.
        cupp::trace::emit_complete(host_track(), "launch " + label,
                                   trace_time_us(host_issue_t0),
                                   props_.cost.launch_overhead_s * 1e6);
        static const cupp::trace::counter_handle launches("cusim.kernel_launches");
        launches.add();
    }
    return stats;
}

LaunchStats Device::run_grid(const LaunchConfig& cfg, const KernelSpec& spec,
                             std::string_view name) {
    LaunchStats stats;
    stats.blocks = cfg.grid.count();
    stats.threads = cfg.total_threads();
    stats.threads_per_block = cfg.block.count();
    stats.warps = std::uint64_t{cfg.warps_per_block()} * cfg.grid.count();

    const std::uint64_t nblocks = cfg.grid.count();
    std::vector<BlockCost> costs;
    costs.reserve(static_cast<std::size_t>(nblocks));

    // Threaded into every ThreadCtx so device-side diagnostics (memcheck
    // violations, out-of-range accesses) can name the kernel and check
    // against this device's global-memory shadow.
    const memcheck::ExecContext exec{
        name.empty() ? std::string("kernel") : std::string(name),
        &memory_.shadow(), trace_ordinal_};

    // Blocks are independent (§2.2), so the grid is dealt to host workers —
    // DeviceProperties::sim_threads if set, else CUPP_SIM_THREADS /
    // hardware_concurrency. Everything observable is reduced in launch
    // order below, so the thread count never changes a result bit.
    const unsigned want =
        props_.sim_threads != 0 ? props_.sim_threads : BlockPool::configured_threads();
    const unsigned threads =
        static_cast<unsigned>(std::min<std::uint64_t>(want, nblocks));

    auto accumulate = [&](const BlockResult& br) {
        stats.syncthreads_count += br.sync_episodes;
        for (const WarpAcct& w : br.warps) {
            stats.divergent_events += w.divergent_events();
            stats.branch_evaluations += w.total_branch_evaluations();
            stats.bytes_read += w.bytes_read;
            stats.bytes_written += w.bytes_written;
            stats.useful_bytes_read += w.useful_bytes_read;
            stats.useful_bytes_written += w.useful_bytes_written;
            stats.shared_accesses += w.shared.accesses;
            stats.shared_bank_conflicts += w.shared.conflicts;
        }
        costs.push_back(BlockCost::from(br, props_.cost));
        stats.compute_cycles += costs.back().compute_cycles;
        stats.stall_cycles += costs.back().stall_cycles;
    };

    if (threads <= 1) {
        // The classic serial engine: blocks run in launch order on this
        // thread, reporting memcheck violations and trace events inline, and
        // the first failure propagates before any later block runs. One
        // scratch arena is reused across the whole grid.
        BlockScratch scratch;
        RunBlockOpts opts;
        opts.scratch = &scratch;
        for (std::uint64_t i = 0; i < nblocks; ++i) {
            accumulate(
                run_block(props_.cost, cfg, spec, unlinearize_block(i, cfg.grid),
                          &exec, opts));
        }
    } else {
        // Parallel path. Each worker runs whole blocks, writing only to its
        // block's index-addressed slot: results, deferred memcheck
        // violations and captured trace events all flush in launch order
        // afterwards, so stats, reports and the trace are bit-identical to
        // the serial path for any thread count.
        struct BlockRun {
            BlockResult result;
            std::vector<memcheck::Violation> violations;
            std::vector<cupp::trace::Event> trace_events;
            std::exception_ptr error;
        };
        std::vector<BlockRun> runs(static_cast<std::size_t>(nblocks));
        // Lowest faulting linear block index — the same block whose failure
        // a serial run would report. Also lets workers skip blocks a serial
        // run would never have started (their outputs are discarded; device
        // memory contents after a failed launch are undefined, as on real
        // hardware).
        std::atomic<std::uint64_t> first_error{nblocks};
        const bool tracing = cupp::trace::enabled();

        BlockPool::instance().run(nblocks, threads, [&](std::uint64_t i) {
            if (first_error.load(std::memory_order_acquire) < i) return;
            try {
                // Touch the frame cache before constructing the scratch:
                // thread_locals die in reverse construction order, and the
                // scratch's teardown recycles coroutine frames through the
                // cache, so the cache must be constructed first.
                detail::FrameCache::local();
                thread_local BlockScratch scratch;
                RunBlockOpts opts;
                opts.scratch = &scratch;
                opts.violation_sink = &runs[i].violations;
                std::optional<cupp::trace::ScopedCapture> capture;
                if (tracing) capture.emplace(&runs[i].trace_events);
                runs[i].result = run_block(props_.cost, cfg, spec,
                                           unlinearize_block(i, cfg.grid), &exec, opts);
            } catch (...) {
                runs[i].error = std::current_exception();
                std::uint64_t expected = first_error.load(std::memory_order_relaxed);
                while (i < expected &&
                       !first_error.compare_exchange_weak(expected, i,
                                                          std::memory_order_acq_rel)) {
                }
            }
        });

        const std::uint64_t err = first_error.load(std::memory_order_acquire);
        if (err < nblocks) {
            // Serial semantics: everything blocks 0..err reported before the
            // fault is flushed in order; later blocks' exceptions,
            // violations and trace are drained unreported.
            for (std::uint64_t i = 0; i <= err; ++i) {
                for (memcheck::Violation& v : runs[i].violations) {
                    memcheck::record(std::move(v));
                }
                if (tracing) cupp::trace::replay(std::move(runs[i].trace_events));
            }
            std::rethrow_exception(runs[err].error);
        }
        for (std::uint64_t i = 0; i < nblocks; ++i) {
            accumulate(runs[i].result);
            for (memcheck::Violation& v : runs[i].violations) {
                memcheck::record(std::move(v));
            }
            if (tracing) cupp::trace::replay(std::move(runs[i].trace_events));
        }
    }

    stats.device_seconds =
        model_grid_seconds(props_.cost, cfg, costs, &stats.resident_blocks_per_mp);
    return stats;
}

void Device::poison() {
    lost_ = true;
    faults::note_device_poisoned();
    cupp::trace::metrics().add("cusim.device_lost");
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant("faults", "device lost",
                                  trace_time_us(std::max(host_time_, device_free_at_)),
                                  {{"device", trace_ordinal_}});
    }
}

void Device::reset_device() {
    lost_ = false;
    // Whatever the device was doing died with it — including work still
    // queued on explicit streams (dropped, never executed; pending event
    // records complete at the reset point so waits can't stall).
    if (streams_) abandon_streams();
    device_free_at_ = host_time_;
    memory_.wipe_for_recovery();
    cupp::trace::metrics().add("cusim.device_resets");
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant("faults", "device reset",
                                  trace_time_us(host_time_),
                                  {{"device", trace_ordinal_}});
    }
}

void Device::record_launch(std::string_view name, const LaunchStats& stats, double start,
                           double end) {
    LaunchRecord rec;
    rec.kernel_name = name.empty() ? "kernel" : std::string(name);
    rec.stats = stats;
    rec.start_seconds = trace_base_ + start;
    rec.end_seconds = trace_base_ + end;
    if (history_.size() < kLaunchHistoryCapacity) {
        history_.push_back(std::move(rec));
    } else {
        history_[history_head_] = std::move(rec);
        history_head_ = (history_head_ + 1) % kLaunchHistoryCapacity;
    }
}

}  // namespace cusim
