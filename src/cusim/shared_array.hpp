// Typed view of a block's shared memory.
//
// The per-block shared arena is sized at launch time (LaunchConfig::
// shared_bytes, like the static __shared__ declarations of a CUDA kernel).
// All threads of a block calling ctx.shared_array<T>(n) in the same order
// receive the same storage, which is how data is exchanged inside a block.
// Accesses cost `shared_access` cycles (>= 4 in Table 2.2) — two orders of
// magnitude cheaper than global memory, which is the entire point of the
// thesis' version-2 neighbor search (§6.2.1).
#pragma once

#include <cstdint>
#include <type_traits>

#include "cusim/error.hpp"

namespace cusim {

class ThreadCtx;
class WarpCtx;

template <typename T>
class SharedArray {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only trivially copyable types can live in shared memory");

public:
    SharedArray() = default;
    SharedArray(std::byte* base, std::uint64_t count) : base_(base), count_(count) {}

    [[nodiscard]] std::uint64_t size() const { return count_; }

    /// Accounted element access; defined in thread_ctx.hpp.
    T read(ThreadCtx& ctx, std::uint64_t i) const;
    void write(ThreadCtx& ctx, std::uint64_t i, const T& v) const;

private:
    friend class ThreadCtx;
    friend class WarpCtx;
    std::byte* base_ = nullptr;
    std::uint64_t count_ = 0;
};

}  // namespace cusim
