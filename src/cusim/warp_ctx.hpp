// WarpCtx — the warp-vectorized execution context.
//
// The classic engine interprets one coroutine per device thread; this
// context is what a kernel sees when it is written *per warp* instead: one
// coroutine frame and one resume drive up to 32 lanes whose state lives in
// contiguous per-lane arrays (structure-of-arrays), and divergence is an
// explicit active-lane mask with a reconvergence stack — the same
// representation the cost model already uses to charge divergent branches
// (§2.3), so executing this way changes nothing the accounting can observe.
//
// Contract with the per-thread form of the same kernel (KernelSpec): every
// lane must be charged the same operations in the same per-lane occurrence
// order as the thread-form kernel would charge its thread. Cycle costs
// max-fold and byte traffic sum-folds over the warp (accounting.hpp), and
// both the divergence estimator and the bank-conflict tracker are
// occurrence-aligned per lane, so charge-equal forms produce bit-identical
// LaunchStats. The differential harness (tests/cusim_stream_diff_test.cpp)
// enforces exactly this across both engines.
//
// Fast path / slow path: while memcheck is off, lane-batched accessors
// validate bounds, charge all active lanes with plain (vectorizable) loops
// and move the data with memcpy. While memcheck is on, every access is
// routed through the lane's full ThreadCtx facade (lane(l)) — the identical
// code path the thread engine runs, so diagnostics, shadow-state updates
// and strict-mode throws match to the byte.
#pragma once

#include <bit>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <new>
#include <source_location>

#include "cusim/accounting.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/error.hpp"
#include "cusim/memcheck.hpp"
#include "cusim/prof.hpp"
#include "cusim/shared_array.hpp"
#include "cusim/thread_ctx.hpp"
#include "cusim/types.hpp"

namespace cusim {

class WarpCtx {
public:
    WarpCtx(unsigned base_tid, unsigned nlanes, uint3 block_idx, dim3 block_dim,
            dim3 grid_dim, const CostModel* cm, BlockState* block, WarpAcct* warp,
            const memcheck::ExecContext* exec = nullptr)
        : base_tid_(base_tid),
          nlanes_(nlanes),
          full_mask_(nlanes >= kWarpSize ? ~std::uint32_t{0} : ((1u << nlanes) - 1u)),
          live_(full_mask_),
          active_(full_mask_),
          block_idx_(block_idx),
          block_dim_(block_dim),
          grid_dim_(grid_dim),
          cm_(cm),
          block_(block),
          warp_(warp),
          exec_(exec) {}

    WarpCtx(const WarpCtx&) = delete;
    WarpCtx& operator=(const WarpCtx&) = delete;

    ~WarpCtx() {
        for (std::uint32_t m = lane_constructed_; m != 0; m &= m - 1) {
            lane_ptr(static_cast<unsigned>(std::countr_zero(m)))->~ThreadCtx();
        }
    }

    // --- geometry ---
    [[nodiscard]] const uint3& block_idx() const { return block_idx_; }
    [[nodiscard]] const dim3& block_dim() const { return block_dim_; }
    [[nodiscard]] const dim3& grid_dim() const { return grid_dim_; }
    /// Lanes this warp actually has (32, or fewer in a block's tail warp).
    [[nodiscard]] unsigned lanes() const { return nlanes_; }
    [[nodiscard]] unsigned warp_index() const { return base_tid_ / kWarpSize; }
    /// Linearised in-block thread id of lane `l`.
    [[nodiscard]] unsigned lane_tid(unsigned l) const { return base_tid_ + l; }
    [[nodiscard]] unsigned linear_bid() const {
        return block_idx_.x + grid_dim_.x * (block_idx_.y + grid_dim_.y * block_idx_.z);
    }
    /// Grid-global thread id of lane `l`.
    [[nodiscard]] std::uint64_t global_id(unsigned l) const {
        return std::uint64_t{linear_bid()} * block_dim_.count() + base_tid_ + l;
    }

    // --- masks ---
    /// Lanes currently executing (subset of live()).
    [[nodiscard]] std::uint32_t active() const { return active_; }
    /// Lanes that have not exited the kernel.
    [[nodiscard]] std::uint32_t live() const { return live_; }
    /// All lanes of this warp (the mask a fresh warp starts with).
    [[nodiscard]] std::uint32_t full_mask() const { return full_mask_; }

    // --- divergence -------------------------------------------------------
    /// Evaluates a branch across the warp. `preds` carries one predicate bit
    /// per lane; only active lanes participate. Charges one Op::Branch per
    /// active lane and feeds the per-site divergence estimator exactly as 32
    /// individual ThreadCtx::branch calls would. Returns the mask of active
    /// lanes whose predicate is true — feed it to push_active().
    std::uint32_t ballot(std::uint32_t preds,
                         std::source_location loc = std::source_location::current()) {
        preds &= active_;
        charge(Op::Branch);
        // base_tid_ is a multiple of kWarpSize, so lane l *is* the
        // (tid % kWarpSize) slot ThreadCtx::branch would note — the whole
        // warp's predicates go to the divergence estimator in one call.
        warp_->note_branch_lanes(ThreadCtx::site_key(loc), active_, preds);
        return preds;
    }

    /// Enters the taken side of a divergent region: saves the current mask
    /// on the reconvergence stack and restricts execution to `taken` (which
    /// is intersected with the current active mask).
    void push_active(std::uint32_t taken) {
        if (depth_ >= kMaxNesting) {
            throw Error(ErrorCode::InvalidValue,
                        "warp divergence nested deeper than " +
                            std::to_string(kMaxNesting) + " levels");
        }
        stack_[depth_].saved = active_;
        stack_[depth_].taken = taken & active_;
        active_ = stack_[depth_].taken;
        ++depth_;
    }

    /// Switches to the not-taken side of the innermost divergent region.
    void else_active() {
        check_depth("else_active");
        const Frame& f = stack_[depth_ - 1];
        active_ = f.saved & ~f.taken & live_;
    }

    /// Reconverges: restores the mask saved by the matching push_active()
    /// (minus any lanes that exited inside the region).
    void pop_active() {
        check_depth("pop_active");
        --depth_;
        active_ = stack_[depth_].saved & live_;
    }

    /// Lanes in `mask` return from the kernel. When every live lane has
    /// exited, the engine retires the warp even if the coroutine body has
    /// statements left.
    void exit_lanes(std::uint32_t mask) {
        live_ &= ~mask;
        active_ &= live_;
    }

    // --- __syncthreads() --------------------------------------------------
    struct SyncAwaitable {
        WarpCtx* w;
        /// A barrier no active lane executes is a no-op, not a suspension.
        bool await_ready() const noexcept { return w->active_ == 0; }
        void await_suspend(std::coroutine_handle<>) const noexcept {
            w->at_barrier_ = w->active_;
        }
        void await_resume() const noexcept {}
    };

    /// `co_await w.syncthreads();` — suspends the warp with its active lanes
    /// flagged at the barrier. Lanes not in the active mask do NOT arrive;
    /// the engine diagnoses that as the divergent-barrier LaunchFailure,
    /// with the same message the thread engine produces.
    [[nodiscard]] SyncAwaitable syncthreads() {
        charge(Op::SyncThreads);
        return SyncAwaitable{this};
    }

    // --- accounting -------------------------------------------------------
    /// Charges `n` instructions of class `op` to every active lane. A full
    /// warp takes the branch-free vector loop; divergent masks bit-walk.
    void charge(Op op, unsigned n = 1) {
        const std::uint64_t c = std::uint64_t{cm_->issue_cycles(op)} * n;
        const std::uint64_t s = std::uint64_t{cm_->stall_cycles(op)} * n;
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            for (unsigned l = 0; l < kWarpSize; ++l) {
                accts_[l].compute_cycles += c;
                accts_[l].stall_cycles += s;
            }
        } else {
            for (std::uint32_t m = active_; m != 0; m &= m - 1) {
                const auto l = static_cast<unsigned>(std::countr_zero(m));
                accts_[l].compute_cycles += c;
                accts_[l].stall_cycles += s;
            }
        }
    }

    [[nodiscard]] const CostModel& cost_model() const { return *cm_; }
    [[nodiscard]] ThreadAcct& lane_acct(unsigned l) { return accts_[l]; }

    // --- shared memory ----------------------------------------------------
    /// Carves a typed array out of the block's shared arena — one carve per
    /// warp stands in for the identical carve every thread of the block
    /// performs, so the offsets match the thread-form kernel. Use this, not
    /// lane(l).shared_array(): the lane facades keep separate cursors.
    template <typename T>
    SharedArray<T> shared_array(std::uint64_t count) {
        const std::uint64_t align = alignof(T);
        std::uint64_t offset = (shared_cursor_ + align - 1) / align * align;
        const std::uint64_t end = offset + count * sizeof(T);
        if (end > block_->shared_arena.size()) {
            throw Error(ErrorCode::InvalidConfiguration,
                        "shared_array exceeds the block's shared memory (" +
                            std::to_string(block_->shared_arena.size()) + " bytes)");
        }
        shared_cursor_ = end;
        return SharedArray<T>(block_->shared_arena.data() + offset, count);
    }

    // --- lane-batched accounted memory ops --------------------------------
    // idx/out/v are lane-indexed arrays (kWarpSize entries); only active
    // lanes are read or written. Charges are identical per lane to the
    // per-element ThreadCtx accessors in thread_ctx.hpp.

    template <typename T>
    void read(const DevicePtr<T>& p, const std::uint64_t* idx, T* out) {
        if (memcheck::enabled()) {
            for (std::uint32_t m = active_; m != 0; m &= m - 1) {
                const auto l = static_cast<unsigned>(std::countr_zero(m));
                out[l] = p.read(lane(l), idx[l]);
            }
            return;
        }
        check_bounds(p.count_, idx, [&](unsigned l) { (void)p.read(lane(l), idx[l]); });
        charge_global(Op::GlobalRead, cm_->charged_bytes(sizeof(T)), sizeof(T),
                      /*is_read=*/true);
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            if (contiguous(idx)) {
                // Coalesced access: one bulk copy moves the whole warp's data.
                std::memcpy(out, p.base_ + idx[0] * sizeof(T), kWarpSize * sizeof(T));
                return;
            }
            for (unsigned l = 0; l < kWarpSize; ++l) {
                std::memcpy(&out[l], p.base_ + idx[l] * sizeof(T), sizeof(T));
            }
            return;
        }
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            std::memcpy(&out[l], p.base_ + idx[l] * sizeof(T), sizeof(T));
        }
    }

    template <typename T>
    void write(const DevicePtr<T>& p, const std::uint64_t* idx, const T* v) {
        if (memcheck::enabled()) {
            for (std::uint32_t m = active_; m != 0; m &= m - 1) {
                const auto l = static_cast<unsigned>(std::countr_zero(m));
                p.write(lane(l), idx[l], v[l]);
            }
            return;
        }
        check_bounds(p.count_, idx, [&](unsigned l) { p.write(lane(l), idx[l], v[l]); });
        charge_global(Op::GlobalWrite, cm_->charged_bytes(sizeof(T)), sizeof(T),
                      /*is_read=*/false);
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            if (contiguous(idx)) {
                std::memcpy(p.base_ + idx[0] * sizeof(T), v, kWarpSize * sizeof(T));
                return;
            }
            for (unsigned l = 0; l < kWarpSize; ++l) {
                std::memcpy(p.base_ + idx[l] * sizeof(T), &v[l], sizeof(T));
            }
            return;
        }
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            std::memcpy(p.base_ + idx[l] * sizeof(T), &v[l], sizeof(T));
        }
    }

    template <typename T>
    void read(const SharedArray<T>& a, const std::uint64_t* idx, T* out) {
        if (memcheck::enabled()) {
            for (std::uint32_t m = active_; m != 0; m &= m - 1) {
                const auto l = static_cast<unsigned>(std::countr_zero(m));
                out[l] = a.read(lane(l), idx[l]);
            }
            return;
        }
        check_bounds(a.count_, idx, [&](unsigned l) { (void)a.read(lane(l), idx[l]); });
        charge(Op::SharedAccess);
        note_shared_lanes(a, idx, sizeof(T));
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            if (contiguous(idx)) {
                std::memcpy(out, a.base_ + idx[0] * sizeof(T), kWarpSize * sizeof(T));
                return;
            }
            for (unsigned l = 0; l < kWarpSize; ++l) {
                std::memcpy(&out[l], a.base_ + idx[l] * sizeof(T), sizeof(T));
            }
            return;
        }
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            std::memcpy(&out[l], a.base_ + idx[l] * sizeof(T), sizeof(T));
        }
    }

    template <typename T>
    void write(const SharedArray<T>& a, const std::uint64_t* idx, const T* v) {
        if (memcheck::enabled()) {
            for (std::uint32_t m = active_; m != 0; m &= m - 1) {
                const auto l = static_cast<unsigned>(std::countr_zero(m));
                a.write(lane(l), idx[l], v[l]);
            }
            return;
        }
        check_bounds(a.count_, idx, [&](unsigned l) { a.write(lane(l), idx[l], v[l]); });
        charge(Op::SharedAccess);
        note_shared_lanes(a, idx, sizeof(T));
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            if (contiguous(idx)) {
                std::memcpy(a.base_ + idx[0] * sizeof(T), v, kWarpSize * sizeof(T));
                return;
            }
            for (unsigned l = 0; l < kWarpSize; ++l) {
                std::memcpy(a.base_ + idx[l] * sizeof(T), &v[l], sizeof(T));
            }
            return;
        }
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            std::memcpy(a.base_ + idx[l] * sizeof(T), &v[l], sizeof(T));
        }
    }

    // --- lane facade ------------------------------------------------------
    /// Full ThreadCtx view of lane `l`, for per-lane escape hatches (texture
    /// fetches, constant reads, per-lane helper functions written against
    /// ThreadCtx). Lazily constructed; its charges land in the same per-lane
    /// accounting slot the warp-level paths use. Do NOT co_await a lane
    /// facade's syncthreads() — warp-native kernels barrier through
    /// WarpCtx::syncthreads().
    ThreadCtx& lane(unsigned l) {
        if ((lane_constructed_ & (1u << l)) == 0) {
            new (lane_raw(l))
                ThreadCtx(delinearize(base_tid_ + l), block_idx_, block_dim_, grid_dim_,
                          cm_, block_, warp_, exec_, &accts_[l]);
            lane_constructed_ |= 1u << l;
        }
        return *lane_ptr(l);
    }

    // --- engine internals -------------------------------------------------
    [[nodiscard]] std::uint32_t at_barrier_mask() const { return at_barrier_; }
    void clear_barrier() { at_barrier_ = 0; }
    [[nodiscard]] BlockState& block_state() { return *block_; }

    /// Folds the lanes into the warp's accounting at warp retirement: cycles
    /// at the pace of the slowest lane (SIMD max), traffic summed over
    /// lanes — the same fold the thread engine performs per finished thread.
    void fold_into_warp_acct() {
        WarpAcct& w = *warp_;
        for (unsigned l = 0; l < nlanes_; ++l) {
            const ThreadAcct& a = accts_[l];
            if (a.compute_cycles > w.compute_cycles) w.compute_cycles = a.compute_cycles;
            if (a.stall_cycles > w.stall_cycles) w.stall_cycles = a.stall_cycles;
            w.bytes_read += a.bytes_read;
            w.bytes_written += a.bytes_written;
            w.useful_bytes_read += a.useful_bytes_read;
            w.useful_bytes_written += a.useful_bytes_written;
        }
    }

private:
    static constexpr unsigned kMaxNesting = kWarpSize;
    struct Frame {
        std::uint32_t saved = 0;
        std::uint32_t taken = 0;
    };

    void check_depth(const char* who) const {
        if (depth_ == 0) {
            throw Error(ErrorCode::InvalidValue,
                        std::string(who) + " without a matching push_active");
        }
    }

    /// Bounds-checks all active lanes; on the first violating lane, replays
    /// the access through the lane facade so the throw carries the exact
    /// message the thread engine would produce.
    template <typename OnFault>
    void check_bounds(std::uint64_t count, const std::uint64_t* idx, OnFault&& fault) {
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            for (unsigned l = 0; l < kWarpSize; ++l) {
                if (idx[l] >= count) fault(l);  // throws
            }
            return;
        }
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            if (idx[l] >= count) fault(l);  // throws
        }
    }

    /// True when a full warp's lane indices form one ascending run — the
    /// coalesced pattern the bulk-copy fast path handles with a single
    /// memcpy. Only meaningful when all 32 lanes are active.
    [[nodiscard]] bool contiguous(const std::uint64_t* idx) const {
        const std::uint64_t base = idx[0];
        bool c = true;
        for (unsigned l = 0; l < kWarpSize; ++l) c &= idx[l] == base + l;
        return c;
    }

    /// Global-memory charge for one access per active lane.
    void charge_global(Op op, std::uint64_t charged, std::uint64_t useful, bool is_read) {
        const std::uint64_t c = cm_->issue_cycles(op);
        const std::uint64_t s = cm_->stall_cycles(op);
        if (active_ == ~std::uint32_t{0}) [[likely]] {
            for (unsigned l = 0; l < kWarpSize; ++l) {
                ThreadAcct& a = accts_[l];
                a.compute_cycles += c;
                a.stall_cycles += s;
                if (is_read) {
                    a.bytes_read += charged;
                    a.useful_bytes_read += useful;
                } else {
                    a.bytes_written += charged;
                    a.useful_bytes_written += useful;
                }
            }
            return;
        }
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            ThreadAcct& a = accts_[l];
            a.compute_cycles += c;
            a.stall_cycles += s;
            if (is_read) {
                a.bytes_read += charged;
                a.useful_bytes_read += useful;
            } else {
                a.bytes_written += charged;
                a.useful_bytes_written += useful;
            }
        }
    }

    /// Bank-conflict bookkeeping for a lane-batched shared access, gated on
    /// prof like ThreadCtx::note_shared_access.
    template <typename T>
    void note_shared_lanes(const SharedArray<T>& a, const std::uint64_t* idx,
                           std::uint64_t elem) {
        if (!prof::collecting()) return;
        if (block_ == nullptr || block_->shared_arena.empty()) return;
        const std::byte* base = block_->shared_arena.data();
        for (std::uint32_t m = active_; m != 0; m &= m - 1) {
            const auto l = static_cast<unsigned>(std::countr_zero(m));
            const std::byte* p = a.base_ + idx[l] * elem;
            if (p < base || p >= base + block_->shared_arena.size()) continue;
            warp_->shared.note((base_tid_ + l) % kWarpSize,
                               static_cast<std::uint64_t>(p - base));
        }
    }

    /// Inverse of ThreadCtx::linear_tid() (CUDA convention: x fastest).
    [[nodiscard]] uint3 delinearize(unsigned tid) const {
        uint3 t;
        t.x = tid % block_dim_.x;
        t.y = (tid / block_dim_.x) % block_dim_.y;
        t.z = tid / (block_dim_.x * block_dim_.y);
        return t;
    }

    void* lane_raw(unsigned l) { return lane_storage_ + l * sizeof(ThreadCtx); }
    ThreadCtx* lane_ptr(unsigned l) {
        return std::launder(reinterpret_cast<ThreadCtx*>(lane_raw(l)));
    }

    unsigned base_tid_;
    unsigned nlanes_;
    std::uint32_t full_mask_;
    std::uint32_t live_;
    std::uint32_t active_;
    std::uint32_t at_barrier_ = 0;
    uint3 block_idx_;
    dim3 block_dim_;
    dim3 grid_dim_;
    const CostModel* cm_;
    BlockState* block_;
    WarpAcct* warp_;
    const memcheck::ExecContext* exec_;
    std::uint64_t shared_cursor_ = 0;
    unsigned depth_ = 0;
    Frame stack_[kMaxNesting];
    /// Contiguous per-lane accounting (the structure-of-arrays lane state):
    /// the warp-level charge loops stream through it; lane facades alias
    /// into it.
    ThreadAcct accts_[kWarpSize] = {};
    std::uint32_t lane_constructed_ = 0;
    alignas(ThreadCtx) std::byte lane_storage_[sizeof(ThreadCtx) * kWarpSize];
};

}  // namespace cusim
