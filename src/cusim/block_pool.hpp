// BlockPool — the persistent host-side worker pool behind parallel block
// execution.
//
// CUDA's core contract (§2.2) is that thread blocks are independent and may
// execute in any order; the simulator exploits exactly that independence by
// dealing the blocks of a grid to host worker threads. The pool is
// process-wide and persistent: workers are spawned once (lazily, on the
// first parallel launch) and then parked on a condition variable between
// grids, so a launch pays no thread-creation cost.
//
// Sizing follows the CUPP_TRACE / CUPP_MEMCHECK env convention:
//
//   CUPP_SIM_THREADS=<n>   number of host threads per grid
//                          (default: hardware_concurrency(); 1 = the
//                          serial engine path, bit-for-bit the pre-pool
//                          behaviour)
//
// set_threads() overrides the env programmatically (tests, benches).
// Device::launch consults DeviceProperties::sim_threads first, then this.
//
// Determinism contract: the pool only decides *where* a block runs, never
// what it computes or how its results are reduced. Device::launch indexes
// all per-block outputs by linear block id and reduces them in launch
// order, so every observable — LaunchStats, BlockCost waves, memcheck and
// faults reports, trace event order — is bit-identical for any thread
// count (see DESIGN.md "Parallel block execution").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace cusim {

class BlockPool {
public:
    /// The process-wide pool. Created on first use; worker threads are
    /// joined by an atexit hook so sanitizers see a clean shutdown.
    static BlockPool& instance();

    /// Threads per grid: the programmatic override if set, else
    /// CUPP_SIM_THREADS, else hardware_concurrency() (at least 1).
    [[nodiscard]] static unsigned configured_threads();

    /// Overrides the thread count (0 = back to env/default). Takes effect
    /// on the next launch; tests use this to sweep 1/2/8 deterministically.
    static void set_threads(unsigned n);

    /// Runs fn(i) for every i in [0, count), distributing indices across
    /// `threads` participants (the calling thread is one of them; at most
    /// threads-1 pool workers join in). Indices are claimed dynamically,
    /// so completion order is arbitrary — fn must write only to
    /// index-addressed slots and must not throw (catch into the slot).
    /// Returns when every index has finished. Serialises concurrent
    /// callers: one grid runs at a time.
    void run(std::uint64_t count, unsigned threads,
             const std::function<void(std::uint64_t)>& fn);

    /// Workers currently spawned (grows on demand, capped by the largest
    /// `threads` ever requested; introspection for tests).
    [[nodiscard]] unsigned pool_size() const;

    BlockPool(const BlockPool&) = delete;
    BlockPool& operator=(const BlockPool&) = delete;

private:
    BlockPool();
    ~BlockPool();

    struct Impl;
    Impl* impl_;  ///< pimpl keeps <thread>/<condition_variable> out of the header
};

}  // namespace cusim
