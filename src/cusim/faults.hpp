// cusim::faults — deterministic fault injection for the simulated device.
//
// The thesis' first claim for CuPP over raw CUDA (§4.2) is that "exceptions
// are thrown when an error occurs instead of returning an error code" — but
// error paths that never fire are error paths that never get tested. Because
// the device is simulated, failures can be injected *deterministically*:
// the same plan and seed produce the same faults at the same call sites,
// every run. That is what lets the resilience layer above (cupp::retry,
// device::reset(), the Boids CPU fallback) be exercised by ordinary tests.
//
// Activation follows the CUPP_TRACE / CUPP_MEMCHECK pattern:
//
//   CUPP_FAULTS=<plan.json>   load an explicit fault plan (schema below)
//   CUPP_FAULTS=seed:<n>      a default low-probability transient-only plan
//   CUPP_FAULTS_REPORT=<f>    write the end-of-run injection report to <f>
//                             (a plan's "report" key does the same)
//
// A fault plan is a JSON object:
//
//   {
//     "seed": 42,                      // optional, PRNG seed (default 0)
//     "report": "faults_report.json",  // optional, end-of-run report path
//     "rules": [
//       { "site": "launch",            // malloc | memcpy_h2d | memcpy_d2h |
//                                      // memcpy_d2d | launch | sync
//         "code": "launch_failure",    // which ErrorCode to inject
//         "nth": 3,                    // fire on the nth call to the site
//         "every": 7,                  // ... or on every 7th call
//         "probability": 0.01,         // ... or per call with probability p
//         "max": 1,                    // cap on injections (default: no cap)
//         "filter": "modify" }         // substring match on the call label
//     ]
//   }
//
// A rule fires when any of its triggers (nth / every / probability) matches,
// its filter (if any) matches the call-site label, and its injection cap is
// not exhausted. Injected faults throw cusim::Error *before* the operation
// mutates any state, so every injected failure is atomic and retryable.
// Injecting ErrorCode::DeviceLost additionally poisons the device: every
// subsequent operation on it fails with DeviceLost until
// Device::reset_device() (cupp: device::reset()).
//
// Every injection is mirrored into cupp::trace as an instant on the
// "faults" track plus cusim.faults.* counters, and an injection report
// (JSON) can be written at process exit for tools/faults_check.
//
// The disabled fast path is a single relaxed atomic load per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cusim/error.hpp"

namespace cusim {
class Device;
}  // namespace cusim

namespace cusim::faults {

// --- enablement -----------------------------------------------------------

namespace detail {
/// True while injection rules are active *or* any device is poisoned —
/// the one gate instrumented sites check (the poisoned-device check must
/// stay live even after the rules are disabled, or sticky semantics die
/// with the plan).
extern std::atomic<bool> g_armed;
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The per-site fast-path gate: one relaxed load when nothing is armed.
[[nodiscard]] inline bool armed() {
    return detail::g_armed.load(std::memory_order_relaxed);
}

/// True while injection rules are being evaluated.
[[nodiscard]] inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

// --- injection sites and rules --------------------------------------------

/// Where faults can be injected. One call counter is kept per site.
enum class Site {
    Malloc,     ///< Device::malloc_bytes / cusimMalloc
    MemcpyH2D,  ///< host -> device transfers (incl. constant memory)
    MemcpyD2H,  ///< device -> host transfers
    MemcpyD2D,  ///< device -> device copies
    Launch,     ///< kernel launches
    Sync,       ///< cusimThreadSynchronize / Device::synchronize
};
inline constexpr std::size_t kSiteCount = 6;

/// Stable lower_snake_case site name (plan keys, report JSON, metrics).
[[nodiscard]] const char* site_name(Site site);
/// Parses a plan's site name; false when unknown.
[[nodiscard]] bool parse_site(std::string_view name, Site* out);

/// Stable lower_snake_case error-code name (plan keys, report JSON).
[[nodiscard]] const char* code_name(ErrorCode code);
/// Parses a plan's error-code name; false when unknown.
[[nodiscard]] bool parse_code(std::string_view name, ErrorCode* out);

/// One injection rule. Triggers combine with OR; `injected` counts how
/// often the rule has fired (snapshot value in rules()).
struct Rule {
    Site site = Site::Malloc;
    ErrorCode code = ErrorCode::MemoryAllocation;
    double probability = 0.0;        ///< per-call chance via the seeded PRNG
    std::uint64_t nth = 0;           ///< fire on exactly the nth site call (1-based)
    std::uint64_t every = 0;         ///< fire on every k-th site call
    std::uint64_t max_injections = ~std::uint64_t{0};
    std::string filter;              ///< substring match on the call label
    std::uint64_t injected = 0;
};

// --- configuration ---------------------------------------------------------

/// Installs `rules` and arms injection. Resets all call counters and the
/// PRNG (seeded with `seed`). `report_path` (optional) receives the
/// injection report at process exit.
void configure(std::vector<Rule> rules, std::uint64_t seed = 0,
               std::string report_path = {});

/// Loads a plan file (schema above); throws Error(InvalidValue) on
/// malformed JSON or an invalid rule.
void enable_from_plan(const std::string& path);

/// Arms the default plan: low-probability *transient* faults (spurious
/// allocation, transfer and launch failures) — never DeviceLost.
void enable_with_seed(std::uint64_t seed);

/// Stops evaluating rules. Poisoned devices stay poisoned.
void disable();

/// disable() + drops rules, counters, report path (between test cases).
void reset();

// --- the injection point ---------------------------------------------------

/// Called by Device at each instrumented site when armed(): throws
/// Error(DeviceLost) if `dev` is poisoned, then evaluates the rules and
/// throws the matched rule's code (poisoning `dev` first when the code is
/// DeviceLost). `label` names the call site for filters and the trace.
void preflight(Site site, std::string_view label, Device* dev);

/// Device::poison() calls this so the armed() gate covers sticky state
/// even when no plan was ever loaded (programmatic poisoning in tests).
void note_device_poisoned();

// --- introspection & report ------------------------------------------------

/// Snapshot of the installed rules with their injection counts.
[[nodiscard]] std::vector<Rule> rules();
/// Total injections so far / injections at one site.
[[nodiscard]] std::uint64_t injections();
[[nodiscard]] std::uint64_t injections(Site site);
/// Calls seen at a site since configure().
[[nodiscard]] std::uint64_t site_calls(Site site);
/// Where the active plan came from ("<path>", "seed:<n>", "api" or "").
[[nodiscard]] std::string plan_source();

/// The configured report file ("" when none).
[[nodiscard]] std::string report_path();
/// The injection report as a JSON document / human-readable text.
[[nodiscard]] std::string report_json();
[[nodiscard]] std::string report_text();
/// Writes report_json() to `path` (or the configured path when omitted).
/// Returns false when no path is known or the write failed.
bool write_report(const std::string& path = {});

}  // namespace cusim::faults
