// Error handling for the cusim substrate.
//
// The raw runtime API (runtime_api.hpp) reports CUDA-1.0-style error codes;
// the C++ layers throw cusim::Error carrying the same code.
#pragma once

#include <stdexcept>
#include <string>

namespace cusim {

enum class ErrorCode {
    Success = 0,
    InvalidValue,
    InvalidConfiguration,   // bad grid/block geometry
    MemoryAllocation,       // out of device memory
    InvalidDevicePointer,
    InvalidMemcpyDirection,
    InvalidDevice,
    LaunchFailure,          // kernel threw / barrier misuse
    NotReady,
    DeviceInUse,            // host touched device memory owned by a live kernel
    MemcheckViolation,      // strict-mode cusim::memcheck finding
    TransferFailure,        // transient memcpy failure (retryable)
    DeviceLost,             // sticky: the device is gone until reset_device()
    StreamCaptureInvalid,   // capture broken by a sync, or misused capture API
    // Service-layer outcomes (cupp::serve). Not injectable device faults:
    // they are raised above the device, so faults::parse_code rejects them.
    AdmissionRejected,      // load shed: quota/queue bound refused the request
    DeadlineExceeded,       // the request's time budget expired
};

/// Human-readable name of an error code (mirrors cudaGetErrorString).
const char* error_string(ErrorCode code) noexcept;

/// Exception thrown by the C++ simulator layers.
class Error : public std::runtime_error {
public:
    Error(ErrorCode code, const std::string& what)
        : std::runtime_error(std::string(error_string(code)) + ": " + what), code_(code) {}

    [[nodiscard]] ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

}  // namespace cusim
