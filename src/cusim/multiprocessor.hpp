// The multiprocessor timing model.
//
// Functional execution (engine.hpp) produces per-warp cycle accounts; this
// file turns them into modelled device time, implementing the scheduling
// rules of §2.2 and the latency hiding of §2.3:
//
//  * blocks are mapped whole onto multiprocessors; several blocks share an
//    MP if its resources (shared memory, registers, max 8 blocks) allow;
//  * a block stays on its MP until it completes; remaining blocks run in
//    subsequent "waves";
//  * within a wave, warps time-share the MP's 8 processors, so total issue
//    time is the sum of the warps' compute cycles;
//  * global-memory latency is hidden by switching to other warps: stall
//    cycles are exposed only to the extent they exceed the issue work the
//    other resident warps can perform;
//  * total traffic cannot exceed the part's memory bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/engine.hpp"
#include "cusim/launch.hpp"

namespace cusim {

/// Collapsed cost of one executed block.
struct BlockCost {
    std::uint64_t compute_cycles = 0;          ///< Σ warps (incl. divergence penalty)
    std::uint64_t stall_cycles = 0;            ///< Σ warps
    std::uint64_t max_warp_busy = 0;           ///< max over warps of compute+stall
    std::uint64_t bytes = 0;                   ///< read + written
    unsigned warps = 0;

    static BlockCost from(const BlockResult& br, const CostModel& cm);
};

/// Number of blocks that fit on one multiprocessor concurrently.
unsigned blocks_per_mp(const CostModel& cm, const LaunchConfig& cfg);

/// Models the execution time (seconds) of a whole grid from its block costs.
/// `resident_out`, if non-null, receives the achieved blocks-per-MP.
double model_grid_seconds(const CostModel& cm, const LaunchConfig& cfg,
                          const std::vector<BlockCost>& blocks, unsigned* resident_out);

}  // namespace cusim
