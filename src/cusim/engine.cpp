#include "cusim/engine.hpp"

#include <memory>
#include <new>
#include <string>

#include "cusim/error.hpp"
#include "cusim/thread_ctx.hpp"

namespace cusim {

// Declaration order matters for teardown: tasks are destroyed before ctxs
// (members die in reverse order), so a suspended coroutine frame never
// outlives the ThreadCtx it references.
struct BlockScratch::State {
    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    std::vector<KernelTask> tasks;
    std::vector<bool> finished;
    BlockState block;
};

BlockScratch::BlockScratch() : state(std::make_unique<State>()) {}
BlockScratch::~BlockScratch() = default;

namespace {

uint3 unlinearize_thread(unsigned tid, const dim3& bd) {
    uint3 t;
    t.x = tid % bd.x;
    t.y = (tid / bd.x) % bd.y;
    t.z = tid / (bd.x * bd.y);
    return t;
}

[[noreturn]] void rethrow_as_launch_failure(std::exception_ptr ep) {
    try {
        std::rethrow_exception(ep);
    } catch (const Error& e) {
        throw Error(ErrorCode::LaunchFailure, std::string("kernel threw: ") + e.what());
    } catch (const std::exception& e) {
        throw Error(ErrorCode::LaunchFailure, std::string("kernel threw: ") + e.what());
    } catch (...) {
        throw Error(ErrorCode::LaunchFailure, "kernel threw a non-standard exception");
    }
}

}  // namespace

BlockResult run_block(const CostModel& cm, const LaunchConfig& cfg,
                      const KernelEntry& entry, uint3 block_idx,
                      const memcheck::ExecContext* exec, const RunBlockOpts& opts) {
    const unsigned nthreads = static_cast<unsigned>(cfg.block.count());
    const unsigned nwarps = cfg.warps_per_block();

    BlockResult result;
    result.warps.resize(nwarps);

    // Per-call storage comes from the caller's scratch when provided, so a
    // worker re-running blocks reconstructs contexts in place and keeps the
    // shared arena's capacity instead of reallocating everything per block.
    std::unique_ptr<BlockScratch> local;
    if (opts.scratch == nullptr) local = std::make_unique<BlockScratch>();
    BlockScratch::State& s =
        *(opts.scratch != nullptr ? opts.scratch : local.get())->state;

    BlockState& block_state = s.block;
    block_state.shared_arena.assign(cfg.shared_bytes, std::byte{0});
    block_state.sync_episodes = 0;
    block_state.shared_shadow.reset();
    block_state.violation_sink = opts.violation_sink;

    // Tear down the previous block's coroutines before their contexts are
    // reconstructed underneath them (frames recycle through the
    // thread-local cache in kernel_task.hpp, so this is cheap).
    s.tasks.clear();
    s.tasks.reserve(nthreads);
    if (s.ctxs.size() > nthreads) s.ctxs.resize(nthreads);

    // Build contexts and coroutines (created suspended).
    for (unsigned tid = 0; tid < nthreads; ++tid) {
        if (tid < s.ctxs.size()) {
            // Reuse the existing allocation: ThreadCtx is not assignable
            // (const-ish identity members), so destroy + construct in place.
            ThreadCtx* p = s.ctxs[tid].get();
            p->~ThreadCtx();
            new (p) ThreadCtx(unlinearize_thread(tid, cfg.block), block_idx, cfg.block,
                              cfg.grid, &cm, &block_state,
                              &result.warps[tid / kWarpSize], exec);
        } else {
            s.ctxs.push_back(std::make_unique<ThreadCtx>(
                unlinearize_thread(tid, cfg.block), block_idx, cfg.block, cfg.grid, &cm,
                &block_state, &result.warps[tid / kWarpSize], exec));
        }
        s.tasks.push_back(entry(*s.ctxs[tid]));
    }

    s.finished.assign(nthreads, false);
    std::vector<std::unique_ptr<ThreadCtx>>& ctxs = s.ctxs;
    std::vector<KernelTask>& tasks = s.tasks;
    std::vector<bool>& finished = s.finished;
    unsigned live = nthreads;

    while (live > 0) {
        unsigned at_barrier = 0;
        unsigned finished_this_epoch = 0;
        for (unsigned tid = 0; tid < nthreads; ++tid) {
            if (finished[tid] || ctxs[tid]->at_barrier()) {
                at_barrier += ctxs[tid]->at_barrier() ? 1u : 0u;
                continue;
            }
            tasks[tid].resume();
            if (auto ep = tasks[tid].exception()) rethrow_as_launch_failure(ep);
            if (tasks[tid].done()) {
                finished[tid] = true;
                --live;
                ++finished_this_epoch;
                // SIMD fold into the warp: cycles at the pace of the slowest
                // lane, traffic summed over lanes.
                WarpAcct& w = ctxs[tid]->warp();
                const ThreadAcct& a = ctxs[tid]->acct();
                if (a.compute_cycles > w.compute_cycles) w.compute_cycles = a.compute_cycles;
                if (a.stall_cycles > w.stall_cycles) w.stall_cycles = a.stall_cycles;
                w.bytes_read += a.bytes_read;
                w.bytes_written += a.bytes_written;
                w.useful_bytes_read += a.useful_bytes_read;
                w.useful_bytes_written += a.useful_bytes_written;
            } else {
                ++at_barrier;
            }
        }
        if (at_barrier > 0 && (finished_this_epoch > 0 || at_barrier != live)) {
            // __syncthreads() must be reached by every thread of the block;
            // a thread finishing (or not arriving) while others wait is the
            // CUDA-undefined divergent barrier, diagnosed instead of hung.
            throw Error(ErrorCode::LaunchFailure,
                        "__syncthreads() reached by " + std::to_string(at_barrier) +
                            " of " + std::to_string(live + finished_this_epoch) +
                            " threads (divergent barrier)");
        }
        if (live == 0) break;
        for (auto& ctx : ctxs) ctx->clear_barrier();
        ++block_state.sync_episodes;
    }

    result.sync_episodes = block_state.sync_episodes;
    // The sink points into the caller's frame; don't leave it dangling in
    // reusable scratch.
    block_state.violation_sink = nullptr;
    return result;
}

}  // namespace cusim
