#include "cusim/engine.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <string_view>

#include "cupp/trace.hpp"
#include "cusim/error.hpp"
#include "cusim/thread_ctx.hpp"
#include "cusim/warp_ctx.hpp"

namespace cusim {

namespace detail {

void FrameCache::flush_metrics() {
    ops_since_flush = 0;
    if (hits == 0 && misses == 0 && evicts == 0) return;
    auto& m = cupp::trace::metrics();
    if (hits > 0) m.add("cusim.framecache.hit", hits);
    if (misses > 0) m.add("cusim.framecache.miss", misses);
    if (evicts > 0) m.add("cusim.framecache.evict", evicts);
    hits = misses = evicts = 0;
}

}  // namespace detail

// Declaration order matters for teardown: tasks are destroyed before ctxs
// (members die in reverse order), so a suspended coroutine frame never
// outlives the ThreadCtx it references. Same for the warp engine's wtasks
// relative to wctxs.
struct BlockScratch::State {
    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    std::vector<KernelTask> tasks;
    std::vector<bool> finished;
    std::vector<std::unique_ptr<WarpCtx>> wctxs;
    std::vector<KernelTask> wtasks;
    std::vector<bool> wfinished;
    BlockState block;
};

BlockScratch::BlockScratch() : state(std::make_unique<State>()) {}
BlockScratch::~BlockScratch() = default;

namespace {

uint3 unlinearize_thread(unsigned tid, const dim3& bd) {
    uint3 t;
    t.x = tid % bd.x;
    t.y = (tid / bd.x) % bd.y;
    t.z = tid / (bd.x * bd.y);
    return t;
}

[[noreturn]] void rethrow_as_launch_failure(std::exception_ptr ep) {
    try {
        std::rethrow_exception(ep);
    } catch (const Error& e) {
        throw Error(ErrorCode::LaunchFailure, std::string("kernel threw: ") + e.what());
    } catch (const std::exception& e) {
        throw Error(ErrorCode::LaunchFailure, std::string("kernel threw: ") + e.what());
    } catch (...) {
        throw Error(ErrorCode::LaunchFailure, "kernel threw a non-standard exception");
    }
}

// -1 = no override (read the environment), else the EngineMode value.
std::atomic<int> g_engine_override{-1};

EngineMode engine_mode_from_env() {
    const char* v = std::getenv("CUPP_SIM_ENGINE");
    if (v != nullptr && std::string_view(v) == "thread") return EngineMode::Thread;
    return EngineMode::Warp;
}

}  // namespace

EngineMode engine_mode() {
    const int o = g_engine_override.load(std::memory_order_relaxed);
    if (o >= 0) return static_cast<EngineMode>(o);
    // The environment is process-wide and stable during a run; cache it.
    static const EngineMode env_mode = engine_mode_from_env();
    return env_mode;
}

void set_engine_mode(EngineMode mode) {
    g_engine_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void clear_engine_mode() { g_engine_override.store(-1, std::memory_order_relaxed); }

BlockResult run_block(const CostModel& cm, const LaunchConfig& cfg,
                      const KernelEntry& entry, uint3 block_idx,
                      const memcheck::ExecContext* exec, const RunBlockOpts& opts) {
    const unsigned nthreads = static_cast<unsigned>(cfg.block.count());
    const unsigned nwarps = cfg.warps_per_block();

    BlockResult result;
    result.warps.resize(nwarps);

    // Per-call storage comes from the caller's scratch when provided, so a
    // worker re-running blocks reconstructs contexts in place and keeps the
    // shared arena's capacity instead of reallocating everything per block.
    std::unique_ptr<BlockScratch> local;
    if (opts.scratch == nullptr) local = std::make_unique<BlockScratch>();
    BlockScratch::State& s =
        *(opts.scratch != nullptr ? opts.scratch : local.get())->state;

    BlockState& block_state = s.block;
    block_state.shared_arena.assign(cfg.shared_bytes, std::byte{0});
    block_state.sync_episodes = 0;
    block_state.shared_shadow.reset();
    block_state.violation_sink = opts.violation_sink;

    // Tear down the previous block's coroutines before their contexts are
    // reconstructed underneath them (frames recycle through the
    // thread-local cache in kernel_task.hpp, so this is cheap).
    s.tasks.clear();
    s.tasks.reserve(nthreads);
    if (s.ctxs.size() > nthreads) s.ctxs.resize(nthreads);

    // Build contexts and coroutines (created suspended).
    for (unsigned tid = 0; tid < nthreads; ++tid) {
        if (tid < s.ctxs.size()) {
            // Reuse the existing allocation: ThreadCtx is not assignable
            // (const-ish identity members), so destroy + construct in place.
            ThreadCtx* p = s.ctxs[tid].get();
            p->~ThreadCtx();
            new (p) ThreadCtx(unlinearize_thread(tid, cfg.block), block_idx, cfg.block,
                              cfg.grid, &cm, &block_state,
                              &result.warps[tid / kWarpSize], exec);
        } else {
            s.ctxs.push_back(std::make_unique<ThreadCtx>(
                unlinearize_thread(tid, cfg.block), block_idx, cfg.block, cfg.grid, &cm,
                &block_state, &result.warps[tid / kWarpSize], exec));
        }
        s.tasks.push_back(entry(*s.ctxs[tid]));
    }

    s.finished.assign(nthreads, false);
    std::vector<std::unique_ptr<ThreadCtx>>& ctxs = s.ctxs;
    std::vector<KernelTask>& tasks = s.tasks;
    std::vector<bool>& finished = s.finished;
    unsigned live = nthreads;

    while (live > 0) {
        unsigned at_barrier = 0;
        unsigned finished_this_epoch = 0;
        for (unsigned tid = 0; tid < nthreads; ++tid) {
            if (finished[tid] || ctxs[tid]->at_barrier()) {
                at_barrier += ctxs[tid]->at_barrier() ? 1u : 0u;
                continue;
            }
            tasks[tid].resume();
            if (auto ep = tasks[tid].exception()) rethrow_as_launch_failure(ep);
            if (tasks[tid].done()) {
                finished[tid] = true;
                --live;
                ++finished_this_epoch;
                // SIMD fold into the warp: cycles at the pace of the slowest
                // lane, traffic summed over lanes.
                WarpAcct& w = ctxs[tid]->warp();
                const ThreadAcct& a = ctxs[tid]->acct();
                if (a.compute_cycles > w.compute_cycles) w.compute_cycles = a.compute_cycles;
                if (a.stall_cycles > w.stall_cycles) w.stall_cycles = a.stall_cycles;
                w.bytes_read += a.bytes_read;
                w.bytes_written += a.bytes_written;
                w.useful_bytes_read += a.useful_bytes_read;
                w.useful_bytes_written += a.useful_bytes_written;
            } else {
                ++at_barrier;
            }
        }
        if (at_barrier > 0 && (finished_this_epoch > 0 || at_barrier != live)) {
            // __syncthreads() must be reached by every thread of the block;
            // a thread finishing (or not arriving) while others wait is the
            // CUDA-undefined divergent barrier, diagnosed instead of hung.
            throw Error(ErrorCode::LaunchFailure,
                        "__syncthreads() reached by " + std::to_string(at_barrier) +
                            " of " + std::to_string(live + finished_this_epoch) +
                            " threads (divergent barrier)");
        }
        if (live == 0) break;
        for (auto& ctx : ctxs) ctx->clear_barrier();
        ++block_state.sync_episodes;
    }

    result.sync_episodes = block_state.sync_episodes;
    // The sink points into the caller's frame; don't leave it dangling in
    // reusable scratch.
    block_state.violation_sink = nullptr;
    return result;
}

namespace {

/// The warp-vectorized block loop: one coroutine per warp, resumed once per
/// epoch. Lane bookkeeping is popcount arithmetic over the warps' live and
/// at-barrier masks, arranged so the divergent-barrier diagnostic carries
/// the exact thread counts (and message) the per-thread loop produces.
BlockResult run_block_warp(const CostModel& cm, const LaunchConfig& cfg,
                           const WarpKernelEntry& entry, uint3 block_idx,
                           const memcheck::ExecContext* exec, const RunBlockOpts& opts) {
    const unsigned nthreads = static_cast<unsigned>(cfg.block.count());
    const unsigned nwarps = cfg.warps_per_block();

    BlockResult result;
    result.warps.resize(nwarps);

    std::unique_ptr<BlockScratch> local;
    if (opts.scratch == nullptr) local = std::make_unique<BlockScratch>();
    BlockScratch::State& s =
        *(opts.scratch != nullptr ? opts.scratch : local.get())->state;

    BlockState& block_state = s.block;
    block_state.shared_arena.assign(cfg.shared_bytes, std::byte{0});
    block_state.sync_episodes = 0;
    block_state.shared_shadow.reset();
    block_state.violation_sink = opts.violation_sink;

    // Tear down the previous block's warp coroutines before their contexts
    // are reconstructed underneath them.
    s.wtasks.clear();
    s.wtasks.reserve(nwarps);
    if (s.wctxs.size() > nwarps) s.wctxs.resize(nwarps);

    for (unsigned w = 0; w < nwarps; ++w) {
        const unsigned base = w * kWarpSize;
        const unsigned nlanes =
            nthreads - base < kWarpSize ? nthreads - base : kWarpSize;
        if (w < s.wctxs.size()) {
            WarpCtx* p = s.wctxs[w].get();
            p->~WarpCtx();
            new (p) WarpCtx(base, nlanes, block_idx, cfg.block, cfg.grid, &cm,
                            &block_state, &result.warps[w], exec);
        } else {
            s.wctxs.push_back(std::make_unique<WarpCtx>(
                base, nlanes, block_idx, cfg.block, cfg.grid, &cm, &block_state,
                &result.warps[w], exec));
        }
        s.wtasks.push_back(entry(*s.wctxs[w]));
    }

    s.wfinished.assign(nwarps, false);
    std::vector<std::unique_ptr<WarpCtx>>& wctxs = s.wctxs;
    std::vector<KernelTask>& wtasks = s.wtasks;
    std::vector<bool>& wfinished = s.wfinished;
    unsigned live = nthreads;  // lanes not yet finished, across all warps

    while (live > 0) {
        unsigned at_barrier = 0;
        unsigned finished_this_epoch = 0;
        for (unsigned w = 0; w < nwarps; ++w) {
            if (wfinished[w]) continue;
            WarpCtx& wc = *wctxs[w];
            const auto lanes_before =
                static_cast<unsigned>(std::popcount(wc.live()));
            wtasks[w].resume();
            if (auto ep = wtasks[w].exception()) rethrow_as_launch_failure(ep);
            if (wtasks[w].done() || wc.live() == 0) {
                // The warp retired: either the body ran to completion or
                // every lane exited via exit_lanes(). All lanes that were
                // still live when this epoch started finish here.
                wfinished[w] = true;
                wc.fold_into_warp_acct();
                finished_this_epoch += lanes_before;
                live -= lanes_before;
            } else {
                // Suspended at a barrier. Lanes that exited mid-epoch via
                // exit_lanes() finished without arriving at it.
                const auto lanes_now =
                    static_cast<unsigned>(std::popcount(wc.live()));
                finished_this_epoch += lanes_before - lanes_now;
                live -= lanes_before - lanes_now;
                at_barrier += static_cast<unsigned>(std::popcount(wc.at_barrier_mask()));
            }
        }
        if (at_barrier > 0 && (finished_this_epoch > 0 || at_barrier != live)) {
            // Same diagnosis — and byte-identical message — as the
            // per-thread loop above: X lanes arrived, Y were obliged to.
            throw Error(ErrorCode::LaunchFailure,
                        "__syncthreads() reached by " + std::to_string(at_barrier) +
                            " of " + std::to_string(live + finished_this_epoch) +
                            " threads (divergent barrier)");
        }
        if (live == 0) break;
        for (auto& wc : wctxs) wc->clear_barrier();
        ++block_state.sync_episodes;
    }

    result.sync_episodes = block_state.sync_episodes;
    block_state.violation_sink = nullptr;
    return result;
}

}  // namespace

BlockResult run_block(const CostModel& cm, const LaunchConfig& cfg,
                      const KernelSpec& spec, uint3 block_idx,
                      const memcheck::ExecContext* exec, const RunBlockOpts& opts) {
    if (spec.warp && engine_mode() == EngineMode::Warp) {
        return run_block_warp(cm, cfg, spec.warp, block_idx, exec, opts);
    }
    return run_block(cm, cfg, spec.thread, block_idx, exec, opts);
}

}  // namespace cusim
