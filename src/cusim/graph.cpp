// cusim::graph implementation: the capture recorder (fed by the enqueue
// paths in stream.cpp via Device::capture_op) and the instantiate/replay
// half of the subsystem.
//
// Replay invariants (DESIGN.md §5g):
//  * replayed ops drain through the exact same canonical order as eager
//    ops — LaunchStats, memcheck, trace, prof and timeline observables
//    are bit-identical to the eager enqueue sequence;
//  * graph_launch() charges the host clock one launch overhead for the
//    whole DAG and runs one fault preflight before mutating anything, so
//    an injected failure aborts the replay atomically;
//  * per-op validation (geometry, pointer ranges) runs once, at
//    graph_instantiate(), never at launch.

#include "cusim/graph.hpp"

#include <string>
#include <utility>
#include <vector>

#include "cusim/memcheck.hpp"
#include "cusim/multiprocessor.hpp"
#include "cusim/prof.hpp"
#include "cusim/stream_detail.hpp"
#include "cusim/timeline.hpp"

namespace cusim {

using detail::GraphNode;
using detail::StreamOp;

std::size_t Graph::node_count() const { return ir_ ? ir_->nodes.size() : 0; }

std::size_t GraphExec::node_count() const { return ir_ ? ir_->nodes.size() : 0; }

// --- capture ------------------------------------------------------------------

void Device::stream_begin_capture(StreamId origin, CaptureMode mode) {
    prof::ApiScope prof_scope(prof::Api::StreamBeginCapture, trace_ordinal_, origin);
    if (capturing_) {
        throw Error(ErrorCode::StreamCaptureInvalid,
                    "stream_begin_capture: a capture is already in progress");
    }
    detail::StreamTable& t = stream_table();
    if (origin == kDefaultStream || t.streams.find(origin) == t.streams.end()) {
        throw Error(ErrorCode::InvalidValue, "stream_begin_capture: unknown stream");
    }
    capture_ = std::make_unique<detail::CaptureState>();
    capture_->origin = origin;
    capture_->mode = mode;
    capture_->captured.insert(origin);
    capturing_ = true;
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant(host_track(), "begin capture",
                                  trace_time_us(host_time_), {{"stream", origin}});
    }
}

Graph Device::stream_end_capture(StreamId origin) {
    prof::ApiScope prof_scope(prof::Api::StreamEndCapture, trace_ordinal_, origin);
    if (!capturing_) {
        throw Error(ErrorCode::StreamCaptureInvalid,
                    "stream_end_capture: no capture in progress");
    }
    if (origin != capture_->origin) {
        throw Error(ErrorCode::InvalidValue,
                    "stream_end_capture: not the capture's origin stream");
    }
    const bool bad = capture_->invalidated;
    const std::string reason = std::move(capture_->reason);
    auto ir = std::make_shared<detail::GraphIR>();
    ir->nodes = std::move(capture_->nodes);
    ir->device = this;
    capture_.reset();
    capturing_ = false;
    if (bad) {
        throw Error(ErrorCode::StreamCaptureInvalid,
                    "stream_end_capture: capture was invalidated (" + reason + ")");
    }
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant(host_track(), "end capture",
                                  trace_time_us(host_time_),
                                  {{"nodes", ir->nodes.size()}});
    }
    return Graph(std::shared_ptr<const detail::GraphIR>(std::move(ir)));
}

void Device::capture_violation(const char* what) {
    detail::CaptureState& c = *capture_;
    if (!c.invalidated) {
        c.invalidated = true;
        c.reason = what ? what : "capture violation";
    }
    throw Error(ErrorCode::StreamCaptureInvalid, c.reason);
}

bool Device::capture_op(detail::StreamOp& op, StreamId stream) {
    detail::CaptureState& c = *capture_;
    if (c.invalidated) capture_violation(nullptr);  // rethrows the first reason
    const bool member =
        c.mode == CaptureMode::AllStreams || c.captured.count(stream) != 0;
    if (op.kind == StreamOp::Kind::Wait) {
        const auto rec = c.recorded.find(op.event);
        // A wait on an event recorded *inside* the capture becomes a graph
        // edge — and, CUDA's propagation rule, pulls an uncaptured stream
        // into the captured set. A member stream's wait on a pre-capture
        // record is captured as a no-op wait (the record's completion is a
        // property of the capture-time state, not of the replayed DAG).
        if (!member && rec == c.recorded.end()) return false;  // unrelated: eager
        GraphNode n;
        n.op = std::move(op);
        n.stream = stream;
        if (rec != c.recorded.end()) n.wait_edge = rec->second;
        c.captured.insert(stream);
        c.nodes.push_back(std::move(n));
        return true;
    }
    if (!member) return false;
    c.captured.insert(stream);
    if (op.kind == StreamOp::Kind::Record) {
        c.recorded[op.event] = c.nodes.size();
    }
    GraphNode n;
    n.op = std::move(op);
    n.stream = stream;
    c.nodes.push_back(std::move(n));
    return true;
}

// --- instantiate --------------------------------------------------------------

GraphExec Device::graph_instantiate(const Graph& graph) {
    prof::ApiScope prof_scope(prof::Api::GraphInstantiate, trace_ordinal_, 0,
                              graph.node_count());
    if (!graph.valid()) {
        throw Error(ErrorCode::InvalidValue, "graph_instantiate: empty graph handle");
    }
    const detail::GraphIR& ir = *graph.ir_;
    if (ir.device != this) {
        throw Error(ErrorCode::InvalidDevice,
                    "graph_instantiate: graph captured on another device");
    }
    // One preflight for the whole validation pass: an injected failure is
    // atomic (no exec handle, no state touched) and retryable.
    fault_preflight(faults::Site::Launch, "graph instantiate");
    detail::StreamTable& t = stream_table();
    for (const GraphNode& n : ir.nodes) {
        if (t.streams.find(n.stream) == t.streams.end()) {
            throw Error(ErrorCode::InvalidValue,
                        "graph_instantiate: captured stream was destroyed");
        }
        const StreamOp& op = n.op;
        switch (op.kind) {
            case StreamOp::Kind::Launch:
                op.cfg.validate();
                (void)blocks_per_mp(props_.cost, op.cfg);
                break;
            case StreamOp::Kind::CopyH2D:
                if (!memory_.range_valid(op.dst, op.bytes)) {
                    throw Error(ErrorCode::InvalidDevicePointer,
                                "graph_instantiate: H2D outside any allocation");
                }
                break;
            case StreamOp::Kind::CopyD2H:
                if (!memory_.range_valid(op.src, op.bytes)) {
                    throw Error(ErrorCode::InvalidDevicePointer,
                                "graph_instantiate: D2H outside any allocation");
                }
                break;
            case StreamOp::Kind::CopyD2D:
                if (!memory_.range_valid(op.src, op.bytes) ||
                    !memory_.range_valid(op.dst, op.bytes)) {
                    throw Error(ErrorCode::InvalidDevicePointer,
                                "graph_instantiate: D2D outside any allocation");
                }
                break;
            case StreamOp::Kind::Record:
            case StreamOp::Kind::Wait:
                if (t.events.find(op.event) == t.events.end()) {
                    throw Error(ErrorCode::InvalidValue,
                                "graph_instantiate: captured event was destroyed");
                }
                break;
        }
    }
    if (cupp::trace::enabled()) {
        cupp::trace::emit_instant(host_track(), "graph instantiate",
                                  trace_time_us(host_time_),
                                  {{"nodes", ir.nodes.size()}});
    }
    return GraphExec(graph.ir_);
}

// --- replay -------------------------------------------------------------------

void Device::graph_launch(const GraphExec& exec) {
    prof::ApiScope prof_scope(prof::Api::GraphLaunch, trace_ordinal_, 0,
                              exec.node_count());
    timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::Host,
                                "graph launch", 0, prof_scope.correlation(),
                                tl_abs(host_time_));
    if (capturing_) capture_violation("graph_launch during stream capture");
    if (!exec.valid()) {
        throw Error(ErrorCode::InvalidValue, "graph_launch: empty exec handle");
    }
    const detail::GraphIR& ir = *exec.ir_;
    if (ir.device != this) {
        throw Error(ErrorCode::InvalidDevice,
                    "graph_launch: graph captured on another device");
    }
    // One preflight, then target-liveness checks, all before any mutation:
    // an injected or real failure leaves every queue untouched.
    fault_preflight(faults::Site::Launch, "graph launch");
    detail::StreamTable& t = stream_table();
    for (const GraphNode& n : ir.nodes) {
        if (t.streams.find(n.stream) == t.streams.end()) {
            throw Error(ErrorCode::InvalidValue,
                        "graph_launch: captured stream was destroyed");
        }
    }

    // Fast path: no per-op ApiScope/preflight/validation/anchor — every
    // node re-enqueues with a fresh seq under one host-lane anchor.
    const double t0 = host_time_;
    std::uint64_t anchor = 0;
    if (timeline::enabled()) {
        anchor = timeline::anchor_host(trace_ordinal_, tl_abs(t0));
    }
    std::vector<std::uint64_t> node_seq(ir.nodes.size(), 0);
    for (std::size_t i = 0; i < ir.nodes.size(); ++i) {
        const GraphNode& n = ir.nodes[i];
        StreamOp op = n.op;  // copy: closures + staged bytes are reused as-is
        op.seq = t.next_seq++;
        op.issue_host_time = t0;
        op.corr = prof_scope.correlation();
        op.tl_anchor = anchor;
        node_seq[i] = op.seq;
        switch (op.kind) {
            case StreamOp::Kind::Record: {
                auto ev = t.events.find(op.event);
                if (ev != t.events.end()) ev->second.last_record_seq = op.seq;
                break;
            }
            case StreamOp::Kind::Wait:
                if (n.wait_edge != GraphNode::kNoEdge) {
                    op.wait_target_seq = node_seq[n.wait_edge];
                    op.wait_has_target = true;
                } else {
                    op.wait_target_seq = 0;
                    op.wait_has_target = false;
                }
                break;
            case StreamOp::Kind::CopyD2H:
                if (memcheck::enabled()) {
                    detail::PendingHostWrite w;
                    w.begin = static_cast<const std::byte*>(op.host_dst);
                    w.end = w.begin + op.bytes;
                    w.stream = n.stream;
                    w.seq = op.seq;
                    t.host_writes.push_back(w);
                }
                break;
            default:
                break;
        }
        t.streams.find(n.stream)->second.pending.push_back(std::move(op));
    }

    // The amortization: one launch-overhead charge for the whole DAG.
    host_time_ += props_.cost.launch_overhead_s;
    if (timeline::enabled()) {
        timeline::host_op(trace_ordinal_, timeline::Category::Host, "graph launch",
                          0, prof_scope.correlation(), tl_abs(t0),
                          tl_abs(host_time_));
    }
    if (cupp::trace::enabled()) {
        cupp::trace::emit_complete(host_track(), "graph launch", trace_time_us(t0),
                                   props_.cost.launch_overhead_s * 1e6,
                                   {{"nodes", ir.nodes.size()}});
        static const cupp::trace::counter_handle launches("cusim.graph.launches");
        launches.add();
    }
}

}  // namespace cusim
