// Device — the top-level handle of the simulated GPU.
//
// Owns the global-memory address space and the simulated timeline. Kernel
// launches are asynchronous on that timeline, exactly as in §2.2: the launch
// returns immediately (advancing the host clock only by the launch
// overhead), and the device clock runs ahead; any host access to device
// memory first waits until no kernel is active. This is what makes the
// double-buffering experiment (§6.3.2) measurable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cusim/accounting.hpp"
#include "cusim/constant_memory.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_properties.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/global_memory.hpp"
#include "cusim/launch.hpp"

namespace cusim {

class Device {
public:
    explicit Device(DeviceProperties props = g80_properties())
        : props_(std::move(props)), memory_(props_.total_global_mem) {}

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    [[nodiscard]] const DeviceProperties& properties() const { return props_; }
    [[nodiscard]] GlobalMemory& memory() { return memory_; }
    [[nodiscard]] const GlobalMemory& memory() const { return memory_; }

    // --- allocation -------------------------------------------------------
    [[nodiscard]] DeviceAddr malloc_bytes(std::uint64_t bytes) {
        return memory_.allocate(bytes);
    }
    void free_bytes(DeviceAddr addr) { memory_.free(addr); }

    /// Typed allocation of `count` elements.
    template <typename T>
    [[nodiscard]] DevicePtr<T> malloc_n(std::uint64_t count) {
        const DeviceAddr addr = memory_.allocate(count * sizeof(T));
        return DevicePtr<T>(memory_.raw(addr), addr, count);
    }

    template <typename T>
    void free(const DevicePtr<T>& p) {
        if (!p.null()) memory_.free(p.addr());
    }

    /// Re-creates a typed view over an existing allocation (validated).
    template <typename T>
    [[nodiscard]] DevicePtr<T> view(DeviceAddr addr, std::uint64_t count) {
        if (!memory_.range_valid(addr, count * sizeof(T))) {
            throw Error(ErrorCode::InvalidDevicePointer, "view outside any allocation");
        }
        return DevicePtr<T>(memory_.raw(addr), addr, count);
    }

    // --- host <-> device transfers (blocking, clock-advancing) ------------
    void copy_to_device(DeviceAddr dst, const void* src, std::uint64_t bytes) {
        begin_host_access(bytes);
        memory_.write(dst, src, bytes);
        bytes_to_device_ += bytes;
    }
    void copy_to_host(void* dst, DeviceAddr src, std::uint64_t bytes) {
        begin_host_access(bytes);
        memory_.read(src, dst, bytes);
        bytes_to_host_ += bytes;
    }
    void copy_device_to_device(DeviceAddr dst, DeviceAddr src, std::uint64_t bytes) {
        // Device-side copy: consumes device time, not host time.
        const double secs = static_cast<double>(bytes) / props_.cost.mem_bandwidth_bytes_per_s;
        device_free_at_ = std::max(device_free_at_, host_time_) + secs;
        memory_.copy(dst, src, bytes);
    }

    template <typename T>
    void upload(const DevicePtr<T>& dst, std::span<const T> src) {
        if (src.size() > dst.size()) {
            throw Error(ErrorCode::InvalidValue, "upload larger than destination");
        }
        copy_to_device(dst.addr(), src.data(), src.size_bytes());
    }
    template <typename T>
    void download(std::span<T> dst, const DevicePtr<T>& src) {
        if (dst.size() > src.size()) {
            throw Error(ErrorCode::InvalidValue, "download larger than source");
        }
        copy_to_host(dst.data(), src.addr(), dst.size_bytes());
    }

    // --- constant memory & textures (§2.1, future-work §7) ------------------
    [[nodiscard]] ConstantMemory& constant_memory() { return constant_; }

    /// Allocates `count` elements in the 64 KiB constant space.
    template <typename T>
    [[nodiscard]] ConstantPtr<T> malloc_constant(std::uint64_t count) {
        const DeviceAddr addr = constant_.allocate(count * sizeof(T));
        return ConstantPtr<T>(constant_.raw(addr), addr, count);
    }

    /// Host upload into constant memory (blocks while a kernel is active,
    /// like any host access to device state).
    void copy_to_constant(DeviceAddr addr, const void* src, std::uint64_t bytes) {
        begin_host_access(bytes);
        constant_.write(addr, src, bytes);
        bytes_to_device_ += bytes;
    }

    // --- execution ---------------------------------------------------------
    /// Executes a grid and advances the device timeline by the modelled
    /// time. Asynchronous w.r.t. the host clock (§2.2).
    LaunchStats launch(const LaunchConfig& cfg, const KernelEntry& entry);

    // --- the simulated timeline --------------------------------------------
    [[nodiscard]] double host_time() const { return host_time_; }
    [[nodiscard]] double device_free_at() const { return device_free_at_; }
    [[nodiscard]] bool kernel_active() const { return device_free_at_ > host_time_; }

    /// Advances the host clock (CPU work happening between API calls; the
    /// steering library's CPU cost model feeds this).
    void advance_host(double seconds) { host_time_ += seconds; }

    /// cudaThreadSynchronize: host blocks until the device is idle.
    void synchronize() { host_time_ = std::max(host_time_, device_free_at_); }

    // --- events (cudaEventRecord-style timing) -------------------------------
    /// A point on the device timeline.
    struct Event {
        double device_time = 0.0;
    };

    /// Records an event after all currently queued device work.
    [[nodiscard]] Event record_event() const {
        return Event{std::max(device_free_at_, host_time_)};
    }

    /// Milliseconds of device time between two recorded events.
    [[nodiscard]] static double elapsed_ms(const Event& start, const Event& stop) {
        return (stop.device_time - start.device_time) * 1e3;
    }

    /// Resets the timeline (a new measurement run).
    void reset_clock() { host_time_ = 0.0; device_free_at_ = 0.0; }

    // --- statistics ---------------------------------------------------------
    [[nodiscard]] const LaunchStats& last_launch() const { return last_launch_; }
    [[nodiscard]] std::uint64_t launches() const { return launch_count_; }
    [[nodiscard]] std::uint64_t bytes_to_device() const { return bytes_to_device_; }
    [[nodiscard]] std::uint64_t bytes_to_host() const { return bytes_to_host_; }
    void reset_transfer_stats() { bytes_to_device_ = 0; bytes_to_host_ = 0; }

private:
    /// Host access to device memory blocks until no kernel is active (§2.2)
    /// and then pays the PCIe transfer cost.
    void begin_host_access(std::uint64_t bytes) {
        synchronize();
        host_time_ += props_.cost.transfer_latency_s +
                      static_cast<double>(bytes) / props_.cost.pcie_bandwidth_bytes_per_s;
    }

    DeviceProperties props_;
    GlobalMemory memory_;
    ConstantMemory constant_;
    double host_time_ = 0.0;
    double device_free_at_ = 0.0;
    LaunchStats last_launch_{};
    std::uint64_t launch_count_ = 0;
    std::uint64_t bytes_to_device_ = 0;
    std::uint64_t bytes_to_host_ = 0;
};

}  // namespace cusim
