// Device — the top-level handle of the simulated GPU.
//
// Owns the global-memory address space and the simulated timeline. Kernel
// launches are asynchronous on that timeline, exactly as in §2.2: the launch
// returns immediately (advancing the host clock only by the launch
// overhead), and the device clock runs ahead; any host access to device
// memory first waits until no kernel is active. This is what makes the
// double-buffering experiment (§6.3.2) measurable.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <source_location>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/accounting.hpp"
#include "cusim/constant_memory.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_properties.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/faults.hpp"
#include "cusim/global_memory.hpp"
#include "cusim/graph.hpp"
#include "cusim/launch.hpp"
#include "cusim/prof.hpp"
#include "cusim/timeline.hpp"

namespace cusim {

namespace detail {
struct StreamTable;  // per-device stream/event state (stream_detail.hpp)
struct StreamState;
struct StreamOp;
struct CaptureState;  // live graph-capture recording state (stream_detail.hpp)
}  // namespace detail

/// Identifies one of a Device's asynchronous work queues. Id 0 is the
/// default stream — the legacy synchronous path every pre-stream API call
/// uses. Explicit streams get ids 1, 2, ... from Device::stream_create().
using StreamId = std::uint32_t;
inline constexpr StreamId kDefaultStream = 0;

/// Identifies a recorded event (Device::event_create()). 0 is never valid.
using EventId = std::uint64_t;

/// One entry of the per-device launch history: the kernel's name plus its
/// full stats and its window on the modelled device timeline.
struct LaunchRecord {
    std::string kernel_name;
    LaunchStats stats{};
    double start_seconds = 0.0;  ///< device-clock start of the grid
    double end_seconds = 0.0;    ///< device-clock completion
};

class Device {
public:
    /// Out-of-line (stream.cpp) alongside ~Device(): both need
    /// detail::StreamTable complete for the streams_ unique_ptr.
    explicit Device(DeviceProperties props = g80_properties());

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    /// Out-of-line (stream.cpp): detail::StreamTable is incomplete here.
    /// Pending stream work is dropped, not executed, at destruction.
    ~Device();

    [[nodiscard]] const DeviceProperties& properties() const { return props_; }
    [[nodiscard]] GlobalMemory& memory() { return memory_; }
    [[nodiscard]] const GlobalMemory& memory() const { return memory_; }

    // --- allocation -------------------------------------------------------
    // The caller's source_location rides along so memcheck can attribute
    // every allocation (and any later violation against it) to the user
    // line that made it, through however many framework layers it passed.
    [[nodiscard]] DeviceAddr malloc_bytes(
        std::uint64_t bytes,
        std::source_location loc = std::source_location::current(),
        const char* label = "cusim::Device::malloc_bytes") {
        // Profiler scopes open before the fault preflight throughout this
        // class: an injected fault is observable as a failed Exit callback.
        prof::ApiScope prof_scope(prof::Api::Malloc, trace_ordinal_, 0, bytes, label);
        fault_preflight(faults::Site::Malloc, label);
        return memory_.allocate(bytes, loc, label);
    }
    void free_bytes(DeviceAddr addr,
                    std::source_location loc = std::source_location::current()) {
        prof::ApiScope prof_scope(prof::Api::Free, trace_ordinal_);
        // Pending async ops may still reference this allocation; executing
        // them first keeps a free-after-enqueue well-defined (real CUDA
        // defers the free until queued work using the range completes).
        join_streams();
        memory_.free(addr, loc);
    }

    /// Typed allocation of `count` elements.
    template <typename T>
    [[nodiscard]] DevicePtr<T> malloc_n(
        std::uint64_t count,
        std::source_location loc = std::source_location::current(),
        const char* label = "cusim::Device::malloc_n") {
        prof::ApiScope prof_scope(prof::Api::Malloc, trace_ordinal_, 0,
                                  count * sizeof(T), label);
        fault_preflight(faults::Site::Malloc, label);
        const DeviceAddr addr = memory_.allocate(count * sizeof(T), loc, label);
        return DevicePtr<T>(memory_.raw(addr), addr, count, memory_.shadow().alloc_id(addr));
    }

    template <typename T>
    void free(const DevicePtr<T>& p,
              std::source_location loc = std::source_location::current()) {
        if (!p.null()) {
            prof::ApiScope prof_scope(prof::Api::Free, trace_ordinal_);
            join_streams();
            memory_.free(p.addr(), loc);
        }
    }

    /// Re-creates a typed view over an existing allocation (validated).
    template <typename T>
    [[nodiscard]] DevicePtr<T> view(DeviceAddr addr, std::uint64_t count) {
        if (!memory_.range_valid(addr, count * sizeof(T))) {
            throw Error(ErrorCode::InvalidDevicePointer, "view outside any allocation");
        }
        return DevicePtr<T>(memory_.raw(addr), addr, count, memory_.shadow().alloc_id(addr));
    }

    // --- host <-> device transfers (blocking, clock-advancing) ------------
    void copy_to_device(DeviceAddr dst, const void* src, std::uint64_t bytes) {
        prof::ApiScope prof_scope(prof::Api::MemcpyH2D, trace_ordinal_, 0, bytes);
        timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::MemcpyH2D,
                                    "memcpy H2D", bytes, prof_scope.correlation(),
                                    tl_abs(host_time_));
        fault_preflight(faults::Site::MemcpyH2D);
        join_streams();
        const bool tracing = cupp::trace::enabled();
        const double t0 = host_time_;
        const double wait = std::max(0.0, device_free_at_ - host_time_);
        begin_host_access(bytes);
        memory_.write(dst, src, bytes);
        bytes_to_device_ += bytes;
        if (tracing) trace_transfer("memcpy H2D", t0, bytes, wait, "H2D");
        if (prof::collecting()) {
            prof::record_transfer(CopyKind::HostToDevice, bytes,
                                  host_time_ - t0 - wait, trace_ordinal_);
        }
        tl_host_transfer(timeline::Category::MemcpyH2D, "memcpy H2D", bytes,
                         prof_scope.correlation(), t0, wait);
    }
    void copy_to_host(void* dst, DeviceAddr src, std::uint64_t bytes) {
        prof::ApiScope prof_scope(prof::Api::MemcpyD2H, trace_ordinal_, 0, bytes);
        timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::MemcpyD2H,
                                    "memcpy D2H", bytes, prof_scope.correlation(),
                                    tl_abs(host_time_));
        fault_preflight(faults::Site::MemcpyD2H);
        join_streams();
        const bool tracing = cupp::trace::enabled();
        const double t0 = host_time_;
        const double wait = std::max(0.0, device_free_at_ - host_time_);
        begin_host_access(bytes);
        memory_.read(src, dst, bytes);
        bytes_to_host_ += bytes;
        if (tracing) trace_transfer("memcpy D2H", t0, bytes, wait, "D2H");
        if (prof::collecting()) {
            prof::record_transfer(CopyKind::DeviceToHost, bytes,
                                  host_time_ - t0 - wait, trace_ordinal_);
        }
        tl_host_transfer(timeline::Category::MemcpyD2H, "memcpy D2H", bytes,
                         prof_scope.correlation(), t0, wait);
    }
    void copy_device_to_device(DeviceAddr dst, DeviceAddr src, std::uint64_t bytes) {
        prof::ApiScope prof_scope(prof::Api::MemcpyD2D, trace_ordinal_, 0, bytes);
        timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::MemcpyD2D,
                                    "memcpy D2D", bytes, prof_scope.correlation(),
                                    tl_abs(host_time_));
        fault_preflight(faults::Site::MemcpyD2D);
        join_streams();
        // Device-side copy: consumes device time, not host time.
        const double secs = static_cast<double>(bytes) / props_.cost.mem_bandwidth_bytes_per_s;
        const double start = std::max(device_free_at_, host_time_);
        device_free_at_ = start + secs;
        memory_.copy(dst, src, bytes);
        if (cupp::trace::enabled()) {
            cupp::trace::emit_complete(
                device_track(), "memcpy D2D", trace_time_us(start), secs * 1e6,
                {{"bytes", bytes}, {"kind", "D2D"}});
        }
        if (prof::collecting()) {
            prof::record_transfer(CopyKind::DeviceToDevice, bytes, secs,
                                  trace_ordinal_);
        }
        if (timeline::enabled()) {
            // Host-bound start: the binding edge is the host lane's point at
            // `start` (the device FIFO tail already ends there otherwise).
            const std::uint64_t anchor =
                start == host_time_
                    ? timeline::anchor_host(trace_ordinal_, tl_abs(start))
                    : 0;
            timeline::device_op(trace_ordinal_, timeline::Category::MemcpyD2D,
                                "memcpy D2D", bytes, prof_scope.correlation(),
                                tl_abs(start), tl_abs(device_free_at_), anchor);
        }
    }

    template <typename T>
    void upload(const DevicePtr<T>& dst, std::span<const T> src) {
        if (src.size() > dst.size()) {
            throw Error(ErrorCode::InvalidValue, "upload larger than destination");
        }
        copy_to_device(dst.addr(), src.data(), src.size_bytes());
    }
    template <typename T>
    void download(std::span<T> dst, const DevicePtr<T>& src) {
        if (dst.size() > src.size()) {
            throw Error(ErrorCode::InvalidValue, "download larger than source");
        }
        copy_to_host(dst.data(), src.addr(), dst.size_bytes());
    }

    // --- constant memory & textures (§2.1, future-work §7) ------------------
    [[nodiscard]] ConstantMemory& constant_memory() { return constant_; }

    /// Allocates `count` elements in the 64 KiB constant space.
    template <typename T>
    [[nodiscard]] ConstantPtr<T> malloc_constant(std::uint64_t count) {
        const DeviceAddr addr = constant_.allocate(count * sizeof(T));
        return ConstantPtr<T>(constant_.raw(addr), addr, count);
    }

    /// Host upload into constant memory (blocks while a kernel is active,
    /// like any host access to device state).
    void copy_to_constant(DeviceAddr addr, const void* src, std::uint64_t bytes) {
        prof::ApiScope prof_scope(prof::Api::MemcpyH2D, trace_ordinal_, 0, bytes,
                                  "constant");
        timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::MemcpyH2D,
                                    "memcpy H2C", bytes, prof_scope.correlation(),
                                    tl_abs(host_time_));
        fault_preflight(faults::Site::MemcpyH2D, "constant");
        join_streams();
        const bool tracing = cupp::trace::enabled();
        const double t0 = host_time_;
        const double wait = std::max(0.0, device_free_at_ - host_time_);
        begin_host_access(bytes);
        constant_.write(addr, src, bytes);
        bytes_to_device_ += bytes;
        if (tracing) trace_transfer("memcpy H2C", t0, bytes, wait, "H2C");
        tl_host_transfer(timeline::Category::MemcpyH2D, "memcpy H2C", bytes,
                         prof_scope.correlation(), t0, wait);
    }

    // --- execution ---------------------------------------------------------
    /// Executes a grid and advances the device timeline by the modelled
    /// time. Asynchronous w.r.t. the host clock (§2.2). `name` labels the
    /// launch in the trace and the launch history.
    LaunchStats launch(const LaunchConfig& cfg, const KernelEntry& entry,
                       std::string_view name = {});
    /// Dual-form launch: runs the warp form under the warp engine (see
    /// EngineMode in engine.hpp), the thread form otherwise. A spec with no
    /// warp form behaves exactly like the KernelEntry overload.
    LaunchStats launch(const LaunchConfig& cfg, KernelSpec spec,
                       std::string_view name = {});

    // --- the simulated timeline --------------------------------------------
    [[nodiscard]] double host_time() const { return host_time_; }
    /// Modelled host time on the monotonic (reset_clock()-proof) axis the
    /// trace uses. cupp::serve measures request budgets against this clock
    /// because plugin workloads may reset_clock() per run.
    [[nodiscard]] double absolute_host_time() const { return tl_abs(host_time_); }
    [[nodiscard]] double device_free_at() const { return device_free_at_; }
    [[nodiscard]] bool kernel_active() const { return device_free_at_ > host_time_; }

    /// Advances the host clock (CPU work happening between API calls; the
    /// steering library's CPU cost model feeds this).
    void advance_host(double seconds) { host_time_ += seconds; }

    /// cudaThreadSynchronize: host blocks until the device is idle —
    /// including every explicit stream (their pending work executes first).
    void synchronize() {
        prof::ApiScope prof_scope(prof::Api::Sync, trace_ordinal_);
        timeline::FailScope tl_fail(trace_ordinal_, 0, timeline::Category::Sync,
                                    "synchronize", 0, prof_scope.correlation(),
                                    tl_abs(host_time_));
        fault_preflight(faults::Site::Sync);
        join_streams();
        host_time_ = std::max(host_time_, device_free_at_);
        prune_completed_async();
        if (timeline::enabled()) {
            timeline::host_sync(trace_ordinal_, "synchronize",
                                prof_scope.correlation(), tl_abs(host_time_),
                                timeline::device_tail(trace_ordinal_));
        }
    }

    // --- events (cudaEventRecord-style timing) -------------------------------
    /// A point on the device timeline.
    struct Event {
        double device_time = 0.0;
    };

    /// Records an event after all currently queued device work.
    [[nodiscard]] Event record_event() const {
        return Event{std::max(device_free_at_, host_time_)};
    }

    /// Milliseconds of device time between two recorded events.
    [[nodiscard]] static double elapsed_ms(const Event& start, const Event& stop) {
        return (stop.device_time - start.device_time) * 1e3;
    }

    /// Resets the timeline (a new measurement run). Pending stream work is
    /// executed first — a measurement boundary mid-flight would be
    /// meaningless. The trace keeps its own monotonic base so events from
    /// successive runs do not overlap.
    void reset_clock() {
        join_streams();
        trace_base_ += std::max(host_time_, device_free_at_);
        host_time_ = 0.0;
        device_free_at_ = 0.0;
        if (streams_) reset_stream_clocks();
    }

    // --- streams & async ops (cudaStream_t-style queues, stream.cpp) --------
    // An explicit stream is a FIFO of deferred operations. Enqueueing is a
    // host-side action (fault preflights fire here, so injected failures
    // are atomic and retryable); the queued ops execute at the next sync
    // point — any *_synchronize, or any legacy default-stream operation,
    // which joins with all streams first. Execution drains streams in
    // ascending stream-id, each in enqueue order, waits yielding until
    // their recorded event has executed; that order depends only on the
    // enqueue sequence, so every observable (stats, memcheck, faults,
    // trace) is bit-identical for any engine thread count.

    /// Creates a new asynchronous stream (never id 0).
    [[nodiscard]] StreamId stream_create();
    /// Executes the stream's remaining work, then releases the id.
    void stream_destroy(StreamId stream);
    /// True when the stream has no pending ops and its modelled timeline
    /// has been reached by the host clock. Never executes work.
    [[nodiscard]] bool stream_query(StreamId stream) const;
    /// Executes pending work; host blocks until the stream is idle.
    void stream_synchronize(StreamId stream);
    /// All work enqueued on `stream` after this call orders behind
    /// `event`'s most recent record. Never recorded -> no-op (CUDA).
    void stream_wait_event(StreamId stream, EventId event);

    [[nodiscard]] EventId event_create();
    void event_destroy(EventId event);
    /// Marks "after everything enqueued so far on `stream`". On the
    /// default stream: after all currently issued work, device-wide.
    void event_record(EventId event, StreamId stream = kDefaultStream);
    /// True when the last record completed (never recorded counts as
    /// complete, as on CUDA). Never executes work.
    [[nodiscard]] bool event_query(EventId event) const;
    /// Host blocks until the last record's point on the timeline.
    void event_synchronize(EventId event);
    /// Milliseconds between two records (completes both first).
    [[nodiscard]] double event_elapsed_ms(EventId start, EventId stop);

    /// Enqueues a kernel launch. The host pays only the launch overhead;
    /// the grid executes at the next sync point on the stream's modelled
    /// timeline. Stream 0 falls back to the legacy launch().
    void launch_async(const LaunchConfig& cfg, const KernelEntry& entry,
                      std::string_view name, StreamId stream);
    /// Dual-form async launch (see the launch() overload above).
    void launch_async(const LaunchConfig& cfg, KernelSpec spec,
                      std::string_view name, StreamId stream);
    /// Async H2D: the source is snapshotted at enqueue (pageable-memory
    /// semantics — later host writes to `src` don't affect the copy).
    void memcpy_to_device_async(DeviceAddr dst, const void* src, std::uint64_t bytes,
                                StreamId stream);
    /// Async D2H: `dst` is written when the op executes; reading it before
    /// the covering synchronize is a race (see note_host_read()).
    void memcpy_to_host_async(void* dst, DeviceAddr src, std::uint64_t bytes,
                              StreamId stream);
    void memcpy_device_to_device_async(DeviceAddr dst, DeviceAddr src,
                                       std::uint64_t bytes, StreamId stream);

    // --- graph capture & replay (cusim::graph, graph.cpp) -------------------
    // Capture records enqueues on captured streams into an immutable DAG
    // instead of queueing them: no seq numbers are consumed, no clocks
    // advance, no observables fire. Any operation that would execute
    // pending work (every sync, every legacy default-stream op) during a
    // capture invalidates it and throws StreamCaptureInvalid; the broken
    // capture stays pinned until stream_end_capture() clears it.

    /// Starts capturing on `origin` (must be an explicit live stream).
    void stream_begin_capture(StreamId origin, CaptureMode mode = CaptureMode::Origin);
    /// Ends the capture started on `origin` and returns the recorded DAG.
    /// Throws StreamCaptureInvalid (and clears the capture) when a sync
    /// invalidated it mid-flight.
    [[nodiscard]] Graph stream_end_capture(StreamId origin);
    /// True while a capture is in progress (even an invalidated one).
    [[nodiscard]] bool capturing() const { return capturing_; }
    /// Validates every captured node once (geometry, pointer ranges,
    /// stream/event liveness) and returns a launchable exec. Atomic under
    /// fault injection: a preflight failure leaves no partial state.
    [[nodiscard]] GraphExec graph_instantiate(const Graph& graph);
    /// Replays the whole DAG: every node re-enqueues with fresh seq
    /// numbers for one launch-overhead charge, skipping per-op transform,
    /// validation and preflight. All-or-nothing under fault injection.
    void graph_launch(const GraphExec& exec);

    /// memcheck hook: declares that host code is about to read `bytes` at
    /// `p`. Records a Kind::AsyncHostRace violation when the range overlaps
    /// the destination of an async D2H copy that has not yet completed
    /// (framework containers call this before touching host-side storage;
    /// raw-pointer users can call it directly).
    void note_host_read(const void* p, std::uint64_t bytes);

    /// Pending (enqueued, not yet executed) async ops across all streams.
    [[nodiscard]] std::uint64_t pending_async_ops() const;

    /// The stream's lane name in the exported trace ("devN.streamK").
    [[nodiscard]] std::string stream_track(StreamId stream) const {
        return "dev" + std::to_string(trace_ordinal_) + ".stream" +
               std::to_string(stream);
    }

    // --- statistics ---------------------------------------------------------
    [[nodiscard]] const LaunchStats& last_launch() const { return last_launch_; }
    [[nodiscard]] std::uint64_t launches() const { return launch_count_; }
    [[nodiscard]] std::uint64_t bytes_to_device() const { return bytes_to_device_; }
    [[nodiscard]] std::uint64_t bytes_to_host() const { return bytes_to_host_; }
    void reset_transfer_stats() { bytes_to_device_ = 0; bytes_to_host_ = 0; }

    // --- launch history (ring buffer of recent launches) --------------------
    /// How many launches the history keeps (§6.3.1: being able to look back
    /// at more than the final launch is what makes the counters useful).
    static constexpr std::size_t kLaunchHistoryCapacity = 64;

    /// The most recent launches, oldest first (at most
    /// kLaunchHistoryCapacity; use launches() for the all-time count).
    [[nodiscard]] std::vector<LaunchRecord> recent_launches() const {
        std::vector<LaunchRecord> out;
        out.reserve(history_.size());
        const std::size_t n = history_.size();
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(history_[(history_head_ + i) % n]);
        }
        return out;
    }

    // --- fault state (cusim::faults) ----------------------------------------
    /// True while the device is poisoned by a sticky DeviceLost fault:
    /// every instrumented operation throws until reset_device().
    [[nodiscard]] bool lost() const { return lost_; }

    /// Marks the device lost (cusim::faults injecting DeviceLost, or tests
    /// simulating one directly). Sticky until reset_device().
    void poison();

    /// cudaDeviceReset-style recovery: clears the lost flag and wipes the
    /// contents of global memory. Allocations themselves survive — their
    /// addresses stay valid and their memcheck bookkeeping is replayed
    /// (defined-bits cleared, alloc ids preserved) — so RAII wrappers held
    /// by the host can re-upload instead of dangling.
    void reset_device();

    // --- trace integration ---------------------------------------------------
    /// Identifies this device's timeline lanes in the exported trace.
    [[nodiscard]] std::string host_track() const {
        return "dev" + std::to_string(trace_ordinal_) + ".host";
    }
    [[nodiscard]] std::string device_track() const {
        return "dev" + std::to_string(trace_ordinal_) + ".device";
    }
    /// Maps a simulated-seconds timestamp onto the trace's monotonic
    /// microsecond axis (reset_clock()-proof).
    [[nodiscard]] double trace_time_us(double seconds) const {
        return (trace_base_ + seconds) * 1e6;
    }

private:
    /// One relaxed atomic load when no faults are armed and no device was
    /// ever poisoned — the whole cost of the instrumentation by default.
    void fault_preflight(faults::Site site, std::string_view label = {}) {
        if (faults::armed()) faults::preflight(site, label, this);
    }

    /// Maps a simulated-seconds timestamp onto the timeline's absolute
    /// monotonic axis (same base as the trace, but in seconds).
    [[nodiscard]] double tl_abs(double t) const { return trace_base_ + t; }

    /// Timeline node for a blocking host-side transfer: the transfer span
    /// [t0+wait, now] on the host lane, bound to the device FIFO tail when
    /// the host had to wait for an active kernel first (the wait itself
    /// shows as a host-lane bubble).
    void tl_host_transfer(timeline::Category cat, std::string_view name,
                          std::uint64_t bytes, std::uint64_t corr, double t0,
                          double wait) {
        if (!timeline::enabled()) return;
        timeline::host_op(trace_ordinal_, cat, name, bytes, corr,
                          tl_abs(t0 + wait), tl_abs(host_time_),
                          wait > 0.0 ? timeline::device_tail(trace_ordinal_) : 0);
    }

    void trace_transfer(const char* name, double t0, std::uint64_t bytes, double wait_s,
                        const char* kind) {
        cupp::trace::emit_complete(host_track(), name, trace_time_us(t0),
                                   (host_time_ - t0) * 1e6,
                                   {{"bytes", bytes},
                                    {"kind", kind},
                                    {"device_wait_us", wait_s * 1e6}});
        static const cupp::trace::counter_handle h2d("cusim.bytes_h2d");
        static const cupp::trace::counter_handle d2h("cusim.bytes_d2h");
        static const cupp::trace::counter_handle n_xfers("cusim.transfers");
        (kind[0] == 'D' ? d2h : h2d).add(bytes);
        n_xfers.add();
    }

    /// Host access to device memory blocks until no kernel is active (§2.2)
    /// and then pays the PCIe transfer cost. Inlines the synchronize()
    /// wait rather than calling it so one transfer hits exactly one fault
    /// injection site (the memcpy one), not two.
    void begin_host_access(std::uint64_t bytes) {
        host_time_ = std::max(host_time_, device_free_at_);
        host_time_ += props_.cost.transfer_latency_s +
                      static_cast<double>(bytes) / props_.cost.pcie_bandwidth_bytes_per_s;
    }

    /// Appends to the launch-history ring buffer (device.cpp).
    void record_launch(std::string_view name, const LaunchStats& stats, double start,
                       double end);

    /// The block-execution core shared by launch() and the stream drain:
    /// validation must already have happened; runs the grid on the
    /// BlockPool (or serially), reduces everything observable in launch
    /// order, and returns the stats with device_seconds filled in. Does
    /// not touch the timeline, history, or trace. (device.cpp)
    LaunchStats run_grid(const LaunchConfig& cfg, const KernelSpec& spec,
                         std::string_view name);

    /// Legacy (default-stream) semantics: every pre-stream operation joins
    /// with all explicit streams — pending ops execute and the per-stream
    /// clocks fold into the device-wide busy horizon. A no-op until the
    /// first stream_create(), so pre-stream behaviour is untouched.
    void join_streams() {
        if (capturing_) capture_violation("implicit synchronization during stream capture");
        if (streams_) join_streams_slow();
    }
    void join_streams_slow();        // stream.cpp
    void reset_stream_clocks();      // stream.cpp
    void abandon_streams();          // stream.cpp (reset_device path)
    void prune_completed_async();    // stream.cpp: drops completed D2H ranges
    [[nodiscard]] detail::StreamTable& stream_table();  // lazily created

    /// Executes every pending stream op in the canonical order (stream.cpp).
    void drain_streams();
    [[nodiscard]] bool op_ready(const detail::StreamOp& op) const;
    void execute_op(StreamId sid, detail::StreamState& st, detail::StreamOp& op);

    /// Records `op` into the live capture when `stream` is (or joins) the
    /// captured set; true when the op was consumed. Throws when the
    /// capture is already invalidated. (graph.cpp)
    bool capture_op(detail::StreamOp& op, StreamId stream);
    /// Marks the live capture invalidated (first reason wins) and throws
    /// StreamCaptureInvalid. (graph.cpp)
    [[noreturn]] void capture_violation(const char* what);

    DeviceProperties props_;
    GlobalMemory memory_;
    ConstantMemory constant_;
    double host_time_ = 0.0;
    double device_free_at_ = 0.0;
    LaunchStats last_launch_{};
    std::uint64_t launch_count_ = 0;
    std::uint64_t bytes_to_device_ = 0;
    std::uint64_t bytes_to_host_ = 0;
    bool lost_ = false;  ///< sticky DeviceLost state (see poison())

    std::vector<LaunchRecord> history_;  ///< ring buffer, capacity-bounded
    std::size_t history_head_ = 0;       ///< oldest entry once the ring is full
    int trace_ordinal_ = 0;              ///< stable lane id in the exported trace
    double trace_base_ = 0.0;            ///< accumulated pre-reset_clock() time

    /// Stream/event state; null until the first stream or event is
    /// created, so pre-stream code paths never pay for it.
    std::unique_ptr<detail::StreamTable> streams_;

    /// Graph-capture state; non-null exactly while capturing_ is true.
    /// The bool keeps the not-capturing fast path to one flag test.
    bool capturing_ = false;
    std::unique_ptr<detail::CaptureState> capture_;
};

}  // namespace cusim
