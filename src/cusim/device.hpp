// Device — the top-level handle of the simulated GPU.
//
// Owns the global-memory address space and the simulated timeline. Kernel
// launches are asynchronous on that timeline, exactly as in §2.2: the launch
// returns immediately (advancing the host clock only by the launch
// overhead), and the device clock runs ahead; any host access to device
// memory first waits until no kernel is active. This is what makes the
// double-buffering experiment (§6.3.2) measurable.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <source_location>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/accounting.hpp"
#include "cusim/constant_memory.hpp"
#include "cusim/cost_model.hpp"
#include "cusim/device_properties.hpp"
#include "cusim/device_ptr.hpp"
#include "cusim/faults.hpp"
#include "cusim/global_memory.hpp"
#include "cusim/launch.hpp"

namespace cusim {

/// One entry of the per-device launch history: the kernel's name plus its
/// full stats and its window on the modelled device timeline.
struct LaunchRecord {
    std::string kernel_name;
    LaunchStats stats{};
    double start_seconds = 0.0;  ///< device-clock start of the grid
    double end_seconds = 0.0;    ///< device-clock completion
};

class Device {
public:
    explicit Device(DeviceProperties props = g80_properties())
        : props_(std::move(props)), memory_(props_.total_global_mem) {
        static std::atomic<int> next_ordinal{0};
        trace_ordinal_ = next_ordinal.fetch_add(1, std::memory_order_relaxed);
        memory_.shadow().set_device(trace_ordinal_);
    }

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    [[nodiscard]] const DeviceProperties& properties() const { return props_; }
    [[nodiscard]] GlobalMemory& memory() { return memory_; }
    [[nodiscard]] const GlobalMemory& memory() const { return memory_; }

    // --- allocation -------------------------------------------------------
    // The caller's source_location rides along so memcheck can attribute
    // every allocation (and any later violation against it) to the user
    // line that made it, through however many framework layers it passed.
    [[nodiscard]] DeviceAddr malloc_bytes(
        std::uint64_t bytes,
        std::source_location loc = std::source_location::current(),
        const char* label = "cusim::Device::malloc_bytes") {
        fault_preflight(faults::Site::Malloc, label);
        return memory_.allocate(bytes, loc, label);
    }
    void free_bytes(DeviceAddr addr,
                    std::source_location loc = std::source_location::current()) {
        memory_.free(addr, loc);
    }

    /// Typed allocation of `count` elements.
    template <typename T>
    [[nodiscard]] DevicePtr<T> malloc_n(
        std::uint64_t count,
        std::source_location loc = std::source_location::current(),
        const char* label = "cusim::Device::malloc_n") {
        fault_preflight(faults::Site::Malloc, label);
        const DeviceAddr addr = memory_.allocate(count * sizeof(T), loc, label);
        return DevicePtr<T>(memory_.raw(addr), addr, count, memory_.shadow().alloc_id(addr));
    }

    template <typename T>
    void free(const DevicePtr<T>& p,
              std::source_location loc = std::source_location::current()) {
        if (!p.null()) memory_.free(p.addr(), loc);
    }

    /// Re-creates a typed view over an existing allocation (validated).
    template <typename T>
    [[nodiscard]] DevicePtr<T> view(DeviceAddr addr, std::uint64_t count) {
        if (!memory_.range_valid(addr, count * sizeof(T))) {
            throw Error(ErrorCode::InvalidDevicePointer, "view outside any allocation");
        }
        return DevicePtr<T>(memory_.raw(addr), addr, count, memory_.shadow().alloc_id(addr));
    }

    // --- host <-> device transfers (blocking, clock-advancing) ------------
    void copy_to_device(DeviceAddr dst, const void* src, std::uint64_t bytes) {
        fault_preflight(faults::Site::MemcpyH2D);
        const bool tracing = cupp::trace::enabled();
        const double t0 = host_time_;
        const double wait = std::max(0.0, device_free_at_ - host_time_);
        begin_host_access(bytes);
        memory_.write(dst, src, bytes);
        bytes_to_device_ += bytes;
        if (tracing) trace_transfer("memcpy H2D", t0, bytes, wait, "H2D");
    }
    void copy_to_host(void* dst, DeviceAddr src, std::uint64_t bytes) {
        fault_preflight(faults::Site::MemcpyD2H);
        const bool tracing = cupp::trace::enabled();
        const double t0 = host_time_;
        const double wait = std::max(0.0, device_free_at_ - host_time_);
        begin_host_access(bytes);
        memory_.read(src, dst, bytes);
        bytes_to_host_ += bytes;
        if (tracing) trace_transfer("memcpy D2H", t0, bytes, wait, "D2H");
    }
    void copy_device_to_device(DeviceAddr dst, DeviceAddr src, std::uint64_t bytes) {
        fault_preflight(faults::Site::MemcpyD2D);
        // Device-side copy: consumes device time, not host time.
        const double secs = static_cast<double>(bytes) / props_.cost.mem_bandwidth_bytes_per_s;
        const double start = std::max(device_free_at_, host_time_);
        device_free_at_ = start + secs;
        memory_.copy(dst, src, bytes);
        if (cupp::trace::enabled()) {
            cupp::trace::emit_complete(
                device_track(), "memcpy D2D", trace_time_us(start), secs * 1e6,
                {{"bytes", bytes}, {"kind", "D2D"}});
        }
    }

    template <typename T>
    void upload(const DevicePtr<T>& dst, std::span<const T> src) {
        if (src.size() > dst.size()) {
            throw Error(ErrorCode::InvalidValue, "upload larger than destination");
        }
        copy_to_device(dst.addr(), src.data(), src.size_bytes());
    }
    template <typename T>
    void download(std::span<T> dst, const DevicePtr<T>& src) {
        if (dst.size() > src.size()) {
            throw Error(ErrorCode::InvalidValue, "download larger than source");
        }
        copy_to_host(dst.data(), src.addr(), dst.size_bytes());
    }

    // --- constant memory & textures (§2.1, future-work §7) ------------------
    [[nodiscard]] ConstantMemory& constant_memory() { return constant_; }

    /// Allocates `count` elements in the 64 KiB constant space.
    template <typename T>
    [[nodiscard]] ConstantPtr<T> malloc_constant(std::uint64_t count) {
        const DeviceAddr addr = constant_.allocate(count * sizeof(T));
        return ConstantPtr<T>(constant_.raw(addr), addr, count);
    }

    /// Host upload into constant memory (blocks while a kernel is active,
    /// like any host access to device state).
    void copy_to_constant(DeviceAddr addr, const void* src, std::uint64_t bytes) {
        fault_preflight(faults::Site::MemcpyH2D, "constant");
        const bool tracing = cupp::trace::enabled();
        const double t0 = host_time_;
        const double wait = std::max(0.0, device_free_at_ - host_time_);
        begin_host_access(bytes);
        constant_.write(addr, src, bytes);
        bytes_to_device_ += bytes;
        if (tracing) trace_transfer("memcpy H2C", t0, bytes, wait, "H2C");
    }

    // --- execution ---------------------------------------------------------
    /// Executes a grid and advances the device timeline by the modelled
    /// time. Asynchronous w.r.t. the host clock (§2.2). `name` labels the
    /// launch in the trace and the launch history.
    LaunchStats launch(const LaunchConfig& cfg, const KernelEntry& entry,
                       std::string_view name = {});

    // --- the simulated timeline --------------------------------------------
    [[nodiscard]] double host_time() const { return host_time_; }
    [[nodiscard]] double device_free_at() const { return device_free_at_; }
    [[nodiscard]] bool kernel_active() const { return device_free_at_ > host_time_; }

    /// Advances the host clock (CPU work happening between API calls; the
    /// steering library's CPU cost model feeds this).
    void advance_host(double seconds) { host_time_ += seconds; }

    /// cudaThreadSynchronize: host blocks until the device is idle.
    void synchronize() {
        fault_preflight(faults::Site::Sync);
        host_time_ = std::max(host_time_, device_free_at_);
    }

    // --- events (cudaEventRecord-style timing) -------------------------------
    /// A point on the device timeline.
    struct Event {
        double device_time = 0.0;
    };

    /// Records an event after all currently queued device work.
    [[nodiscard]] Event record_event() const {
        return Event{std::max(device_free_at_, host_time_)};
    }

    /// Milliseconds of device time between two recorded events.
    [[nodiscard]] static double elapsed_ms(const Event& start, const Event& stop) {
        return (stop.device_time - start.device_time) * 1e3;
    }

    /// Resets the timeline (a new measurement run). The trace keeps its own
    /// monotonic base so events from successive runs do not overlap.
    void reset_clock() {
        trace_base_ += std::max(host_time_, device_free_at_);
        host_time_ = 0.0;
        device_free_at_ = 0.0;
    }

    // --- statistics ---------------------------------------------------------
    [[nodiscard]] const LaunchStats& last_launch() const { return last_launch_; }
    [[nodiscard]] std::uint64_t launches() const { return launch_count_; }
    [[nodiscard]] std::uint64_t bytes_to_device() const { return bytes_to_device_; }
    [[nodiscard]] std::uint64_t bytes_to_host() const { return bytes_to_host_; }
    void reset_transfer_stats() { bytes_to_device_ = 0; bytes_to_host_ = 0; }

    // --- launch history (ring buffer of recent launches) --------------------
    /// How many launches the history keeps (§6.3.1: being able to look back
    /// at more than the final launch is what makes the counters useful).
    static constexpr std::size_t kLaunchHistoryCapacity = 64;

    /// The most recent launches, oldest first (at most
    /// kLaunchHistoryCapacity; use launches() for the all-time count).
    [[nodiscard]] std::vector<LaunchRecord> recent_launches() const {
        std::vector<LaunchRecord> out;
        out.reserve(history_.size());
        const std::size_t n = history_.size();
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(history_[(history_head_ + i) % n]);
        }
        return out;
    }

    // --- fault state (cusim::faults) ----------------------------------------
    /// True while the device is poisoned by a sticky DeviceLost fault:
    /// every instrumented operation throws until reset_device().
    [[nodiscard]] bool lost() const { return lost_; }

    /// Marks the device lost (cusim::faults injecting DeviceLost, or tests
    /// simulating one directly). Sticky until reset_device().
    void poison();

    /// cudaDeviceReset-style recovery: clears the lost flag and wipes the
    /// contents of global memory. Allocations themselves survive — their
    /// addresses stay valid and their memcheck bookkeeping is replayed
    /// (defined-bits cleared, alloc ids preserved) — so RAII wrappers held
    /// by the host can re-upload instead of dangling.
    void reset_device();

    // --- trace integration ---------------------------------------------------
    /// Identifies this device's timeline lanes in the exported trace.
    [[nodiscard]] std::string host_track() const {
        return "dev" + std::to_string(trace_ordinal_) + ".host";
    }
    [[nodiscard]] std::string device_track() const {
        return "dev" + std::to_string(trace_ordinal_) + ".device";
    }
    /// Maps a simulated-seconds timestamp onto the trace's monotonic
    /// microsecond axis (reset_clock()-proof).
    [[nodiscard]] double trace_time_us(double seconds) const {
        return (trace_base_ + seconds) * 1e6;
    }

private:
    /// One relaxed atomic load when no faults are armed and no device was
    /// ever poisoned — the whole cost of the instrumentation by default.
    void fault_preflight(faults::Site site, std::string_view label = {}) {
        if (faults::armed()) faults::preflight(site, label, this);
    }

    void trace_transfer(const char* name, double t0, std::uint64_t bytes, double wait_s,
                        const char* kind) {
        cupp::trace::emit_complete(host_track(), name, trace_time_us(t0),
                                   (host_time_ - t0) * 1e6,
                                   {{"bytes", bytes},
                                    {"kind", kind},
                                    {"device_wait_us", wait_s * 1e6}});
        static const cupp::trace::counter_handle h2d("cusim.bytes_h2d");
        static const cupp::trace::counter_handle d2h("cusim.bytes_d2h");
        static const cupp::trace::counter_handle n_xfers("cusim.transfers");
        (kind[0] == 'D' ? d2h : h2d).add(bytes);
        n_xfers.add();
    }

    /// Host access to device memory blocks until no kernel is active (§2.2)
    /// and then pays the PCIe transfer cost. Inlines the synchronize()
    /// wait rather than calling it so one transfer hits exactly one fault
    /// injection site (the memcpy one), not two.
    void begin_host_access(std::uint64_t bytes) {
        host_time_ = std::max(host_time_, device_free_at_);
        host_time_ += props_.cost.transfer_latency_s +
                      static_cast<double>(bytes) / props_.cost.pcie_bandwidth_bytes_per_s;
    }

    /// Appends to the launch-history ring buffer (device.cpp).
    void record_launch(std::string_view name, const LaunchStats& stats, double start,
                       double end);

    DeviceProperties props_;
    GlobalMemory memory_;
    ConstantMemory constant_;
    double host_time_ = 0.0;
    double device_free_at_ = 0.0;
    LaunchStats last_launch_{};
    std::uint64_t launch_count_ = 0;
    std::uint64_t bytes_to_device_ = 0;
    std::uint64_t bytes_to_host_ = 0;
    bool lost_ = false;  ///< sticky DeviceLost state (see poison())

    std::vector<LaunchRecord> history_;  ///< ring buffer, capacity-bounded
    std::size_t history_head_ = 0;       ///< oldest entry once the ring is full
    int trace_ordinal_ = 0;              ///< stable lane id in the exported trace
    double trace_base_ = 0.0;            ///< accumulated pre-reset_clock() time
};

}  // namespace cusim
