#include "steer/simulation.hpp"

#include "cupp/trace.hpp"

namespace steer {

void CpuBoidsPlugin::open(const WorldSpec& spec) {
    spec_ = spec;
    flock_ = make_flock(spec);
    steering_.assign(spec.agents, kZero);
    positions_.resize(spec.agents);
    forwards_.resize(spec.agents);
    matrices_.clear();
    totals_ = {};
    last_ = {};
    step_index_ = 0;
}

StageTimes CpuBoidsPlugin::step() {
    const std::uint32_t n = spec_.agents;
    UpdateCounters c;

    // --- simulation substage ---------------------------------------------
    // "Within the simulation substage all agents compute their steering
    // vectors, but do not change their state" (§5.3): behaviors read a
    // snapshot taken before any modification.
    for (std::uint32_t i = 0; i < n; ++i) {
        positions_[i] = flock_[i].position;
        forwards_[i] = flock_[i].forward;
    }
    const FlockingWeights weights{spec_.weight_separation, spec_.weight_alignment,
                                  spec_.weight_cohesion};
    double grid_build_seconds = 0.0;
    if (spec_.use_spatial_grid) {
        // Future-work §7: construct on the host (low arithmetic intensity),
        // then search only the 27 surrounding cells per agent.
        grid_.build(positions_, spec_.search_radius, spec_.world_radius);
        grid_build_seconds = cost_.seconds(cost_.cycles_per_grid_agent * n +
                                           cost_.cycles_per_grid_cell * grid_.spec().cells());
    }
    SearchCounters sc;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!thinks_this_step(i, step_index_, spec_.think_period)) continue;
        const NeighborList neighbors =
            spec_.use_spatial_grid
                ? grid_.find_neighbors(i, positions_, spec_.search_radius,
                                       spec_.max_neighbors, &sc)
                : find_neighbors(i, positions_, spec_.search_radius, spec_.max_neighbors,
                                 &sc);
        steering_[i] =
            flocking(positions_[i], forwards_[i], neighbors, positions_, forwards_, weights);
        ++c.thinks;
        c.neighbors_found += neighbors.count;
    }
    c.pairs_examined = sc.pairs_examined;

    // --- modification substage --------------------------------------------
    // "These changes are carried out in a second substage" — every agent
    // moves every step, with its most recent steering vector.
    for (std::uint32_t i = 0; i < n; ++i) {
        apply_steering(flock_[i], steering_[i], spec_.dt, spec_.params);
        wrap_world(flock_[i], spec_.world_radius);
    }
    c.modifies = n;

    // --- graphics stage ----------------------------------------------------
    build_draw_matrices(flock_, matrices_);

    totals_ += c;
    last_ = c;
    ++step_index_;

    StageTimes times;
    UpdateCounters sim_only = c;
    sim_only.modifies = 0;
    times.simulation = update_stage_seconds(sim_only, cost_) + grid_build_seconds;
    UpdateCounters mod_only{};
    mod_only.modifies = c.modifies;
    times.modification = update_stage_seconds(mod_only, cost_);
    times.draw = draw_stage_seconds(n, cost_);

    // The CPU plugin has no simulated device clock, so it keeps its own
    // modelled timeline and lays the three stages out back to back.
    if (cupp::trace::enabled()) {
        namespace tr = cupp::trace;
        double t = clock_;
        tr::emit_complete("boids-cpu", "simulation", t * 1e6, times.simulation * 1e6,
                          {{"thinks", c.thinks}, {"pairs_examined", c.pairs_examined}});
        t += times.simulation;
        tr::emit_complete("boids-cpu", "modification", t * 1e6, times.modification * 1e6,
                          {{"modifies", c.modifies}});
        t += times.modification;
        tr::emit_complete("boids-cpu", "draw", t * 1e6, times.draw * 1e6,
                          {{"agents", n}});
        static tr::counter_handle steps("steer.cpu.steps");
        steps.add(1);
    }
    clock_ += times.simulation + times.modification + times.draw;
    return times;
}

void CpuBoidsPlugin::close() {
    flock_.clear();
    steering_.clear();
    matrices_.clear();
}

}  // namespace steer
