// Small deterministic PRNG for reproducible worlds.
//
// All experiments must produce the same flock on every run and on both the
// CPU and the GPU path, so world setup uses this fixed linear congruential
// generator rather than std:: facilities whose streams may differ between
// library versions.
#pragma once

#include <cstdint>

namespace steer {

class Lcg {
public:
    explicit constexpr Lcg(std::uint64_t seed = 0x853c49e6748fea9bull) : state_(seed) {}

    /// Next raw 32 bits.
    constexpr std::uint32_t next_u32() {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(state_ >> 32);
    }

    /// Uniform float in [0, 1).
    constexpr float next_float() {
        return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
    }

    /// Uniform float in [lo, hi).
    constexpr float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

private:
    std::uint64_t state_;
};

}  // namespace steer
