// Flock container and deterministic world setup.
#pragma once

#include <cstdint>
#include <vector>

#include "steer/agent.hpp"
#include "steer/lcg.hpp"
#include "steer/vec3.hpp"

namespace steer {

/// Configuration of a Boids scenario (thesis §5.2/§5.3).
struct WorldSpec {
    std::uint32_t agents = 1024;
    float world_radius = 50.0f;        ///< spherical world
    float search_radius = 9.0f;        ///< neighbor search radius
    std::uint32_t max_neighbors = 7;   ///< "We only consider the 7 nearest"
    float weight_separation = 12.0f;   ///< flocking weights (listing 5.1)
    float weight_alignment = 8.0f;
    float weight_cohesion = 8.0f;
    std::uint32_t think_period = 1;    ///< 10 = the thesis' 1/10 think frequency
    float dt = 1.0f / 60.0f;           ///< simulation time step
    /// Use the host-built spatial grid for the neighbor search instead of
    /// the O(n) linear scan — the thesis' future-work data structure (§7).
    bool use_spatial_grid = false;
    AgentParams params{};
    std::uint64_t seed = 2009;

    [[nodiscard]] WorldSpec with_agents(std::uint32_t n) const {
        WorldSpec s = *this;
        s.agents = n;
        return s;
    }
    [[nodiscard]] WorldSpec with_think(std::uint32_t period) const {
        WorldSpec s = *this;
        s.think_period = period;
        return s;
    }
    [[nodiscard]] WorldSpec with_grid(bool enabled = true) const {
        WorldSpec s = *this;
        s.use_spatial_grid = enabled;
        return s;
    }
};

/// Deterministically creates a flock: positions uniform in the world
/// sphere, headings uniform on the unit sphere, initial speed half max.
[[nodiscard]] inline std::vector<Agent> make_flock(const WorldSpec& spec) {
    std::vector<Agent> flock(spec.agents);
    Lcg rng(spec.seed);
    for (Agent& a : flock) {
        // Rejection-sample a point in the unit ball.
        Vec3 p;
        do {
            p = Vec3{rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f),
                     rng.uniform(-1.0f, 1.0f)};
        } while (p.length_squared() > 1.0f);
        a.position = p * spec.world_radius;

        Vec3 f;
        do {
            f = Vec3{rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f),
                     rng.uniform(-1.0f, 1.0f)};
        } while (f.length_squared() > 1.0f || f.is_zero());
        a.forward = f.normalized();
        a.speed = spec.params.max_speed * 0.5f;
    }
    return flock;
}

}  // namespace steer
