// Umbrella header for the steering library.
#pragma once

#include "steer/agent.hpp"
#include "steer/basic_behaviors.hpp"
#include "steer/behaviors.hpp"
#include "steer/cpu_cost_model.hpp"
#include "steer/demo.hpp"
#include "steer/draw_stage.hpp"
#include "steer/lcg.hpp"
#include "steer/neighbor_search.hpp"
#include "steer/obstacles.hpp"
#include "steer/plugin.hpp"
#include "steer/pursuit_plugin.hpp"
#include "steer/simulation.hpp"
#include "steer/spatial_grid.hpp"
#include "steer/vec3.hpp"
#include "steer/world.hpp"
