// Uniform spatial grid for the neighbor search — the thesis' future-work
// item: "spatial data structures could improve the neighbor search
// performance. Data structures must be constructed at the host, due to the
// low arithmetic intensity of such a process, and then be transferred to
// the GPU" (§7).
//
// CSR layout: cell_start[c]..cell_start[c+1] indexes into `entries`, the
// agent indices bucketed per cell. Cells are cubes of the neighbor-search
// radius, so a query only visits the 27 cells around the agent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "steer/neighbor_search.hpp"
#include "steer/vec3.hpp"

namespace steer {

/// Geometry of the grid — a POD that travels to the device as-is.
struct GridSpec {
    float origin = 0.0f;     ///< cells cover [-origin, +origin]^3
    float cell_size = 1.0f;
    std::uint32_t dim = 1;   ///< cells per axis

    [[nodiscard]] std::uint32_t clamp_axis(float x) const {
        const float fi = (x + origin) / cell_size;
        if (fi <= 0.0f) return 0;
        const auto i = static_cast<std::uint32_t>(fi);
        return i >= dim ? dim - 1 : i;
    }
    [[nodiscard]] std::uint32_t cell_of(const Vec3& p) const {
        return clamp_axis(p.x) + dim * (clamp_axis(p.y) + dim * clamp_axis(p.z));
    }
    [[nodiscard]] std::uint32_t cells() const { return dim * dim * dim; }
};

class SpatialGrid {
public:
    /// Builds the grid over `positions` with cells of `cell_size`, covering
    /// the [-world_radius, world_radius]^3 cube. O(n) counting sort — the
    /// cheap host-side construction the thesis calls for.
    void build(std::span<const Vec3> positions, float cell_size, float world_radius) {
        spec_.origin = world_radius;
        spec_.cell_size = cell_size;
        spec_.dim = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(2.0f * world_radius / cell_size) + 1);
        const std::uint32_t cells = spec_.cells();

        cell_of_.resize(positions.size());
        cell_start_.assign(cells + 1, 0);
        for (std::size_t i = 0; i < positions.size(); ++i) {
            cell_of_[i] = spec_.cell_of(positions[i]);
            ++cell_start_[cell_of_[i] + 1];
        }
        for (std::uint32_t c = 0; c < cells; ++c) cell_start_[c + 1] += cell_start_[c];

        entries_.resize(positions.size());
        std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
        for (std::uint32_t i = 0; i < positions.size(); ++i) {
            entries_[cursor[cell_of_[i]]++] = i;
        }
    }

    [[nodiscard]] const GridSpec& spec() const { return spec_; }
    [[nodiscard]] std::span<const std::uint32_t> cell_start() const { return cell_start_; }
    [[nodiscard]] std::span<const std::uint32_t> entries() const { return entries_; }

    /// Grid-accelerated version of find_neighbors: visits only the 27 cells
    /// around `me` instead of the whole flock. Requires cell_size >= radius.
    [[nodiscard]] NeighborList find_neighbors(std::uint32_t me,
                                              std::span<const Vec3> positions, float radius,
                                              std::uint32_t max_neighbors,
                                              SearchCounters* counters = nullptr) const {
        NeighborList result;
        const Vec3 my_position = positions[me];
        const float r2 = radius * radius;
        const std::uint32_t cx = spec_.clamp_axis(my_position.x);
        const std::uint32_t cy = spec_.clamp_axis(my_position.y);
        const std::uint32_t cz = spec_.clamp_axis(my_position.z);
        std::uint64_t examined = 0;
        std::uint64_t in_radius = 0;

        for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    const std::int64_t x = std::int64_t{cx} + dx;
                    const std::int64_t y = std::int64_t{cy} + dy;
                    const std::int64_t z = std::int64_t{cz} + dz;
                    if (x < 0 || y < 0 || z < 0 || x >= spec_.dim || y >= spec_.dim ||
                        z >= spec_.dim) {
                        continue;
                    }
                    const auto cell = static_cast<std::uint32_t>(
                        x + spec_.dim * (y + std::int64_t{spec_.dim} * z));
                    for (std::uint32_t e = cell_start_[cell]; e < cell_start_[cell + 1];
                         ++e) {
                        const std::uint32_t candidate = entries_[e];
                        ++examined;
                        const Vec3 offset = positions[candidate] - my_position;
                        const float d2 = offset.length_squared();
                        if (d2 < r2 && candidate != me) {
                            ++in_radius;
                            result.offer(candidate, d2, max_neighbors);
                        }
                    }
                }
            }
        }
        if (counters) {
            counters->pairs_examined += examined;
            counters->in_radius += in_radius;
        }
        return result;
    }

private:
    GridSpec spec_{};
    std::vector<std::uint32_t> cell_of_;
    std::vector<std::uint32_t> cell_start_;
    std::vector<std::uint32_t> entries_;
};

}  // namespace steer
