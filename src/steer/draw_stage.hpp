// The (headless) graphics stage.
//
// OpenSteerDemo's loop is update stage -> graphics stage (§5.3, Fig. 5.4).
// The reproduction renders nothing, but the draw stage still exists because
// two experiments depend on it: §6.2.3 (only "a 4x4 matrix containing 16
// float values" per agent crosses back to the host in version 5) and §6.3.2
// (double buffering overlaps the draw stage with the next update). This
// header builds those matrices and prices the stage on the host clock.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "steer/agent.hpp"
#include "steer/vec3.hpp"

namespace steer {

/// Column-major 4x4 transform — the 16 floats of §6.2.3.
struct Mat4 {
    std::array<float, 16> m{};

    friend bool operator==(const Mat4&, const Mat4&) = default;
};

/// Builds the local-to-world transform of one agent: rotation from its
/// heading (gram-schmidt against world-up), translation from its position.
[[nodiscard]] inline Mat4 agent_matrix(const Vec3& position, const Vec3& forward) {
    const Vec3 f = forward.normalized();
    Vec3 up{0.0f, 1.0f, 0.0f};
    Vec3 side = f.cross(up);
    if (side.length_squared() < 1e-12f) side = Vec3{1.0f, 0.0f, 0.0f};
    side = side.normalized();
    up = side.cross(f);

    Mat4 out;
    out.m = {side.x, side.y, side.z, 0.0f,  //
             up.x,   up.y,   up.z,   0.0f,  //
             f.x,    f.y,    f.z,    0.0f,  //
             position.x, position.y, position.z, 1.0f};
    return out;
}

/// Builds all draw matrices for a flock (the CPU path of the draw stage).
inline void build_draw_matrices(std::span<const Agent> flock, std::vector<Mat4>& out) {
    out.resize(flock.size());
    for (std::size_t i = 0; i < flock.size(); ++i) {
        out[i] = agent_matrix(flock[i].position, flock[i].forward);
    }
}

}  // namespace steer
