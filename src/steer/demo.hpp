// The OpenSteerDemo-style main loop (thesis §5.3 / Fig. 5.4): "It runs a
// main loop, which first recalculates all agent states and then draws the
// new states to the screen."
//
// The Demo owns one active plugin, runs update stage -> graphics stage per
// frame, and aggregates the per-stage statistics every harness needs
// (update rate, frame rate, stage shares).
#pragma once

#include <memory>
#include <string>

#include "steer/plugin.hpp"

namespace steer {

class Demo {
public:
    explicit Demo(PlugInRegistry& registry = PlugInRegistry::instance())
        : registry_(&registry) {}

    /// Selects and opens a plugin by registry name. Returns false if the
    /// name is unknown.
    bool select(const std::string& name, const WorldSpec& spec) {
        auto plugin = registry_->create(name);
        if (!plugin) return false;
        if (active_) active_->close();
        active_ = std::move(plugin);
        active_->open(spec);
        spec_ = spec;
        accumulated_ = {};
        frames_ = 0;
        return true;
    }

    /// One main-loop iteration.
    StageTimes step() {
        const StageTimes t = active_->step();
        accumulated_ += t;
        ++frames_;
        return t;
    }

    /// Runs `n` frames.
    void run(int n) {
        for (int i = 0; i < n; ++i) (void)step();
    }

    [[nodiscard]] PlugIn& active() const { return *active_; }
    [[nodiscard]] bool has_plugin() const { return static_cast<bool>(active_); }
    [[nodiscard]] const WorldSpec& spec() const { return spec_; }
    [[nodiscard]] std::uint64_t frames() const { return frames_; }

    /// Mean per-stage seconds over all frames so far.
    [[nodiscard]] StageTimes mean_times() const {
        StageTimes m = accumulated_;
        if (frames_ > 0) {
            const auto f = static_cast<double>(frames_);
            m.simulation /= f;
            m.modification /= f;
            m.transfer /= f;
            m.draw /= f;
        }
        return m;
    }

    [[nodiscard]] double update_rate() const { return 1.0 / mean_times().update(); }
    [[nodiscard]] double frame_rate() const { return 1.0 / mean_times().total(); }

    void close() {
        if (active_) {
            active_->close();
            active_.reset();
        }
    }

private:
    PlugInRegistry* registry_;
    std::unique_ptr<PlugIn> active_;
    WorldSpec spec_{};
    StageTimes accumulated_{};
    std::uint64_t frames_ = 0;
};

}  // namespace steer
