// OpenSteerDemo-style plugin architecture (thesis §5.3, Fig. 5.4).
//
// A plugin owns one scenario. The demo main loop calls step(), which runs
// the update stage (simulation substage + modification substage) and the
// graphics stage, and reports modelled per-stage times so the harnesses can
// regenerate the thesis' stage breakdowns and rates.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "steer/agent.hpp"
#include "steer/cpu_cost_model.hpp"
#include "steer/draw_stage.hpp"
#include "steer/world.hpp"

namespace steer {

/// Modelled seconds spent in each stage of one main-loop iteration.
struct StageTimes {
    double simulation = 0.0;    ///< simulation substage (incl. neighbor search)
    double modification = 0.0;  ///< modification substage
    double transfer = 0.0;      ///< host<->device traffic + waits (GPU plugins)
    double draw = 0.0;          ///< graphics stage

    [[nodiscard]] double update() const { return simulation + modification + transfer; }
    [[nodiscard]] double total() const { return update() + draw; }

    StageTimes& operator+=(const StageTimes& o) {
        simulation += o.simulation;
        modification += o.modification;
        transfer += o.transfer;
        draw += o.draw;
        return *this;
    }
};

class PlugIn {
public:
    virtual ~PlugIn() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Creates the scenario's world.
    virtual void open(const WorldSpec& spec) = 0;

    /// One main-loop iteration: update stage then graphics stage.
    virtual StageTimes step() = 0;

    /// The draw matrices produced by the most recent graphics stage.
    [[nodiscard]] virtual std::span<const Mat4> draw_matrices() const = 0;

    /// Current agent states (for verification and cross-checking).
    [[nodiscard]] virtual std::vector<Agent> snapshot() const = 0;

    /// Operation counts accumulated since open() (Fig. 5.5 input).
    [[nodiscard]] virtual const UpdateCounters& counters() const = 0;

    virtual void close() = 0;
};

/// Name -> factory registry, like OpenSteerDemo's plugin list.
class PlugInRegistry {
public:
    using Factory = std::function<std::unique_ptr<PlugIn>()>;

    static PlugInRegistry& instance() {
        static PlugInRegistry r;
        return r;
    }

    void add(std::string name, Factory factory) { factories_[std::move(name)] = std::move(factory); }

    [[nodiscard]] std::unique_ptr<PlugIn> create(const std::string& name) const {
        auto it = factories_.find(name);
        return it == factories_.end() ? nullptr : it->second();
    }

    [[nodiscard]] std::vector<std::string> names() const {
        std::vector<std::string> out;
        for (const auto& [k, v] : factories_) out.push_back(k);
        return out;
    }

private:
    std::map<std::string, Factory> factories_;
};

}  // namespace steer
