// Agent state and kinematics (thesis §5.1/§5.3).
//
// "An agent in the Boids simulation is represented by a sphere. The radius
// of the sphere is identical for all agents [...] The simulation takes
// place in a spherical world. An agent leaving the world is put back into
// the world at the diametric opposite point."
#pragma once

#include "steer/vec3.hpp"

namespace steer {

/// Kinematic state of one boid. Trivially copyable: the identical struct is
/// what travels to the simulated device.
struct Agent {
    Vec3 position{};
    Vec3 forward{0.0f, 0.0f, 1.0f};  ///< unit heading
    float speed = 0.0f;              ///< scalar speed along forward

    [[nodiscard]] Vec3 velocity() const { return forward * speed; }
};

/// Tunables shared by every agent of a flock.
struct AgentParams {
    float radius = 0.5f;      ///< bounding-sphere radius (identical for all)
    float mass = 1.0f;
    float max_speed = 9.0f;
    float max_force = 27.0f;
};

/// Applies a steering vector for one time step: the modification substage's
/// per-agent work. "The direction of the vector defines the direction in
/// which the agent wants to move, whereas the length of the vector defines
/// the acceleration" (§5.1).
inline void apply_steering(Agent& agent, const Vec3& steering, float dt,
                           const AgentParams& params) {
    const Vec3 force = steering.truncated(params.max_force);
    const Vec3 acceleration = force / params.mass;
    Vec3 velocity = agent.velocity() + acceleration * dt;
    velocity = velocity.truncated(params.max_speed);
    agent.position += velocity * dt;
    agent.speed = velocity.length();
    if (agent.speed > 0.0f) agent.forward = velocity / agent.speed;
}

/// Spherical-world wrap: an agent leaving the world re-enters at the
/// diametrically opposite point (§5.1).
inline void wrap_world(Agent& agent, float world_radius) {
    if (agent.position.length_squared() > world_radius * world_radius) {
        agent.position = -agent.position.normalized() * world_radius;
    }
}

}  // namespace steer
