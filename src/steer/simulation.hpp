// The CPU Boids plugin — the reference implementation profiled in thesis
// chapter 5 (the "version by Knafla and Leopold" baseline, single core).
#pragma once

#include <cstdint>
#include <vector>

#include "steer/behaviors.hpp"
#include "steer/cpu_cost_model.hpp"
#include "steer/plugin.hpp"
#include "steer/spatial_grid.hpp"

namespace steer {

/// Decides whether agent `agent` runs its simulation substage in step
/// `step`. With think_period T, 1/T of the agents think per step
/// ("skipThink", §5.3).
[[nodiscard]] constexpr bool thinks_this_step(std::uint32_t agent, std::uint64_t step,
                                              std::uint32_t think_period) {
    return think_period <= 1 || (agent % think_period) == (step % think_period);
}

class CpuBoidsPlugin final : public PlugIn {
public:
    [[nodiscard]] std::string_view name() const override { return "boids-cpu"; }

    void open(const WorldSpec& spec) override;
    StageTimes step() override;
    [[nodiscard]] std::span<const Mat4> draw_matrices() const override { return matrices_; }
    [[nodiscard]] std::vector<Agent> snapshot() const override { return flock_; }
    [[nodiscard]] const UpdateCounters& counters() const override { return totals_; }
    void close() override;

    /// Counters of the most recent step only (stage-breakdown input).
    [[nodiscard]] const UpdateCounters& last_step_counters() const { return last_; }

    [[nodiscard]] const CpuCostModel& cost_model() const { return cost_; }

private:
    WorldSpec spec_{};
    CpuCostModel cost_{};
    std::vector<Agent> flock_;
    std::vector<Vec3> steering_;   ///< last computed steering vector per agent
    std::vector<Vec3> positions_;  ///< state snapshot for the substage split
    std::vector<Vec3> forwards_;
    SpatialGrid grid_;             ///< used when spec_.use_spatial_grid
    std::vector<Mat4> matrices_;
    UpdateCounters totals_{};
    UpdateCounters last_{};
    std::uint64_t step_index_ = 0;
    double clock_ = 0.0;  ///< accumulated modelled seconds (trace timeline)
};

}  // namespace steer
