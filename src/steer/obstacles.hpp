// Obstacle avoidance — part of OpenSteer's standard behavior set.
//
// Spherical obstacles with Reynolds' classic scheme: look ahead along the
// heading for min_time_to_collision seconds; if the path (a cylinder of the
// agent's radius) intersects an obstacle's sphere, steer laterally away
// from the obstacle centre, preferring the nearest threat.
#pragma once

#include <span>

#include "steer/agent.hpp"
#include "steer/vec3.hpp"

namespace steer {

struct SphereObstacle {
    Vec3 center{};
    float radius = 1.0f;
};

/// Steering to avoid one obstacle; zero when it is no threat.
/// `agent_radius` is the agent's bounding-sphere radius.
[[nodiscard]] inline Vec3 avoid_obstacle(const Agent& agent, float agent_radius,
                                         const SphereObstacle& obstacle,
                                         float min_time_to_collision) {
    const float look_ahead = agent.speed * min_time_to_collision;
    if (look_ahead <= 0.0f) return kZero;

    const Vec3 offset = obstacle.center - agent.position;
    const float along = offset.dot(agent.forward);
    // Behind us, or farther than the look-ahead horizon: no threat.
    if (along < 0.0f || along > look_ahead + obstacle.radius) return kZero;

    const Vec3 lateral = offset - agent.forward * along;
    const float clearance = obstacle.radius + agent_radius;
    if (lateral.length_squared() >= clearance * clearance) return kZero;

    // Steer directly away from the obstacle centre, scaled up the closer
    // the predicted pass.
    const float urgency = 1.0f - along / (look_ahead + obstacle.radius);
    Vec3 away = lateral.is_zero() ? agent.forward.cross(Vec3{0.0f, 1.0f, 0.0f})
                                  : -lateral;
    if (away.is_zero()) away = Vec3{1.0f, 0.0f, 0.0f};
    return away.normalized() * (1.0f + urgency);
}

/// Avoids the *nearest* threatening obstacle (OpenSteer picks one, not a
/// blend — blending opposing avoidance vectors can cancel out).
[[nodiscard]] inline Vec3 avoid_obstacles(const Agent& agent, float agent_radius,
                                          std::span<const SphereObstacle> obstacles,
                                          float min_time_to_collision) {
    Vec3 best = kZero;
    float best_along = 1e30f;
    for (const SphereObstacle& o : obstacles) {
        const Vec3 steering = avoid_obstacle(agent, agent_radius, o, min_time_to_collision);
        if (steering.is_zero()) continue;
        const float along = (o.center - agent.position).dot(agent.forward);
        if (along < best_along) {
            best_along = along;
            best = steering;
        }
    }
    return best;
}

}  // namespace steer
