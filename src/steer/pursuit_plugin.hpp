// A second OpenSteerDemo scenario: predator-and-prey pursuit.
//
// OpenSteerDemo "currently offers different scenarios — among others the
// Boids scenario" (§5.3). This plugin is one of the others: a small number
// of predators pursue the nearest prey; prey wander until a predator gets
// close, then evade; spherical obstacles dot the world. It exercises the
// whole basic-behavior set (pursue/evade/wander/obstacle avoidance) under
// the same plugin interface and stage structure as the Boids scenario.
#pragma once

#include <cstdint>
#include <vector>

#include "steer/basic_behaviors.hpp"
#include "steer/cpu_cost_model.hpp"
#include "steer/obstacles.hpp"
#include "steer/plugin.hpp"

namespace steer {

/// Scenario constants and setup helpers, shared by the CPU plugin and the
/// GPU port (gpusteer::GpuPursuitPlugin) so both simulate the same world.
namespace pursuit {

inline constexpr float kEvadeRadius = 12.0f;       ///< prey notice a predator this close
inline constexpr float kCaptureRadius = 1.5f;
inline constexpr float kAvoidHorizonSeconds = 1.5f;
inline constexpr float kCloseRange = 8.0f;         ///< predators switch to pure pursuit
inline constexpr float kPredatorSpeedFactor = 1.8f;
inline constexpr float kPredatorForceFactor = 4.0f;
inline constexpr float kWanderFraction = 0.4f;

[[nodiscard]] inline AgentParams predator_params(const AgentParams& prey) {
    AgentParams p = prey;
    p.max_speed *= kPredatorSpeedFactor;
    p.max_force *= kPredatorForceFactor;
    return p;
}

[[nodiscard]] inline Lcg wander_rng(std::uint64_t seed, std::uint32_t agent) {
    return Lcg(seed ^ (0x9e3779b97f4a7c15ull * (agent + 1)));
}

/// A handful of spherical obstacles scattered around the world centre.
[[nodiscard]] inline std::vector<SphereObstacle> make_obstacles(const WorldSpec& spec) {
    std::vector<SphereObstacle> obstacles;
    Lcg rng(spec.seed + 77);
    for (int i = 0; i < 8; ++i) {
        SphereObstacle o;
        o.center = Vec3{rng.uniform(-0.6f, 0.6f), rng.uniform(-0.6f, 0.6f),
                        rng.uniform(-0.6f, 0.6f)} *
                   spec.world_radius;
        o.radius = rng.uniform(2.0f, 6.0f);
        obstacles.push_back(o);
    }
    return obstacles;
}

}  // namespace pursuit

class PursuitPlugin final : public PlugIn {
public:
    /// One predator per `prey_per_predator` prey (at least one predator).
    explicit PursuitPlugin(std::uint32_t prey_per_predator = 32)
        : prey_per_predator_(prey_per_predator) {}

    [[nodiscard]] std::string_view name() const override { return "pursuit-cpu"; }

    void open(const WorldSpec& spec) override;
    StageTimes step() override;
    [[nodiscard]] std::span<const Mat4> draw_matrices() const override { return matrices_; }
    [[nodiscard]] std::vector<Agent> snapshot() const override { return flock_; }
    [[nodiscard]] const UpdateCounters& counters() const override { return totals_; }
    void close() override;

    [[nodiscard]] std::uint32_t predators() const { return predators_; }
    [[nodiscard]] std::uint32_t captures() const { return captures_; }
    [[nodiscard]] std::span<const SphereObstacle> obstacles() const { return obstacles_; }
    [[nodiscard]] bool is_predator(std::uint32_t i) const { return i < predators_; }

private:
    [[nodiscard]] std::uint32_t nearest_prey(std::uint32_t predator) const;

    std::uint32_t prey_per_predator_;
    WorldSpec spec_{};
    AgentParams predator_params_{};
    CpuCostModel cost_{};
    std::uint32_t predators_ = 0;
    std::uint32_t captures_ = 0;
    std::vector<Agent> flock_;  ///< [0, predators) predators, rest prey
    std::vector<std::uint32_t> target_;  ///< sticky quarry per predator
    std::vector<WanderState> wander_;
    std::vector<SphereObstacle> obstacles_;
    std::vector<Vec3> steering_;
    std::vector<Mat4> matrices_;
    UpdateCounters totals_{};
    std::uint64_t step_index_ = 0;
};

}  // namespace steer
