#include "steer/pursuit_plugin.hpp"

namespace steer {

void PursuitPlugin::open(const WorldSpec& spec) {
    spec_ = spec;
    flock_ = make_flock(spec);
    // Predators are faster and stronger than their prey — otherwise an
    // evading prey at equal top speed is never caught.
    predator_params_ = pursuit::predator_params(spec.params);
    predators_ = std::max(1u, spec.agents / std::max(1u, prey_per_predator_));
    captures_ = 0;
    target_.assign(predators_, spec.agents);  // invalid: resolved on the first step
    steering_.assign(spec.agents, kZero);
    wander_.clear();
    wander_.reserve(spec.agents);
    for (std::uint32_t i = 0; i < spec.agents; ++i) {
        wander_.emplace_back();
        wander_.back().rng = pursuit::wander_rng(spec.seed, i);
    }
    obstacles_ = pursuit::make_obstacles(spec);

    matrices_.clear();
    totals_ = {};
    step_index_ = 0;
}

std::uint32_t PursuitPlugin::nearest_prey(std::uint32_t predator) const {
    std::uint32_t best = predators_;  // first prey as fallback
    float best_d2 = 1e30f;
    for (std::uint32_t i = predators_; i < spec_.agents; ++i) {
        const float d2 = (flock_[i].position - flock_[predator].position).length_squared();
        if (d2 < best_d2) {
            best_d2 = d2;
            best = i;
        }
    }
    return best;
}

StageTimes PursuitPlugin::step() {
    const std::uint32_t n = spec_.agents;
    const float max_speed = spec_.params.max_speed;
    UpdateCounters c;

    // --- simulation substage: everyone decides on a snapshot ---
    const std::vector<Agent> snapshot = flock_;
    for (std::uint32_t i = 0; i < n; ++i) {
        Vec3 steering;
        if (is_predator(i)) {
            // Sticky targeting: a predator keeps its quarry while chasing;
            // re-targeting every frame makes it zigzag and never catch up.
            const std::uint32_t nearest = nearest_prey(i);
            c.pairs_examined += n - predators_;  // the nearest-prey scan
            std::uint32_t& quarry = target_[i];
            if (quarry >= n || quarry < predators_) quarry = nearest;
            const float quarry_d =
                (snapshot[quarry].position - snapshot[i].position).length();
            const float nearest_d =
                (snapshot[nearest].position - snapshot[i].position).length();
            if (quarry_d > 2.0f * nearest_d + 5.0f) quarry = nearest;
            // Lead the quarry at range; switch to pure pursuit (plain seek)
            // up close — extrapolating a turning target sweeps the aim
            // point sideways and settles into a stable orbit.
            const float fresh_d =
                (snapshot[quarry].position - snapshot[i].position).length();
            steering = fresh_d < pursuit::kCloseRange
                           ? seek(snapshot[i], snapshot[quarry].position,
                                  predator_params_.max_speed)
                           : pursue(snapshot[i], snapshot[quarry],
                                    predator_params_.max_speed);
        } else {
            // Prey: evade the closest predator if near, otherwise wander.
            std::uint32_t threat = 0;
            float threat_d2 = 1e30f;
            for (std::uint32_t p = 0; p < predators_; ++p) {
                const float d2 =
                    (snapshot[p].position - snapshot[i].position).length_squared();
                if (d2 < threat_d2) {
                    threat_d2 = d2;
                    threat = p;
                }
            }
            c.pairs_examined += predators_;
            if (threat_d2 < pursuit::kEvadeRadius * pursuit::kEvadeRadius) {
                steering = evade(snapshot[i], snapshot[threat], max_speed);
            } else {
                steering = wander_[i].step(snapshot[i],
                                           max_speed * pursuit::kWanderFraction);
            }
        }
        // Obstacle avoidance overrides everything when a collision looms.
        const Vec3 avoid = avoid_obstacles(snapshot[i], spec_.params.radius, obstacles_,
                                           pursuit::kAvoidHorizonSeconds);
        if (!avoid.is_zero()) steering = avoid * spec_.params.max_force;
        steering_[i] = steering;
        ++c.thinks;
    }

    // --- modification substage ---
    for (std::uint32_t i = 0; i < n; ++i) {
        apply_steering(flock_[i], steering_[i], spec_.dt,
                       is_predator(i) ? predator_params_ : spec_.params);
        wrap_world(flock_[i], spec_.world_radius);
    }
    c.modifies = n;

    // Captures: a predator touching its quarry scores; the prey respawns at
    // the diametrically opposite point (cheap, deterministic) and the
    // predator picks a new target.
    for (std::uint32_t p = 0; p < predators_; ++p) {
        const std::uint32_t quarry = target_[p] < n ? target_[p] : nearest_prey(p);
        if ((flock_[p].position - flock_[quarry].position).length() <
            pursuit::kCaptureRadius + 2.0f * spec_.params.radius) {
            ++captures_;
            flock_[quarry].position = -flock_[quarry].position;
            target_[p] = predators_ + spec_.agents;  // force re-target
        }
    }

    // --- graphics stage ---
    build_draw_matrices(flock_, matrices_);

    totals_ += c;
    ++step_index_;

    StageTimes times;
    UpdateCounters sim_only = c;
    sim_only.modifies = 0;
    times.simulation = update_stage_seconds(sim_only, cost_);
    UpdateCounters mod_only{};
    mod_only.modifies = c.modifies;
    times.modification = update_stage_seconds(mod_only, cost_);
    times.draw = draw_stage_seconds(n, cost_);
    return times;
}

void PursuitPlugin::close() {
    flock_.clear();
    steering_.clear();
    matrices_.clear();
    obstacles_.clear();
}

}  // namespace steer
