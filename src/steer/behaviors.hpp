// The three basic steering behaviors and their flocking combination
// (thesis §5.2, listings 5.1 and 5.3-5.5).
#pragma once

#include <span>

#include "steer/neighbor_search.hpp"
#include "steer/vec3.hpp"

namespace steer {

/// Separation (listing 5.3): repulsion with 1/d falloff.
[[nodiscard]] inline Vec3 separation(const Vec3& my_position, const NeighborList& neighbors,
                                     std::span<const Vec3> positions) {
    Vec3 steering = kZero;
    for (std::uint32_t i = 0; i < neighbors.count; ++i) {
        const Vec3 distance = positions[neighbors.index[i]] - my_position;
        const float len = distance.length();
        if (len > 0.0f) {
            // "divided to get 1/d falloff": normalise, then divide by the
            // original length a second time.
            steering -= distance / (len * len);
        }
    }
    return steering;
}

/// Cohesion (listing 5.4): towards the neighbors.
[[nodiscard]] inline Vec3 cohesion(const Vec3& my_position, const NeighborList& neighbors,
                                   std::span<const Vec3> positions) {
    Vec3 steering = kZero;
    for (std::uint32_t i = 0; i < neighbors.count; ++i) {
        steering += positions[neighbors.index[i]] - my_position;
    }
    return steering;
}

/// Alignment (listing 5.5): match the neighbors' average heading.
[[nodiscard]] inline Vec3 alignment(const Vec3& my_forward, const NeighborList& neighbors,
                                    std::span<const Vec3> forwards) {
    Vec3 steering = kZero;
    for (std::uint32_t i = 0; i < neighbors.count; ++i) {
        steering += forwards[neighbors.index[i]];
    }
    steering -= static_cast<float>(neighbors.count) * my_forward;
    return steering;
}

/// Weights of the flocking combination.
struct FlockingWeights {
    float separation;
    float alignment;
    float cohesion;
};

/// Flocking (listing 5.1): the weighted sum of the normalised basic
/// behaviors. The neighbor search is done once and shared by all three
/// behaviors, as the profiled OpenSteer version does (§5.3: "The neighbor
/// search is done once for every calculation of the resulting steering
/// vector and not once for every basic steering behavior").
[[nodiscard]] inline Vec3 flocking(const Vec3& my_position, const Vec3& my_forward,
                                   const NeighborList& neighbors,
                                   std::span<const Vec3> positions,
                                   std::span<const Vec3> forwards,
                                   const FlockingWeights& w) {
    const Vec3 separation_w = w.separation * separation(my_position, neighbors, positions).normalized();
    const Vec3 alignment_w = w.alignment * alignment(my_forward, neighbors, forwards).normalized();
    const Vec3 cohesion_w = w.cohesion * cohesion(my_position, neighbors, positions).normalized();
    return separation_w + alignment_w + cohesion_w;
}

}  // namespace steer
