// The neighbor search of thesis §5.2.1 (listing 5.2): the 7 nearest agents
// within the search radius, found by a linear scan over the whole flock —
// O(n) per agent, O(n^2) for the full simulation substage, which is exactly
// the bottleneck the GPU port attacks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "steer/vec3.hpp"

namespace steer {

/// Fixed-capacity neighbor list (index + squared distance), kept unsorted;
/// the insertion rule replaces the farthest entry, as in listing 5.2.
struct NeighborList {
    static constexpr std::uint32_t kCapacity = 7;

    std::array<std::uint32_t, kCapacity> index{};
    std::array<float, kCapacity> dist2{};
    std::uint32_t count = 0;

    /// Implements the listing-5.2 insertion: while fewer than capacity
    /// neighbors are known, just add; afterwards replace the farthest known
    /// neighbor if the candidate is closer.
    void offer(std::uint32_t candidate, float candidate_dist2, std::uint32_t max_neighbors) {
        if (count < max_neighbors) {
            index[count] = candidate;
            dist2[count] = candidate_dist2;
            ++count;
            return;
        }
        std::uint32_t farthest = 0;
        for (std::uint32_t i = 1; i < count; ++i) {
            if (dist2[i] > dist2[farthest]) farthest = i;
        }
        if (candidate_dist2 < dist2[farthest]) {
            index[farthest] = candidate;
            dist2[farthest] = candidate_dist2;
        }
    }
};

/// Statistics of one search, feeding the CPU cost model.
struct SearchCounters {
    std::uint64_t pairs_examined = 0;
    std::uint64_t in_radius = 0;
};

/// Finds up to `max_neighbors` (<= 7) agents within `radius` of agent `me`,
/// preferring the nearest ones. Complexity O(n).
[[nodiscard]] inline NeighborList find_neighbors(std::uint32_t me,
                                                 std::span<const Vec3> positions,
                                                 float radius, std::uint32_t max_neighbors,
                                                 SearchCounters* counters = nullptr) {
    NeighborList result;
    const Vec3 my_position = positions[me];
    const float r2 = radius * radius;
    std::uint64_t in_radius = 0;
    for (std::uint32_t i = 0; i < positions.size(); ++i) {
        const Vec3 offset = positions[i] - my_position;
        const float d2 = offset.length_squared();
        if (d2 < r2 && i != me) {
            ++in_radius;
            result.offer(i, d2, max_neighbors);
        }
    }
    if (counters) {
        counters->pairs_examined += positions.size();
        counters->in_radius += in_radius;
    }
    return result;
}

}  // namespace steer
