// The simple steering behaviors of OpenSteer (thesis §5.3: "It provides
// simple steering behaviors and a basic agent implementation").
//
// Flocking (behaviors.hpp) is the scenario the thesis evaluates; these are
// the rest of the library's classic repertoire after Reynolds [Rey99]:
// seek, flee, arrival, pursuit, evasion and wander. All are pure functions
// from agent state to a steering vector, in the same convention as
// flocking: direction = desired heading, length = acceleration.
#pragma once

#include "steer/agent.hpp"
#include "steer/lcg.hpp"
#include "steer/vec3.hpp"

namespace steer {

/// Seek: steer towards a world position at full speed.
[[nodiscard]] inline Vec3 seek(const Agent& agent, const Vec3& target, float max_speed) {
    const Vec3 desired = (target - agent.position).normalized() * max_speed;
    return desired - agent.velocity();
}

/// Flee: the opposite of seek.
[[nodiscard]] inline Vec3 flee(const Agent& agent, const Vec3& threat, float max_speed) {
    const Vec3 desired = (agent.position - threat).normalized() * max_speed;
    return desired - agent.velocity();
}

/// Arrival: seek that slows down inside `slowing_radius` and stops at the
/// target.
[[nodiscard]] inline Vec3 arrival(const Agent& agent, const Vec3& target, float max_speed,
                                  float slowing_radius) {
    const Vec3 offset = target - agent.position;
    const float distance = offset.length();
    if (distance < 1e-6f) return -agent.velocity();
    const float ramped = max_speed * (distance / slowing_radius);
    const float clipped = ramped < max_speed ? ramped : max_speed;
    const Vec3 desired = offset * (clipped / distance);
    return desired - agent.velocity();
}

/// Predicts where a moving quarry will be after `lead_time` seconds.
[[nodiscard]] inline Vec3 predict_position(const Agent& quarry, float lead_time) {
    return quarry.position + quarry.velocity() * lead_time;
}

/// Pursuit: seek the quarry's predicted future position. The lead time is
/// the classic distance/speed estimate.
[[nodiscard]] inline Vec3 pursue(const Agent& agent, const Agent& quarry, float max_speed) {
    const float distance = (quarry.position - agent.position).length();
    const float speed = agent.speed > 0.1f ? agent.speed : max_speed;
    const float lead_time = distance / speed;
    return seek(agent, predict_position(quarry, lead_time), max_speed);
}

/// Evasion: flee from the menace's predicted future position. The
/// prediction horizon is damped by the closing speed (menace + self), so a
/// menace heading straight in is never extrapolated *past* the agent —
/// the classic failure mode of the plain distance/speed estimate.
[[nodiscard]] inline Vec3 evade(const Agent& agent, const Agent& menace, float max_speed) {
    const float distance = (menace.position - agent.position).length();
    const float closing = menace.speed + max_speed;
    const float lead_time = closing > 0.1f ? distance / closing : 0.0f;
    return flee(agent, predict_position(menace, lead_time), max_speed);
}

/// Wander: a persistent pseudo-random walk. State (the wander side/up
/// deflections) lives with the caller; each step nudges it and steers
/// forward plus the deflection — Reynolds' classic jitter-on-a-sphere.
struct WanderState {
    float side = 0.0f;
    float up = 0.0f;
    Lcg rng{12u};

    [[nodiscard]] Vec3 step(const Agent& agent, float strength) {
        auto jitter = [&](float v) {
            v += rng.uniform(-0.3f, 0.3f);
            return v < -1.0f ? -1.0f : (v > 1.0f ? 1.0f : v);
        };
        side = jitter(side);
        up = jitter(up);
        // Build a local frame from the heading.
        const Vec3 forward = agent.forward.normalized();
        Vec3 world_up{0.0f, 1.0f, 0.0f};
        Vec3 right = forward.cross(world_up);
        if (right.length_squared() < 1e-12f) right = Vec3{1.0f, 0.0f, 0.0f};
        right = right.normalized();
        const Vec3 local_up = right.cross(forward);
        return (forward + right * side + local_up * up).normalized() * strength;
    }
};

}  // namespace steer
