// The CPU timing model — the "AMD Athlon 64 3700+" of thesis §5.3.
//
// The reproduction cannot rerun 2007 hardware, so CPU-side time is modelled
// the same way the device side is: operation counts (gathered while the real
// computation runs) times per-operation cycle costs, divided by the 2.2 GHz
// clock of the thesis machine. The constants are calibrated so that the
// *shape* of Fig. 5.5 (neighbor search ~82% of a mid-size run) and the
// CPU/GPU factors of chapter 6 come out; they are documented here as the
// single place to audit.
#pragma once

#include <cstdint>

namespace steer {

struct CpuCostModel {
    double clock_hz = 2.2e9;  ///< Athlon 64 3700+

    // Per-operation cycle costs (single core, no SIMD — the thesis CPU
    // version is scalar OpenSteer code). Calibration anchors: at 1024
    // agents the neighbor search is ~82% of a frame (Fig. 5.5); at 4096
    // agents the non-search update work is small enough that version 2's
    // 12.9x and version 5's 42x can coexist (see EXPERIMENTS.md).
    double cycles_per_pair = 13.0;          ///< neighbor-search inner loop iteration
    double cycles_per_neighbor = 50.0;      ///< behavior math per found neighbor
    double cycles_per_think = 2100.0;       ///< fixed per simulated agent (normalisations, combination)
    double cycles_per_modify = 590.0;       ///< velocity/position/wrap update
    double cycles_per_draw_agent = 2300.0;  ///< build + submit one agent's 4x4 matrix
    double cycles_per_frame = 60000.0;      ///< fixed per-frame loop overhead

    // Spatial-grid construction (the future-work §7 extension): a counting
    // sort over the agents plus a prefix sum over the cells.
    double cycles_per_grid_agent = 12.0;
    double cycles_per_grid_cell = 2.0;

    [[nodiscard]] double seconds(double cycles) const { return cycles / clock_hz; }
};

/// Operation counts of one (or more) update stages.
struct UpdateCounters {
    std::uint64_t pairs_examined = 0;   ///< neighbor-search candidates looked at
    std::uint64_t neighbors_found = 0;  ///< entries processed by behaviors
    std::uint64_t thinks = 0;           ///< simulation-substage executions
    std::uint64_t modifies = 0;         ///< modification-substage executions

    UpdateCounters& operator+=(const UpdateCounters& o) {
        pairs_examined += o.pairs_examined;
        neighbors_found += o.neighbors_found;
        thinks += o.thinks;
        modifies += o.modifies;
        return *this;
    }
};

/// Modelled CPU seconds of an update stage.
[[nodiscard]] inline double update_stage_seconds(const UpdateCounters& c,
                                                 const CpuCostModel& m) {
    const double cycles = static_cast<double>(c.pairs_examined) * m.cycles_per_pair +
                          static_cast<double>(c.neighbors_found) * m.cycles_per_neighbor +
                          static_cast<double>(c.thinks) * m.cycles_per_think +
                          static_cast<double>(c.modifies) * m.cycles_per_modify;
    return m.seconds(cycles);
}

/// Modelled CPU seconds of just the neighbor search within the counters —
/// used to regenerate the Fig. 5.5 breakdown.
[[nodiscard]] inline double neighbor_search_seconds(const UpdateCounters& c,
                                                    const CpuCostModel& m) {
    return m.seconds(static_cast<double>(c.pairs_examined) * m.cycles_per_pair);
}

/// Modelled CPU seconds of a draw stage for `agents` boids.
[[nodiscard]] inline double draw_stage_seconds(std::uint64_t agents, const CpuCostModel& m) {
    return m.seconds(static_cast<double>(agents) * m.cycles_per_draw_agent +
                     m.cycles_per_frame);
}

}  // namespace steer
