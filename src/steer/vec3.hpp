// 3-component float vector — the Vec3 of OpenSteer (thesis chapter 5).
//
// Float-based because the device works in single precision; the CPU
// reference implementation uses the identical type so both paths compute
// the same flock.
#pragma once

#include <cmath>

namespace steer {

struct Vec3 {
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    constexpr Vec3& operator-=(const Vec3& o) {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    constexpr Vec3& operator*=(float s) {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }
    constexpr Vec3& operator/=(float s) { return *this *= (1.0f / s); }

    friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
    friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
    friend constexpr Vec3 operator*(Vec3 a, float s) { return a *= s; }
    friend constexpr Vec3 operator*(float s, Vec3 a) { return a *= s; }
    friend constexpr Vec3 operator/(Vec3 a, float s) { return a /= s; }
    friend constexpr Vec3 operator-(const Vec3& a) { return Vec3{-a.x, -a.y, -a.z}; }

    friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

    [[nodiscard]] constexpr float dot(const Vec3& o) const {
        return x * o.x + y * o.y + z * o.z;
    }
    [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
        return Vec3{y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    [[nodiscard]] constexpr float length_squared() const { return dot(*this); }
    [[nodiscard]] float length() const { return std::sqrt(length_squared()); }

    /// Unit vector; the zero vector normalises to itself (OpenSteer
    /// convention, avoids NaNs in degenerate flocks).
    [[nodiscard]] Vec3 normalized() const {
        const float len = length();
        return len > 0.0f ? *this / len : *this;
    }

    /// Clamps the length to `max_len`.
    [[nodiscard]] Vec3 truncated(float max_len) const {
        const float len2 = length_squared();
        if (len2 <= max_len * max_len) return *this;
        return normalized() * max_len;
    }

    [[nodiscard]] constexpr bool is_zero() const { return x == 0.0f && y == 0.0f && z == 0.0f; }
};

inline constexpr Vec3 kZero{0.0f, 0.0f, 0.0f};

}  // namespace steer
