// Perf trajectory of the block engines (wall-clock).
//
// Unlike the figure harnesses, which report *simulated* time, this binary
// measures how fast the host pushes multi-block grids through cusim — for
// both execution engines (the classic coroutine-per-thread interpreter and
// the warp-vectorized one) across BlockPool thread counts — verifies every
// cell's LaunchStats stay bit-identical to the serial thread-engine run,
// and writes the results as JSON — the repo's perf trajectory artifact
// (BENCH_parallel_engine.json).
//
// Three kernel variants stress different engine paths:
//   crunch    — shared tile, two barrier episodes, 64 FMADs/thread: the
//               balanced workload the artifact has always tracked;
//   diverge   — 24 data-dependent branch rounds per thread (collatz-style),
//               asymmetric cost per side: the active-mask/reconvergence
//               machinery under heavy divergence;
//   nobarrier — 96 FMADs and a write, no __syncthreads: pure per-resume
//               interpreter overhead, where warp batching helps most.
//
// Usage: bench_parallel_engine [output.json] [--prof <prefix>]
//   --prof additionally runs a fixed profiled sequence under each engine
//   and writes <prefix>.thread.json / <prefix>.warp.json — cupp_prof --diff
//   must report identical modelled device time across them (host wall
//   seconds are real time and are excluded from the diffable slice).
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cusim/block_pool.hpp"
#include "cusim/cusim.hpp"

namespace {

using cusim::DevicePtr;
using cusim::KernelSpec;
using cusim::KernelTask;
using cusim::kWarpSize;
using cusim::Op;
using cusim::ThreadCtx;
using cusim::WarpCtx;

constexpr unsigned kGridX = 64;
constexpr unsigned kBlockX = 128;
constexpr std::uint32_t kN = kGridX * kBlockX;

// --- crunch: shared tile, 2 barriers, 64 FMADs/thread ----------------------

KernelTask crunch_thread(ThreadCtx& ctx, DevicePtr<float> out, std::uint32_t n) {
    auto tile = ctx.shared_array<float>(ctx.block_dim().x);
    const std::uint32_t tid = ctx.thread_idx().x;
    tile.write(ctx, tid, static_cast<float>(ctx.global_id()));
    co_await ctx.syncthreads();
    float acc = tile.read(ctx, (tid + 1) % ctx.block_dim().x);
    for (int i = 0; i < 64; ++i) {
        ctx.charge(Op::FMad);
        acc = acc * 1.000001f + 0.5f;
    }
    co_await ctx.syncthreads();
    const std::uint64_t gid = ctx.global_id();
    if (gid < n) out.write(ctx, gid, acc);
    co_return;
}

KernelTask crunch_warp(WarpCtx& w, DevicePtr<float> out, std::uint32_t n) {
    auto tile = w.shared_array<float>(w.block_dim().x);
    // Lane loops run all kWarpSize slots with a compile-time bound so the
    // host compiler can vectorize them; the accessors' active mask decides
    // which lanes actually commit, so a tail warp's dead slots just compute
    // values nobody reads — the same lockstep discipline a real warp has.
    std::uint64_t idx[kWarpSize];
    float acc[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l) {
        idx[l] = w.lane_tid(l);
        acc[l] = static_cast<float>(w.global_id(l));
    }
    w.write(tile, idx, acc);
    co_await w.syncthreads();
    for (unsigned l = 0; l < kWarpSize; ++l) {
        idx[l] = (w.lane_tid(l) + 1) % w.block_dim().x;
    }
    w.read(tile, idx, acc);
    w.charge(Op::FMad, 64);  // == 64 per-iteration charges, batched
    for (int i = 0; i < 64; ++i) {
        for (unsigned l = 0; l < kWarpSize; ++l) {
            acc[l] = acc[l] * 1.000001f + 0.5f;
        }
    }
    co_await w.syncthreads();
    std::uint32_t in_range = 0;
    for (unsigned l = 0; l < kWarpSize; ++l) {
        idx[l] = w.global_id(l);
        in_range |= (idx[l] < n ? 1u : 0u) << l;
    }
    w.push_active(in_range);
    w.write(out, idx, acc);
    w.pop_active();
    co_return;
}

// --- diverge: 24 data-dependent branch rounds ------------------------------

KernelTask diverge_thread(ThreadCtx& ctx, DevicePtr<std::uint32_t> data,
                          std::uint32_t salt) {
    const std::uint64_t gid = ctx.global_id();
    std::uint32_t v = data.read(ctx, gid) ^ salt;
    for (int i = 0; i < 24; ++i) {
        if (ctx.branch((v & 1u) != 0)) {
            ctx.charge(Op::FMad);  // the taken side costs extra
            v = v * 3 + 1;
        } else {
            v >>= 1;
        }
    }
    data.write(ctx, gid, v + static_cast<std::uint32_t>(gid));
    co_return;
}

KernelTask diverge_warp(WarpCtx& w, DevicePtr<std::uint32_t> data,
                        std::uint32_t salt) {
    std::uint64_t idx[kWarpSize];
    std::uint32_t v[kWarpSize] = {};  // read() fills active lanes only
    for (unsigned l = 0; l < kWarpSize; ++l) idx[l] = w.global_id(l);
    w.read(data, idx, v);
    for (unsigned l = 0; l < kWarpSize; ++l) v[l] ^= salt;
    for (int i = 0; i < 24; ++i) {
        std::uint32_t odd = 0;
        for (unsigned l = 0; l < kWarpSize; ++l) odd |= (v[l] & 1u) << l;
        w.push_active(w.ballot(odd));
        w.charge(Op::FMad);  // the taken side costs extra
        const std::uint32_t taken = w.active();
        w.else_active();
        const std::uint32_t rest = w.active();
        w.pop_active();
        // Both sides computed for every lane, commit selected by mask — how
        // the hardware executes a divergent warp, and a branchless select
        // the compiler turns into vector blends.
        for (unsigned l = 0; l < kWarpSize; ++l) {
            const std::uint32_t grown = v[l] * 3 + 1;
            const std::uint32_t halved = v[l] >> 1;
            v[l] = ((taken >> l) & 1u) != 0 ? grown
                 : ((rest >> l) & 1u) != 0  ? halved
                                            : v[l];
        }
    }
    for (unsigned l = 0; l < kWarpSize; ++l) {
        v[l] += static_cast<std::uint32_t>(idx[l]);
    }
    w.write(data, idx, v);
    co_return;
}

// --- nobarrier: 96 FMADs + one write, no __syncthreads ---------------------

KernelTask nobarrier_thread(ThreadCtx& ctx, DevicePtr<float> out, std::uint32_t n) {
    float acc = static_cast<float>(ctx.global_id() & 0xffu);
    for (int i = 0; i < 96; ++i) {
        ctx.charge(Op::FMad);
        acc = acc * 1.0000005f + 0.25f;
    }
    const std::uint64_t gid = ctx.global_id();
    if (gid < n) out.write(ctx, gid, acc);
    co_return;
}

KernelTask nobarrier_warp(WarpCtx& w, DevicePtr<float> out, std::uint32_t n) {
    std::uint64_t idx[kWarpSize];
    float acc[kWarpSize];
    for (unsigned l = 0; l < kWarpSize; ++l) {
        idx[l] = w.global_id(l);
        acc[l] = static_cast<float>(idx[l] & 0xffu);
    }
    w.charge(Op::FMad, 96);
    for (int i = 0; i < 96; ++i) {
        for (unsigned l = 0; l < kWarpSize; ++l) {
            acc[l] = acc[l] * 1.0000005f + 0.25f;
        }
    }
    std::uint32_t in_range = 0;
    for (unsigned l = 0; l < kWarpSize; ++l) {
        in_range |= (idx[l] < n ? 1u : 0u) << l;
    }
    w.push_active(in_range);
    w.write(out, idx, acc);
    w.pop_active();
    co_return;
}

// --- harness ----------------------------------------------------------------

struct Sample {
    const char* engine = "";
    unsigned threads = 0;
    double steps_per_s = 0.0;
    double speedup = 0.0;  ///< vs the thread engine at 1 thread, same variant
    bool stats_identical = false;
};

struct Variant {
    const char* name = "";
    const char* note = "";
    std::vector<Sample> samples;
};

bool same_stats(const cusim::LaunchStats& a, const cusim::LaunchStats& b) {
    return a.blocks == b.blocks && a.threads == b.threads && a.warps == b.warps &&
           a.compute_cycles == b.compute_cycles && a.stall_cycles == b.stall_cycles &&
           a.bytes_read == b.bytes_read && a.bytes_written == b.bytes_written &&
           a.useful_bytes_read == b.useful_bytes_read &&
           a.useful_bytes_written == b.useful_bytes_written &&
           a.divergent_events == b.divergent_events &&
           a.branch_evaluations == b.branch_evaluations &&
           a.syncthreads_count == b.syncthreads_count &&
           a.device_seconds == b.device_seconds;
}

constexpr int kWarmupSteps = 2;
constexpr int kSteps = 20;

/// Runs warmup + kSteps of `spec` after `reset()`, so every cell of the
/// (engine, threads) matrix sees the identical launch sequence and the
/// final step's stats are comparable bit-for-bit.
template <typename Reset>
Sample measure(cusim::Device& dev, const cusim::LaunchConfig& cfg,
               const KernelSpec& spec, const char* name, Reset&& reset,
               cusim::EngineMode mode, unsigned threads,
               const cusim::LaunchStats* reference, cusim::LaunchStats* out_stats) {
    reset();
    cusim::set_engine_mode(mode);
    cusim::BlockPool::set_threads(threads);
    for (int i = 0; i < kWarmupSteps; ++i) (void)dev.launch(cfg, spec, name);
    cusim::LaunchStats stats{};
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSteps; ++i) stats = dev.launch(cfg, spec, name);
    const auto t1 = std::chrono::steady_clock::now();
    cusim::BlockPool::set_threads(0);
    cusim::clear_engine_mode();

    Sample s;
    s.engine = mode == cusim::EngineMode::Warp ? "warp" : "thread";
    s.threads = threads;
    s.steps_per_s = kSteps / std::chrono::duration<double>(t1 - t0).count();
    s.stats_identical = reference == nullptr || same_stats(stats, *reference);
    if (out_stats != nullptr) *out_stats = stats;
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    const char* out_path = "BENCH_parallel_engine.json";
    std::string prof_prefix;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prof") == 0 && i + 1 < argc) {
            prof_prefix = argv[++i];
        } else {
            out_path = argv[i];
        }
    }

    cusim::Device dev(cusim::g80_properties());
    const DevicePtr<float> fout = dev.malloc_n<float>(kN);
    const DevicePtr<std::uint32_t> ubuf = dev.malloc_n<std::uint32_t>(kN);
    std::vector<std::uint32_t> useed(kN);
    for (std::uint32_t i = 0; i < kN; ++i) useed[i] = i * 2654435761u + 12345u;

    const cusim::LaunchConfig shared_cfg{cusim::dim3{kGridX}, cusim::dim3{kBlockX},
                                         kBlockX * sizeof(float)};
    const cusim::LaunchConfig plain_cfg{cusim::dim3{kGridX}, cusim::dim3{kBlockX}};

    const KernelSpec crunch([&](ThreadCtx& ctx) { return crunch_thread(ctx, fout, kN); },
                            [&](WarpCtx& w) { return crunch_warp(w, fout, kN); });
    const KernelSpec diverge(
        [&](ThreadCtx& ctx) { return diverge_thread(ctx, ubuf, 0x9e3779b9u); },
        [&](WarpCtx& w) { return diverge_warp(w, ubuf, 0x9e3779b9u); });
    const KernelSpec nobarrier(
        [&](ThreadCtx& ctx) { return nobarrier_thread(ctx, fout, kN); },
        [&](WarpCtx& w) { return nobarrier_warp(w, fout, kN); });

    const auto no_reset = [] {};
    const auto reseed = [&] {
        dev.upload(ubuf, std::span<const std::uint32_t>(useed));
    };

    struct Case {
        const char* name;
        const char* note;
        const cusim::LaunchConfig* cfg;
        const KernelSpec* spec;
        const std::function<void()> reset;
    };
    const std::vector<Case> cases = {
        {"crunch", "shared tile, 2 barriers, 64 FMADs/thread", &shared_cfg, &crunch,
         no_reset},
        {"diverge", "24 data-dependent branch rounds, asymmetric sides", &plain_cfg,
         &diverge, reseed},
        {"nobarrier", "96 FMADs + 1 write, no __syncthreads", &plain_cfg, &nobarrier,
         no_reset},
    };

    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    std::vector<Variant> variants;
    bool all_identical = true;

    for (const Case& c : cases) {
        Variant var;
        var.name = c.name;
        var.note = c.note;

        // Serial thread-engine reference: the oracle every other cell of
        // this variant's matrix must reproduce bit-for-bit.
        cusim::LaunchStats reference{};
        (void)measure(dev, *c.cfg, *c.spec, c.name, c.reset,
                      cusim::EngineMode::Thread, 1, nullptr, &reference);

        double base_rate = 0.0;
        for (const cusim::EngineMode mode :
             {cusim::EngineMode::Thread, cusim::EngineMode::Warp}) {
            for (const unsigned t : thread_counts) {
                Sample s = measure(dev, *c.cfg, *c.spec, c.name, c.reset, mode, t,
                                   &reference, nullptr);
                if (mode == cusim::EngineMode::Thread && t == 1) {
                    base_rate = s.steps_per_s;
                }
                s.speedup = s.steps_per_s / base_rate;
                all_identical = all_identical && s.stats_identical;
                var.samples.push_back(s);
                std::printf("%-9s %-6s threads=%u  %9.1f steps/s  speedup %5.2fx  stats %s\n",
                            c.name, s.engine, t, s.steps_per_s, s.speedup,
                            s.stats_identical ? "bit-identical" : "MISMATCH");
            }
        }
        variants.push_back(std::move(var));
    }

    // Optional profiled pass: a fixed serial crunch sequence under each
    // engine. The reports' modelled device times must diff clean; host wall
    // seconds are real time and excluded from cupp_prof's diffable slice.
    if (!prof_prefix.empty()) {
        for (const cusim::EngineMode mode :
             {cusim::EngineMode::Thread, cusim::EngineMode::Warp}) {
            const std::string path =
                prof_prefix +
                (mode == cusim::EngineMode::Warp ? ".warp.json" : ".thread.json");
            cusim::set_engine_mode(mode);
            cusim::BlockPool::set_threads(1);
            cusim::prof::reset();
            cusim::prof::enable(path);
            for (int i = 0; i < 5; ++i) (void)dev.launch(shared_cfg, crunch, "crunch");
            cusim::prof::disable();
            if (!cusim::prof::write_report(path)) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                return 1;
            }
            cusim::prof::reset();
            cusim::BlockPool::set_threads(0);
            cusim::clear_engine_mode();
            std::printf("wrote %s\n", path.c_str());
        }
    }

    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"parallel_engine\",\n");
    std::fprintf(f, "  \"grid\": [%u, 1, 1],\n", kGridX);
    std::fprintf(f, "  \"block\": [%u, 1, 1],\n", kBlockX);
    std::fprintf(f, "  \"steps_per_measurement\": %d,\n", kSteps);
    std::fprintf(f, "  \"host_hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"speedup_baseline\": \"thread engine at 1 sim thread, per variant\",\n");
    std::fprintf(f, "  \"variants\": [\n");
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const Variant& var = variants[vi];
        std::fprintf(f, "    {\"kernel\": \"%s\", \"note\": \"%s\", \"results\": [\n",
                     var.name, var.note);
        for (std::size_t i = 0; i < var.samples.size(); ++i) {
            const Sample& s = var.samples[i];
            std::fprintf(f,
                         "      {\"engine\": \"%s\", \"sim_threads\": %u, "
                         "\"steps_per_s\": %.1f, \"speedup_vs_serial_thread\": %.2f, "
                         "\"stats_bit_identical\": %s}%s\n",
                         s.engine, s.threads, s.steps_per_s, s.speedup,
                         s.stats_identical ? "true" : "false",
                         i + 1 < var.samples.size() ? "," : "");
        }
        std::fprintf(f, "    ]}%s\n", vi + 1 < variants.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: stats diverged from the serial thread engine\n");
        return 1;
    }
    return 0;
}
