// Perf trajectory of the parallel block engine (wall-clock).
//
// Unlike the figure harnesses, which report *simulated* time, this binary
// measures how fast the host pushes a multi-block grid through cusim at
// different engine thread counts (BlockPool), verifies the LaunchStats stay
// bit-identical to the serial run, and writes the results as JSON — the
// repo's perf trajectory artifact (BENCH_parallel_engine.json).
//
// Usage: bench_parallel_engine [output.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cusim/block_pool.hpp"
#include "cusim/device.hpp"
#include "cusim/engine.hpp"
#include "cusim/kernel_task.hpp"
#include "cusim/thread_ctx.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

// Compute-heavy block: a shared-memory tile, two barrier episodes and a
// register-resident arithmetic loop per thread — enough work per block that
// the engine (not the launch bookkeeping) dominates.
KernelTask crunch_kernel(ThreadCtx& ctx, cusim::DevicePtr<float> out, std::uint32_t n) {
    auto tile = ctx.shared_array<float>(ctx.block_dim().x);
    const std::uint32_t tid = ctx.thread_idx().x;
    tile.write(ctx, tid, static_cast<float>(ctx.global_id()));
    co_await ctx.syncthreads();
    float acc = tile.read(ctx, (tid + 1) % ctx.block_dim().x);
    for (int i = 0; i < 64; ++i) {
        ctx.charge(cusim::Op::FMad);
        acc = acc * 1.000001f + 0.5f;
    }
    co_await ctx.syncthreads();
    const std::uint64_t gid = ctx.global_id();
    if (gid < n) out.write(ctx, gid, acc);
    co_return;
}

struct Sample {
    unsigned threads = 0;
    double steps_per_s = 0.0;
    double speedup = 0.0;
    bool stats_identical = false;
};

bool same_stats(const cusim::LaunchStats& a, const cusim::LaunchStats& b) {
    return a.blocks == b.blocks && a.threads == b.threads && a.warps == b.warps &&
           a.compute_cycles == b.compute_cycles && a.stall_cycles == b.stall_cycles &&
           a.bytes_read == b.bytes_read && a.bytes_written == b.bytes_written &&
           a.divergent_events == b.divergent_events &&
           a.branch_evaluations == b.branch_evaluations &&
           a.syncthreads_count == b.syncthreads_count &&
           a.device_seconds == b.device_seconds;
}

}  // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_parallel_engine.json";

    constexpr unsigned kGridX = 64;
    constexpr unsigned kBlockX = 128;
    constexpr std::uint32_t kN = kGridX * kBlockX;
    const cusim::LaunchConfig cfg{cusim::dim3{kGridX}, cusim::dim3{kBlockX},
                                  kBlockX * sizeof(float)};

    cusim::Device dev(cusim::g80_properties());
    const cusim::DevicePtr<float> out = dev.malloc_n<float>(kN);

    const auto entry = [&](ThreadCtx& ctx) { return crunch_kernel(ctx, out, kN); };

    auto run_steps = [&](int steps) {
        cusim::LaunchStats last{};
        for (int i = 0; i < steps; ++i) last = dev.launch(cfg, entry, "crunch");
        return last;
    };

    // Serial reference: both the baseline rate and the stats every other
    // thread count must reproduce bit-for-bit.
    cusim::BlockPool::set_threads(1);
    (void)run_steps(2);  // warmup (frame caches, shadow maps)
    const cusim::LaunchStats serial_stats = run_steps(1);

    // Enough steps that the per-step time is well above timer noise.
    constexpr int kSteps = 20;
    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    std::vector<Sample> samples;
    double serial_rate = 0.0;

    for (const unsigned t : thread_counts) {
        cusim::BlockPool::set_threads(t);
        (void)run_steps(2);  // warm the pool + per-worker scratch
        const auto t0 = std::chrono::steady_clock::now();
        const cusim::LaunchStats stats = run_steps(kSteps);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();

        Sample s;
        s.threads = t;
        s.steps_per_s = kSteps / secs;
        s.stats_identical = same_stats(stats, serial_stats);
        if (t == 1) serial_rate = s.steps_per_s;
        s.speedup = s.steps_per_s / serial_rate;
        samples.push_back(s);
        std::printf("threads=%u  %8.1f steps/s  speedup %.2fx  stats %s\n", t,
                    s.steps_per_s, s.speedup,
                    s.stats_identical ? "bit-identical" : "MISMATCH");
    }
    cusim::BlockPool::set_threads(0);

    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"parallel_engine\",\n");
    std::fprintf(f, "  \"kernel\": \"crunch (shared tile, 2 barriers, 64 FMADs/thread)\",\n");
    std::fprintf(f, "  \"grid\": [%u, 1, 1],\n", kGridX);
    std::fprintf(f, "  \"block\": [%u, 1, 1],\n", kBlockX);
    std::fprintf(f, "  \"steps_per_measurement\": %d,\n", kSteps);
    std::fprintf(f, "  \"host_hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        std::fprintf(f,
                     "    {\"sim_threads\": %u, \"steps_per_s\": %.1f, "
                     "\"speedup_vs_serial\": %.2f, \"stats_bit_identical\": %s}%s\n",
                     s.threads, s.steps_per_s, s.speedup,
                     s.stats_identical ? "true" : "false",
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);

    for (const Sample& s : samples) {
        if (!s.stats_identical) {
            std::fprintf(stderr, "FAIL: stats diverged at %u threads\n", s.threads);
            return 1;
        }
    }
    return 0;
}
