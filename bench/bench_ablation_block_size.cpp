// Ablation — thread-block size for the version-5 simulation kernel.
//
// The thesis fixes threads_per_block at a value where "the number of agents
// has to be a multiply of threads_per_block" (§6.2.1) but never sweeps it.
// The trade-off the sweep exposes: bigger blocks mean fewer shared-memory
// tile loads per candidate (the tile covers more agents per __syncthreads
// round) but fewer resident blocks per multiprocessor (register limit), and
// at 512 threads a single block monopolises an MP.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusteer/kernels.hpp"

namespace {

// A block-size-parametric variant of the v2 neighbor-search kernel: the
// production kernels take the block size from the launch geometry, so this
// just relaunches them with different geometry.
void run_with_block(std::uint32_t agents, unsigned tpb) {
    using namespace gpusteer;
    steer::WorldSpec spec;
    spec.agents = agents;
    const auto flock = steer::make_flock(spec);

    cupp::device d;
    cupp::vector<steer::Vec3> positions;
    for (const auto& a : flock) positions.push_back(a.position);
    cupp::vector<std::uint32_t> result(std::uint64_t{agents} * 7);
    cupp::vector<std::uint32_t> counts(agents);

    using NsF = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, float, DU32&, DU32&,
                                      ThinkMap);
    cupp::kernel k(static_cast<NsF>(ns_shared_kernel), cusim::dim3{agents / tpb},
                   cusim::dim3{tpb});
    k.set_shared_bytes(tpb * sizeof(steer::Vec3));
    k(d, positions, spec.search_radius, result, counts, ThinkMap{});

    const auto& s = k.last_stats();
    std::printf("%8u %8u %14.3f %12u %16.2f\n", agents, tpb, s.device_seconds * 1e3,
                s.resident_blocks_per_mp, s.bytes_read / 1048576.0);
}

}  // namespace

int main() {
    bench::print_header("Ablation — thread-block size for the shared-memory NS kernel",
                        "the thesis uses 128 threads/block; the sweep shows why");
    std::printf("%8s %8s %14s %12s %16s\n", "agents", "tpb", "kernel ms", "blocks/MP",
                "MiB read");
    for (const unsigned tpb : {32u, 64u, 128u, 256u, 512u}) {
        run_with_block(4096, tpb);
    }
    return 0;
}
