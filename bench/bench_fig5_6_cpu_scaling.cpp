// Figure 5.6 — CPU Boids scaling with and without think frequency.
//
// The thesis: without think frequency the update rate collapses with the
// O(n^2) all-agents neighbor search; with a 1/10 think frequency the curve
// is lifted by a constant factor (the complexity is unchanged).
#include <cstdio>

#include "bench_common.hpp"

int main() {
    bench::print_header(
        "Figure 5.6 — CPU updates/s vs. agents, with/without think frequency",
        "O(n^2) collapse without think frequency; ~10x lift with 1/10 thinking");

    std::printf("%8s %18s %18s %8s\n", "agents", "no-think ups", "think-1/10 ups", "lift");
    for (const std::uint32_t agents : bench::agent_sweep()) {
        steer::WorldSpec spec;
        spec.agents = agents;
        steer::CpuBoidsPlugin plugin;
        const auto no_think = bench::measure(plugin, spec, bench::steps_for(agents));

        steer::WorldSpec think_spec = spec.with_think(10);
        // Average over a full think period so every phase contributes.
        const auto think = bench::measure(plugin, think_spec, 10, 0);

        std::printf("%8u %18.2f %18.2f %7.1fx\n", agents, no_think.updates_per_s,
                    think.updates_per_s, think.updates_per_s / no_think.updates_per_s);
    }
    return 0;
}
