// Figure 1.1 — CPU vs GPU floating-point performance.
//
// The introduction: "Both memory bandwidth and floating-point performance
// of graphics processing units (GPUs) outrange their CPU counterparts
// roughly by a factor of 10." The figure plots NVIDIA's marketing curve;
// what is reproducible is the 2007 end point: the G80-class part vs. the
// Athlon 64 3700+, from the two cost models plus an achieved-FLOPs
// measurement of a pure-arithmetic kernel.
#include <cstdio>

#include "bench_common.hpp"
#include "cusim/cusim.hpp"

namespace {

constexpr int kFlopsPerThread = 4096;

cusim::KernelTask flops_kernel(cusim::ThreadCtx& ctx) {
    // Dependent FMAD chain, the standard peak-rate microkernel.
    for (int i = 0; i < kFlopsPerThread / 2; ++i) ctx.charge(cusim::Op::FMad);
    co_return;
}

}  // namespace

int main() {
    bench::print_header("Figure 1.1 — CPU vs GPU floating-point performance",
                        "GPU outranges the CPU roughly by a factor of 10 (2007 endpoint)");

    const cusim::CostModel gpu;
    const steer::CpuCostModel cpu;

    // Peak rates from the machine models. One FMAD = 2 FLOPs; a warp
    // retires one FMAD per 4 cycles on 8 processors -> 2 FLOP/cycle/processor...
    // expressed per device: processors * clock * 2 / (cycles per warp-op / warp size).
    const double gpu_peak =
        gpu.multiprocessors * cusim::kProcessorsPerMP * gpu.core_clock_hz * 2.0 / 1e9;
    // Scalar SSE-less FPU: ~1 FLOP per cycle.
    const double cpu_peak = cpu.clock_hz * 1.0 / 1e9;

    // Achieved: run the microkernel, convert simulated seconds to FLOPs.
    cusim::Device dev;
    cusim::LaunchConfig cfg{cusim::dim3{96}, cusim::dim3{256}};
    const auto stats = dev.launch(cfg, [](cusim::ThreadCtx& ctx) { return flops_kernel(ctx); });
    const double flops = static_cast<double>(cfg.total_threads()) * kFlopsPerThread;
    const double gpu_achieved = flops / stats.device_seconds / 1e9;

    std::printf("%-28s %12s %12s\n", "", "GFLOP/s", "GB/s");
    std::printf("%-28s %12.1f %12.1f\n", "GPU (GeForce 8800 GTS)", gpu_peak,
                gpu.mem_bandwidth_bytes_per_s / 1e9);
    std::printf("%-28s %12.1f %12.1f\n", "CPU (Athlon 64 3700+)", cpu_peak, 6.4);
    std::printf("%-28s %11.1fx %11.1fx\n", "GPU / CPU", gpu_peak / cpu_peak,
                gpu.mem_bandwidth_bytes_per_s / 1e9 / 6.4);
    std::printf("\nachieved on the simulated device (FMAD chain, 24576 threads): "
                "%.1f GFLOP/s (%.0f%% of peak)\n",
                gpu_achieved, 100.0 * gpu_achieved / gpu_peak);
    std::printf("\n(Fig. 1.1's 'factor of 10' compares against contemporary high-end\n"
                " SIMD multicores (~20-35 GFLOP/s); the thesis baseline is a scalar\n"
                " single-core Athlon, hence the larger compute gap here. The memory-\n"
                " bandwidth factor of 10 holds directly.)\n");
    return 0;
}
