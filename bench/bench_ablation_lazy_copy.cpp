// Ablation — lazy memory copying (§4.6).
//
// "Using this concept, the developer may pass a vector directly to one or
// multiple kernels, without the need to think about how memory transfers
// may be minimized, since the memory is only transferred if it is really
// needed."
//
// A chain of K kernels runs over one vector. With lazy copying the data
// crosses the bus twice in total (up before the first kernel, down at the
// final host read); an eager scheme pays 2*K transfers. Eager behaviour is
// emulated by touching the vector on the host between the kernels.
#include <cstdio>

#include "bench_common.hpp"
#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask scale_kernel(ThreadCtx& ctx, cupp::deviceT::vector<float>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) v.write(ctx, gid, v.read(ctx, gid) * 1.000001f);
    co_return;
}

}  // namespace

int main() {
    constexpr std::uint32_t kElems = 256 * 1024;
    constexpr int kKernels = 8;

    bench::print_header("Ablation — lazy memory copying (§4.6)",
                        "a kernel chain transfers the vector twice, not 2x per kernel");

    using K = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<float>&);
    const cusim::dim3 grid{kElems / 256}, block{256};

    for (const bool lazy : {true, false}) {
        cupp::device d;
        auto& sim = d.sim();
        cupp::vector<float> data(kElems, 1.0f);
        cupp::kernel k(static_cast<K>(scale_kernel), grid, block);

        sim.reset_transfer_stats();
        sim.reset_clock();
        const double t0 = sim.host_time();
        for (int i = 0; i < kKernels; ++i) {
            k(d, data);
            if (!lazy) {
                // An eager framework would reflect the data back to the
                // host after every kernel; force that by touching it.
                (void)static_cast<float>(data[0]);
                data[0] = static_cast<float>(data[0]);  // and re-dirtying it
            }
        }
        const float final_value = data[0];  // final host read
        sim.synchronize();

        std::printf("%-18s %10d kernels   %10.2f MiB to dev   %10.2f MiB to host   "
                    "%8.3f ms   (value %.5f)\n",
                    lazy ? "lazy (CuPP)" : "eager (emulated)", kKernels,
                    sim.bytes_to_device() / 1048576.0, sim.bytes_to_host() / 1048576.0,
                    1e3 * (sim.host_time() - t0), final_value);
    }
    return 0;
}
