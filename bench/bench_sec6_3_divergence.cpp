// §6.3.1 — the SIMD branching issue, measured.
//
// The thesis could only speculate ("no profiling tool is available offering
// this information"); the simulator exposes the counters. Two claims to
// check:
//  * the modification kernel's branches are harmless, the neighbor-search
//    branches are the divergent ones;
//  * divergence grows with agent density ("the lost performance increases
//    with the amount of added agents, since with more agents the number of
//    agents within the neighbor search radius increases").
// As a reference point, an n-body-style kernel without data-dependent
// branches (NVIDIA's comparison system, [NHP07]) shows zero divergence.
#include <cstdio>

#include "bench_common.hpp"
#include "cupp/cupp.hpp"

namespace {

// Branch-free n-body force accumulation over shared-memory tiles — the
// structure of NVIDIA's GPU Gems 3 kernel.
cusim::KernelTask nbody_kernel(cusim::ThreadCtx& ctx,
                               const cupp::deviceT::vector<steer::Vec3>& positions,
                               cupp::deviceT::vector<steer::Vec3>& forces) {
    const std::uint32_t n = positions.size();
    const std::uint32_t tpb = ctx.block_dim().x;
    const std::uint32_t tid = ctx.thread_idx().x;
    const std::uint64_t gid = ctx.global_id();
    auto tile = ctx.shared_array<steer::Vec3>(tpb);
    const steer::Vec3 my = gid < n ? positions.read(ctx, gid) : steer::kZero;
    steer::Vec3 force = steer::kZero;
    for (std::uint32_t base = 0; base < n; base += tpb) {
        tile.write(ctx, tid, positions.read(ctx, base + tid));
        co_await ctx.syncthreads();
        for (std::uint32_t i = 0; i < tpb; ++i) {
            const steer::Vec3 d = tile.read(ctx, i) - my;
            // Softened inverse-square law: no branches at all.
            const float dist2 = d.length_squared() + 0.01f;
            ctx.charge(cusim::Op::FMad, 6);
            ctx.charge(cusim::Op::RSqrt, 1);
            force += d / (dist2 * std::sqrt(dist2));
        }
        co_await ctx.syncthreads();
    }
    if (gid < n) forces.write(ctx, gid, force);
    co_return;
}

}  // namespace

int main() {
    using gpusteer::GpuBoidsPlugin;
    using gpusteer::Version;

    bench::print_header("§6.3.1 — SIMD branch divergence in the Boids kernels",
                        "divergence grows with density; n-body reference has none");

    std::printf("%8s %20s %20s %12s\n", "agents", "branch evals", "divergent steps",
                "div. rate");
    for (const std::uint32_t agents : {1024u, 4096u, 16384u}) {
        steer::WorldSpec spec;
        spec.agents = agents;
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
        gpu.open(spec);
        gpu.step();
        std::printf("%8u %20llu %20llu %11.3f%%\n", agents,
                    static_cast<unsigned long long>(gpu.branch_evaluations()),
                    static_cast<unsigned long long>(gpu.divergent_warp_steps()),
                    100.0 * static_cast<double>(gpu.divergent_warp_steps()) /
                        static_cast<double>(gpu.branch_evaluations() / cusim::kWarpSize));
        gpu.close();
    }

    // The branch-free reference kernel.
    cupp::device d;
    steer::WorldSpec spec;
    spec.agents = 4096;
    const auto flock = steer::make_flock(spec);
    cupp::vector<steer::Vec3> positions;
    for (const auto& a : flock) positions.push_back(a.position);
    cupp::vector<steer::Vec3> forces(spec.agents, steer::kZero);
    using F = cusim::KernelTask (*)(cusim::ThreadCtx&,
                                    const cupp::deviceT::vector<steer::Vec3>&,
                                    cupp::deviceT::vector<steer::Vec3>&);
    cupp::kernel nbody(static_cast<F>(nbody_kernel),
                       cusim::dim3{spec.agents / gpusteer::kThreadsPerBlock},
                       cusim::dim3{gpusteer::kThreadsPerBlock});
    nbody.set_shared_bytes(gpusteer::kThreadsPerBlock * sizeof(steer::Vec3));
    nbody(d, positions, forces);
    std::printf("%8s %20llu %20llu %12s   (n-body reference)\n", "4096",
                static_cast<unsigned long long>(nbody.last_stats().branch_evaluations),
                static_cast<unsigned long long>(nbody.last_stats().divergent_events),
                "0.000%");
    return 0;
}
