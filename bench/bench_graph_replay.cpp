// Graph replay vs eager re-enqueue: host-side launch overhead.
//
// Captures a chain of n compute-heavy kernel launches on one stream into a
// cusim graph and compares the host-side cost of replaying the whole DAG
// (one graph_launch) against re-enqueuing the same n launches eagerly. On
// the modelled clock the contrast is exact: eager enqueue charges
// launch_overhead_s per op, replay charges it once for the entire graph,
// so the modelled ratio equals the node count. The wall-clock columns
// show the real host savings from skipping per-op argument transform,
// validity checks and memcheck-shadow setup on replay. Each size also
// verifies the replayed buffer is bit-identical to the eager result.
// Writes BENCH_graph_replay.json and exits non-zero if the 64-node graph
// fails to cut modelled host overhead by at least 2x (it should be ~64x)
// or any size diverges from the eager observables.
//
// Usage: bench_graph_replay [output.json] [--timeline <prefix>]
//   --timeline additionally runs the 64-node chain once eagerly and once
//   via replay on fresh devices with the timeline recorder armed and
//   writes <prefix>.eager.json / <prefix>.replay.json — the device-side
//   schedule must diff clean (cupp_timeline --diff --threshold 0): replay
//   changes when the host is busy, never what the device executes.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "cusim/device.hpp"
#include "cusim/graph.hpp"
#include "cusim/kernel_task.hpp"
#include "cusim/thread_ctx.hpp"
#include "cusim/timeline.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

constexpr cusim::LaunchConfig kCfg{cusim::dim3{4}, cusim::dim3{128}};
constexpr unsigned kThreads = 4 * 128;
constexpr int kReps = 5;

// Pure compute with a deterministic per-thread output: every launch has an
// identical modelled duration (>> launch_overhead_s) and the buffer
// contents depend only on the grid, so eager and replayed runs must match
// bit for bit.
KernelTask burn_kernel(ThreadCtx& ctx, cusim::DevicePtr<float> out) {
    ctx.charge(cusim::Op::FMad, 20'000);
    const unsigned gid = ctx.global_id();
    out.write(ctx, gid, static_cast<float>(gid) + 1.0f);
    co_return;
}

struct Sample {
    unsigned nodes = 0;
    double eager_host_s = 0.0;   // modelled host seconds to enqueue n ops
    double replay_host_s = 0.0;  // modelled host seconds for one graph_launch
    double model_ratio = 0.0;
    double eager_wall_us = 0.0;   // best-of-kReps wall clock, enqueue only
    double replay_wall_us = 0.0;  // best-of-kReps wall clock, one graph_launch
    double wall_ratio = 0.0;
    bool bit_identical = false;
};

double wall_us_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

Sample measure(unsigned nodes) {
    Sample s;
    s.nodes = nodes;

    cusim::Device dev(cusim::g80_properties());
    const cusim::StreamId stream = dev.stream_create();
    const auto out = dev.malloc_n<float>(kThreads);
    const std::vector<float> zeros(kThreads, 0.0f);
    const auto enqueue_chain = [&] {
        for (unsigned i = 0; i < nodes; ++i) {
            dev.launch_async(
                kCfg, [&](ThreadCtx& ctx) { return burn_kernel(ctx, out); },
                "burn", stream);
        }
    };

    // Eager: n launch_async calls per repetition; the sync that executes
    // the chain sits outside the timed window (the device-side schedule is
    // identical either way — only host enqueue cost is under test).
    dev.upload(out, std::span<const float>(zeros));
    for (int rep = 0; rep < kReps; ++rep) {
        const double h0 = dev.host_time();
        const auto t0 = std::chrono::steady_clock::now();
        enqueue_chain();
        const double wall = wall_us_since(t0);
        if (rep == 0) s.eager_host_s = dev.host_time() - h0;
        if (rep == 0 || wall < s.eager_wall_us) s.eager_wall_us = wall;
        dev.synchronize();
    }
    std::vector<float> eager_result(kThreads);
    dev.download(std::span<float>(eager_result), out);

    // Capture the same chain and replay it: one graph_launch per rep.
    dev.stream_begin_capture(stream);
    enqueue_chain();
    const cusim::Graph graph = dev.stream_end_capture(stream);
    const cusim::GraphExec exec = dev.graph_instantiate(graph);

    dev.upload(out, std::span<const float>(zeros));
    for (int rep = 0; rep < kReps; ++rep) {
        const double h0 = dev.host_time();
        const auto t0 = std::chrono::steady_clock::now();
        dev.graph_launch(exec);
        const double wall = wall_us_since(t0);
        if (rep == 0) s.replay_host_s = dev.host_time() - h0;
        if (rep == 0 || wall < s.replay_wall_us) s.replay_wall_us = wall;
        dev.synchronize();
    }
    std::vector<float> replay_result(kThreads);
    dev.download(std::span<float>(replay_result), out);

    s.model_ratio = s.eager_host_s / s.replay_host_s;
    s.wall_ratio = s.eager_wall_us / s.replay_wall_us;
    s.bit_identical = std::memcmp(eager_result.data(), replay_result.data(),
                                  kThreads * sizeof(float)) == 0;
    return s;
}

// One 64-node chain per mode with the timeline recorder armed, on a fresh
// device each so both reports share the same origin. Replay compresses
// host enqueue time but must leave the device-side schedule untouched.
bool write_timelines(const std::string& prefix) {
    for (const bool replay : {false, true}) {
        const std::string path = prefix + (replay ? ".replay.json" : ".eager.json");
        cusim::timeline::reset();
        cusim::timeline::enable();
        {
            cusim::Device dev(cusim::g80_properties());
            const cusim::StreamId stream = dev.stream_create();
            const auto out = dev.malloc_n<float>(kThreads);
            const auto enqueue_chain = [&] {
                for (unsigned i = 0; i < 64; ++i) {
                    dev.launch_async(
                        kCfg,
                        [&](ThreadCtx& ctx) { return burn_kernel(ctx, out); },
                        "burn", stream);
                }
            };
            if (replay) {
                dev.stream_begin_capture(stream);
                enqueue_chain();
                const cusim::Graph graph = dev.stream_end_capture(stream);
                const cusim::GraphExec exec = dev.graph_instantiate(graph);
                dev.graph_launch(exec);
            } else {
                enqueue_chain();
            }
            dev.synchronize();
        }
        const bool ok = cusim::timeline::write_report(path);
        cusim::timeline::reset();
        if (!ok) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::printf("wrote %s\n", path.c_str());
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const char* out_path = "BENCH_graph_replay.json";
    std::string timeline_prefix;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
            timeline_prefix = argv[++i];
        } else {
            out_path = argv[i];
        }
    }

    std::vector<Sample> samples;
    for (const unsigned n : {1u, 8u, 64u, 512u}) {
        const Sample s = measure(n);
        samples.push_back(s);
        std::printf(
            "nodes=%3u  host overhead %9.6f s eager vs %9.6f s replay "
            "(%6.1fx)  wall %8.1f us vs %8.1f us (%5.1fx)  %s\n",
            s.nodes, s.eager_host_s, s.replay_host_s, s.model_ratio,
            s.eager_wall_us, s.replay_wall_us, s.wall_ratio,
            s.bit_identical ? "bit-identical" : "DIVERGED");
    }

    if (!timeline_prefix.empty() && !write_timelines(timeline_prefix)) return 1;

    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"graph_replay\",\n");
    std::fprintf(f, "  \"kernel\": \"burn (20k FMADs/thread, 4x128 grid)\",\n");
    std::fprintf(f, "  \"reps\": %d,\n", kReps);
    std::fprintf(f,
                 "  \"host_overhead\": \"modelled host seconds charged while "
                 "enqueuing: launch_overhead_s per eager op, once per "
                 "graph_launch\",\n");
    std::fprintf(f,
                 "  \"wall_clock\": \"best-of-%d real enqueue time; replay "
                 "skips per-op transform, validation and memcheck-shadow "
                 "setup\",\n",
                 kReps);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        std::fprintf(f,
                     "    {\"nodes\": %u, \"eager_host_s\": %.9f, "
                     "\"replay_host_s\": %.9f, \"model_ratio\": %.3f, "
                     "\"eager_wall_us\": %.1f, \"replay_wall_us\": %.1f, "
                     "\"wall_ratio\": %.2f, \"bit_identical\": %s}%s\n",
                     s.nodes, s.eager_host_s, s.replay_host_s, s.model_ratio,
                     s.eager_wall_us, s.replay_wall_us, s.wall_ratio,
                     s.bit_identical ? "true" : "false",
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);

    // The whole point: replay amortises the host launch overhead across
    // the DAG. The 64-node graph must cut it at least 2x (modelled it is
    // exactly node_count), and every size must reproduce the eager bytes.
    int status = 0;
    for (const Sample& s : samples) {
        if (!s.bit_identical) {
            std::fprintf(stderr, "FAIL: replay diverged at %u nodes\n", s.nodes);
            status = 1;
        }
        if (s.nodes == 64 && s.model_ratio < 2.0) {
            std::fprintf(stderr,
                         "FAIL: 64-node replay saved only %.2fx host overhead\n",
                         s.model_ratio);
            status = 1;
        }
    }
    return status;
}
