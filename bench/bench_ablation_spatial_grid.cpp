// Ablation — the future-work spatial data structure (§7).
//
// "Spatial data structures could improve the neighbor search performance.
// Data structures must be constructed at the host [...] and then be
// transferred to the GPU." This harness compares the thesis' brute-force
// shared-memory neighbor search (version 2) against the grid-accelerated
// kernel: device time drops from O(n^2) to ~O(n * density), at the price of
// the host-side build and the CSR transfer each step.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusteer/grid_kernels.hpp"

int main() {
    using namespace gpusteer;
    using gpusteer::GpuBoidsPlugin;
    using gpusteer::Version;
    using steer::NeighborList;
    using steer::Vec3;

    bench::print_header("Ablation — grid-accelerated neighbor search (future work §7)",
                        "host-built grid beats brute force at scale despite the transfer");

    std::printf("%8s %16s %16s %12s %16s\n", "agents", "brute-force ms", "grid ms",
                "speedup", "grid host+xfer ms");

    for (const std::uint32_t agents : bench::agent_sweep()) {
        steer::WorldSpec spec;
        spec.agents = agents;
        const auto flock = steer::make_flock(spec);
        std::vector<Vec3> host_positions(flock.size());
        for (std::size_t i = 0; i < flock.size(); ++i) host_positions[i] = flock[i].position;

        cupp::device d;
        cupp::vector<Vec3> positions(host_positions.begin(), host_positions.end());
        cupp::vector<std::uint32_t> result(std::uint64_t{agents} * NeighborList::kCapacity);
        cupp::vector<std::uint32_t> counts(agents);

        // Brute force (version-2 kernel).
        using NsF = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, float, DU32&,
                                          DU32&, ThinkMap);
        cupp::kernel brute(static_cast<NsF>(ns_shared_kernel),
                           cusim::dim3{agents / kThreadsPerBlock},
                           cusim::dim3{kThreadsPerBlock});
        brute.set_shared_bytes(kThreadsPerBlock * sizeof(Vec3));
        brute(d, positions, spec.search_radius, result, counts, ThinkMap{});
        const double brute_ms = brute.last_stats().device_seconds * 1e3;

        // Grid: host build + CSR transfer + device lookup.
        auto& sim = d.sim();
        sim.synchronize();
        const double t0 = sim.host_time();
        GridUpload upload;
        upload.build(host_positions, spec.search_radius, spec.world_radius);
        // Host build cost: ~12 cycles per agent (counting sort) on the
        // Athlon model.
        steer::CpuCostModel cpu;
        sim.advance_host(cpu.seconds(12.0 * agents + 2.0 * upload.spec().cells()));

        using GridF = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, const DU32&,
                                            const DU32&, steer::GridSpec, float, DU32&,
                                            DU32&, ThinkMap);
        cupp::kernel grid_k(static_cast<GridF>(ns_grid_kernel),
                            cusim::dim3{(agents + kThreadsPerBlock - 1) / kThreadsPerBlock},
                            cusim::dim3{kThreadsPerBlock});
        grid_k(d, positions, upload.cell_start(), upload.entries(), upload.spec(),
               spec.search_radius, result, counts, ThinkMap{});
        const double grid_dev_ms = grid_k.last_stats().device_seconds * 1e3;
        sim.synchronize();
        const double grid_total_ms = (sim.host_time() - t0) * 1e3;

        std::printf("%8u %16.3f %16.3f %11.1fx %16.3f\n", agents, brute_ms, grid_dev_ms,
                    brute_ms / grid_total_ms, grid_total_ms - grid_dev_ms);
    }

    // --- the full update pipelines: version 5 (brute force) vs version 6
    //     (host-built grid, incl. the per-step positions download and CSR
    //     upload it requires) ---
    std::printf("\n%8s %16s %16s %12s   (full update stage)\n", "agents", "v5 ms", "v6 ms",
                "speedup");
    for (const std::uint32_t agents : bench::agent_sweep()) {
        steer::WorldSpec spec;
        spec.agents = agents;
        GpuBoidsPlugin v5(Version::V5_FullUpdateOnDevice);
        const auto r5 = bench::measure(v5, spec, bench::steps_for(agents));
        GpuBoidsPlugin v6(Version::V6_GridNeighborSearch);
        const auto r6 = bench::measure(v6, spec, bench::steps_for(agents));
        std::printf("%8u %16.3f %16.3f %11.2fx\n", agents, r5.mean.update() * 1e3,
                    r6.mean.update() * 1e3, r5.mean.update() / r6.mean.update());
    }
    return 0;
}
