#!/usr/bin/env sh
# Runs the wall-clock engine benches serial vs. threaded and writes the
# perf trajectory artifacts BENCH_*.json plus per-bench profiler reports
# (BENCH_*_prof.json, via CUPP_PROF) and timeline reports
# (BENCH_*_timeline.json, via CUPP_TIMELINE — render/diff with
# tools/cupp_timeline).
#
# Usage: bench/run_benches.sh [build-dir] [output.json]
#
# The figure/table harnesses (bench_fig*, bench_table*, bench_ablation*)
# report *simulated* time and are unaffected by CUPP_SIM_THREADS; this
# script covers the two binaries that measure the host-side engine itself.
#
# Every bench runs even if an earlier one fails; the script exits non-zero
# if any did. Stale artifacts are removed up front so a failed bench can
# never leave last run's JSON lying around looking fresh.
set -u

BUILD=${1:-build}
OUT=${2:-BENCH_parallel_engine.json}

if [ ! -x "$BUILD/bench/bench_parallel_engine" ]; then
    echo "error: $BUILD/bench/bench_parallel_engine not built" >&2
    echo "       (cmake -B $BUILD -S . && cmake --build $BUILD -j)" >&2
    exit 1
fi

rm -f "$OUT" BENCH_stream_overlap.json BENCH_serve_soak.json \
    BENCH_graph_replay.json \
    BENCH_throughput_prof.json BENCH_stream_overlap_prof.json \
    BENCH_serve_soak_prof.json \
    BENCH_parallel_engine_prof.thread.json BENCH_parallel_engine_prof.warp.json \
    BENCH_throughput_timeline.json BENCH_stream_overlap_timeline.json \
    BENCH_graph_replay_timeline.eager.json BENCH_graph_replay_timeline.replay.json

STATUS=0

echo "== bench_simulator_throughput, CUPP_SIM_THREADS=1 (serial engine) =="
CUPP_SIM_THREADS=1 "$BUILD/bench/bench_simulator_throughput" \
    --benchmark_filter='BM_(BoidsStep|SaxpyThroughput|LaunchOverhead)' \
    --benchmark_min_time=0.2 || STATUS=1

echo ""
echo "== bench_simulator_throughput, CUPP_SIM_THREADS=4 (parallel engine) =="
CUPP_PROF=BENCH_throughput_prof.json \
CUPP_TIMELINE=BENCH_throughput_timeline.json \
CUPP_SIM_THREADS=4 "$BUILD/bench/bench_simulator_throughput" \
    --benchmark_filter='BM_(BoidsStep|SaxpyThroughput|LaunchOverhead)' \
    --benchmark_min_time=0.2 || STATUS=1

echo ""
echo "== bench_parallel_engine (engine x thread sweep + determinism check) =="
# No CUPP_PROF in the environment: the timed sweep measures the engine's
# disabled-path cost. The --prof pass afterwards records a fixed profiled
# sequence under each engine (BENCH_parallel_engine_prof.{thread,warp}.json)
# programmatically, outside the timed loop — cupp_prof --diff across the
# pair must show identical modelled device time.
"$BUILD/bench/bench_parallel_engine" "$OUT" --prof BENCH_parallel_engine_prof \
    || STATUS=1

echo ""
echo "== bench_stream_overlap (async streams on the modelled timeline) =="
CUPP_PROF=BENCH_stream_overlap_prof.json \
CUPP_TIMELINE=BENCH_stream_overlap_timeline.json \
    "$BUILD/bench/bench_stream_overlap" BENCH_stream_overlap.json || STATUS=1

echo ""
echo "== bench_graph_replay (captured replay vs eager re-enqueue) =="
# --timeline writes an eager/replay report pair; the device-side schedule
# (makespan + critical path) must diff clean at 0% — replay compresses
# host enqueue cost without touching what the device executes, so only
# the host lane's serialized/bubble totals may move.
"$BUILD/bench/bench_graph_replay" BENCH_graph_replay.json \
    --timeline BENCH_graph_replay_timeline || STATUS=1
"$BUILD/tools/cupp_timeline" --diff BENCH_graph_replay_timeline.eager.json \
    BENCH_graph_replay_timeline.replay.json --threshold 0 --device-only \
    || STATUS=1

echo ""
echo "== bench_serve_soak (cupp::serve closed loop on the modelled clock) =="
CUPP_PROF=BENCH_serve_soak_prof.json \
    "$BUILD/bench/bench_serve_soak" BENCH_serve_soak.json || STATUS=1

if [ "$STATUS" -ne 0 ]; then
    echo "run_benches: one or more benches FAILED" >&2
fi
exit "$STATUS"
