#!/usr/bin/env sh
# Runs the wall-clock engine benches serial vs. threaded and writes the
# perf trajectory artifact BENCH_parallel_engine.json.
#
# Usage: bench/run_benches.sh [build-dir] [output.json]
#
# The figure/table harnesses (bench_fig*, bench_table*, bench_ablation*)
# report *simulated* time and are unaffected by CUPP_SIM_THREADS; this
# script covers the two binaries that measure the host-side engine itself.
set -eu

BUILD=${1:-build}
OUT=${2:-BENCH_parallel_engine.json}

if [ ! -x "$BUILD/bench/bench_parallel_engine" ]; then
    echo "error: $BUILD/bench/bench_parallel_engine not built" >&2
    echo "       (cmake -B $BUILD -S . && cmake --build $BUILD -j)" >&2
    exit 1
fi

echo "== bench_simulator_throughput, CUPP_SIM_THREADS=1 (serial engine) =="
CUPP_SIM_THREADS=1 "$BUILD/bench/bench_simulator_throughput" \
    --benchmark_filter='BM_(BoidsStep|SaxpyThroughput|LaunchOverhead)' \
    --benchmark_min_time=0.2 || exit 1

echo ""
echo "== bench_simulator_throughput, CUPP_SIM_THREADS=4 (parallel engine) =="
CUPP_SIM_THREADS=4 "$BUILD/bench/bench_simulator_throughput" \
    --benchmark_filter='BM_(BoidsStep|SaxpyThroughput|LaunchOverhead)' \
    --benchmark_min_time=0.2 || exit 1

echo ""
echo "== bench_parallel_engine (thread sweep + determinism check) =="
"$BUILD/bench/bench_parallel_engine" "$OUT"

echo ""
echo "== bench_stream_overlap (async streams on the modelled timeline) =="
"$BUILD/bench/bench_stream_overlap" BENCH_stream_overlap.json
