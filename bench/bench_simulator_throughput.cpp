// Wall-clock performance of the simulator itself (google-benchmark).
//
// Unlike the figure harnesses, which report *simulated* time, this binary
// measures how fast the host machine pushes simulated work through cusim —
// useful for tracking regressions in the engine (coroutine scheduling,
// accounting hooks, allocator).
#include <benchmark/benchmark.h>

#include "cupp/cupp.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask empty_kernel(ThreadCtx&) { co_return; }

void BM_LaunchOverhead(benchmark::State& state) {
    cusim::Device dev(cusim::tiny_properties());
    const cusim::LaunchConfig cfg{cusim::dim3{static_cast<unsigned>(state.range(0))},
                                  cusim::dim3{128}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(dev.launch(cfg, [](ThreadCtx& ctx) { return empty_kernel(ctx); }));
    }
    state.SetItemsProcessed(state.iterations() * cfg.total_threads());
}
BENCHMARK(BM_LaunchOverhead)->Arg(1)->Arg(16)->Arg(64);

KernelTask saxpy_kernel(ThreadCtx& ctx, cupp::deviceT::vector<float>& y,
                        const cupp::deviceT::vector<float>& x, float a) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < y.size()) {
        ctx.charge(cusim::Op::FMad);
        y.write(ctx, gid, a * x.read(ctx, gid) + y.read(ctx, gid));
    }
    co_return;
}

void BM_SaxpyThroughput(benchmark::State& state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    cupp::device d;
    cupp::vector<float> x(n, 1.0f), y(n, 2.0f);
    using K = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<float>&,
                             const cupp::deviceT::vector<float>&, float);
    cupp::kernel k(static_cast<K>(saxpy_kernel), cusim::dim3{(n + 255) / 256},
                   cusim::dim3{256});
    for (auto _ : state) {
        k(d, y, x, 2.0f);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SaxpyThroughput)->Arg(1 << 12)->Arg(1 << 16);

void BM_BoidsStep(benchmark::State& state) {
    const auto agents = static_cast<std::uint32_t>(state.range(0));
    steer::WorldSpec spec;
    spec.agents = agents;
    gpusteer::GpuBoidsPlugin gpu(gpusteer::Version::V5_FullUpdateOnDevice);
    gpu.open(spec);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gpu.step());
    }
    state.SetItemsProcessed(state.iterations() * agents * agents);  // pair tests
    gpu.close();
}
BENCHMARK(BM_BoidsStep)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_CpuBoidsStep(benchmark::State& state) {
    const auto agents = static_cast<std::uint32_t>(state.range(0));
    steer::WorldSpec spec;
    spec.agents = agents;
    steer::CpuBoidsPlugin cpu;
    cpu.open(spec);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cpu.step());
    }
    state.SetItemsProcessed(state.iterations() * agents * agents);
    cpu.close();
}
BENCHMARK(BM_CpuBoidsStep)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_GlobalMemoryAllocator(benchmark::State& state) {
    cusim::GlobalMemory mem(64 * 1024 * 1024);
    std::vector<cusim::DeviceAddr> addrs;
    addrs.reserve(256);
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) addrs.push_back(mem.allocate(1024));
        for (const auto a : addrs) mem.free(a);
        addrs.clear();
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_GlobalMemoryAllocator);

}  // namespace

BENCHMARK_MAIN();
