// Ablation — the call-semantics pitfalls of the thesis' conclusion:
//
//  "Using a non-const reference instead of a const one harms performance
//   since additional memory transfers are done. Passing a vector by value
//   results in a high amount of copy constructor calls, because all
//   elements of the vector must be copied."
//
// Measured here as bytes over the bus and simulated host seconds per call
// style, for a kernel that only *reads* the vector.
#include <cstdio>

#include "bench_common.hpp"
#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask read_const_ref(ThreadCtx& ctx, const cupp::deviceT::vector<float>& v,
                          cupp::deviceT::vector<float>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) out.write(ctx, gid, v.read(ctx, gid));
    co_return;
}

KernelTask read_mut_ref(ThreadCtx& ctx, cupp::deviceT::vector<float>& v,
                        cupp::deviceT::vector<float>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) out.write(ctx, gid, v.read(ctx, gid));
    co_return;
}

KernelTask read_by_value(ThreadCtx& ctx, cupp::deviceT::vector<float> v,
                         cupp::deviceT::vector<float>& out) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) out.write(ctx, gid, v.read(ctx, gid));
    co_return;
}

struct Result {
    std::uint64_t to_device;
    std::uint64_t to_host;
    double host_seconds;
};

template <typename K, typename V>
Result run(cupp::device& d, K& kernel, V& v, cupp::vector<float>& out, int calls) {
    auto& sim = d.sim();
    // Warm the device copy so the measurement sees steady-state behaviour.
    kernel(d, v, out);
    sim.reset_transfer_stats();
    const double t0 = sim.host_time();
    for (int i = 0; i < calls; ++i) {
        kernel(d, v, out);
        // The host *reads* one element of each vector between the calls —
        // with lazy copying this is what forces dirty data back: a vector
        // passed as non-const reference was marked stale by the kernel call
        // and must be downloaded, a const one was not.
        (void)static_cast<float>(out[0]);
        (void)static_cast<float>(v[0]);
    }
    sim.synchronize();
    return {sim.bytes_to_device(), sim.bytes_to_host(), sim.host_time() - t0};
}

}  // namespace

int main() {
    constexpr std::uint32_t kElems = 64 * 1024;
    constexpr int kCalls = 10;

    bench::print_header("Ablation — kernel call semantics (thesis conclusion)",
                        "const& is free; non-const& forces copy-back; by-value copies "
                        "every element");

    cupp::device d;
    cupp::vector<float> data(kElems, 1.0f);
    cupp::vector<float> out(kElems, 0.0f);

    using ConstK = KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<float>&,
                                  cupp::deviceT::vector<float>&);
    using MutK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<float>&,
                                cupp::deviceT::vector<float>&);
    using ValK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<float>,
                                cupp::deviceT::vector<float>&);

    const cusim::dim3 grid{kElems / 256}, block{256};
    cupp::kernel const_k(static_cast<ConstK>(read_const_ref), grid, block);
    cupp::kernel mut_k(static_cast<MutK>(read_mut_ref), grid, block);
    cupp::kernel val_k(static_cast<ValK>(read_by_value), grid, block);

    std::printf("%-22s %16s %16s %14s\n", "style", "bytes to dev", "bytes to host",
                "host ms/call");
    {
        const auto r = run(d, const_k, data, out, kCalls);
        std::printf("%-22s %16llu %16llu %14.3f\n", "const reference",
                    static_cast<unsigned long long>(r.to_device),
                    static_cast<unsigned long long>(r.to_host),
                    1e3 * r.host_seconds / kCalls);
    }
    {
        const auto r = run(d, mut_k, data, out, kCalls);
        std::printf("%-22s %16llu %16llu %14.3f\n", "non-const reference",
                    static_cast<unsigned long long>(r.to_device),
                    static_cast<unsigned long long>(r.to_host),
                    1e3 * r.host_seconds / kCalls);
    }
    {
        const auto r = run(d, val_k, data, out, kCalls);
        std::printf("%-22s %16llu %16llu %14.3f\n", "by value (copies!)",
                    static_cast<unsigned long long>(r.to_device),
                    static_cast<unsigned long long>(r.to_host),
                    1e3 * r.host_seconds / kCalls);
    }
    std::printf("\n(each call passes a %u-element float vector; the by-value style\n"
                " copy-constructs it and uploads the copy every single call)\n",
                kElems);
    return 0;
}
