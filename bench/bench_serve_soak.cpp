// cupp::serve under sustained modelled load — the serving-path artifact.
//
// Drives the boids-as-a-service broker in its deterministic closed-loop
// run() mode: 200 requests from 8 tenants arrive on a fixed modelled
// schedule against 4 device workers, with a deterministic transient fault
// plan (plus two sticky DeviceLost faults that trip and recover the
// circuit breaker) armed through the faults API. Because the driver is
// single-threaded and every quantity lives on the simulated clock, every
// number in BENCH_serve_soak.json — throughput, p50/p99 latency, shed /
// retried / recovered counts — is bit-identical for any CUPP_SIM_THREADS;
// only host wall time (not reported) changes.
//
// Exits non-zero if any completed digest diverges from the fault-free
// serial CPU oracle, if nothing was shed or retried (the bench must
// actually exercise those paths), or if the breaker failed to trip and
// recover.
//
// Usage: bench_serve_soak [output.json]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "cusim/faults.hpp"
#include "serve/boids_service.hpp"
#include "serve/serve.hpp"

namespace serve = cupp::serve;
namespace faults = cusim::faults;

namespace {

constexpr int kRequests = 200;
constexpr int kTenants = 8;
constexpr std::uint64_t kCatalogSize = 16;
constexpr double kArrivalSpacingS = 50e-6;  ///< modelled inter-arrival gap

double percentile(std::vector<double> sorted, double p) {
    if (sorted.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_serve_soak.json";

    // Deterministic chaos, armed through the API so the bench needs no
    // environment: transient faults the retry layers absorb, plus two
    // sticky device losses for the breaker. All fault decisions happen on
    // the single driver thread, so the injection sequence is fixed.
    std::vector<faults::Rule> rules(4);
    rules[0].site = faults::Site::MemcpyH2D;
    rules[0].code = cusim::ErrorCode::TransferFailure;
    rules[0].every = 13;
    rules[1].site = faults::Site::Launch;
    rules[1].code = cusim::ErrorCode::LaunchFailure;
    rules[1].every = 11;
    rules[2].site = faults::Site::MemcpyD2H;
    rules[2].code = cusim::ErrorCode::TransferFailure;
    rules[2].every = 17;
    rules[3].site = faults::Site::Malloc;
    rules[3].code = cusim::ErrorCode::DeviceLost;
    rules[3].every = 301;
    rules[3].max_injections = 2;
    faults::configure(rules, /*seed=*/2009);

    std::map<std::uint64_t, std::uint64_t> oracle;
    for (std::uint64_t p = 0; p < kCatalogSize; ++p) {
        oracle[p] = serve::boids_oracle_digest(serve::boids_catalog_entry(p));
    }

    serve::config cfg;
    cfg.workers = 4;
    cfg.queue_capacity = 16;
    cfg.default_quota = {/*max_queued=*/4, /*max_in_flight=*/2};
    cfg.breaker_threshold = 1;
    cfg.retry.initial_backoff_s = 10e-6;
    serve::server srv(cfg, serve::make_boids_handler());

    std::vector<serve::request> reqs;
    reqs.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        serve::request r;
        r.tenant = "tenant-" + std::to_string(i % kTenants);
        r.arrival_s = static_cast<double>(i) * kArrivalSpacingS;
        r.payload = static_cast<std::uint64_t>(i) % kCatalogSize;
        if (i % 5 == 4) r.deadline_s = 1e-3;  // a tight-SLA request class
        reqs.push_back(std::move(r));
    }
    const auto out = srv.run(reqs);
    faults::disable();

    std::uint64_t completed = 0, shed = 0, expired = 0;
    double makespan_end = 0.0;
    std::vector<double> latencies;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const auto& r = out[i];
        switch (r.result) {
            case serve::outcome::completed:
                ++completed;
                latencies.push_back(r.latency_s);
                makespan_end =
                    std::max(makespan_end, reqs[i].arrival_s + r.latency_s);
                if (r.value != oracle[reqs[i].payload]) {
                    std::fprintf(stderr, "FAIL: digest mismatch at request %zu\n", i);
                    return 1;
                }
                break;
            case serve::outcome::admission_rejected:
                ++shed;
                break;
            case serve::outcome::deadline_exceeded:
                ++expired;
                break;
        }
    }
    const auto s = srv.stats();
    const std::uint64_t retried = s.attempts - s.completed - s.deadline_expired;
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    const double sustained =
        makespan_end > 0.0 ? static_cast<double>(completed) / makespan_end : 0.0;

    std::printf("serve soak (modelled): %llu completed, %llu shed, %llu expired\n",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(expired));
    std::printf("sustained %.1f req/s, latency p50 %.3f ms, p99 %.3f ms\n", sustained,
                p50 * 1e3, p99 * 1e3);
    std::printf("retried %llu, sticky %llu, breaker trips/recoveries %llu/%llu\n",
                static_cast<unsigned long long>(retried),
                static_cast<unsigned long long>(s.sticky_failures),
                static_cast<unsigned long long>(s.breaker_trips),
                static_cast<unsigned long long>(s.breaker_recoveries));

    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve_soak\",\n");
    std::fprintf(f,
                 "  \"workload\": \"%d boids requests, %d tenants, %.0f req/s "
                 "offered, 4 workers\",\n",
                 kRequests, kTenants, 1.0 / kArrivalSpacingS);
    std::fprintf(f, "  \"timeline\": \"simulated G80, virtual-time closed loop; "
                    "identical for any CUPP_SIM_THREADS\",\n");
    std::fprintf(f, "  \"faults\": \"transient h2d/13 launch/11 d2h/17, "
                    "device_lost malloc/301 x2, seed 2009\",\n");
    std::fprintf(f, "  \"outcomes\": {\"completed\": %llu, \"shed\": %llu, "
                    "\"deadline_expired\": %llu},\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(shed),
                 static_cast<unsigned long long>(expired));
    std::fprintf(f, "  \"sustained_req_per_s\": %.6f,\n", sustained);
    std::fprintf(f, "  \"latency_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n", p50 * 1e3,
                 p99 * 1e3);
    std::fprintf(f,
                 "  \"resilience\": {\"attempts\": %llu, \"retried\": %llu, "
                 "\"transient_escapes\": %llu, \"sticky_failures\": %llu, "
                 "\"breaker_trips\": %llu, \"breaker_recoveries\": %llu, "
                 "\"device_resets\": %llu}\n",
                 static_cast<unsigned long long>(s.attempts),
                 static_cast<unsigned long long>(retried),
                 static_cast<unsigned long long>(s.transient_escapes),
                 static_cast<unsigned long long>(s.sticky_failures),
                 static_cast<unsigned long long>(s.breaker_trips),
                 static_cast<unsigned long long>(s.breaker_recoveries),
                 static_cast<unsigned long long>(s.device_resets));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);

    if (completed == 0) {
        std::fprintf(stderr, "FAIL: nothing completed\n");
        return 1;
    }
    if (shed == 0 || expired == 0) {
        std::fprintf(stderr, "FAIL: the offered load never exercised shedding "
                             "or deadline expiry\n");
        return 1;
    }
    if (s.breaker_trips == 0 || s.breaker_recoveries == 0) {
        std::fprintf(stderr, "FAIL: the breaker never tripped and recovered\n");
        return 1;
    }
    return 0;
}
