// Figure 5.5 — how the CPU version spends its update-stage cycles.
//
// The thesis: "The neighbor search is the performance bottleneck, with
// about 82% of the used CPU cycles. The calculation of the steering vector
// (simulation substage) or any other work requires less than 20%."
#include <cstdio>

#include "bench_common.hpp"

int main() {
    bench::print_header("Figure 5.5 — CPU update-stage cycle breakdown",
                        "neighbor search ~82%, everything else < 20%");

    for (const std::uint32_t agents : {1024u, 2048u, 4096u}) {
        steer::WorldSpec spec;
        spec.agents = agents;
        steer::CpuBoidsPlugin plugin;
        plugin.open(spec);
        const steer::StageTimes t = plugin.step();
        const auto& m = plugin.cost_model();
        const auto& c = plugin.last_step_counters();

        const double ns = steer::neighbor_search_seconds(c, m);
        const double steering = t.simulation - ns;
        const double rest = t.modification;
        const double update = t.update();

        std::printf("agents=%-6u neighbor search %5.1f%%   steering calc %5.1f%%   "
                    "modification %5.1f%%   (update stage %.2f ms)\n",
                    agents, 100.0 * ns / update, 100.0 * steering / update,
                    100.0 * rest / update, update * 1e3);
        plugin.close();
    }
    return 0;
}
