// Table 2.2 — instruction costs on the G80 architecture, re-measured.
//
// Microkernels execute a known number of instructions of one class; the
// simulated per-warp cycle counts divided by the instruction count must
// land on the table:
//
//   FADD/FMUL/FMAD/IADD                    4 cycles/warp
//   bitwise, compare, min, max             4
//   reciprocal, reciprocal square root     16
//   accessing registers                    0
//   accessing shared memory                >= 4
//   reading from device memory             400 - 600
//   synchronizing all threads of a block   4 + waiting
#include <cstdio>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

constexpr int kIterations = 1000;

KernelTask op_kernel(ThreadCtx& ctx, Op op) {
    for (int i = 0; i < kIterations; ++i) ctx.charge(op);
    co_return;
}

KernelTask shared_kernel(ThreadCtx& ctx) {
    auto s = ctx.shared_array<float>(kWarpSize);
    for (int i = 0; i < kIterations; ++i) {
        (void)s.read(ctx, ctx.thread_idx().x % kWarpSize);
    }
    co_return;
}

KernelTask global_read_kernel(ThreadCtx& ctx, DevicePtr<float> data) {
    for (int i = 0; i < kIterations; ++i) {
        (void)data.read(ctx, ctx.thread_idx().x % data.size());
    }
    co_return;
}

KernelTask sync_kernel(ThreadCtx& ctx) {
    for (int i = 0; i < kIterations; ++i) co_await ctx.syncthreads();
    co_return;
}

/// Measures total issue+stall cycles of one warp running `entry`.
template <typename Entry>
std::pair<double, double> measure(Device& dev, Entry&& entry, unsigned shared_bytes = 0) {
    LaunchConfig cfg{dim3{1}, dim3{kWarpSize}};
    cfg.shared_bytes = shared_bytes;
    const auto stats = dev.launch(cfg, entry);
    return {static_cast<double>(stats.compute_cycles) / kIterations,
            static_cast<double>(stats.stall_cycles) / kIterations};
}

void row(const char* name, double cycles, const char* paper) {
    std::printf("%-38s %10.1f   %s\n", name, cycles, paper);
}

}  // namespace

int main() {
    Device dev;
    std::printf("\n=== Table 2.2 — instruction costs (cycles per warp) ===\n\n");
    std::printf("%-38s %10s   %s\n", "instruction", "measured", "paper");

    const std::pair<Op, const char*> arith[] = {
        {Op::FAdd, "FADD"}, {Op::FMul, "FMUL"},       {Op::FMad, "FMAD"},
        {Op::IAdd, "IADD"}, {Op::Bitwise, "bitwise"}, {Op::Compare, "compare"},
        {Op::MinMax, "min/max"},
    };
    for (const auto& [op, name] : arith) {
        const auto [cycles, stall] =
            measure(dev, [op](ThreadCtx& ctx) { return op_kernel(ctx, op); });
        row(name, cycles, "4");
    }
    for (const auto& [op, name] :
         {std::pair{Op::Recip, "reciprocal"}, std::pair{Op::RSqrt, "reciprocal sqrt"}}) {
        const auto [cycles, stall] =
            measure(dev, [op](ThreadCtx& ctx) { return op_kernel(ctx, op); });
        row(name, cycles, "16");
    }
    {
        const auto [cycles, stall] =
            measure(dev, [](ThreadCtx& ctx) { return op_kernel(ctx, Op::Register); });
        row("accessing registers", cycles, "0");
    }
    {
        const auto [cycles, stall] = measure(
            dev, [](ThreadCtx& ctx) { return shared_kernel(ctx); }, kWarpSize * sizeof(float));
        row("accessing shared memory", cycles, ">= 4");
    }
    {
        auto data = dev.malloc_n<float>(kWarpSize);
        const auto [cycles, stall] =
            measure(dev, [&](ThreadCtx& ctx) { return global_read_kernel(ctx, data); });
        row("reading from device memory", cycles + stall, "400 - 600");
        dev.free(data);
    }
    {
        const auto [cycles, stall] =
            measure(dev, [](ThreadCtx& ctx) { return sync_kernel(ctx); });
        row("__syncthreads()", cycles, "4 + waiting time");
    }
    return 0;
}
