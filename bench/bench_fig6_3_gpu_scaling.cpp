// Figure 6.3 — version-5 scaling with the number of simulated agents.
//
// The thesis: without think frequency the O(n^2) nature is clearly visible;
// with think frequency the rate scales almost linearly up to 16384 agents
// (performance less than halved per doubling) and drops by ~4.8x when
// doubling to 32768, partly because warp divergence grows with the agent
// density (§6.3.1).
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using gpusteer::GpuBoidsPlugin;
    using gpusteer::Version;

    bench::print_header(
        "Figure 6.3 — GPU v5 updates/s vs. agents, with/without think frequency",
        "near-linear with think frequency up to 16384, then a ~4.8x drop at 32768");

    std::printf("%8s %16s %16s %14s %14s\n", "agents", "no-think ups", "think ups",
                "no-think drop", "think drop");
    double prev_no_think = 0.0;
    double prev_think = 0.0;
    for (const std::uint32_t agents : bench::agent_sweep()) {
        steer::WorldSpec spec;
        spec.agents = agents;
        GpuBoidsPlugin gpu(Version::V5_FullUpdateOnDevice);
        const auto no_think = bench::measure(gpu, spec, bench::steps_for(agents));
        const auto think =
            bench::measure(gpu, spec.with_think(10), 10, 0);

        auto drop = [](double prev, double cur) { return prev > 0.0 ? prev / cur : 0.0; };
        std::printf("%8u %16.2f %16.2f %13.2fx %13.2fx\n", agents, no_think.updates_per_s,
                    think.updates_per_s, drop(prev_no_think, no_think.updates_per_s),
                    drop(prev_think, think.updates_per_s));
        prev_no_think = no_think.updates_per_s;
        prev_think = think.updates_per_s;
    }
    std::printf("\n('drop' = rate at half the agents / rate here; 2.0x = linear in n,\n"
                " 4.0x = quadratic. The paper's think-frequency curve stays below 2x\n"
                " up to 16384 and jumps to ~4.8x at 32768.)\n");
    return 0;
}
