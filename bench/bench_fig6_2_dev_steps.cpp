// Figure 6.2 + Table 6.1 — the five development steps at 4096 agents.
//
// The thesis reports, relative to the CPU version: v1 = 3.9x, v2 = 12.9x
// (3.3x over v1), v3 = 27x, v4 = 28.8x, v5 = 42x. Table 6.1 lists which
// update-stage parts each version executes on the device.
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using gpusteer::GpuBoidsPlugin;
    using gpusteer::Version;
    using gpusteer::VersionTraits;

    constexpr std::uint32_t kAgents = 4096;
    steer::WorldSpec spec;
    spec.agents = kAgents;

    bench::print_header("Table 6.1 — development versions",
                        "which substage parts run on the device per version");
    std::printf("%-8s %-18s %-22s %-14s\n", "version", "neighbor search",
                "steering calculation", "modification");
    for (int v = 1; v <= 5; ++v) {
        const auto t = VersionTraits::of(static_cast<Version>(v));
        std::printf("%-8d %-18s %-22s %-14s\n", v, t.ns_on_device ? "device" : "host",
                    t.steering_on_device ? "device" : "host",
                    t.modification_on_device ? "device" : "host");
    }

    bench::print_header(
        "Figure 6.2 — simulation frames per second at 4096 agents",
        "CPU 1x; v1 3.9x; v2 12.9x; v3 27x; v4 28.8x; v5 42x");

    const int steps = bench::steps_for(kAgents);
    steer::CpuBoidsPlugin cpu;
    // Update-stage rate (the figure's fps is simulation rate; the draw
    // stage is profiled separately in Fig. 6.4).
    const auto cpu_rates = bench::measure(cpu, spec, steps);
    std::printf("%-10s %14s %10s\n", "variant", "updates/s", "factor");
    std::printf("%-10s %14.2f %10s\n", "cpu", cpu_rates.updates_per_s, "1.0x");

    const double paper_factor[5] = {3.9, 12.9, 27.0, 28.8, 42.0};
    for (int v = 1; v <= 5; ++v) {
        GpuBoidsPlugin gpu(static_cast<Version>(v));
        const auto rates = bench::measure(gpu, spec, steps);
        const double factor = rates.updates_per_s / cpu_rates.updates_per_s;
        std::printf("%-10s %14.2f %9.1fx   (paper: %.1fx)\n",
                    ("gpu-v" + std::to_string(v)).c_str(), rates.updates_per_s, factor,
                    paper_factor[v - 1]);
    }
    return 0;
}
