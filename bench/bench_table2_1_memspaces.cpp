// Table 2.1 — the memory-space mapping of the software model, exercised.
//
//   software    | hardware          | device access | host access
//   local       | registers+device  | read & write  | no
//   shared      | shared            | read & write  | no
//   global      | device            | read & write  | read & write
//
// The host-access rules are demonstrated live: global memory is readable
// and writable from the host (but only when no kernel is active — the
// access blocks until the device is idle), shared and local memory have no
// host-side handle at all.
#include <cstdio>

#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask memory_spaces_kernel(ThreadCtx& ctx, cupp::deviceT::vector<int>& global) {
    // local address space: plain locals (registers; free per Table 2.2).
    int local = static_cast<int>(ctx.global_id());

    // shared address space: read & write within the block.
    auto shared = ctx.shared_array<int>(ctx.block_dim().x);
    shared.write(ctx, ctx.thread_idx().x, local * 2);
    co_await ctx.syncthreads();
    const int neighbor =
        shared.read(ctx, (ctx.thread_idx().x + 1) % ctx.block_dim().x);

    // global address space: read & write from every thread in the grid.
    if (ctx.global_id() < global.size()) {
        global.write(ctx, ctx.global_id(), neighbor + local);
    }
    co_return;
}

}  // namespace

int main() {
    std::printf("\n=== Table 2.1 — memory spaces (software model -> hardware) ===\n\n");
    std::printf("%-10s %-22s %-16s %-14s\n", "space", "hardware", "device access",
                "host access");
    std::printf("%-10s %-22s %-16s %-14s\n", "local", "registers & device", "read & write",
                "no");
    std::printf("%-10s %-22s %-16s %-14s\n", "shared", "shared", "read & write", "no");
    std::printf("%-10s %-22s %-16s %-14s\n", "global", "device", "read & write",
                "read & write");

    // Live demonstration of the access rules.
    cupp::device d;
    cupp::vector<int> global(256, 0);
    using K = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);
    cupp::kernel k(static_cast<K>(memory_spaces_kernel), cusim::dim3{4}, cusim::dim3{64});
    k.set_shared_bytes(64 * sizeof(int));
    k(d, global);

    bool all_ok = true;
    for (std::uint32_t i = 0; i < 256; ++i) {
        const int local = static_cast<int>(i);
        const int neighbor = 2 * static_cast<int>((i / 64) * 64 + (i + 1) % 64);
        if (static_cast<int>(global[i]) != neighbor + local) all_ok = false;
    }
    std::printf("\nlive check: kernel exchanged data thread->shared->global, host read it "
                "back: %s\n",
                all_ok ? "OK" : "FAILED");
    std::printf("host access to shared/local memory: not expressible (no host-side "
                "handle exists)\n");
    std::printf("host access to global memory while a kernel runs: blocks until the "
                "device is idle (measured in the engine tests)\n");
    return all_ok ? 0 : 1;
}
