// Stream overlap on the modelled timeline.
//
// Enqueues the same compute-heavy kernel once per stream and measures the
// simulated makespan (device busy-until minus issue time) for 1, 2, 4 and
// 8 streams. Per-stream modelled clocks let independent streams execute
// concurrently on the G80 timeline, so N streams should approach an N-fold
// makespan reduction over issuing the same N kernels back-to-back on one
// stream — the async-overlap payoff the thesis' double-buffering chapter
// anticipates. Writes the results as JSON (BENCH_stream_overlap.json) and
// exits non-zero if overlap fails to materialise.
//
// Usage: bench_stream_overlap [output.json]
#include <cstdio>
#include <vector>

#include "cusim/device.hpp"
#include "cusim/kernel_task.hpp"
#include "cusim/thread_ctx.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

// Pure compute: a fixed per-thread FMAD budget gives every launch an
// identical, deterministic modelled duration.
KernelTask burn_kernel(ThreadCtx& ctx, cusim::DevicePtr<float> out) {
    ctx.charge(cusim::Op::FMad, 20'000);
    out.write(ctx, ctx.global_id() % 32, 1.0f);
    co_return;
}

struct Sample {
    unsigned streams = 0;
    double makespan_s = 0.0;
    double speedup = 0.0;
    double efficiency = 0.0;  // speedup / streams
};

}  // namespace

int main(int argc, char** argv) {
    const char* out_path = argc > 1 ? argv[1] : "BENCH_stream_overlap.json";

    const cusim::LaunchConfig cfg{cusim::dim3{4}, cusim::dim3{128}};
    constexpr unsigned kKernels = 8;  // total work is fixed; streams vary

    // One modelled makespan per stream count: kKernels launches dealt
    // round-robin over the streams, then one covering synchronize.
    auto makespan = [&](unsigned nstreams) {
        cusim::Device dev(cusim::g80_properties());
        const auto out = dev.malloc_n<float>(32);
        std::vector<cusim::StreamId> ids(nstreams);
        for (auto& id : ids) id = dev.stream_create();

        const double t0 = dev.host_time();
        for (unsigned i = 0; i < kKernels; ++i) {
            dev.launch_async(
                cfg, [&](ThreadCtx& ctx) { return burn_kernel(ctx, out); }, "burn",
                ids[i % nstreams]);
        }
        dev.synchronize();
        return dev.device_free_at() - t0;
    };

    const double serial = makespan(1);
    std::vector<Sample> samples;
    for (const unsigned n : {1u, 2u, 4u, 8u}) {
        Sample s;
        s.streams = n;
        s.makespan_s = makespan(n);
        s.speedup = serial / s.makespan_s;
        s.efficiency = s.speedup / n;
        samples.push_back(s);
        std::printf("streams=%u  makespan %10.6f s  speedup %5.2fx  efficiency %4.2f\n",
                    n, s.makespan_s, s.speedup, s.efficiency);
    }

    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"stream_overlap\",\n");
    std::fprintf(f, "  \"kernel\": \"burn (20k FMADs/thread, 4x128 grid)\",\n");
    std::fprintf(f, "  \"kernels_total\": %u,\n", kKernels);
    std::fprintf(f, "  \"timeline\": \"simulated G80, per-stream modelled clocks\",\n");
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        std::fprintf(f,
                     "    {\"streams\": %u, \"makespan_s\": %.9f, "
                     "\"speedup_vs_one_stream\": %.3f, \"efficiency\": %.3f}%s\n",
                     s.streams, s.makespan_s, s.speedup, s.efficiency,
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);

    // The whole point: independent streams must overlap. With 8 kernels on
    // 4 streams the modelled makespan should shrink well past 2x.
    for (const Sample& s : samples) {
        if (s.streams == 4 && s.speedup < 2.0) {
            std::fprintf(stderr, "FAIL: no overlap at %u streams (%.2fx)\n",
                         s.streams, s.speedup);
            return 1;
        }
    }
    return 0;
}
