// Figure 6.4 — the double-buffering optimisation (§6.3.2).
//
// The thesis: overlapping the draw stage of step n with the device update
// of step n+1 improves overall demo performance by 12-32%, peaking where
// host and device finish their work at the same time (8192 agents without
// think frequency, 32768 with), while 4096 agents are draw-stage-bound.
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using gpusteer::GpuBoidsPlugin;
    using gpusteer::Version;

    bench::print_header("Figure 6.4 — demo frames/s with and without double buffering",
                        "12-32% improvement; peak where host draw == device update");

    std::printf("%8s %8s %14s %14s %14s\n", "agents", "think", "plain fps", "dbuf fps",
                "improvement");
    for (const std::uint32_t think : {1u, 10u}) {
        for (const std::uint32_t agents : bench::agent_sweep()) {
            if (agents < 4096) continue;  // the figure starts at 4096
            steer::WorldSpec spec;
            spec.agents = agents;
            spec.think_period = think;
            const int steps = think == 1 ? bench::steps_for(agents) : 10;

            GpuBoidsPlugin plain(Version::V5_FullUpdateOnDevice, /*double_buffering=*/false);
            const auto base = bench::measure(plain, spec, steps);
            GpuBoidsPlugin db(Version::V5_FullUpdateOnDevice, /*double_buffering=*/true);
            const auto overlapped = bench::measure(db, spec, steps);

            std::printf("%8u %8s %14.2f %14.2f %+13.1f%%\n", agents,
                        think == 1 ? "off" : "1/10", base.frames_per_s,
                        overlapped.frames_per_s,
                        100.0 * (overlapped.frames_per_s / base.frames_per_s - 1.0));
        }
    }
    return 0;
}
