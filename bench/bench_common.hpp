// Shared helpers for the figure/table harnesses.
//
// Every harness prints the rows of one thesis figure or table. Rates are
// *simulated* rates: the CPU plugin models the thesis' Athlon 64 3700+, the
// GPU plugin runs on the simulated GeForce 8800 GTS timeline. Wall-clock
// time of the harness itself is meaningless and never reported.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cupp/trace.hpp"
#include "gpusteer/plugin.hpp"
#include "steer/steer.hpp"

namespace bench {

/// Measured rates of one configuration.
struct Rates {
    double updates_per_s = 0.0;  ///< 1 / mean update-stage time
    double frames_per_s = 0.0;   ///< 1 / mean full-loop time (incl. draw)
    steer::StageTimes mean{};    ///< mean per-stage seconds
};

/// Runs `steps` main-loop iterations (after `warmup`) and averages the
/// per-stage simulated times.
inline Rates measure(steer::PlugIn& plugin, const steer::WorldSpec& spec, int steps,
                     int warmup = 1) {
    plugin.open(spec);
    for (int i = 0; i < warmup; ++i) (void)plugin.step();
    const bool tracing = cupp::trace::enabled();
    steer::StageTimes sum{};
    for (int i = 0; i < steps; ++i) {
        const steer::StageTimes t = plugin.step();
        if (tracing) {
            cupp::trace::metrics().record(
                std::string(plugin.name()) + ".update_seconds", t.update());
        }
        sum += t;
    }
    plugin.close();

    Rates r;
    r.mean.simulation = sum.simulation / steps;
    r.mean.modification = sum.modification / steps;
    r.mean.transfer = sum.transfer / steps;
    r.mean.draw = sum.draw / steps;
    r.updates_per_s = 1.0 / r.mean.update();
    r.frames_per_s = 1.0 / r.mean.total();
    if (tracing) {
        auto& m = cupp::trace::metrics();
        const std::string key = std::string(plugin.name());
        m.set_gauge(key + ".updates_per_s", r.updates_per_s);
        m.set_gauge(key + ".frames_per_s", r.frames_per_s);
        m.add(key + ".measured_steps", static_cast<std::uint64_t>(steps));
    }
    return r;
}

/// True when the operator asked for the full (slow) sweeps.
inline bool full_sweeps() {
    const char* v = std::getenv("CUPP_BENCH_FULL");
    return v != nullptr && v[0] == '1';
}

/// Steps to average per measurement, scaled down for big flocks so the
/// harness stays responsive on the host machine.
inline int steps_for(std::uint32_t agents) {
    if (agents >= 16384) return 1;
    if (agents >= 4096) return 2;
    return 4;
}

/// The standard agent-count sweep (powers of two, 512 ... 16384, extended
/// to 32768 with CUPP_BENCH_FULL=1).
inline std::vector<std::uint32_t> agent_sweep() {
    std::vector<std::uint32_t> sizes = {512, 1024, 2048, 4096, 8192, 16384};
    if (full_sweeps()) sizes.push_back(32768);
    return sizes;
}

inline void print_header(const char* title, const char* paper_note) {
    std::printf("\n=== %s ===\n", title);
    std::printf("paper: %s\n", paper_note);
    if (const std::string path = cupp::trace::output_path(); !path.empty()) {
        std::printf("trace: recording to %s (CUPP_TRACE)\n", path.c_str());
    }
    std::printf("\n");
}

}  // namespace bench
