// Ablation — texture fetches for read-only vectors (future work §7).
//
// "If it is known that the vector is passed as a const reference to a
// kernel, texture o[r] constant memory could automatically be used to offer
// even better performance." The version-1 neighbor search reads every
// candidate position from global memory; routing those reads through the
// texture cache removes most of the uncoalesced-Vec3 traffic.
#include <cstdio>

#include "bench_common.hpp"
#include "gpusteer/kernels.hpp"

int main() {
    using namespace gpusteer;
    using steer::NeighborList;
    using steer::Vec3;

    bench::print_header("Ablation — texture fetches on the v1 neighbor search",
                        "the proposed automatic const-reference optimisation");

    std::printf("%8s %18s %18s %12s\n", "agents", "global reads ms", "texture reads ms",
                "speedup");
    for (const std::uint32_t agents : {1024u, 2048u, 4096u, 8192u}) {
        steer::WorldSpec spec;
        spec.agents = agents;
        const auto flock = steer::make_flock(spec);

        cupp::device d;
        cupp::vector<Vec3> positions;
        for (const auto& a : flock) positions.push_back(a.position);
        cupp::vector<std::uint32_t> result(std::uint64_t{agents} * NeighborList::kCapacity);
        cupp::vector<std::uint32_t> counts(agents);

        using NsF = cusim::KernelTask (*)(cusim::ThreadCtx&, const DVec3&, float, DU32&,
                                          DU32&, ThinkMap);
        cupp::kernel k(static_cast<NsF>(ns_global_kernel),
                       cusim::dim3{(agents + kThreadsPerBlock - 1) / kThreadsPerBlock},
                       cusim::dim3{kThreadsPerBlock});

        k(d, positions, spec.search_radius, result, counts, ThinkMap{});
        const double plain_ms = k.last_stats().device_seconds * 1e3;

        positions.set_texture_fetches(true);
        k(d, positions, spec.search_radius, result, counts, ThinkMap{});
        const double tex_ms = k.last_stats().device_seconds * 1e3;

        std::printf("%8u %18.3f %18.3f %11.2fx\n", agents, plain_ms, tex_ms,
                    plain_ms / tex_ms);
    }
    return 0;
}
