// cupp-layer stream tests: the RAII stream/event handles, the stream-bound
// kernel::operator() overload, cupp::vector prefetch integration with the
// §4.6 lazy validity flags (a stale side touched while an async copy is in
// flight synchronizes first), and cupp::memory1d async transfers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cupp/cupp.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

KernelTask double_elements(ThreadCtx& ctx, cupp::deviceT::vector<int>& v) {
    const std::uint64_t gid = ctx.global_id();
    if (gid < v.size()) {
        v.write(ctx, gid, v.read(ctx, gid) * 2);
    }
    co_return;
}
using DoubleK = KernelTask (*)(ThreadCtx&, cupp::deviceT::vector<int>&);

TEST(Stream, RaiiAndBasicLifecycle) {
    cupp::device d;
    cupp::stream s(d);
    EXPECT_NE(s.id(), cusim::kDefaultStream);
    EXPECT_TRUE(s.query());
    s.synchronize();  // idle synchronize is a no-op

    cupp::event ev(d);
    EXPECT_TRUE(ev.query());  // never recorded: complete (CUDA semantics)
    ev.record(s);
    s.synchronize();
    EXPECT_TRUE(ev.query());

    // Move transfers ownership; the moved-from handle dies silently.
    cupp::stream s2(std::move(s));
    EXPECT_TRUE(s2.query());
}

TEST(Stream, KernelStreamOverloadDefersExecution) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v = {1, 2, 3, 4, 5};
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                   cusim::dim3{32});

    const std::uint64_t launches_before = d.sim().launches();
    k(d, s, v);  // container arg: fully asynchronous
    EXPECT_EQ(d.sim().launches(), launches_before);  // enqueued, not run
    EXPECT_GT(d.sim().pending_async_ops(), 0u);
    s.synchronize();
    EXPECT_EQ(d.sim().launches(), launches_before + 1);
    // dirty() marked the host copy stale at call time; this read downloads.
    EXPECT_EQ(static_cast<int>(v[0]), 2);
    EXPECT_EQ(static_cast<int>(v[4]), 10);
}

TEST(Stream, EventsTimeAKernelOnAStream) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(256, 1);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{8},
                   cusim::dim3{32});
    cupp::event t0(d), t1(d);
    t0.record(s);
    k(d, s, v);
    t1.record(s);
    s.synchronize();
    EXPECT_GT(cupp::event::elapsed_ms(t0, t1), 0.0);
}

TEST(Stream, VectorPrefetchToDeviceSkipsTheLazyUploadAtCallTime) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(128, 3);
    v.prefetch_to_device(d, s);
    EXPECT_EQ(v.uploads(), 1u);
    EXPECT_TRUE(v.device_data_valid());

    // The kernel call finds the device copy valid: no second upload, and the
    // launch rides the same stream behind the queued copy (FIFO).
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{4},
                   cusim::dim3{32});
    k(d, s, v);
    s.synchronize();
    EXPECT_EQ(v.uploads(), 1u);
    EXPECT_EQ(static_cast<int>(v[0]), 6);

    // Already-valid device copy: prefetch is a counted no-op.
    v.prefetch_to_device(d, s);
    EXPECT_EQ(v.uploads(), 1u);
}

TEST(Stream, VectorPrefetchToHostSynchronizesOnFirstHostTouch) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(64, 5);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{2},
                   cusim::dim3{32});
    k(d, s, v);  // host copy now stale
    EXPECT_FALSE(v.host_data_valid());

    v.prefetch_to_host(s);
    EXPECT_TRUE(v.prefetch_pending());
    EXPECT_FALSE(v.host_data_valid());  // stale until the covering sync
    EXPECT_EQ(v.downloads(), 0u);

    // First host read: the pending transfer is synchronized, not re-run.
    EXPECT_EQ(static_cast<int>(v[0]), 10);
    EXPECT_FALSE(v.prefetch_pending());
    EXPECT_TRUE(v.host_data_valid());
    EXPECT_EQ(v.downloads(), 1u);

    // Redundant prefetch on a valid host copy: no-op.
    v.prefetch_to_host(s);
    EXPECT_FALSE(v.prefetch_pending());
    EXPECT_EQ(v.downloads(), 1u);
}

TEST(Stream, VectorPrefetchedDownloadDiscardedWhenKernelDirtiesDevice) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(64, 1);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{2},
                   cusim::dim3{32});
    k(d, s, v);          // device holds 2s
    v.prefetch_to_host(s);  // snapshot of the 2s enqueued...
    k(d, s, v);          // ...but a second kernel doubles again (4s)
    // The pending download no longer proves host validity: the read below
    // must re-download the *post-kernel* data.
    EXPECT_EQ(static_cast<int>(v[0]), 4);
    EXPECT_EQ(static_cast<int>(v[63]), 4);
}

TEST(Stream, VectorHostWriteWhilePrefetchInFlightSynchronizesFirst) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(32, 7);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                   cusim::dim3{32});
    k(d, s, v);
    v.prefetch_to_host(s);
    // Host write to a stale side with a copy in flight: the proxy's
    // ensure_host synchronizes the stream before the write lands, so the
    // write is not clobbered by the queued transfer.
    v[0] = 1000;
    EXPECT_FALSE(v.prefetch_pending());
    EXPECT_EQ(static_cast<int>(v[0]), 1000);
    EXPECT_EQ(static_cast<int>(v[1]), 14);
    // And the write invalidated the device side, as §4.6 rule 4 demands.
    EXPECT_FALSE(v.device_data_valid());
}

TEST(Stream, Memory1dAsyncRoundTrip) {
    cupp::device d;
    cupp::stream s(d);
    std::vector<int> src(64);
    std::iota(src.begin(), src.end(), 0);
    cupp::memory1d<int> mem(d, std::uint64_t{64});

    mem.copy_from_host_async(src.data(), s);
    // Pageable semantics: the source may be reused immediately.
    std::fill(src.begin(), src.end(), -1);

    std::vector<int> dst(64, 0);
    mem.copy_to_host_async(dst.data(), s);
    s.synchronize();
    for (int i = 0; i < 64; ++i) EXPECT_EQ(dst[i], i);
}

TEST(Stream, DefaultStreamInteropJoinsQueuedWork) {
    cupp::device d;
    cupp::stream s(d);
    cupp::vector<int> v(32, 2);
    cupp::kernel k(static_cast<DoubleK>(double_elements), cusim::dim3{1},
                   cusim::dim3{32});
    k(d, s, v);
    // A synchronous (default-stream) call on the same device joins the
    // queue first — the async kernel's writes are visible to it.
    k(d, v);
    EXPECT_EQ(static_cast<int>(v[0]), 8);
    EXPECT_EQ(d.sim().pending_async_ops(), 0u);
}

}  // namespace
