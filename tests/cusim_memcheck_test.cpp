// memcheck tests: the shadow-state sanitizer must catch the bug classes the
// seed simulator silently tolerated — use-after-free through a stale
// DevicePtr, leaks swallowed by free_all()/teardown, reads of never-written
// device bytes, double frees, and same-epoch shared-memory races — each
// attributed to its allocation site and faulting thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "cupp/trace.hpp"
#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

/// Enables record-only checking around each test and restores the default
/// (disabled, non-strict, no recorded violations) afterwards, so this
/// binary behaves identically whether or not CUPP_MEMCHECK is exported.
class MemcheckTest : public ::testing::Test {
protected:
    void SetUp() override {
        memcheck::enable();
        memcheck::set_strict(false);
        memcheck::reset();
    }
    void TearDown() override {
        memcheck::set_strict(false);
        memcheck::disable();
        memcheck::reset();
    }
};

bool any_violation_mentions(memcheck::Kind kind, const std::string& needle) {
    const auto all = memcheck::violations();
    return std::any_of(all.begin(), all.end(), [&](const memcheck::Violation& v) {
        return v.kind == kind && (v.message.find(needle) != std::string::npos ||
                                  v.origin.find(needle) != std::string::npos);
    });
}

KernelTask read_first_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> in,
                             DevicePtr<std::uint32_t> out) {
    out.write(ctx, ctx.global_id(), in.read(ctx, 0));
    co_return;
}

// --- use-after-free through a stale DevicePtr ------------------------------

TEST_F(MemcheckTest, StaleDevicePtrReadIsUseAfterFree) {
    Device dev(tiny_properties());
    auto stale = dev.malloc_n<std::uint32_t>(64);
    std::vector<std::uint32_t> init(64, 7);
    dev.upload(stale, std::span<const std::uint32_t>(init));
    auto out = dev.malloc_n<std::uint32_t>(1);
    std::vector<std::uint32_t> zero(1, 0);
    dev.upload(out, std::span<const std::uint32_t>(zero));
    dev.free(stale);  // the view now dangles; the raw bytes are still readable

    dev.launch(LaunchConfig{dim3{1}, dim3{1}},
               [&](ThreadCtx& ctx) { return read_first_kernel(ctx, stale, out); },
               "uaf_kernel");

    EXPECT_GE(memcheck::violation_count(memcheck::Kind::UseAfterFree), 1u);
    // Attribution: the allocation site (this file) and the faulting thread.
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::UseAfterFree,
                                       "cusim_memcheck_test"));
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::UseAfterFree, "thread (0,0,0)"));
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::UseAfterFree, "uaf_kernel"));
}

TEST_F(MemcheckTest, RecycledAddressStillFlagsStaleView) {
    Device dev(tiny_properties());
    auto stale = dev.malloc_n<std::uint32_t>(64);
    dev.free(stale);
    // Same size: the first-fit allocator hands back the same address, so a
    // naive liveness check would pass. The generation id must not.
    auto fresh = dev.malloc_n<std::uint32_t>(64);
    ASSERT_EQ(fresh.addr(), stale.addr());
    std::vector<std::uint32_t> init(64, 1);
    dev.upload(fresh, std::span<const std::uint32_t>(init));
    auto out = dev.malloc_n<std::uint32_t>(1);
    dev.upload(out, std::span<const std::uint32_t>(init).subspan(0, 1));

    dev.launch(LaunchConfig{dim3{1}, dim3{1}},
               [&](ThreadCtx& ctx) { return read_first_kernel(ctx, stale, out); },
               "recycled_kernel");

    EXPECT_GE(memcheck::violation_count(memcheck::Kind::UseAfterFree), 1u);
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::UseAfterFree,
                                       "different allocation"));
}

TEST_F(MemcheckTest, StrictModeThrowsAtTheFaultingAccess) {
    memcheck::set_strict(true);
    Device dev(tiny_properties());
    auto stale = dev.malloc_n<std::uint32_t>(16);
    std::vector<std::uint32_t> init(16, 7);
    dev.upload(stale, std::span<const std::uint32_t>(init));
    auto out = dev.malloc_n<std::uint32_t>(1);
    dev.upload(out, std::span<const std::uint32_t>(init).subspan(0, 1));
    dev.free(stale);

    try {
        dev.launch(LaunchConfig{dim3{1}, dim3{1}},
                   [&](ThreadCtx& ctx) { return read_first_kernel(ctx, stale, out); },
                   "strict_kernel");
        FAIL() << "expected the launch to fail under strict memcheck";
    } catch (const Error& e) {
        // The engine wraps the in-kernel throw as a launch failure; the
        // memcheck diagnostic must survive inside the message.
        EXPECT_EQ(e.code(), ErrorCode::LaunchFailure);
        EXPECT_NE(std::string(e.what()).find("memcheck violation"), std::string::npos);
    }
}

// --- uninitialized reads ---------------------------------------------------

TEST_F(MemcheckTest, ReadOfNeverWrittenBytesIsFlagged) {
    Device dev(tiny_properties());
    auto uninit = dev.malloc_n<std::uint32_t>(8);  // never uploaded or written
    auto out = dev.malloc_n<std::uint32_t>(1);
    std::vector<std::uint32_t> zero(1, 0);
    dev.upload(out, std::span<const std::uint32_t>(zero));

    dev.launch(LaunchConfig{dim3{1}, dim3{1}},
               [&](ThreadCtx& ctx) { return read_first_kernel(ctx, uninit, out); },
               "uninit_kernel");

    EXPECT_GE(memcheck::violation_count(memcheck::Kind::UninitializedRead), 1u);
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::UninitializedRead,
                                       "cusim_memcheck_test"));
}

TEST_F(MemcheckTest, DeviceWriteDefinesBytesForLaterReads) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<std::uint32_t>(32);
    auto out = dev.malloc_n<std::uint32_t>(32);

    // Write-then-read in one kernel: the device write must mark the bytes
    // defined, so the read back is clean.
    dev.launch(LaunchConfig{dim3{1}, dim3{32}}, [&](ThreadCtx& ctx) {
        return [](ThreadCtx& c, DevicePtr<std::uint32_t> b,
                  DevicePtr<std::uint32_t> o) -> KernelTask {
            b.write(c, c.global_id(), 41u);
            o.write(c, c.global_id(), b.read(c, c.global_id()) + 1);
            co_return;
        }(ctx, buf, out);
    });

    EXPECT_EQ(memcheck::violation_count(memcheck::Kind::UninitializedRead), 0u);
    std::vector<std::uint32_t> host(32);
    dev.download(std::span<std::uint32_t>(host), out);
    for (auto v : host) EXPECT_EQ(v, 42u);
}

// --- leaks -----------------------------------------------------------------

TEST_F(MemcheckTest, FreeAllReportsLiveAllocationsAsLeaks) {
    GlobalMemory mem(1 << 20);
    (void)mem.allocate(1000);
    (void)mem.allocate(2000);
    mem.free_all();
    EXPECT_EQ(memcheck::violation_count(memcheck::Kind::Leak), 2u);
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::Leak, "cusim_memcheck_test"));
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::Leak, "1000 bytes"));
}

TEST_F(MemcheckTest, TeardownReportsUnfreedAllocations) {
    {
        GlobalMemory mem(1 << 20);
        (void)mem.allocate(512);
    }  // destroyed without free()/free_all(): a leak
    EXPECT_EQ(memcheck::violation_count(memcheck::Kind::Leak), 1u);
}

TEST_F(MemcheckTest, FreedAllocationsDoNotAppearAsLeaks) {
    GlobalMemory mem(1 << 20);
    const auto a = mem.allocate(1000);
    mem.free(a);
    mem.free_all();
    EXPECT_EQ(memcheck::violation_count(memcheck::Kind::Leak), 0u);
}

// --- double free -----------------------------------------------------------

TEST_F(MemcheckTest, DoubleFreeIsAttributedToTheFirstFree) {
    GlobalMemory mem(1 << 20);
    const auto a = mem.allocate(256);
    mem.free(a);
    EXPECT_THROW(mem.free(a), Error);  // allocator semantics are unchanged
    EXPECT_GE(memcheck::violation_count(memcheck::Kind::DoubleFree), 1u);
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::DoubleFree, "already freed"));
}

// --- shared-memory races ---------------------------------------------------

KernelTask racy_kernel(ThreadCtx& ctx) {
    auto s = ctx.shared_array<std::uint32_t>(4);
    // Every thread writes slot 0 with no barrier in between: a same-epoch
    // write/write conflict.
    s.write(ctx, 0, ctx.linear_tid());
    co_return;
}

TEST_F(MemcheckTest, SameEpochConflictingSharedWritesAreARace) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{4}};
    cfg.shared_bytes = 64;
    dev.launch(cfg, [](ThreadCtx& ctx) { return racy_kernel(ctx); }, "racy_kernel");
    EXPECT_GE(memcheck::violation_count(memcheck::Kind::SharedRace), 1u);
    EXPECT_TRUE(any_violation_mentions(memcheck::Kind::SharedRace, "racy_kernel"));
    EXPECT_TRUE(
        any_violation_mentions(memcheck::Kind::SharedRace, "same barrier interval"));
}

KernelTask synced_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> out) {
    auto s = ctx.shared_array<std::uint32_t>(ctx.block_dim().x);
    s.write(ctx, ctx.linear_tid(), ctx.linear_tid());
    co_await ctx.syncthreads();
    // Reading a neighbour's slot is fine across a barrier.
    const unsigned other = (ctx.linear_tid() + 1) % ctx.block_dim().x;
    out.write(ctx, ctx.global_id(), s.read(ctx, other));
    co_return;
}

TEST_F(MemcheckTest, BarrierSeparatedSharingIsClean) {
    Device dev(tiny_properties());
    LaunchConfig cfg{dim3{1}, dim3{32}};
    cfg.shared_bytes = 32 * sizeof(std::uint32_t);
    auto out = dev.malloc_n<std::uint32_t>(32);
    dev.launch(cfg, [&](ThreadCtx& ctx) { return synced_kernel(ctx, out); },
               "synced_kernel");
    EXPECT_EQ(memcheck::violation_count(memcheck::Kind::SharedRace), 0u);
}

// --- diagnostics carry thread/block coordinates and the kernel name --------

KernelTask oob_kernel(ThreadCtx& ctx, DevicePtr<std::uint32_t> buf) {
    (void)buf.read(ctx, buf.size());  // one past the end
    co_return;
}

TEST_F(MemcheckTest, OutOfRangeErrorNamesThreadBlockAndKernel) {
    Device dev(tiny_properties());
    auto buf = dev.malloc_n<std::uint32_t>(4);
    try {
        dev.launch(LaunchConfig{dim3{1}, dim3{1}},
                   [&](ThreadCtx& ctx) { return oob_kernel(ctx, buf); }, "oob_kernel");
        FAIL() << "expected the out-of-range read to throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("thread (0,0,0)"), std::string::npos) << what;
        EXPECT_NE(what.find("block (0,0,0)"), std::string::npos) << what;
        EXPECT_NE(what.find("oob_kernel"), std::string::npos) << what;
    }
}

// --- reporting surfaces ----------------------------------------------------

TEST_F(MemcheckTest, ViolationsFeedTheTraceMetricsRegistry) {
    const auto before =
        cupp::trace::metrics().counter("cusim.memcheck.use_after_free");
    GlobalMemory mem(1 << 20);
    (void)mem.allocate(64);
    mem.free_all();  // leak
    const auto leaks = cupp::trace::metrics().counter("cusim.memcheck.leak");
    EXPECT_GE(leaks, 1u);
    EXPECT_GE(cupp::trace::metrics().counter("cusim.memcheck.violations"), 1u);
    (void)before;
}

TEST_F(MemcheckTest, ReportJsonListsViolationsWithKindAndOrigin) {
    GlobalMemory mem(1 << 20);
    (void)mem.allocate(64);
    mem.free_all();
    const std::string json = memcheck::report_json();
    EXPECT_NE(json.find("\"total_violations\""), std::string::npos);
    EXPECT_NE(json.find("\"leak\""), std::string::npos);
    EXPECT_NE(json.find("cusim_memcheck_test"), std::string::npos);
    const std::string text = memcheck::report_text();
    EXPECT_NE(text.find("[leak]"), std::string::npos);
}

TEST_F(MemcheckTest, DeduplicationAggregatesRepeatedViolations) {
    Device dev(tiny_properties());
    auto uninit = dev.malloc_n<std::uint32_t>(64);
    auto out = dev.malloc_n<std::uint32_t>(64);
    std::vector<std::uint32_t> zero(64, 0);
    dev.upload(out, std::span<const std::uint32_t>(zero));
    // 64 threads all read uninitialized memory: 64 occurrences, one record.
    dev.launch(LaunchConfig{dim3{1}, dim3{64}}, [&](ThreadCtx& ctx) {
        return read_first_kernel(ctx, uninit, out);
    });
    EXPECT_EQ(memcheck::violation_count(memcheck::Kind::UninitializedRead), 64u);
    const auto all = memcheck::violations();
    const auto distinct = std::count_if(
        all.begin(), all.end(), [](const memcheck::Violation& v) {
            return v.kind == memcheck::Kind::UninitializedRead;
        });
    EXPECT_EQ(distinct, 1);
}

// --- satellite regressions -------------------------------------------------

TEST(GlobalMemoryCtor, ValidatesSizeBeforeAllocatingTheArena) {
    // An over-large size must throw InvalidValue without first committing
    // the arena allocation.
    try {
        GlobalMemory mem((1ull << 32) + 1);
        FAIL() << "expected InvalidValue";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidValue);
    }
}

TEST(BranchSiteKey, DistinctSitesGetDistinctKeys) {
    const auto a = std::source_location::current();
    const auto b = std::source_location::current();
    const auto a2 = a;
    EXPECT_NE(ThreadCtx::site_key(a), ThreadCtx::site_key(b));
    EXPECT_EQ(ThreadCtx::site_key(a), ThreadCtx::site_key(a2));
    // The pre-fix scheme shifted line into bits 40+ and column into bits
    // 52+, so sites whose line/column differences cancelled under XOR
    // collided. The hash combine must separate nearby sites:
    const auto c = std::source_location::current();
    const auto d = std::source_location::current();
    EXPECT_NE(ThreadCtx::site_key(c), ThreadCtx::site_key(d));
    EXPECT_NE(ThreadCtx::site_key(b), ThreadCtx::site_key(c));
}

}  // namespace
