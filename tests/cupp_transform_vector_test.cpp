// cupp::vector with element-wise type transformation (§4.5/§4.6: "The type
// transformation is not only done to the vector itself, but also to the
// type of the values stored by the vector"), plus the proxy-class corner
// cases of §4.6 footnote 4.
#include <gtest/gtest.h>

#include "cupp/cupp.hpp"
#include "cusim/report.hpp"

namespace {

using cusim::KernelTask;
using cusim::ThreadCtx;

// Host element: double-precision complex-ish pair; device element: packed
// floats — a miniature of the paper's host/device representation split.
struct DevSample {
    float value;
    float weight;
    using device_type = DevSample;
    using host_type = struct HostSample;
};

struct HostSample {
    using device_type = DevSample;
    using host_type = HostSample;

    double value = 0.0;
    double weight = 1.0;

    DevSample transform(const cupp::device&) const {
        return DevSample{static_cast<float>(value), static_cast<float>(weight)};
    }
    explicit HostSample() = default;
    HostSample(double v, double w) : value(v), weight(w) {}
    explicit HostSample(const DevSample& d) : value(d.value), weight(d.weight) {}
};

KernelTask weighted_sum(ThreadCtx& ctx, const cupp::deviceT::vector<DevSample>& samples,
                        cupp::deviceT::vector<float>& out) {
    if (ctx.global_id() == 0) {
        float sum = 0.0f;
        for (std::uint64_t i = 0; i < samples.size(); ++i) {
            const DevSample s = samples.read(ctx, i);
            ctx.charge(cusim::Op::FMad);
            sum += s.value * s.weight;
        }
        out.write(ctx, 0, sum);
    }
    co_return;
}

TEST(TransformedVector, ElementTypeIsTransformedOnUpload) {
    static_assert(std::is_same_v<cupp::vector<HostSample>::device_type,
                                 cupp::deviceT::vector<DevSample>>);

    cupp::device d;
    cupp::vector<HostSample> samples;
    samples.push_back(HostSample{2.0, 3.0});
    samples.push_back(HostSample{5.0, 1.0});
    cupp::vector<float> out(1, 0.0f);

    using F = KernelTask (*)(ThreadCtx&, const cupp::deviceT::vector<DevSample>&,
                             cupp::deviceT::vector<float>&);
    cupp::kernel k(static_cast<F>(weighted_sum), cusim::dim3{1}, cusim::dim3{32});
    k(d, samples, out);
    EXPECT_FLOAT_EQ(out[0], 2.0f * 3.0f + 5.0f * 1.0f);
}

TEST(TransformedVector, HostSideKeepsDoublePrecision) {
    cupp::device d;
    cupp::vector<HostSample> samples(1, HostSample{1.0000000001, 1.0});
    // Host reads stay double precision (no device round trip happened).
    EXPECT_DOUBLE_EQ(std::as_const(samples)[0].value, 1.0000000001);
    (void)d;
}

// --- the proxy-class corner cases of §4.6 footnote 4 ---

TEST(ProxyQuirks, AutoDeducesTheProxyNotTheValue) {
    cupp::vector<int> v = {1, 2, 3};
    // "Proxy classes mimic the classes they are representing, but are not
    // identical. Therefore they behave differently in some rather rare
    // situations."
    auto p = v[0];  // deduces cupp::vector<int>::reference, not int!
    static_assert(std::is_same_v<decltype(p), cupp::vector<int>::reference>);
    const int value = p;  // but converts on demand
    EXPECT_EQ(value, 1);

    // Writing through the held proxy still works and marks the state.
    p = 42;
    EXPECT_EQ(static_cast<int>(v[0]), 42);
}

TEST(ProxyQuirks, ProxyToProxyAssignmentCopiesTheValue) {
    cupp::vector<int> v = {7, 0};
    v[1] = v[0];  // proxy = proxy
    EXPECT_EQ(static_cast<int>(v[1]), 7);
}

TEST(ProxyQuirks, ConstAccessReturnsPlainReferences) {
    const cupp::vector<int> v = {1, 2, 3};
    static_assert(std::is_same_v<decltype(v[0]), const int&>);
    EXPECT_EQ(v[1], 2);
}

// --- launch report sanity ---

KernelTask bandwidth_hog(ThreadCtx& ctx, cusim::DevicePtr<float> data) {
    for (int i = 0; i < 200; ++i) {
        (void)data.read(ctx, (ctx.global_id() * 7 + i) % data.size());
    }
    co_return;
}

TEST(LaunchReport, ClassifiesAndDescribes) {
    cusim::Device dev(cusim::tiny_properties());
    auto data = dev.malloc_n<float>(1024);
    const auto stats =
        dev.launch(cusim::LaunchConfig{cusim::dim3{8}, cusim::dim3{128}},
                   [&](ThreadCtx& ctx) { return bandwidth_hog(ctx, data); });
    const auto& cm = dev.properties().cost;
    const std::string text = cusim::describe(stats, cm);
    EXPECT_NE(text.find("ms"), std::string::npos);
    EXPECT_NE(text.find("MiB read"), std::string::npos);
    // 200 dependent global reads per thread and barely any arithmetic:
    // that is not compute-bound.
    EXPECT_NE(cusim::bound_by(stats, cm), cusim::BoundBy::Compute);
}

}  // namespace
