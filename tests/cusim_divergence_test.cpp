// Deep-dive tests of the branch-divergence accounting (§2.3/§6.3.1):
// per-site isolation, partial warps, alternating patterns, divergence
// penalties in the timing model, and the occurrence-log cap.
#include <gtest/gtest.h>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

KernelTask two_sites_kernel(ThreadCtx& ctx, int rounds) {
    for (int r = 0; r < rounds; ++r) {
        // Site A: uniform across the warp.
        if (ctx.branch(r % 2 == 0)) ctx.charge(Op::FAdd);
        // Site B: always divergent (half the lanes take it).
        if (ctx.branch(ctx.thread_idx().x % 2 == 0)) ctx.charge(Op::FAdd);
    }
    co_return;
}

TEST(Divergence, SitesAreAccountedIndependently) {
    Device dev(tiny_properties());
    constexpr int kRounds = 20;
    const auto stats = dev.launch(LaunchConfig{dim3{1}, dim3{32}}, [&](ThreadCtx& ctx) {
        return two_sites_kernel(ctx, kRounds);
    });
    // Only site B diverges: once per round.
    EXPECT_EQ(stats.divergent_events, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(stats.branch_evaluations, 2u * kRounds * 32u);
}

KernelTask lane_pred_kernel(ThreadCtx& ctx) {
    (void)ctx.branch(ctx.thread_idx().x == 0);
    co_return;
}

TEST(Divergence, SingleLaneWarpNeverDiverges) {
    Device dev(tiny_properties());
    const auto stats = dev.launch(LaunchConfig{dim3{4}, dim3{1}}, [](ThreadCtx& ctx) {
        return lane_pred_kernel(ctx);
    });
    // One lane per warp: nothing to disagree with.
    EXPECT_EQ(stats.divergent_events, 0u);
}

TEST(Divergence, PartialWarpStillDetectsDivergence) {
    Device dev(tiny_properties());
    const auto stats = dev.launch(LaunchConfig{dim3{1}, dim3{7}}, [](ThreadCtx& ctx) {
        return lane_pred_kernel(ctx);
    });
    // Lane 0 takes it, lanes 1-6 do not: one divergent step.
    EXPECT_EQ(stats.divergent_events, 1u);
}

KernelTask misaligned_kernel(ThreadCtx& ctx) {
    // Lanes evaluate a different *number* of dynamic branches: the inner
    // site only exists behind the outer one. The accounting approximates by
    // occurrence index; it must stay robust (no crash, sane counts).
    const bool outer = ctx.branch(ctx.thread_idx().x < 16);
    if (outer) {
        for (int i = 0; i < 3; ++i) {
            (void)ctx.branch(i % 2 == 0);
        }
    }
    co_return;
}

TEST(Divergence, MisalignedOccurrencesAreTolerated) {
    Device dev(tiny_properties());
    const auto stats = dev.launch(LaunchConfig{dim3{1}, dim3{32}}, [](ThreadCtx& ctx) {
        return misaligned_kernel(ctx);
    });
    EXPECT_EQ(stats.branch_evaluations, 32u + 16u * 3u);
    // The outer site diverges once; the inner site is uniform among the
    // lanes that reach it.
    EXPECT_EQ(stats.divergent_events, 1u);
}

TEST(Divergence, PenaltyShowsUpInDeviceTime) {
    Device dev(tiny_properties());
    constexpr int kRounds = 50000;

    auto uniform = [](ThreadCtx& ctx) -> KernelTask {
        for (int r = 0; r < kRounds; ++r) {
            if (ctx.branch(r % 2 == 0)) ctx.charge(Op::FAdd);
        }
        co_return;
    };
    auto divergent = [](ThreadCtx& ctx) -> KernelTask {
        for (int r = 0; r < kRounds; ++r) {
            if (ctx.branch((ctx.thread_idx().x + r) % 2 == 0)) ctx.charge(Op::FAdd);
        }
        co_return;
    };

    const LaunchConfig cfg{dim3{1}, dim3{32}};
    const auto t_uniform = dev.launch(cfg, uniform);
    const auto t_divergent = dev.launch(cfg, divergent);
    EXPECT_EQ(t_uniform.divergent_events, 0u);
    EXPECT_EQ(t_divergent.divergent_events, static_cast<std::uint64_t>(kRounds));
    // Serialisation costs real simulated time.
    EXPECT_GT(t_divergent.device_seconds, t_uniform.device_seconds * 1.5);
}

TEST(Divergence, WarpAcctUnitBehaviour) {
    WarpAcct warp;
    // Two lanes disagree at occurrence 0 of one site.
    warp.note_branch(/*site=*/1, /*lane=*/0, true);
    warp.note_branch(1, 1, false);
    warp.note_branch(1, 2, false);  // further disagreement: same event
    EXPECT_EQ(warp.divergent_events(), 1u);
    // Second occurrence, all agree.
    warp.note_branch(1, 0, true);
    warp.note_branch(1, 1, true);
    EXPECT_EQ(warp.divergent_events(), 1u);
    // A different site is independent.
    warp.note_branch(2, 0, false);
    warp.note_branch(2, 1, true);
    EXPECT_EQ(warp.divergent_events(), 2u);
    EXPECT_EQ(warp.total_branch_evaluations(), 7u);
}

TEST(Divergence, LateJoiningLaneExtendsTheLog) {
    WarpAcct warp;
    // Lane 3 records occurrences before lane 0 ever shows up.
    warp.note_branch(9, 3, true);
    warp.note_branch(9, 3, false);
    // Lane 0 now replays the same outcomes: no divergence.
    warp.note_branch(9, 0, true);
    warp.note_branch(9, 0, false);
    EXPECT_EQ(warp.divergent_events(), 0u);
    // ...but a mismatch at occurrence 1 is caught.
    warp.note_branch(9, 5, true);   // occurrence 0: matches
    warp.note_branch(9, 5, true);   // occurrence 1: log says false
    EXPECT_EQ(warp.divergent_events(), 1u);
}

}  // namespace
