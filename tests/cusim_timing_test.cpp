// Tests of the performance model: occupancy limits, the three lower bounds
// of the wave-time model, latency hiding, coalescing charges, and the
// cached read-only paths (constant + texture memory).
#include <gtest/gtest.h>

#include "cusim/cusim.hpp"

namespace {

using namespace cusim;

// --- occupancy (blocks per multiprocessor) ---

TEST(Occupancy, LimitedByMaxBlocks) {
    CostModel cm;
    LaunchConfig cfg{dim3{100}, dim3{32}};
    cfg.regs_per_thread = 1;
    EXPECT_EQ(blocks_per_mp(cm, cfg), cm.max_blocks_per_mp);
}

TEST(Occupancy, LimitedBySharedMemory) {
    CostModel cm;  // 16 KiB shared per MP
    LaunchConfig cfg{dim3{100}, dim3{32}};
    cfg.regs_per_thread = 1;
    cfg.shared_bytes = 6 * 1024;
    EXPECT_EQ(blocks_per_mp(cm, cfg), 2u);  // 16/6
    cfg.shared_bytes = 16 * 1024;
    EXPECT_EQ(blocks_per_mp(cm, cfg), 1u);
    cfg.shared_bytes = 17 * 1024;
    EXPECT_THROW(blocks_per_mp(cm, cfg), Error);
}

TEST(Occupancy, LimitedByRegisters) {
    CostModel cm;  // 8192 registers per MP
    LaunchConfig cfg{dim3{100}, dim3{128}};
    cfg.regs_per_thread = 16;  // 2048 per block
    EXPECT_EQ(blocks_per_mp(cm, cfg), 4u);
    cfg.regs_per_thread = 64;  // 8192 per block
    EXPECT_EQ(blocks_per_mp(cm, cfg), 1u);
    cfg.regs_per_thread = 65;
    EXPECT_THROW(blocks_per_mp(cm, cfg), Error);
}

// --- the wave-time model ---

BlockCost make_cost(std::uint64_t compute, std::uint64_t stall, std::uint64_t bytes,
                    unsigned warps) {
    BlockCost c;
    c.compute_cycles = compute;
    c.stall_cycles = stall;
    c.max_warp_busy = compute / warps + stall / warps;
    c.bytes = bytes;
    c.warps = warps;
    return c;
}

TEST(TimingModel, ComputeBoundGridScalesWithIssueWork) {
    CostModel cm;
    LaunchConfig cfg{dim3{12}, dim3{128}};  // one block per MP
    std::vector<BlockCost> blocks(12, make_cost(1'000'000, 0, 0, 4));
    const double t = model_grid_seconds(cm, cfg, blocks, nullptr);
    EXPECT_NEAR(t, 1'000'000 / cm.core_clock_hz, 1e-9);

    // Twice the work, twice the time.
    std::vector<BlockCost> heavier(12, make_cost(2'000'000, 0, 0, 4));
    EXPECT_NEAR(model_grid_seconds(cm, cfg, heavier, nullptr), 2 * t, 1e-9);
}

TEST(TimingModel, BandwidthBoundGridScalesWithTraffic) {
    CostModel cm;
    LaunchConfig cfg{dim3{12}, dim3{128}};
    const std::uint64_t bytes = 100 * 1024 * 1024;
    std::vector<BlockCost> blocks(12, make_cost(1000, 0, bytes, 4));
    const double t = model_grid_seconds(cm, cfg, blocks, nullptr);
    const double expected = bytes / cm.bytes_per_cycle_per_mp() / cm.core_clock_hz;
    EXPECT_NEAR(t, expected, expected * 1e-9);
}

TEST(TimingModel, SingleWarpPaysItsFullLatencyChain) {
    CostModel cm;
    LaunchConfig cfg{dim3{1}, dim3{32}};
    BlockCost c = make_cost(1000, 500'000, 0, 1);
    const double t = model_grid_seconds(cm, cfg, {c}, nullptr);
    EXPECT_NEAR(t, (1000 + 500'000) / cm.core_clock_hz, 1e-9);
}

TEST(TimingModel, ManyWarpsHideEachOthersLatency) {
    // 16 warps with the same per-warp chain: the MP overlaps their stalls,
    // so total time is far below the serialised sum.
    CostModel cm;
    LaunchConfig cfg{dim3{1}, dim3{512}};
    BlockCost c;
    c.warps = 16;
    c.compute_cycles = 16 * 1000;
    c.stall_cycles = 16 * 50'000;
    c.max_warp_busy = 1000 + 50'000;
    c.bytes = 0;
    const double t = model_grid_seconds(cm, cfg, {c}, nullptr);
    EXPECT_NEAR(t, (1000 + 50'000) / cm.core_clock_hz, 1e-9);   // one chain
    EXPECT_LT(t, 16 * 50'000 / cm.core_clock_hz);               // not the sum
}

TEST(TimingModel, MoreMultiprocessorsMeansFasterGrids) {
    CostModel cm12;
    CostModel cm2 = cm12;
    cm2.multiprocessors = 2;
    LaunchConfig cfg{dim3{24}, dim3{128}};
    std::vector<BlockCost> blocks(24, make_cost(1'000'000, 0, 0, 4));
    const double t12 = model_grid_seconds(cm12, cfg, blocks, nullptr);
    const double t2 = model_grid_seconds(cm2, cfg, blocks, nullptr);
    EXPECT_NEAR(t2 / t12, 6.0, 0.01);
}

TEST(TimingModel, WavesAccumulate) {
    // 24 identical single-warp-heavy blocks on 12 MPs with room for only
    // one block per MP per wave -> exactly two waves.
    CostModel cm;
    LaunchConfig cfg{dim3{24}, dim3{128}};
    cfg.shared_bytes = 16 * 1024;  // one block per MP
    std::vector<BlockCost> blocks(24, make_cost(1'000'000, 0, 0, 4));
    unsigned resident = 0;
    const double t = model_grid_seconds(cm, cfg, blocks, &resident);
    EXPECT_EQ(resident, 1u);
    EXPECT_NEAR(t, 2.0 * 1'000'000 / cm.core_clock_hz, 1e-9);
}

// --- coalescing charges ---

TEST(Coalescing, ChargedBytesRule) {
    const CostModel cm;
    EXPECT_EQ(cm.charged_bytes(4), 4u);    // float: coalesced
    EXPECT_EQ(cm.charged_bytes(8), 8u);    // double/int2: coalesced
    EXPECT_EQ(cm.charged_bytes(16), 16u);  // float4: coalesced
    EXPECT_EQ(cm.charged_bytes(64), 64u);  // Mat4: multiple of 16
    EXPECT_EQ(cm.charged_bytes(12), cm.uncoalesced_access_bytes);  // Vec3!
    EXPECT_EQ(cm.charged_bytes(1), cm.uncoalesced_access_bytes);
    EXPECT_EQ(cm.charged_bytes(100), 100u);  // big but unaligned: its own size
}

KernelTask read_n(ThreadCtx& ctx, DevicePtr<float> f, int n) {
    for (int i = 0; i < n; ++i) (void)f.read(ctx, 0);
    co_return;
}

TEST(Coalescing, TrafficAccountedPerAccess) {
    Device dev(tiny_properties());
    auto f = dev.malloc_n<float>(4);
    auto stats = dev.launch(LaunchConfig{dim3{1}, dim3{1}},
                            [&](ThreadCtx& ctx) { return read_n(ctx, f, 10); });
    EXPECT_EQ(stats.bytes_read, 10u * sizeof(float));
    EXPECT_EQ(stats.stall_cycles, 10u * dev.properties().cost.global_read_latency);
}

// --- constant memory ---

KernelTask const_sum_kernel(ThreadCtx& ctx, ConstantPtr<float> weights,
                            DevicePtr<float> out) {
    if (ctx.global_id() == 0) {
        float sum = 0.0f;
        for (std::uint64_t i = 0; i < weights.size(); ++i) {
            ctx.charge(Op::FAdd);
            sum += weights.read(ctx, i);
        }
        out.write(ctx, 0, sum);
    }
    co_return;
}

TEST(ConstantMemory, UploadReadRoundTrip) {
    Device dev(tiny_properties());
    auto weights = dev.malloc_constant<float>(4);
    const float values[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    dev.copy_to_constant(weights.addr(), values, sizeof(values));

    auto out = dev.malloc_n<float>(1);
    auto stats = dev.launch(LaunchConfig{dim3{1}, dim3{32}}, [&](ThreadCtx& ctx) {
        return const_sum_kernel(ctx, weights, out);
    });
    float result = 0.0f;
    dev.copy_to_host(&result, out.addr(), sizeof(float));
    EXPECT_FLOAT_EQ(result, 10.0f);
    // Constant reads are cached: no device-memory traffic at all.
    EXPECT_EQ(stats.bytes_read, 0u);
}

TEST(ConstantMemory, SixtyFourKiBLimit) {
    Device dev(tiny_properties());
    (void)dev.malloc_constant<std::byte>(60 * 1024);
    EXPECT_THROW((void)dev.malloc_constant<std::byte>(8 * 1024), Error);
}

TEST(ConstantMemory, OutOfRangeAccessThrows) {
    Device dev(tiny_properties());
    auto p = dev.malloc_constant<int>(2);
    const int xs[2] = {1, 2};
    dev.copy_to_constant(p.addr(), xs, sizeof(xs));
    auto entry = [&](ThreadCtx& ctx) -> KernelTask {
        (void)p.read(ctx, 5);
        co_return;
    };
    EXPECT_THROW(dev.launch(LaunchConfig{dim3{1}, dim3{1}}, entry), Error);
}

// --- texture fetches ---

KernelTask tex_read_kernel(ThreadCtx& ctx, DevicePtr<float> data, int n) {
    float sink = 0.0f;
    for (int i = 0; i < n; ++i) {
        ctx.charge(Op::FAdd);
        sink += data.tex_read(ctx, static_cast<std::uint64_t>(i) % data.size());
    }
    if (ctx.global_id() == 0) data.write(ctx, 0, sink);
    co_return;
}

TEST(Texture, CacheReducesTrafficAndStalls) {
    Device dev(tiny_properties());
    auto data = dev.malloc_n<float>(64);
    std::vector<float> xs(64, 1.0f);
    dev.upload(data, std::span<const float>(xs));
    constexpr int kReads = 100;

    auto plain = dev.launch(LaunchConfig{dim3{1}, dim3{1}}, [&](ThreadCtx& ctx) {
        return read_n(ctx, data, kReads);
    });
    auto textured = dev.launch(LaunchConfig{dim3{1}, dim3{1}}, [&](ThreadCtx& ctx) {
        return tex_read_kernel(ctx, data, kReads);
    });
    const unsigned period = dev.properties().cost.texture_miss_period;
    EXPECT_LT(textured.bytes_read, plain.bytes_read);
    EXPECT_LT(textured.stall_cycles, plain.stall_cycles);
    EXPECT_EQ(textured.bytes_read, (kReads + period - 1) / period * sizeof(float));
}

}  // namespace
